//! Cross-crate GTFS property: any synthetic city's feed survives a full
//! text round-trip through disk, and the round-tripped feed routes
//! identically.

use staq_repro::gtfs::{parse::FeedText, write};
use staq_repro::prelude::*;

#[test]
fn feed_roundtrips_through_disk() {
    let city = City::generate(&CityConfig::small(5));
    let dir = std::env::temp_dir().join("staq_roundtrip_test");
    write::to_dir(city.feed.feed(), &dir).unwrap();
    let reparsed = FeedText::from_dir(&dir).unwrap().parse().unwrap();
    assert_eq!(*city.feed.feed(), reparsed);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn roundtripped_feed_routes_identically() {
    use staq_repro::gtfs::time::{DayOfWeek, Stime};
    use staq_repro::gtfs::FeedIndex;
    use staq_repro::transit::{Raptor, TransitNetwork};

    let city = City::generate(&CityConfig::tiny(11));
    let text = write::to_text(city.feed.feed());
    let feed2 = FeedIndex::build(text.parse().unwrap());

    let net1 = TransitNetwork::with_defaults(&city.road, &city.feed);
    let net2 = TransitNetwork::with_defaults(&city.road, &feed2);
    let r1 = Raptor::new(&net1);
    let r2 = Raptor::new(&net2);
    for i in 0..city.n_zones() {
        let o = city.zones[i].centroid;
        let d = city.zones[(i * 5 + 3) % city.n_zones()].centroid;
        let j1 = r1.query(&o, &d, Stime::hms(7, 15, 0), DayOfWeek::Tuesday);
        let j2 = r2.query(&o, &d, Stime::hms(7, 15, 0), DayOfWeek::Tuesday);
        assert_eq!(j1.arrive, j2.arrive, "roundtrip changed routing for pair {i}");
    }
}

#[test]
fn seeds_produce_structurally_sound_feeds() {
    use staq_repro::gtfs::validate;
    for seed in [1u64, 17, 123, 9999] {
        let city = City::generate(&CityConfig::tiny(seed));
        let violations = validate::validate(city.feed.feed());
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
    }
}

//! staq-trace: per-query spans without locks.
//!
//! Aggregate counters (the [`registry`](crate::registry)) answer "how
//! slow is the fleet"; this module answers "where did *this* query spend
//! its time". A trace is a tree of spans sharing one [`TraceId`]: the
//! edge (router or server) opens the root, every downstream hop attaches
//! the incoming [`SpanContext`] to its thread and opens children, and
//! completed spans land in a fixed-size lock-free ring buffer that
//! [`dump`] reads without stopping writers.
//!
//! Design constraints, in order:
//!
//! * **Zero locks on the hot path.** The current context is a
//!   thread-local `Cell` (the call stack *is* the span stack — opening a
//!   span pushes, dropping it pops). Finishing a span claims a ring slot
//!   with one `fetch_add` plus one CAS; a lost CAS (two writers lapping
//!   onto the same slot, ring-size apart) drops the span rather than
//!   waiting.
//! * **Fixed memory.** [`RING_SLOTS`] completed spans, drop-oldest.
//!   Overwrites and lost claims count into `trace.spans_dropped`, so a
//!   flood is visible instead of silent.
//! * **Seqlock slots.** Each slot is an even/odd sequence number guarding
//!   a `Copy` record (names are `&'static str`, attributes a fixed
//!   array) — readers retry/skip torn slots; no allocation until a dump
//!   materialises [`OwnedSpan`]s.
//! * **Runtime knobs, compile-time kill switch.** [`set_enabled`] turns
//!   capture off globally; [`set_capture_min_ns`] keeps only slow spans
//!   (the slow-query flight recorder mode); the `obs-off` feature
//!   compiles the whole module to no-ops.
//!
//! Context crosses threads by value: capture [`current()`] before
//! spawning, [`attach`] it inside the worker. It crosses processes in
//! the wire protocol's v3 frame header (see `staq-serve`'s codec).

use std::time::Instant;

/// Trace ids are plain u64s; `0` means "not traced".
pub type TraceId = u64;

/// The propagation unit: which trace we are in and which span is the
/// current parent. `(0, 0)` ([`SpanContext::NONE`]) means untraced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanContext {
    pub trace: u64,
    pub span: u64,
}

impl SpanContext {
    /// The untraced context.
    pub const NONE: SpanContext = SpanContext { trace: 0, span: 0 };

    /// True when this context belongs to a live trace.
    #[inline]
    pub fn is_some(&self) -> bool {
        self.trace != 0
    }
}

/// A completed span, materialised out of the ring by [`dump`] (and the
/// form spans take on the wire). Times are wall-clock Unix nanoseconds
/// so spans from different processes order on one axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedSpan {
    pub trace: u64,
    pub span: u64,
    /// Parent span id; `0` for a root.
    pub parent: u64,
    pub name: String,
    pub start_unix_ns: u64,
    pub dur_ns: u64,
    pub attrs: Vec<(String, u64)>,
}

/// Attributes per span; excess `Span::attr` calls are dropped.
pub const MAX_ATTRS: usize = 4;

/// Completed spans the ring holds before dropping the oldest.
pub const RING_SLOTS: usize = 8192;

#[cfg(not(feature = "obs-off"))]
mod imp {
    use super::{OwnedSpan, SpanContext, MAX_ATTRS, RING_SLOTS};
    use crate::registry::Counter;
    use std::cell::Cell;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::OnceLock;
    use std::time::{Instant, SystemTime};

    /// Spans lost to ring overwrites or slot-claim races.
    pub static SPANS_DROPPED: Counter = Counter::new("trace.spans_dropped");
    /// Spans successfully written to the ring.
    pub static SPANS_RECORDED: Counter = Counter::new("trace.spans_recorded");

    pub static ENABLED: AtomicBool = AtomicBool::new(true);
    pub static CAPTURE_MIN_NS: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        pub static CURRENT: Cell<SpanContext> = const { Cell::new(SpanContext::NONE) };
    }

    /// Fixed-size span payload: fully `Copy` (names and attribute keys
    /// are `&'static str`) so a torn seqlock read can never observe a
    /// partially-written heap pointer.
    #[derive(Clone, Copy)]
    pub struct SpanRecord {
        pub trace: u64,
        pub span: u64,
        pub parent: u64,
        pub name: &'static str,
        pub start_unix_ns: u64,
        pub dur_ns: u64,
        pub n_attrs: u8,
        pub attrs: [(&'static str, u64); MAX_ATTRS],
    }

    impl SpanRecord {
        const EMPTY: SpanRecord = SpanRecord {
            trace: 0,
            span: 0,
            parent: 0,
            name: "",
            start_unix_ns: 0,
            dur_ns: 0,
            n_attrs: 0,
            attrs: [("", 0); MAX_ATTRS],
        };
    }

    /// One seqlock-guarded ring slot: even sequence = stable, odd =
    /// write in flight. Writers claim via CAS; readers skip odd or
    /// changed sequences.
    pub struct Slot {
        seq: AtomicU64,
        data: std::cell::UnsafeCell<SpanRecord>,
    }

    // SAFETY: `data` is only accessed under the seqlock protocol —
    // writers hold the odd sequence exclusively (CAS-claimed), readers
    // validate the sequence around a volatile copy of `Copy` data.
    unsafe impl Sync for Slot {}

    impl Slot {
        const fn new() -> Slot {
            Slot { seq: AtomicU64::new(0), data: std::cell::UnsafeCell::new(SpanRecord::EMPTY) }
        }
    }

    static RING: [Slot; RING_SLOTS] = [const { Slot::new() }; RING_SLOTS];
    /// Monotone ticket counter; slot = ticket % RING_SLOTS.
    static HEAD: AtomicU64 = AtomicU64::new(0);

    /// Publishes one completed span into the ring.
    pub fn push(rec: SpanRecord) {
        let ticket = HEAD.fetch_add(1, Ordering::Relaxed);
        let slot = &RING[(ticket % RING_SLOTS as u64) as usize];
        let seq = slot.seq.load(Ordering::Relaxed);
        // Odd: another writer is mid-flight on this slot (it lapped us
        // or we lapped it). Drop rather than spin — tracing must never
        // add a wait to the serving path.
        if seq & 1 == 1
            || slot
                .seq
                .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            SPANS_DROPPED.inc();
            return;
        }
        if ticket >= RING_SLOTS as u64 {
            // This write evicts the span previously in the slot.
            SPANS_DROPPED.inc();
        }
        // SAFETY: the CAS above made the sequence odd, which excludes
        // every other writer until the release store below.
        unsafe { std::ptr::write_volatile(slot.data.get(), rec) };
        slot.seq.store(seq + 2, Ordering::Release);
        SPANS_RECORDED.inc();
    }

    /// Reads every stable slot; torn or empty slots are skipped.
    pub fn read_ring() -> Vec<SpanRecord> {
        let head = HEAD.load(Ordering::Acquire);
        let n = head.min(RING_SLOTS as u64);
        let oldest = head - n;
        let mut out = Vec::with_capacity(n as usize);
        for ticket in oldest..head {
            let slot = &RING[(ticket % RING_SLOTS as u64) as usize];
            let seq0 = slot.seq.load(Ordering::Acquire);
            if seq0 & 1 == 1 {
                continue;
            }
            // SAFETY: the record is `Copy`; a torn read is discarded by
            // the sequence re-check below before the copy is used.
            let rec = unsafe { std::ptr::read_volatile(slot.data.get()) };
            if slot.seq.load(Ordering::Acquire) != seq0 || rec.trace == 0 {
                continue;
            }
            out.push(rec);
        }
        out
    }

    pub fn to_owned_span(rec: &SpanRecord) -> OwnedSpan {
        OwnedSpan {
            trace: rec.trace,
            span: rec.span,
            parent: rec.parent,
            name: rec.name.to_string(),
            start_unix_ns: rec.start_unix_ns,
            dur_ns: rec.dur_ns,
            attrs: rec.attrs[..rec.n_attrs as usize]
                .iter()
                .map(|&(k, v)| (k.to_string(), v))
                .collect(),
        }
    }

    /// splitmix64 finalizer — cheap, well-mixed, no external RNG.
    fn mix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    static ID_SEED: OnceLock<u64> = OnceLock::new();
    static ID_NEXT: AtomicU64 = AtomicU64::new(1);

    /// Process-unique nonzero id: a per-process wall-clock⊕pid seed
    /// mixed with a monotone counter, so two processes started the same
    /// nanosecond still diverge.
    pub fn new_id() -> u64 {
        let seed = *ID_SEED.get_or_init(|| {
            let ns = SystemTime::now()
                .duration_since(SystemTime::UNIX_EPOCH)
                .unwrap_or_default()
                .as_nanos() as u64;
            ns ^ ((std::process::id() as u64) << 32)
        });
        let id = mix(seed ^ mix(ID_NEXT.fetch_add(1, Ordering::Relaxed)));
        if id == 0 {
            1
        } else {
            id
        }
    }

    /// `(unix epoch ns, Instant)` captured together once, so monotonic
    /// span clocks convert to one wall axis consistently per process.
    static CLOCK_BASE: OnceLock<(u64, Instant)> = OnceLock::new();

    pub fn unix_ns(at: Instant) -> u64 {
        let &(base_ns, base_instant) = CLOCK_BASE.get_or_init(|| {
            let ns = SystemTime::now()
                .duration_since(SystemTime::UNIX_EPOCH)
                .unwrap_or_default()
                .as_nanos() as u64;
            (ns, Instant::now())
        });
        if at >= base_instant {
            base_ns.saturating_add((at - base_instant).as_nanos() as u64)
        } else {
            base_ns.saturating_sub((base_instant - at).as_nanos() as u64)
        }
    }
}

// ---------------------------------------------------------------------
// Public API — real implementation.
// ---------------------------------------------------------------------

/// Whether span capture is globally on (runtime switch; default on).
#[cfg(not(feature = "obs-off"))]
pub fn enabled() -> bool {
    imp::ENABLED.load(std::sync::atomic::Ordering::Relaxed)
}

/// Turns span capture on/off at runtime (benches price the overhead by
/// flipping this; ops can silence a flood).
#[cfg(not(feature = "obs-off"))]
pub fn set_enabled(on: bool) {
    imp::ENABLED.store(on, std::sync::atomic::Ordering::Relaxed);
}

/// Minimum duration a span must reach to enter the ring (slow-query
/// flight recorder). 0 records everything.
#[cfg(not(feature = "obs-off"))]
pub fn capture_min_ns() -> u64 {
    imp::CAPTURE_MIN_NS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Sets the capture threshold at runtime (also settable over the wire
/// via the `TraceDump` request).
#[cfg(not(feature = "obs-off"))]
pub fn set_capture_min_ns(ns: u64) {
    imp::CAPTURE_MIN_NS.store(ns, std::sync::atomic::Ordering::Relaxed);
}

/// A fresh nonzero trace id. Generated once at the edge; everything
/// downstream inherits it through [`SpanContext`] propagation.
#[cfg(not(feature = "obs-off"))]
pub fn new_trace_id() -> TraceId {
    imp::new_id()
}

/// The calling thread's current span context.
#[cfg(not(feature = "obs-off"))]
pub fn current() -> SpanContext {
    imp::CURRENT.with(|c| c.get())
}

/// True when the calling thread is inside a live trace and capture is
/// on — the cheap guard for optional instrumentation work.
#[cfg(not(feature = "obs-off"))]
pub fn is_active() -> bool {
    enabled() && current().is_some()
}

/// Makes `ctx` the thread's current context until the guard drops
/// (restoring whatever was there). This is how a context crosses a
/// thread boundary: capture [`current()`], move it, `attach` it.
#[cfg(not(feature = "obs-off"))]
pub fn attach(ctx: SpanContext) -> ContextGuard {
    let prev = imp::CURRENT.with(|c| c.replace(ctx));
    ContextGuard { prev }
}

/// Restores the previously attached context on drop.
#[cfg(not(feature = "obs-off"))]
pub struct ContextGuard {
    prev: SpanContext,
}

#[cfg(not(feature = "obs-off"))]
impl Drop for ContextGuard {
    fn drop(&mut self) {
        imp::CURRENT.with(|c| c.set(self.prev));
    }
}

/// An in-flight span. Opening one makes it the thread's current
/// context; dropping it records the span (if capture is on and it beat
/// the min-duration threshold) and pops back to the parent.
#[cfg(not(feature = "obs-off"))]
pub struct Span {
    ctx: SpanContext,
    parent: SpanContext,
    name: &'static str,
    start: Instant,
    attrs: [(&'static str, u64); MAX_ATTRS],
    n_attrs: u8,
    active: bool,
}

/// Opens a child span of the thread's current context. Inert (and
/// free) when the thread is untraced or capture is off.
#[cfg(not(feature = "obs-off"))]
pub fn span(name: &'static str) -> Span {
    span_at(name, Instant::now())
}

/// Opens a child span whose clock started at `start` — for phases that
/// began before the tracing code runs (queue wait measured from enqueue
/// time, a RAPTOR query timed from entry).
#[cfg(not(feature = "obs-off"))]
pub fn span_at(name: &'static str, start: Instant) -> Span {
    let parent = current();
    if !enabled() || !parent.is_some() {
        return Span {
            ctx: SpanContext::NONE,
            parent,
            name,
            start,
            attrs: [("", 0); MAX_ATTRS],
            n_attrs: 0,
            active: false,
        };
    }
    let ctx = SpanContext { trace: parent.trace, span: imp::new_id() };
    imp::CURRENT.with(|c| c.set(ctx));
    Span { ctx, parent, name, start, attrs: [("", 0); MAX_ATTRS], n_attrs: 0, active: true }
}

/// Opens a root span under a brand-new trace id (the edge of a trace).
/// Inert when capture is off.
#[cfg(not(feature = "obs-off"))]
pub fn root_span(name: &'static str) -> Span {
    root_span_at(name, Instant::now())
}

/// Like [`root_span`], but backdated to `start` — for request roots
/// whose wall time began before the tracing thread picked them up
/// (a job executed by a worker pool is timed from enqueue).
#[cfg(not(feature = "obs-off"))]
pub fn root_span_at(name: &'static str, start: Instant) -> Span {
    let parent = current();
    if !enabled() {
        return Span {
            ctx: SpanContext::NONE,
            parent,
            name,
            start,
            attrs: [("", 0); MAX_ATTRS],
            n_attrs: 0,
            active: false,
        };
    }
    let ctx = SpanContext { trace: imp::new_id(), span: imp::new_id() };
    imp::CURRENT.with(|c| c.set(ctx));
    Span {
        ctx,
        parent: SpanContext::NONE,
        name,
        start,
        attrs: [("", 0); MAX_ATTRS],
        n_attrs: 0,
        active: true,
    }
}

#[cfg(not(feature = "obs-off"))]
impl Span {
    /// Attaches a numeric attribute (first [`MAX_ATTRS`] stick).
    #[inline]
    pub fn attr(&mut self, key: &'static str, value: u64) {
        if self.active && (self.n_attrs as usize) < MAX_ATTRS {
            self.attrs[self.n_attrs as usize] = (key, value);
            self.n_attrs += 1;
        }
    }

    /// This span's context — what to propagate to children opened on
    /// other threads or processes while the span is open.
    pub fn context(&self) -> SpanContext {
        if self.active {
            self.ctx
        } else {
            current()
        }
    }
}

#[cfg(not(feature = "obs-off"))]
impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        imp::CURRENT.with(|c| c.set(self.parent));
        let dur = self.start.elapsed();
        let dur_ns = dur.as_nanos().min(u64::MAX as u128) as u64;
        if dur_ns < capture_min_ns() {
            return;
        }
        imp::push(imp::SpanRecord {
            trace: self.ctx.trace,
            span: self.ctx.span,
            parent: self.parent.span,
            name: self.name,
            start_unix_ns: imp::unix_ns(self.start),
            dur_ns,
            n_attrs: self.n_attrs,
            attrs: self.attrs,
        });
    }
}

/// Recent completed spans with `dur_ns >= min_dur_ns`, oldest first.
/// Does not drain the ring; concurrent writers keep going.
#[cfg(not(feature = "obs-off"))]
pub fn dump(min_dur_ns: u64) -> Vec<OwnedSpan> {
    imp::read_ring().iter().filter(|r| r.dur_ns >= min_dur_ns).map(imp::to_owned_span).collect()
}

// ---------------------------------------------------------------------
// obs-off: the same API surface, compiled to nothing. `SpanContext` and
// `OwnedSpan` stay real (the wire codec still round-trips them).
// ---------------------------------------------------------------------

#[cfg(feature = "obs-off")]
pub fn enabled() -> bool {
    false
}

#[cfg(feature = "obs-off")]
pub fn set_enabled(_on: bool) {}

#[cfg(feature = "obs-off")]
pub fn capture_min_ns() -> u64 {
    0
}

#[cfg(feature = "obs-off")]
pub fn set_capture_min_ns(_ns: u64) {}

#[cfg(feature = "obs-off")]
pub fn new_trace_id() -> TraceId {
    0
}

#[cfg(feature = "obs-off")]
pub fn current() -> SpanContext {
    SpanContext::NONE
}

#[cfg(feature = "obs-off")]
pub fn is_active() -> bool {
    false
}

#[cfg(feature = "obs-off")]
pub fn attach(_ctx: SpanContext) -> ContextGuard {
    ContextGuard { _priv: () }
}

#[cfg(feature = "obs-off")]
pub struct ContextGuard {
    _priv: (),
}

#[cfg(feature = "obs-off")]
pub struct Span {
    _priv: (),
}

#[cfg(feature = "obs-off")]
pub fn span(_name: &'static str) -> Span {
    Span { _priv: () }
}

#[cfg(feature = "obs-off")]
pub fn span_at(_name: &'static str, _start: Instant) -> Span {
    Span { _priv: () }
}

#[cfg(feature = "obs-off")]
pub fn root_span(_name: &'static str) -> Span {
    Span { _priv: () }
}

#[cfg(feature = "obs-off")]
pub fn root_span_at(_name: &'static str, _start: Instant) -> Span {
    Span { _priv: () }
}

#[cfg(feature = "obs-off")]
impl Span {
    #[inline]
    pub fn attr(&mut self, _key: &'static str, _value: u64) {}

    pub fn context(&self) -> SpanContext {
        SpanContext::NONE
    }
}

#[cfg(feature = "obs-off")]
pub fn dump(_min_dur_ns: u64) -> Vec<OwnedSpan> {
    Vec::new()
}

#[cfg(test)]
#[cfg(not(feature = "obs-off"))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// `enabled` / `capture_min_ns` are process-global; tests that touch
    /// them serialize here so the parallel test harness can't interleave
    /// a `u64::MAX` threshold into a neighbour's recording window.
    static KNOBS: Mutex<()> = Mutex::new(());

    /// Each test runs with a fresh trace id, so assertions filter the
    /// shared process-global ring down to their own spans.
    fn my_spans(trace: u64) -> Vec<OwnedSpan> {
        dump(0).into_iter().filter(|s| s.trace == trace).collect()
    }

    #[test]
    fn nested_spans_form_a_tree_in_the_ring() {
        let _k = KNOBS.lock().unwrap();
        set_capture_min_ns(0);
        let trace;
        {
            let root = root_span("test.root");
            trace = root.context().trace;
            assert!(trace != 0);
            {
                let mut child = span("test.child");
                child.attr("k", 7);
                assert_eq!(child.context().trace, trace);
                {
                    let grandchild = span("test.grandchild");
                    assert_eq!(grandchild.context().trace, trace);
                }
            }
        }
        let spans = my_spans(trace);
        assert_eq!(spans.len(), 3, "root + child + grandchild recorded");
        let root = spans.iter().find(|s| s.name == "test.root").unwrap();
        let child = spans.iter().find(|s| s.name == "test.child").unwrap();
        let gc = spans.iter().find(|s| s.name == "test.grandchild").unwrap();
        assert_eq!(root.parent, 0);
        assert_eq!(child.parent, root.span);
        assert_eq!(gc.parent, child.span);
        assert_eq!(child.attrs, vec![("k".to_string(), 7)]);
        // Child windows nest inside the root's window.
        assert!(root.dur_ns >= child.dur_ns);
        assert!(child.start_unix_ns >= root.start_unix_ns);
    }

    #[test]
    fn untraced_thread_records_nothing() {
        let before = dump(0).len();
        {
            let s = span("test.orphan");
            assert!(!s.context().is_some());
        }
        // No new span with that name for an untraced thread.
        let after: Vec<_> = dump(0).into_iter().filter(|s| s.name == "test.orphan").collect();
        assert!(after.is_empty(), "orphan spans must not record (ring had {before})");
    }

    #[test]
    fn attach_restores_previous_context() {
        let outer = SpanContext { trace: new_trace_id(), span: new_trace_id() };
        let _g0 = attach(outer);
        {
            let inner = SpanContext { trace: new_trace_id(), span: new_trace_id() };
            let _g1 = attach(inner);
            assert_eq!(current(), inner);
        }
        assert_eq!(current(), outer);
        drop(_g0);
    }

    #[test]
    fn capture_threshold_filters_fast_spans() {
        let _k = KNOBS.lock().unwrap();
        set_capture_min_ns(u64::MAX);
        let trace;
        {
            let root = root_span("test.too_fast");
            trace = root.context().trace;
        }
        set_capture_min_ns(0);
        assert!(my_spans(trace).is_empty(), "sub-threshold span must not record");
    }

    #[test]
    fn disabled_tracing_is_inert() {
        let _k = KNOBS.lock().unwrap();
        set_enabled(false);
        let s = root_span("test.disabled");
        assert!(!s.context().is_some());
        drop(s);
        set_enabled(true);
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = new_trace_id();
            assert!(id != 0);
            assert!(seen.insert(id), "duplicate trace id {id}");
        }
    }

    #[test]
    fn dump_respects_min_duration() {
        let _k = KNOBS.lock().unwrap();
        set_capture_min_ns(0);
        let trace;
        {
            let root = root_span("test.slow_enough");
            trace = root.context().trace;
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let all = my_spans(trace);
        assert_eq!(all.len(), 1);
        assert!(all[0].dur_ns >= 2_000_000);
        let slow: Vec<_> = dump(1_000_000).into_iter().filter(|s| s.trace == trace).collect();
        assert_eq!(slow.len(), 1);
        let too_slow: Vec<_> = dump(u64::MAX).into_iter().filter(|s| s.trace == trace).collect();
        assert!(too_slow.is_empty());
    }

    #[test]
    fn concurrent_writers_never_corrupt_the_ring() {
        let _k = KNOBS.lock().unwrap();
        set_capture_min_ns(0);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..5000 {
                        let root = root_span("test.flood");
                        drop(root);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // A dump during/after the flood must be structurally sane: all
        // spans parse, no zero trace ids, names intact.
        for s in dump(0) {
            assert!(s.trace != 0);
            assert!(!s.name.is_empty());
        }
    }
}

//! Pipeline configuration.

use serde::{Deserialize, Serialize};
use staq_ml::ModelKind;
use staq_road::IsochroneParams;
use staq_todam::TodamSpec;
use staq_transit::CostKind;

/// How the labeled set `L` is drawn from the eligible zones (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplingStrategy {
    /// Uniform random sampling — the paper's method ("we assume [this]
    /// gives a reasonable level of geographic coverage").
    Random,
    /// Greedy k-center (farthest-point) sampling over zone centroids — the
    /// coverage-guaranteeing strategy the paper lists as future work
    /// ("active learning strategies may be explored to ensure coverage").
    SpatialCoverage,
}

/// Everything one SSR pipeline run needs besides the city itself.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Labeling budget β ∈ (0, 1]: the fraction of zones labeled with real
    /// SPQs (paper evaluates 3–30%).
    pub beta: f64,
    /// How `L` is drawn.
    pub sampling: SamplingStrategy,
    /// SSR model.
    pub model: ModelKind,
    /// Access cost (JT or GAC).
    pub cost: CostKind,
    /// TODAM construction parameters (interval, |R|, γ, decay).
    pub todam: TodamSpec,
    /// Isochrone parameters (τ, ω).
    pub isochrone: IsochroneParams,
    /// Compute interchange features (ablation lever; paper §IV-B).
    pub use_interchange_features: bool,
    /// Hop-chaining depth h for reachability features (paper: 1 or 2).
    pub max_hops: usize,
    /// Seed for zone sampling and model training.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            beta: 0.1,
            sampling: SamplingStrategy::Random,
            model: ModelKind::Mlp,
            cost: CostKind::Jt,
            todam: TodamSpec::default(),
            isochrone: IsochroneParams::default(),
            use_interchange_features: true,
            max_hops: 2,
            seed: 7,
        }
    }
}

impl PipelineConfig {
    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.beta > 0.0 && self.beta <= 1.0) {
            return Err(format!("beta must be in (0, 1], got {}", self.beta));
        }
        if self.todam.per_hour == 0 {
            return Err("per_hour sample rate must be positive".into());
        }
        if self.todam.gamma.is_nan() || self.todam.gamma <= 0.0 {
            return Err("gamma must be positive".into());
        }
        if self.max_hops == 0 {
            return Err("max_hops must be at least 1".into());
        }
        Ok(())
    }

    /// The paper's β sweep (Fig. 3/4, Table II): 3, 5, 7, 10, 20, 30 %.
    pub const BETA_SWEEP: [f64; 6] = [0.03, 0.05, 0.07, 0.10, 0.20, 0.30];
}

/// Serializable summary of a config (for experiment logs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigSummary {
    pub beta: f64,
    pub model: String,
    pub cost: String,
    pub seed: u64,
}

impl From<&PipelineConfig> for ConfigSummary {
    fn from(c: &PipelineConfig) -> Self {
        ConfigSummary {
            beta: c.beta,
            model: c.model.label().to_string(),
            cost: c.cost.to_string(),
            seed: c.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        PipelineConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_bad_beta() {
        let mut c = PipelineConfig { beta: 0.0, ..Default::default() };
        assert!(c.validate().is_err());
        c.beta = 1.5;
        assert!(c.validate().is_err());
        c.beta = 1.0;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn sweep_matches_paper() {
        assert_eq!(PipelineConfig::BETA_SWEEP.len(), 6);
        assert_eq!(PipelineConfig::BETA_SWEEP[0], 0.03);
        assert_eq!(PipelineConfig::BETA_SWEEP[5], 0.30);
    }

    #[test]
    fn summary_captures_fields() {
        let s = ConfigSummary::from(&PipelineConfig::default());
        assert_eq!(s.model, "MLP");
        assert_eq!(s.cost, "JT");
    }
}

//! **Fig. 3** — journey-time (JT) mean absolute errors of the SSR solution,
//! per model × labeling budget β × POI type × city.
//!
//! ```text
//! cargo run --release -p staq-bench --bin fig3 -- --scale 0.06
//! cargo run --release -p staq-bench --bin fig3 -- --quick   # MLP/OLS, 3 betas
//! ```
//!
//! Paper shape to verify: MLP best overall; OLS competitive at high β but
//! erratic at low β; COREG/MT/GNN not competitive; errors grow as β shrinks;
//! the larger city (Birmingham) tolerates lower budgets.

use staq_bench::{birmingham, coventry, BenchArgs, CsvOut};
use staq_core::{evaluate, NaiveResult, OfflineArtifacts, PipelineConfig, SsrPipeline};
use staq_ml::ModelKind;
use staq_synth::{City, PoiCategory};
use staq_todam::TodamSpec;
use staq_transit::CostKind;

fn main() {
    let args = BenchArgs::parse_with_default(BenchArgs { scale: 0.06, ..Default::default() });
    let betas: &[f64] = if args.quick { &[0.05, 0.1, 0.3] } else { &PipelineConfig::BETA_SWEEP };
    let models: &[ModelKind] =
        if args.quick { &[ModelKind::Ols, ModelKind::Mlp] } else { &ModelKind::ALL };
    let spec = TodamSpec { per_hour: 5, ..Default::default() };

    let mut csv = CsvOut::new(&["city", "category", "model", "beta", "jt_mae_min", "mac_corr"]);
    println!("== Fig. 3: JT errors of the SSR solution (scale {}) ==", args.scale);

    for city in [birmingham(&args), coventry(&args)] {
        run_city(&city, &spec, betas, models, args.seed, &mut csv);
    }
    csv.maybe_write(&args.out);
}

fn run_city(
    city: &City,
    spec: &TodamSpec,
    betas: &[f64],
    models: &[ModelKind],
    seed: u64,
    csv: &mut CsvOut,
) {
    let artifacts =
        OfflineArtifacts::build(city, &spec.interval, &staq_road::IsochroneParams::default());
    for category in PoiCategory::ALL {
        let truth = NaiveResult::compute(city, spec, category, CostKind::Jt);
        println!(
            "\n{} / {}  (|Z|={}, gravity trips={})",
            city.config.name,
            category,
            city.n_zones(),
            truth.n_trips
        );
        print!("{:>7}", "beta");
        for m in models {
            print!("  {:>7}", m.label());
        }
        println!();
        for &beta in betas {
            print!("{:>6}%", (beta * 100.0).round());
            for &model in models {
                let cfg = PipelineConfig {
                    beta,
                    model,
                    cost: CostKind::Jt,
                    todam: spec.clone(),
                    seed,
                    ..Default::default()
                };
                let result = SsrPipeline::new(city, &artifacts, cfg).run(category);
                let report = evaluate(&truth, &result);
                print!("  {:>7.2}", report.mac_mae);
                csv.row(&[
                    city.config.name.clone(),
                    category.label().to_string(),
                    model.label().to_string(),
                    format!("{beta}"),
                    format!("{:.4}", report.mac_mae),
                    format!("{:.4}", report.mac_corr),
                ]);
            }
            println!();
        }
    }
}

//! Readiness poller with two interchangeable backends: `epoll` on Linux
//! (O(ready) wakeups, the production path) and `poll(2)` everywhere else
//! (O(registered) scans, the portable fallback). Both are level-triggered
//! and expose the same register/reregister/deregister/wait surface, so
//! the reactor is backend-agnostic and tests can force the portable path
//! on Linux to keep it honest.

use crate::sys;
use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// What a registration wants to hear about.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest { readable: true, writable: false };
    pub const WRITE: Interest = Interest { readable: false, writable: true };
    pub const BOTH: Interest = Interest { readable: true, writable: true };
    pub const NONE: Interest = Interest { readable: false, writable: false };
}

/// One readiness notification.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub token: usize,
    pub readable: bool,
    pub writable: bool,
    /// Peer hangup or socket error; the owner should read to EOF / close.
    pub hup: bool,
}

/// Which backend to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Backend {
    /// epoll where available, otherwise poll.
    #[default]
    Auto,
    /// Force the portable `poll(2)` scan (used by tests and non-Linux).
    Poll,
}

pub enum Poller {
    #[cfg(target_os = "linux")]
    Epoll(EpollPoller),
    Poll(PollPoller),
}

impl Poller {
    pub fn new(backend: Backend) -> io::Result<Poller> {
        match backend {
            #[cfg(target_os = "linux")]
            Backend::Auto => Ok(Poller::Epoll(EpollPoller::new()?)),
            #[cfg(not(target_os = "linux"))]
            Backend::Auto => Ok(Poller::Poll(PollPoller::new())),
            Backend::Poll => Ok(Poller::Poll(PollPoller::new())),
        }
    }

    pub fn backend_name(&self) -> &'static str {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => "epoll",
            Poller::Poll(_) => "poll",
        }
    }

    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(sys::epoll::EPOLL_CTL_ADD, fd, token, interest),
            Poller::Poll(p) => p.register(fd, token, interest),
        }
    }

    pub fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(sys::epoll::EPOLL_CTL_MOD, fd, token, interest),
            Poller::Poll(p) => p.reregister(fd, interest),
        }
    }

    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(sys::epoll::EPOLL_CTL_DEL, fd, 0, Interest::NONE),
            Poller::Poll(p) => p.deregister(fd),
        }
    }

    /// Blocks until at least one registration is ready or `timeout`
    /// passes, appending to `events` (cleared first).
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let timeout_ms: sys::c_int = match timeout {
            // Round up so a 1ns timeout doesn't busy-spin.
            Some(d) => d.as_millis().min(i32::MAX as u128).max(1) as sys::c_int,
            None => -1,
        };
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.wait(events, timeout_ms),
            Poller::Poll(p) => p.wait(events, timeout_ms),
        }
    }
}

// ---------------------------------------------------------------- epoll

#[cfg(target_os = "linux")]
pub struct EpollPoller {
    epfd: RawFd,
    buf: Vec<sys::epoll::epoll_event>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    fn new() -> io::Result<EpollPoller> {
        let epfd = unsafe { sys::epoll::epoll_create1(sys::epoll::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EpollPoller { epfd, buf: vec![sys::epoll::epoll_event { events: 0, u64: 0 }; 1024] })
    }

    fn ctl(
        &mut self,
        op: sys::c_int,
        fd: RawFd,
        token: usize,
        interest: Interest,
    ) -> io::Result<()> {
        use sys::epoll::*;
        let mut events = EPOLLRDHUP;
        if interest.readable {
            events |= EPOLLIN;
        }
        if interest.writable {
            events |= EPOLLOUT;
        }
        let mut ev = epoll_event { events, u64: token as u64 };
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: sys::c_int) -> io::Result<()> {
        use sys::epoll::*;
        let n = loop {
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as sys::c_int,
                    timeout_ms,
                )
            };
            if n >= 0 {
                break n as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for ev in &self.buf[..n] {
            let bits = ev.events; // copy out of the packed struct
            let token = ev.u64 as usize;
            events.push(Event {
                token,
                readable: bits & EPOLLIN != 0,
                writable: bits & EPOLLOUT != 0,
                hup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        if n == self.buf.len() {
            // Saturated the event buffer: grow so one busy tick doesn't
            // starve the registrations past the buffer's end.
            self.buf.resize(self.buf.len() * 2, sys::epoll::epoll_event { events: 0, u64: 0 });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollPoller {
    fn drop(&mut self) {
        unsafe { sys::close(self.epfd) };
    }
}

// ----------------------------------------------------------------- poll

/// Portable backend: keeps the registration table in user space and
/// hands the whole thing to `poll(2)` per wait.
pub struct PollPoller {
    fds: Vec<sys::pollfd>,
    tokens: Vec<usize>,
}

impl PollPoller {
    fn new() -> PollPoller {
        PollPoller { fds: Vec::new(), tokens: Vec::new() }
    }

    fn slot(&self, fd: RawFd) -> Option<usize> {
        self.fds.iter().position(|p| p.fd == fd)
    }

    fn events_for(interest: Interest) -> sys::c_short {
        let mut e = 0;
        if interest.readable {
            e |= sys::POLLIN;
        }
        if interest.writable {
            e |= sys::POLLOUT;
        }
        e
    }

    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        if self.slot(fd).is_some() {
            return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd already registered"));
        }
        self.fds.push(sys::pollfd { fd, events: Self::events_for(interest), revents: 0 });
        self.tokens.push(token);
        Ok(())
    }

    fn reregister(&mut self, fd: RawFd, interest: Interest) -> io::Result<()> {
        let i = self
            .slot(fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.fds[i].events = Self::events_for(interest);
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let i = self
            .slot(fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.fds.swap_remove(i);
        self.tokens.swap_remove(i);
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: sys::c_int) -> io::Result<()> {
        let n = loop {
            let n = unsafe { sys::poll(self.fds.as_mut_ptr(), self.fds.len(), timeout_ms) };
            if n >= 0 {
                break n;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        if n == 0 {
            return Ok(());
        }
        for (p, &token) in self.fds.iter().zip(&self.tokens) {
            if p.revents == 0 {
                continue;
            }
            events.push(Event {
                token,
                readable: p.revents & sys::POLLIN != 0,
                writable: p.revents & sys::POLLOUT != 0,
                hup: p.revents & (sys::POLLERR | sys::POLLHUP) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    fn pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(l.local_addr().unwrap()).unwrap();
        let (b, _) = l.accept().unwrap();
        (a, b)
    }

    fn backend_roundtrip(backend: Backend) {
        let (a, mut b) = pair();
        a.set_nonblocking(true).unwrap();
        let mut poller = Poller::new(backend).unwrap();
        poller.register(a.as_raw_fd(), 7, Interest::READ).unwrap();

        // Nothing to read yet: a short wait times out empty.
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty(), "{}: spurious readiness", poller.backend_name());

        b.write_all(b"ping").unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: readiness persists until the bytes are drained.
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        let mut buf = [0u8; 8];
        let n = (&a).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");

        // Write interest on an idle socket reports writable immediately.
        poller.reregister(a.as_raw_fd(), 7, Interest::BOTH).unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.writable));

        // Peer close surfaces as readable (EOF) and/or hup.
        drop(b);
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && (e.readable || e.hup)));

        poller.deregister(a.as_raw_fd()).unwrap();
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn portable_poll_backend_roundtrip() {
        backend_roundtrip(Backend::Poll);
    }

    #[test]
    fn auto_backend_roundtrip() {
        backend_roundtrip(Backend::Auto);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn auto_backend_is_epoll_on_linux() {
        assert_eq!(Poller::new(Backend::Auto).unwrap().backend_name(), "epoll");
    }
}

//! SPQ latency: RAPTOR vs the time-dependent Dijkstra baseline — the cost
//! the paper reports as 0.018±0.016 s per query on its real network, and
//! the router ablation from DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use staq_gtfs::time::{DayOfWeek, Stime};
use staq_synth::{City, CityConfig};
use staq_transit::{mmdijkstra, Raptor, TransitNetwork};
use std::hint::black_box;

fn bench_routers(c: &mut Criterion) {
    let city = City::generate(&CityConfig::small(42));
    let net = TransitNetwork::with_defaults(&city.road, &city.feed);
    let raptor = Raptor::new(&net);
    let pairs: Vec<_> = (0..16)
        .map(|i| {
            (
                city.zones[(i * 7) % city.n_zones()].centroid,
                city.zones[(i * 13 + 5) % city.n_zones()].centroid,
            )
        })
        .collect();
    let depart = Stime::hms(7, 30, 0);

    let mut g = c.benchmark_group("router");
    g.sample_size(10);
    let mut k = 0;
    g.bench_function("raptor_spq", |b| {
        b.iter(|| {
            let (o, d) = pairs[k % pairs.len()];
            k += 1;
            black_box(raptor.query(&o, &d, depart, DayOfWeek::Tuesday))
        })
    });
    let mut k = 0;
    g.bench_function("mmdijkstra_spq", |b| {
        b.iter(|| {
            let (o, d) = pairs[k % pairs.len()];
            k += 1;
            black_box(mmdijkstra::earliest_arrival(&net, &o, &d, depart, DayOfWeek::Tuesday))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_routers);
criterion_main!(benches);

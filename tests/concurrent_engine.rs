//! Determinism under concurrency: interleaved queries and scenario edits
//! from many threads leave the shared engine in a state whose answers are
//! bit-identical to a serial replay of the same edits.
//!
//! The invariant that makes this checkable: SSR results for a category
//! depend on the city's *per-category* POI list (positions, in insertion
//! order) and the transit schedule — not on global POI ids or on how
//! edits to *other* categories interleave. Each category gets exactly one
//! editor thread, so every category's edit subsequence is deterministic
//! even though the global interleaving is not.

use staq_repro::prelude::*;
use std::sync::Arc;

fn config() -> PipelineConfig {
    PipelineConfig {
        beta: 0.25,
        model: ModelKind::Ols,
        todam: TodamSpec { per_hour: 3, ..Default::default() },
        ..Default::default()
    }
}

/// Deterministic edit positions for category `ci`, edit `k`.
fn poi_pos(side: f64, ci: usize, k: usize) -> staq_repro::geom::Point {
    staq_repro::geom::Point::new(
        side * (0.15 + 0.17 * ci as f64 + 0.03 * k as f64),
        side * (0.75 - 0.13 * ci as f64 - 0.05 * k as f64),
    )
}

const EDITS_PER_CATEGORY: usize = 3;

#[test]
fn concurrent_edits_and_queries_match_serial_replay() {
    let city = City::generate(&CityConfig::small(42));
    let side = city.config.side_m;
    let concurrent = Arc::new(AccessEngine::new(city, config()));

    // 8 threads: one editor per category (4) interleaving edits with
    // reads, plus 4 pure readers hammering queries the whole time.
    crossbeam::scope(|scope| {
        for (ci, cat) in PoiCategory::ALL.into_iter().enumerate() {
            let e = Arc::clone(&concurrent);
            scope.spawn(move |_| {
                for k in 0..EDITS_PER_CATEGORY {
                    let _ = e.measures(cat); // make sure edits hit warm caches too
                    e.add_poi(cat, poi_pos(side, ci, k));
                    let _ = e.query(&AccessQuery::MeanAccess, cat);
                }
            });
        }
        for r in 0..4 {
            let e = Arc::clone(&concurrent);
            scope.spawn(move |_| {
                let cat = PoiCategory::ALL[r % 4];
                for _ in 0..5 {
                    match e.query(&AccessQuery::WorstZones { k: 5 }, cat) {
                        QueryAnswer::WorstZones(zs) => assert!(!zs.is_empty()),
                        other => panic!("{other:?}"),
                    }
                }
            });
        }
    })
    .unwrap();

    // Serial replay: same city, same config, same per-category edit
    // sequences, no concurrency.
    let serial = AccessEngine::new(City::generate(&CityConfig::small(42)), config());
    for (ci, cat) in PoiCategory::ALL.into_iter().enumerate() {
        for k in 0..EDITS_PER_CATEGORY {
            serial.add_poi(cat, poi_pos(side, ci, k));
        }
    }

    for cat in PoiCategory::ALL {
        let got = concurrent.measures(cat);
        let want = serial.measures(cat);
        assert_eq!(got.predicted.len(), want.predicted.len(), "{cat:?}");
        for (g, w) in got.predicted.iter().zip(want.predicted.iter()) {
            assert_eq!(g.zone, w.zone, "{cat:?}");
            assert_eq!(
                g.mac.to_bits(),
                w.mac.to_bits(),
                "{cat:?} zone {:?}: mac {} vs {}",
                g.zone,
                g.mac,
                w.mac
            );
            assert_eq!(
                g.acsd.to_bits(),
                w.acsd.to_bits(),
                "{cat:?} zone {:?}: acsd {} vs {}",
                g.zone,
                g.acsd,
                w.acsd
            );
        }
    }

    // Both engines saw the same edits.
    assert_eq!(
        concurrent.city().pois.len(),
        serial.city().pois.len(),
        "same number of POIs after replay"
    );
}

#[test]
fn hammering_one_cold_category_from_many_threads_is_single_flight() {
    let engine = Arc::new(AccessEngine::new(City::generate(&CityConfig::small(7)), config()));
    crossbeam::scope(|scope| {
        for _ in 0..12 {
            let e = Arc::clone(&engine);
            scope.spawn(move |_| {
                let _ = e.measures(PoiCategory::JobCenter);
            });
        }
    })
    .unwrap();
    assert_eq!(engine.pipeline_runs(), 1, "12 concurrent cold reads, one pipeline run");
}

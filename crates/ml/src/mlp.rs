//! Multi-layer perceptron with ReLU hidden layers and Adam.
//!
//! The paper's best-performing model. The low-level [`Net`] exposes single
//! gradient steps and weight access so [`crate::mean_teacher`] can reuse it
//! for consistency training and EMA teachers.

use crate::linalg::Matrix;
use crate::scaler::StandardScaler;
use crate::ssr::{SsrModel, SsrTask};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// A feed-forward network: `sizes[0]` inputs through ReLU hidden layers to
/// `sizes.last()` linear outputs.
#[derive(Debug, Clone)]
pub struct Net {
    sizes: Vec<usize>,
    /// Per layer: `sizes[l] x sizes[l+1]` weight matrix.
    pub(crate) weights: Vec<Matrix>,
    /// Per layer: bias vector of length `sizes[l+1]`.
    pub(crate) biases: Vec<Vec<f64>>,
    // Adam state.
    m_w: Vec<Matrix>,
    v_w: Vec<Matrix>,
    m_b: Vec<Vec<f64>>,
    v_b: Vec<Vec<f64>>,
    step: u64,
}

impl Net {
    /// He-initialized network.
    pub fn new(sizes: &[usize], rng: &mut StdRng) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output layers");
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for l in 0..sizes.len() - 1 {
            let (fan_in, fan_out) = (sizes[l], sizes[l + 1]);
            let scale = (2.0 / fan_in as f64).sqrt();
            let mut w = Matrix::zeros(fan_in, fan_out);
            for v in w.data_mut() {
                *v = rng.random_range(-1.0..1.0) * scale;
            }
            weights.push(w);
            biases.push(vec![0.0; fan_out]);
        }
        let m_w = weights.iter().map(|w| Matrix::zeros(w.rows(), w.cols())).collect();
        let v_w = weights.iter().map(|w| Matrix::zeros(w.rows(), w.cols())).collect();
        let m_b = biases.iter().map(|b| vec![0.0; b.len()]).collect();
        let v_b = biases.iter().map(|b| vec![0.0; b.len()]).collect();
        Net { sizes: sizes.to_vec(), weights, biases, m_w, v_w, m_b, v_b, step: 0 }
    }

    /// Forward pass; returns per-layer activations (activations[0] = input).
    fn forward(&self, x: &Matrix) -> Vec<Matrix> {
        let mut acts = vec![x.clone()];
        let last = self.weights.len() - 1;
        for (l, (w, b)) in self.weights.iter().zip(&self.biases).enumerate() {
            let mut z = acts[l].matmul(w);
            for i in 0..z.rows() {
                for (v, bj) in z.row_mut(i).iter_mut().zip(b) {
                    *v += bj;
                }
            }
            if l < last {
                z = z.map(|v| v.max(0.0)); // ReLU
            }
            acts.push(z);
        }
        acts
    }

    /// Predicts outputs for `x`.
    pub fn predict(&self, x: &Matrix) -> Matrix {
        self.forward(x).pop().unwrap()
    }

    /// One Adam step on batch `(x, y)` with MSE loss scaled by
    /// `loss_weight`. Returns the (unscaled) batch MSE.
    pub fn train_step(&mut self, x: &Matrix, y: &Matrix, lr: f64, loss_weight: f64) -> f64 {
        let acts = self.forward(x);
        let out = acts.last().unwrap();
        let n = x.rows().max(1) as f64;
        let mse = out.data().iter().zip(y.data()).map(|(o, t)| (o - t) * (o - t)).sum::<f64>()
            / (n * y.cols() as f64);

        // dL/dOut for L = loss_weight * MSE.
        let mut delta =
            out.add_scaled(y, -1.0).map(|v| v * 2.0 * loss_weight / (n * y.cols() as f64));
        let mut grads_w: Vec<Matrix> = Vec::with_capacity(self.weights.len());
        let mut grads_b: Vec<Vec<f64>> = Vec::with_capacity(self.weights.len());
        for l in (0..self.weights.len()).rev() {
            let a_prev = &acts[l];
            grads_w.push(a_prev.transpose().matmul(&delta));
            let mut gb = vec![0.0; delta.cols()];
            for i in 0..delta.rows() {
                for (g, &v) in gb.iter_mut().zip(delta.row(i)) {
                    *g += v;
                }
            }
            grads_b.push(gb);
            if l > 0 {
                let mut prev_delta = delta.matmul(&self.weights[l].transpose());
                // ReLU derivative via the stored activation (a > 0 <=> z > 0).
                for i in 0..prev_delta.rows() {
                    for (pd, &a) in prev_delta.row_mut(i).iter_mut().zip(acts[l].row(i)) {
                        if a <= 0.0 {
                            *pd = 0.0;
                        }
                    }
                }
                delta = prev_delta;
            }
        }
        grads_w.reverse();
        grads_b.reverse();
        self.adam_update(&grads_w, &grads_b, lr);
        mse
    }

    fn adam_update(&mut self, gw: &[Matrix], gb: &[Vec<f64>], lr: f64) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        self.step += 1;
        let t = self.step as f64;
        let corr1 = 1.0 - B1.powf(t);
        let corr2 = 1.0 - B2.powf(t);
        for l in 0..self.weights.len() {
            let (w, g) = (&mut self.weights[l], &gw[l]);
            let (m, v) = (&mut self.m_w[l], &mut self.v_w[l]);
            for ((wi, gi), (mi, vi)) in w
                .data_mut()
                .iter_mut()
                .zip(g.data())
                .zip(m.data_mut().iter_mut().zip(v.data_mut().iter_mut()))
            {
                *mi = B1 * *mi + (1.0 - B1) * gi;
                *vi = B2 * *vi + (1.0 - B2) * gi * gi;
                *wi -= lr * (*mi / corr1) / ((*vi / corr2).sqrt() + EPS);
            }
            for ((bi, gi), (mi, vi)) in self.biases[l]
                .iter_mut()
                .zip(&gb[l])
                .zip(self.m_b[l].iter_mut().zip(self.v_b[l].iter_mut()))
            {
                *mi = B1 * *mi + (1.0 - B1) * gi;
                *vi = B2 * *vi + (1.0 - B2) * gi * gi;
                *bi -= lr * (*mi / corr1) / ((*vi / corr2).sqrt() + EPS);
            }
        }
    }

    /// Exponential-moving-average update of this network's parameters toward
    /// `other`'s: `self = decay * self + (1 - decay) * other`. Panics when
    /// architectures differ.
    pub fn ema_from(&mut self, other: &Net, decay: f64) {
        assert_eq!(self.sizes, other.sizes, "EMA across different architectures");
        for l in 0..self.weights.len() {
            for (a, &b) in self.weights[l].data_mut().iter_mut().zip(other.weights[l].data()) {
                *a = decay * *a + (1.0 - decay) * b;
            }
            for (a, &b) in self.biases[l].iter_mut().zip(&other.biases[l]) {
                *a = decay * *a + (1.0 - decay) * b;
            }
        }
    }
}

/// The MLP regressor with standardization and mini-batch Adam training.
#[derive(Debug, Clone, Copy)]
pub struct MlpRegressor {
    /// Hidden layer widths.
    pub hidden: [usize; 2],
    pub epochs: usize,
    pub lr: f64,
    pub batch: usize,
}

impl Default for MlpRegressor {
    fn default() -> Self {
        MlpRegressor { hidden: [64, 32], epochs: 200, lr: 1e-2, batch: 32 }
    }
}

impl MlpRegressor {
    /// Trains on standardized labeled data and predicts the unlabeled rows.
    /// Exposed separately so Mean Teacher can share the plumbing.
    pub(crate) fn train_net(
        &self,
        task: &SsrTask<'_>,
    ) -> (Net, StandardScaler, StandardScaler, Matrix, Matrix) {
        // Feature scaler fit on L ∪ U (legitimate in the semi-supervised
        // setting: unlabeled features are given).
        let all_x = task.x_labeled.vstack(task.x_unlabeled);
        let xs = StandardScaler::fit(&all_x);
        let ys = StandardScaler::fit(task.y_labeled);
        let xl = xs.transform(task.x_labeled);
        let yl = ys.transform(task.y_labeled);
        let xu = xs.transform(task.x_unlabeled);

        let sizes = [xl.cols(), self.hidden[0], self.hidden[1], yl.cols()];
        let mut rng = StdRng::seed_from_u64(task.seed ^ 0x11F);
        let mut net = Net::new(&sizes, &mut rng);
        let n = xl.rows();
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(self.batch.max(1)) {
                let bx = xl.select_rows(chunk);
                let by = yl.select_rows(chunk);
                net.train_step(&bx, &by, self.lr, 1.0);
            }
        }
        (net, xs, ys, xu, yl)
    }
}

impl SsrModel for MlpRegressor {
    fn name(&self) -> &'static str {
        "MLP"
    }

    fn fit_predict(&self, task: &SsrTask<'_>) -> Matrix {
        task.validate().expect("invalid SSR task");
        let (net, _xs, ys, xu, _yl) = self.train_net(task);
        ys.inverse_transform(&net.predict(&xu))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssr::fixtures;

    #[test]
    fn loss_decreases_during_training() {
        let (xl, yl, _, _) = fixtures::synthetic(60, 10, 2);
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Net::new(&[3, 16, 8, 2], &mut rng);
        let first = net.train_step(&xl, &yl, 1e-2, 1.0);
        let mut last = first;
        for _ in 0..300 {
            last = net.train_step(&xl, &yl, 1e-2, 1.0);
        }
        assert!(last < first * 0.2, "loss {first} -> {last}");
    }

    #[test]
    fn fits_nonlinear_target_better_than_ols() {
        // Second target is quadratic; compare on that column.
        let (xl, yl, xu, yu) = fixtures::synthetic(150, 60, 6);
        let task =
            SsrTask { x_labeled: &xl, y_labeled: &yl, x_unlabeled: &xu, adjacency: None, seed: 6 };
        let mlp_pred = MlpRegressor::default().fit_predict(&task);
        let ols_pred = crate::ols::Ols::default().fit_predict(&task);
        let mlp_err = crate::metrics::mae(&yu.col_vec(1), &mlp_pred.col_vec(1));
        let ols_err = crate::metrics::mae(&yu.col_vec(1), &ols_pred.col_vec(1));
        assert!(
            mlp_err < ols_err * 0.8,
            "MLP {mlp_err} should beat OLS {ols_err} on the quadratic target"
        );
    }

    #[test]
    fn beats_mean_baseline() {
        let m = MlpRegressor::default();
        let err = fixtures::model_mae(&m, 80, 40, 3);
        let base = fixtures::mean_baseline_mae(80, 40, 3);
        assert!(err < base * 0.4, "MLP {err} vs baseline {base}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (xl, yl, xu, _) = fixtures::synthetic(40, 20, 12);
        let task =
            SsrTask { x_labeled: &xl, y_labeled: &yl, x_unlabeled: &xu, adjacency: None, seed: 5 };
        let a = MlpRegressor::default().fit_predict(&task);
        let b = MlpRegressor::default().fit_predict(&task);
        assert_eq!(a, b);
    }

    #[test]
    fn ema_moves_weights_toward_target() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut a = Net::new(&[2, 4, 1], &mut rng);
        let b = Net::new(&[2, 4, 1], &mut rng);
        let before = a.weights[0][(0, 0)];
        let target = b.weights[0][(0, 0)];
        a.ema_from(&b, 0.9);
        let after = a.weights[0][(0, 0)];
        assert!((after - (0.9 * before + 0.1 * target)).abs() < 1e-12);
    }

    #[test]
    fn predict_shape() {
        let (xl, yl, xu, _) = fixtures::synthetic(20, 7, 1);
        let task =
            SsrTask { x_labeled: &xl, y_labeled: &yl, x_unlabeled: &xu, adjacency: None, seed: 0 };
        let p = MlpRegressor { epochs: 5, ..Default::default() }.fit_predict(&task);
        assert_eq!((p.rows(), p.cols()), (7, 2));
    }
}

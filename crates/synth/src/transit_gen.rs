//! Synthetic bus network and timetable generation.
//!
//! Route geometry mimics a UK city bus map: **radial** lines from the center
//! to the periphery, **orbital** rings around the center, and **cross-town**
//! lines passing near the center. Stops are placed every `stop_spacing_m`
//! along the route polyline and snapped to road nodes; stops snapping to the
//! same node are merged across routes, which is what creates natural
//! interchange points.
//!
//! Timetables run 05:30–23:30 with three headway bands (peak, daytime,
//! evening) and a per-route frequency multiplier, so high- and low-frequency
//! corridors both exist — the variance that the paper's route-frequency
//! features and ACSD measure depend on. Weekday (Mon–Fri) service always
//! runs; every other route also gets a sparser Saturday service; nothing
//! runs on Sunday.

use crate::config::CityConfig;
use rand::rngs::StdRng;
use rand::RngExt;
use staq_geom::Point;
use staq_gtfs::model::{
    Agency, AgencyId, Feed, Route, RouteId, RouteType, Service, ServiceId, Stop, StopId, StopTime,
    Trip, TripId,
};
use staq_gtfs::time::Stime;
use staq_road::{NodeSnapper, RoadGraph};
use std::collections::HashMap;

/// Dwell time at each stop, seconds.
const DWELL_S: u32 = 15;
/// Detour factor from crow-flies to on-street distance.
const DETOUR: f64 = 1.25;

/// Headway bands over the service day.
/// `(start, end, multiplier over peak headway)`.
const BANDS: [(u32, u32, f64); 5] = [
    (5 * 3600 + 1800, 7 * 3600, 2.0),          // early
    (7 * 3600, 9 * 3600, 1.0),                 // AM peak
    (9 * 3600, 16 * 3600, 2.0),                // daytime
    (16 * 3600, 18 * 3600 + 1800, 1.0),        // PM peak
    (18 * 3600 + 1800, 23 * 3600 + 1800, 3.0), // evening
];

/// Generates the GTFS feed for `config` on `road`.
pub fn generate(config: &CityConfig, cores: &[Point], road: &RoadGraph, rng: &mut StdRng) -> Feed {
    let mut feed = Feed::default();
    feed.agencies.push(Agency {
        id: AgencyId(0),
        gtfs_id: "AG1".into(),
        name: format!("{} Buses", config.name),
    });
    let weekday = ServiceId(0);
    feed.services.push(Service {
        id: weekday,
        gtfs_id: "WK".into(),
        days: [true, true, true, true, true, false, false],
    });
    let saturday = ServiceId(1);
    feed.services.push(Service {
        id: saturday,
        gtfs_id: "SAT".into(),
        days: [false, false, false, false, false, true, false],
    });

    let snapper = NodeSnapper::new(road);
    // Stops merged by snapped road node: shared stops = interchange points.
    let mut node_stop: HashMap<u32, StopId> = HashMap::new();

    for r in 0..config.n_routes {
        let waypoints = route_waypoints(config, cores, rng, r);
        let stop_ids = place_stops(config, &waypoints, &snapper, road, &mut node_stop, &mut feed);
        if stop_ids.len() < 2 {
            continue; // degenerate geometry; skip rather than emit a 1-call trip
        }
        let route_id = RouteId(feed.routes.len() as u32);
        feed.routes.push(Route {
            id: route_id,
            gtfs_id: format!("R{r}"),
            agency: AgencyId(0),
            short_name: format!("{}", r + 1),
            route_type: RouteType::Bus,
        });

        // Per-route frequency multiplier: some corridors run every few
        // minutes, others twice an hour.
        let freq_mult = rng.random_range(0.6..1.8);
        // Random phase so departures don't synchronize city-wide.
        let phase = rng.random_range(0..config.peak_headway_s);

        // Inter-stop run times from stop geometry.
        let runtimes: Vec<u32> = stop_ids
            .windows(2)
            .map(|w| {
                let a = feed.stops[w[0].idx()].pos;
                let b = feed.stops[w[1].idx()].pos;
                ((a.dist(&b) * DETOUR / config.bus_speed_mps).round() as u32).max(30)
            })
            .collect();

        let services: &[(ServiceId, f64)] =
            if r % 2 == 0 { &[(weekday, 1.0), (saturday, 1.8)] } else { &[(weekday, 1.0)] };
        for &(svc, svc_mult) in services {
            for dir in 0..2 {
                let ordered: Vec<StopId> = if dir == 0 {
                    stop_ids.clone()
                } else {
                    stop_ids.iter().rev().copied().collect()
                };
                let runs: Vec<u32> = if dir == 0 {
                    runtimes.clone()
                } else {
                    runtimes.iter().rev().copied().collect()
                };
                emit_trips(
                    &mut feed,
                    route_id,
                    svc,
                    &ordered,
                    &runs,
                    (config.peak_headway_s as f64 * freq_mult * svc_mult) as u32,
                    phase,
                    r,
                    dir,
                );
            }
        }
    }
    feed.normalize();
    feed
}

/// Builds the waypoint polyline for route index `r`, cycling through the
/// three geometry families.
fn route_waypoints(config: &CityConfig, cores: &[Point], rng: &mut StdRng, r: u32) -> Vec<Point> {
    let side = config.side_m;
    let center = cores[(r as usize) % cores.len()];
    let margin = side * 0.05;
    let rand_edge_point = |rng: &mut StdRng| -> Point {
        // A point on the study-area boundary.
        let t = rng.random_range(0.0..4.0);
        let u = rng.random_range(margin..side - margin);
        match t as u32 {
            0 => Point::new(u, margin),
            1 => Point::new(u, side - margin),
            2 => Point::new(margin, u),
            _ => Point::new(side - margin, u),
        }
    };
    match r % 3 {
        // Radial: center -> edge, slightly bent via a midpoint jitter.
        0 => {
            let edge = rand_edge_point(rng);
            let mid = center
                .midpoint(&edge)
                .offset(rng.random_range(-0.08..0.08) * side, rng.random_range(-0.08..0.08) * side);
            vec![center, mid, edge]
        }
        // Orbital: ring around the center.
        1 => {
            let radius = rng.random_range(0.18f64..0.35) * side;
            let n = 10;
            let phase = rng.random_range(0.0..std::f64::consts::TAU);
            (0..=n)
                .map(|i| {
                    let th = phase + i as f64 / n as f64 * std::f64::consts::TAU;
                    Point::new(
                        (center.x + radius * th.cos()).clamp(margin, side - margin),
                        (center.y + radius * th.sin()).clamp(margin, side - margin),
                    )
                })
                .collect()
        }
        // Cross-town: edge -> near-center -> edge.
        _ => {
            let a = rand_edge_point(rng);
            let b = rand_edge_point(rng);
            let via = center
                .offset(rng.random_range(-0.06..0.06) * side, rng.random_range(-0.06..0.06) * side);
            vec![a, via, b]
        }
    }
}

/// Walks the polyline, emitting a stop every `stop_spacing_m`, snapped to the
/// road network and merged across routes by road node.
fn place_stops(
    config: &CityConfig,
    waypoints: &[Point],
    snapper: &NodeSnapper,
    road: &RoadGraph,
    node_stop: &mut HashMap<u32, StopId>,
    feed: &mut Feed,
) -> Vec<StopId> {
    let mut stops: Vec<StopId> = Vec::new();
    let mut carry = 0.0; // distance since last stop
    let mut emit = |p: Point, feed: &mut Feed, stops: &mut Vec<StopId>| {
        if let Some((node, _gap)) = snapper.snap(&p) {
            let id = *node_stop.entry(node.0).or_insert_with(|| {
                let id = StopId(feed.stops.len() as u32);
                feed.stops.push(Stop {
                    id,
                    gtfs_id: format!("S{}", id.0),
                    name: format!("Stop {}", id.0),
                    pos: road.pos(node),
                });
                id
            });
            if stops.last() != Some(&id) {
                stops.push(id);
            }
        }
    };
    if let Some(&first) = waypoints.first() {
        emit(first, feed, &mut stops);
    }
    for w in waypoints.windows(2) {
        let (a, b) = (w[0], w[1]);
        let seg = a.dist(&b);
        if seg == 0.0 {
            continue;
        }
        let mut along = config.stop_spacing_m - carry;
        while along < seg {
            emit(a.lerp(&b, along / seg), feed, &mut stops);
            along += config.stop_spacing_m;
        }
        carry = seg - (along - config.stop_spacing_m);
    }
    if let Some(&last) = waypoints.last() {
        emit(last, feed, &mut stops);
    }
    stops
}

/// Emits all trips of one route direction for one service over the day.
#[allow(clippy::too_many_arguments)]
fn emit_trips(
    feed: &mut Feed,
    route: RouteId,
    svc: ServiceId,
    stops: &[StopId],
    runtimes: &[u32],
    headway_peak_adjusted: u32,
    phase: u32,
    route_no: u32,
    dir: u32,
) {
    let mut trip_no = 0u32;
    for &(band_start, band_end, mult) in &BANDS {
        let headway = ((headway_peak_adjusted as f64 * mult) as u32).max(120);
        let mut t = band_start + phase % headway;
        while t < band_end {
            let trip_id = TripId(feed.trips.len() as u32);
            let svc_tag = if svc.0 == 0 { "wk" } else { "sat" };
            feed.trips.push(Trip {
                id: trip_id,
                gtfs_id: format!("T{route_no}.{dir}.{svc_tag}.{trip_no}"),
                route,
                service: svc,
            });
            let mut clock = Stime(t);
            for (k, &stop) in stops.iter().enumerate() {
                let arrival = clock;
                let departure = if k + 1 < stops.len() { arrival.plus(DWELL_S) } else { arrival };
                feed.stop_times.push(StopTime {
                    trip: trip_id,
                    stop,
                    arrival,
                    departure,
                    seq: k as u32,
                });
                if k < runtimes.len() {
                    clock = departure.plus(runtimes[k]);
                }
            }
            trip_no += 1;
            t += headway;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use staq_gtfs::time::{DayOfWeek, TimeInterval};
    use staq_gtfs::validate;
    use staq_gtfs::FeedIndex;

    fn gen_feed(seed: u64) -> Feed {
        let cfg = CityConfig::small(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let road = crate::roads::generate(&cfg, &mut rng);
        let cores = vec![Point::new(cfg.side_m / 2.0, cfg.side_m / 2.0)];
        generate(&cfg, &cores, &road, &mut rng)
    }

    #[test]
    fn generated_feed_is_valid() {
        let feed = gen_feed(3);
        let violations = validate::validate(&feed);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn feed_has_expected_structure() {
        let cfg = CityConfig::small(3);
        let feed = gen_feed(3);
        assert_eq!(feed.agencies.len(), 1);
        assert_eq!(feed.services.len(), 2);
        assert!(feed.routes.len() as u32 <= cfg.n_routes);
        assert!(feed.routes.len() >= 4, "most routes should survive geometry");
        assert!(feed.trips.len() > 50, "full-day timetable expected");
        assert!(!feed.stop_times.is_empty());
    }

    #[test]
    fn stops_are_shared_between_routes() {
        let feed = gen_feed(5);
        // Count stops served by >= 2 routes.
        let mut stop_routes: HashMap<u32, std::collections::HashSet<u32>> = HashMap::new();
        for st in &feed.stop_times {
            let route = feed.trips[st.trip.idx()].route;
            stop_routes.entry(st.stop.0).or_default().insert(route.0);
        }
        let shared = stop_routes.values().filter(|s| s.len() >= 2).count();
        assert!(shared > 0, "no interchange stops generated");
    }

    #[test]
    fn peak_headway_shorter_than_evening() {
        let feed = gen_feed(7);
        let ix = FeedIndex::build(feed);
        let am = TimeInterval::am_peak();
        let evening =
            TimeInterval::new(Stime::hours(19), Stime::hours(23), DayOfWeek::Tuesday, "evening");
        // Average departures per stop must be higher in the (2h) peak than
        // scaled evening (4h => compare rates).
        let mut peak_n = 0usize;
        let mut eve_n = 0usize;
        for s in 0..ix.n_stops() {
            peak_n += ix.departures_at(StopId(s as u32), &am).count();
            eve_n += ix.departures_at(StopId(s as u32), &evening).count();
        }
        let peak_rate = peak_n as f64 / am.duration_hours();
        let eve_rate = eve_n as f64 / evening.duration_hours();
        assert!(peak_rate > eve_rate * 1.5, "peak rate {peak_rate} vs evening {eve_rate}");
    }

    #[test]
    fn no_sunday_service() {
        let feed = gen_feed(9);
        let ix = FeedIndex::build(feed);
        let sunday = TimeInterval::new(Stime::hours(7), Stime::hours(9), DayOfWeek::Sunday, "sun");
        for s in 0..ix.n_stops() {
            assert_eq!(ix.departures_at(StopId(s as u32), &sunday).count(), 0);
        }
    }

    #[test]
    fn trips_progress_monotonically() {
        let feed = gen_feed(11);
        let ix = FeedIndex::build(feed);
        for t in 0..ix.feed().trips.len() {
            let calls = ix.trip_calls(TripId(t as u32));
            assert!(calls.len() >= 2);
            for w in calls.windows(2) {
                assert!(w[1].arrival >= w[0].departure);
            }
        }
    }
}

//! Offline-artifact persistence: compute the transit-hop trees once, save
//! them, and reload them in later sessions — the paper's "the tree is saved
//! such that it can be retrieved efficiently", measured.
//!
//! ```text
//! cargo run --release --example persisted_artifacts
//! ```

use staq_repro::prelude::*;
use std::time::Instant;

fn main() {
    let city = City::generate(&CityConfig::small(42));
    let interval = TimeInterval::am_peak();
    let params = staq_repro::road::IsochroneParams::default();

    // Build from scratch.
    let t0 = Instant::now();
    let fresh = OfflineArtifacts::build(&city, &interval, &params);
    let build_time = t0.elapsed();

    // Persist and reload.
    let path = std::env::temp_dir().join("staq_demo_trees.txt");
    fresh.save_trees(&path).expect("save");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let t0 = Instant::now();
    let loaded = OfflineArtifacts::load_trees(&city, &path).expect("load");
    let load_time = t0.elapsed();

    println!(
        "hop trees for {} zones: build {:.0?} | file {:.1} KiB | reload {:.0?}",
        city.n_zones(),
        build_time,
        bytes as f64 / 1024.0,
        load_time
    );

    // Both artifact sets drive identical pipelines.
    let cfg = PipelineConfig { beta: 0.2, model: ModelKind::Ols, ..Default::default() };
    let a = SsrPipeline::new(&city, &fresh, cfg.clone()).run(PoiCategory::School);
    let b = SsrPipeline::new(&city, &loaded, cfg).run(PoiCategory::School);
    assert_eq!(a.predicted, b.predicted);
    println!(
        "pipeline over loaded artifacts matches fresh build exactly ({} zones predicted)",
        b.predicted.len()
    );
    std::fs::remove_file(&path).ok();
}

//! End-to-end failover tests of the staq-shard subsystem: a router over
//! four in-process backends, one backend killed under live load. The
//! contract under test: only the categories owned by the dead shard
//! answer `Unavailable` (as error frames — the client connection never
//! breaks), the other shards are unaffected, the supervisor respawns the
//! victim, and a post-respawn sweep is bit-identical to a single-process
//! server over the same city.

use staq_repro::gtfs::model::{RouteId, TripId};
use staq_repro::gtfs::Delta;
use staq_repro::prelude::*;
use staq_serve::codec::ErrorCode;
use staq_serve::presets::CityPreset;
use staq_serve::{Client, ClientError, ServerConfig};
use staq_shard::{
    route, shard_for, Backend, RouterConfig, RouterHandle, ShardSupervisor, SupervisorConfig,
    ThreadBackend,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARDS: usize = 4;
const SEED: u64 = 42;

fn start_fleet() -> RouterHandle {
    let backends: Vec<Box<dyn Backend>> = (0..SHARDS)
        .map(|_| {
            Box::new(ThreadBackend::new(2, || Arc::new(CityPreset::Test.engine(0.05, SEED))))
                as Box<dyn Backend>
        })
        .collect();
    let cfg = SupervisorConfig {
        respawn_backoff: Duration::from_millis(100),
        poll_interval: Duration::from_millis(10),
        ..Default::default()
    };
    let sup = ShardSupervisor::start(backends, cfg).expect("fleet start");
    route(sup, &RouterConfig::default()).expect("router bind")
}

fn wait_until_up(router: &RouterHandle, shard: usize) {
    let deadline = Instant::now() + Duration::from_secs(120);
    while !router.supervisor().is_up(shard) {
        assert!(Instant::now() < deadline, "shard {shard} never respawned");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn killing_one_shard_mid_burst_fails_only_its_categories_until_respawn() {
    let mut router = start_fleet();
    let addr = router.addr();
    let victim = shard_for(PoiCategory::School, SHARDS);

    // Warm every category so the burst measures the steady state, not
    // four concurrent pipeline runs.
    let mut warm = Client::connect(addr).expect("connect");
    for cat in PoiCategory::ALL {
        warm.measures(cat).expect("warm sweep");
    }

    // One hammer thread per category, counting (successes before the
    // kill, Unavailable frames, successes after respawn).
    let stop = Arc::new(AtomicBool::new(false));
    let respawned = Arc::new(AtomicBool::new(false));
    let counts: Vec<(u64, u64, u64)> = crossbeam::scope(|scope| {
        let handles: Vec<_> = PoiCategory::ALL
            .iter()
            .map(|&cat| {
                let stop = Arc::clone(&stop);
                let respawned = Arc::clone(&respawned);
                scope.spawn(move |_| {
                    let mut c = Client::connect(addr).expect("connect");
                    let (mut ok, mut unavailable, mut ok_after) = (0u64, 0u64, 0u64);
                    while !stop.load(Ordering::SeqCst) {
                        match c.measures(cat) {
                            Ok(_) if respawned.load(Ordering::SeqCst) => ok_after += 1,
                            Ok(_) => ok += 1,
                            Err(ClientError::Server { code: ErrorCode::Unavailable, .. }) => {
                                unavailable += 1
                            }
                            Err(e) => panic!("{cat:?}: unexpected error {e}"),
                        }
                    }
                    (ok, unavailable, ok_after)
                })
            })
            .collect();

        // Let the burst run, kill the victim mid-flight, wait for the
        // monitor to respawn it, then let the burst observe the recovery.
        std::thread::sleep(Duration::from_millis(150));
        router.supervisor().kill_backend(victim);
        assert!(!router.supervisor().is_up(victim));
        wait_until_up(&router, victim);
        respawned.store(true, Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(150));
        stop.store(true, Ordering::SeqCst);
        handles.into_iter().map(|h| h.join().expect("hammer panicked")).collect()
    })
    .expect("burst scope");

    for (&cat, &(ok, unavailable, ok_after)) in PoiCategory::ALL.iter().zip(&counts) {
        assert!(ok > 0, "{cat:?} must have succeeded before the kill");
        assert!(ok_after > 0, "{cat:?} must succeed after the respawn");
        if shard_for(cat, SHARDS) == victim {
            assert!(
                unavailable > 0,
                "{cat:?} lives on the killed shard and must have seen Unavailable"
            );
        } else {
            assert_eq!(unavailable, 0, "{cat:?} lives on a healthy shard and must be unaffected");
        }
    }

    // Post-respawn sweep, byte-for-byte against a single-process server
    // over the same deterministic city.
    let mut sharded = Client::connect(addr).expect("connect");
    let mut single_server = staq_serve::serve(
        CityPreset::Test.engine(0.05, SEED),
        &ServerConfig { addr: "127.0.0.1:0".into(), workers: 2, ..Default::default() },
    )
    .expect("single server");
    let mut single = Client::connect(single_server.addr()).expect("connect single");
    for cat in PoiCategory::ALL {
        assert_eq!(
            sharded.measures(cat).expect("sharded measures"),
            single.measures(cat).expect("single measures"),
            "{cat:?}: sharded answers must match a single-process run"
        );
    }

    single_server.shutdown();
    router.shutdown();
}

#[test]
fn stats_scatter_gathers_and_bus_routes_broadcast() {
    let mut router = start_fleet();
    let mut c = Client::connect(router.addr()).expect("connect");

    // Workers sum across the fleet; warming all categories unions the
    // per-shard cache listings back into the full set.
    for cat in PoiCategory::ALL {
        c.measures(cat).expect("warm");
    }
    let stats = c.stats().expect("stats");
    assert_eq!(usize::from(stats.workers), 2 * SHARDS);
    assert_eq!(stats.cached, PoiCategory::ALL.to_vec(), "every category cached somewhere");
    assert_eq!(stats.pipeline_runs, 4, "one pipeline run per category across the fleet");

    // A schedule edit lands on every shard: afterwards no shard has any
    // category cached.
    c.add_bus_route(&[Point::new(1000.0, 1000.0), Point::new(4000.0, 4000.0)], 600)
        .expect("broadcast acked");
    assert!(c.stats().unwrap().cached.is_empty(), "broadcast invalidated every shard");

    // A semantic rejection (one-stop route) is relayed, not wrapped, and
    // the front connection stays usable.
    match c.add_bus_route(&[Point::new(0.0, 0.0)], 600) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::Invalid);
            assert!(message.contains("two stops"), "{message}");
        }
        other => panic!("expected relayed rejection, got {other:?}"),
    }
    c.stats().expect("connection survives the rejection");

    router.shutdown();
}

#[test]
fn delta_broadcasts_carry_fleet_sequence_numbers_and_gate_on_all_acks() {
    let mut router = start_fleet();
    let mut c = Client::connect(router.addr()).expect("connect");
    let sup = router.supervisor();

    // The router is the sequencing authority: whatever seq the client
    // claims, the fleet log assigns the next one, and OK means every
    // shard acked it.
    let d1 = Delta::TripDelay { trip: TripId(0), delay_secs: 240 };
    let d2 = Delta::TripCancel { trip: TripId(2) };
    let ack = c.apply_delta(77, &d1).expect("first fleet delta");
    assert_eq!(ack.seq, 1, "client seq is advisory; the fleet log assigns");
    let ack = c.apply_delta(0, &d2).expect("second fleet delta");
    assert_eq!(ack.seq, 2);
    assert_eq!(sup.edit_seq(), 2);
    for shard in 0..SHARDS {
        assert_eq!(sup.edit_acked(shard), 2, "shard {shard} must have acked the whole log");
    }

    // A rejected delta is unanimous across identical replicas: it is
    // un-sequenced from the log and the rejection relayed verbatim.
    match c.apply_delta(0, &Delta::RouteRemove { route: RouteId(9999) }) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::Invalid);
            assert!(message.contains("unknown route"), "{message}");
        }
        other => panic!("expected relayed rejection, got {other:?}"),
    }
    assert_eq!(sup.edit_seq(), 2, "a rejected delta must not consume a sequence number");

    // Kill one backend, then edit: the broadcast gates on all acks, so
    // the reply is Unavailable naming the partial application — but the
    // delta stays sequenced and the live shards keep it.
    let victim = 1;
    sup.kill_backend(victim);
    let d3 = Delta::RouteRemove { route: RouteId(1) };
    match c.apply_delta(0, &d3) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::Unavailable);
            assert!(message.contains("3/4 shards"), "{message}");
        }
        other => panic!("expected partial-application error, got {other:?}"),
    }
    assert_eq!(sup.edit_seq(), 3, "a partially-applied delta stays in the fleet log");
    for shard in 0..SHARDS {
        // The victim acked seqs 1-2 before dying and keeps that credit;
        // the respawn sync is what resets and replays it.
        let want = if shard == victim { 2 } else { 3 };
        assert_eq!(sup.edit_acked(shard), want, "shard {shard} ack after partial broadcast");
    }

    // The monitor respawns the victim into a fresh city and replays the
    // fleet log onto it before it serves: convergence without any client
    // action.
    wait_until_up(&router, victim);
    let deadline = Instant::now() + Duration::from_secs(120);
    while sup.edit_acked(victim) < 3 {
        assert!(Instant::now() < deadline, "respawned shard never synced the fleet log");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Every replica — the three that applied incrementally and the one
    // that replayed from scratch — now answers bit-identically to a
    // single-process server fed the same sequenced history.
    let mut single_server = staq_serve::serve(
        CityPreset::Test.engine(0.05, SEED),
        &ServerConfig { addr: "127.0.0.1:0".into(), workers: 2, ..Default::default() },
    )
    .expect("single server");
    let mut single = Client::connect(single_server.addr()).expect("connect single");
    let last = single.delta_batch(1, &[d1, d2, d3]).expect("replay history");
    assert_eq!(last, 3);
    for cat in PoiCategory::ALL {
        assert_eq!(
            c.measures(cat).expect("sharded measures"),
            single.measures(cat).expect("single measures"),
            "{cat:?}: post-failover fleet must match the replayed history"
        );
    }

    // An explicitly-sequenced batch the fleet already has is acked
    // idempotently without growing the log.
    let replay = c
        .delta_batch(1, &[Delta::TripDelay { trip: TripId(0), delay_secs: 240 }])
        .expect("idempotent batch");
    assert_eq!(replay, 3);
    assert_eq!(sup.edit_seq(), 3);

    single_server.shutdown();
    router.shutdown();
}

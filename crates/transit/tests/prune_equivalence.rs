//! Pruning exactness: the pruned router must return **leg-for-leg
//! identical** journeys to the unpruned reference — not merely the same
//! arrival times — across seeds, service days, and departure times.
//!
//! This is the contract that makes the pruning safe to ship: target
//! pruning keeps arrivals that *tie* the bound (strict `>` comparison), so
//! the winning label chain survives byte-identical.

use staq_geom::Point;
use staq_gtfs::time::{DayOfWeek, Stime};
use staq_synth::{City, CityConfig};
use staq_transit::{mmdijkstra, Raptor, TransitNetwork};

fn od_pairs(city: &City, n: usize) -> Vec<(Point, Point)> {
    (0..n)
        .map(|i| {
            let o = city.zones[(i * 7) % city.zones.len()].centroid;
            let d = city.zones[(i * 13 + 5) % city.zones.len()].centroid;
            (o, d)
        })
        .collect()
}

const SEEDS: [u64; 3] = [7, 42, 1234];
const DAYS: [DayOfWeek; 2] = [DayOfWeek::Tuesday, DayOfWeek::Sunday];

fn departures() -> [Stime; 3] {
    [Stime::hms(7, 30, 0), Stime::hms(12, 15, 0), Stime::hms(17, 45, 0)]
}

/// Seed-swept property test: every (seed, day, departure, od) cell must
/// produce identical `Journey` values from both routers.
#[test]
fn pruned_journeys_identical_to_reference() {
    for seed in SEEDS {
        let city = City::generate(&CityConfig::small(seed));
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let pruned = Raptor::new(&net);
        let reference = Raptor::reference(&net);
        for day in DAYS {
            for depart in departures() {
                for (o, d) in od_pairs(&city, 25) {
                    let jp = pruned.query(&o, &d, depart, day);
                    let jr = reference.query(&o, &d, depart, day);
                    assert_eq!(
                        jp, jr,
                        "pruned/reference divergence: seed={seed} day={day:?} \
                         depart={depart:?} o={o:?} d={d:?}"
                    );
                }
            }
        }
    }
}

/// Repeating a query on a warm router (cached isochrones, reused scratch)
/// must not change the answer.
#[test]
fn warm_router_is_idempotent() {
    let city = City::generate(&CityConfig::small(42));
    let net = TransitNetwork::with_defaults(&city.road, &city.feed);
    let router = Raptor::new(&net);
    for (o, d) in od_pairs(&city, 10) {
        let first = router.query(&o, &d, Stime::hms(8, 0, 0), DayOfWeek::Tuesday);
        for _ in 0..3 {
            let again = router.query(&o, &d, Stime::hms(8, 0, 0), DayOfWeek::Tuesday);
            assert_eq!(first, again);
        }
    }
}

/// Cross-check against the time-dependent multimodal Dijkstra baseline:
/// the exact baseline never arrives later than either router, and both
/// routers agree with each other on arrival everywhere.
#[test]
fn arrivals_cross_check_against_dijkstra() {
    for seed in [7u64, 42] {
        let city = City::generate(&CityConfig::small(seed));
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let pruned = Raptor::new(&net);
        let reference = Raptor::reference(&net);
        for day in DAYS {
            for depart in [Stime::hms(7, 30, 0), Stime::hms(17, 45, 0)] {
                for (o, d) in od_pairs(&city, 12) {
                    let ap = pruned.query(&o, &d, depart, day).arrive;
                    let ar = reference.query(&o, &d, depart, day).arrive;
                    assert_eq!(ap, ar, "arrival divergence seed={seed} day={day:?}");
                    let dij = mmdijkstra::earliest_arrival(&net, &o, &d, depart, day);
                    assert!(
                        dij.0 <= ap.0,
                        "dijkstra {dij:?} lost to raptor {ap:?} (seed={seed} day={day:?})"
                    );
                }
            }
        }
    }
}

//! Client behaviour against a half-open peer: a server that accepts the
//! connection (the TCP handshake succeeds) but never answers. Without a
//! configured timeout a caller would block forever; with one, the plain
//! client must fail in bounded time and poison the connection, while
//! the mux client must fail the one call and stay usable.

use staq_repro::prelude::*;
use staq_serve::{Client, ClientConfig, ClientError, MuxClient, Request};
use std::io::Read;
use std::net::TcpListener;
use std::time::{Duration, Instant};

/// Accepts connections and reads (so requests are drained off the
/// socket) but never writes a byte back — a stalled or wedged server.
fn half_open_peer() -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut s) = stream else { return };
            std::thread::spawn(move || {
                let mut sink = [0u8; 4096];
                while s.read(&mut sink).map(|n| n > 0).unwrap_or(false) {}
            });
        }
    });
    addr
}

#[test]
fn a_half_open_peer_cannot_wedge_a_timeout_configured_client() {
    let addr = half_open_peer();
    let cfg = ClientConfig {
        read_timeout: Some(Duration::from_millis(150)),
        write_timeout: Some(Duration::from_millis(150)),
    };
    let mut c = Client::connect_with(addr, &cfg).expect("connect");

    let t0 = Instant::now();
    let outcome = c.query(&AccessQuery::MeanAccess, PoiCategory::School);
    assert!(matches!(outcome, Err(ClientError::TimedOut)), "{outcome:?}");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "the timeout must bound the stall: {:?}",
        t0.elapsed()
    );

    // The request reached the wire; a late response could still arrive
    // and would pair with the *next* request. The connection is
    // poisoned, and every further call fails fast without touching it.
    assert!(c.is_poisoned());
    let t1 = Instant::now();
    assert!(matches!(c.stats(), Err(ClientError::Poisoned)));
    assert!(t1.elapsed() < Duration::from_millis(50), "fail fast, not after another timeout");
}

#[test]
fn a_half_open_peer_times_out_mux_calls_without_poisoning_them() {
    let addr = half_open_peer();
    let mux = MuxClient::connect(addr).expect("connect");

    // Responses are matched by request ID, so a timed-out call leaves
    // the stream coherent: the client survives and later calls are
    // allowed to try again (and, here, time out again).
    for _ in 0..2 {
        let t0 = Instant::now();
        let outcome = mux.call_timeout(&Request::Stats, Duration::from_millis(150));
        assert!(matches!(outcome, Err(ClientError::TimedOut)), "{outcome:?}");
        assert!(t0.elapsed() < Duration::from_secs(5));
        assert!(!mux.is_poisoned(), "a timeout is not a transport failure");
    }
}

//! Access cost models: JT and GAC (paper §III-C).
//!
//! JT: `c(o, d, t) = AT(d) − t`, in minutes.
//!
//! GAC (Eq. 1): `λ₁·TAN + λ₂·WT + λ₃·IVT + λ₄·ET + TP + FARE/VOT`, in
//! *generalized minutes*. Weights follow the UK Department for Transport's
//! TAG Unit M3.2 public-transport assignment conventions the paper cites:
//! walking and waiting are perceived as roughly twice as onerous as
//! in-vehicle time, and every interchange carries a fixed time penalty.

use crate::fare::FareModel;
use crate::journey::Journey;
use serde::{Deserialize, Serialize};

/// Which access cost a pipeline computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostKind {
    /// Journey time in minutes.
    Jt,
    /// Generalized access cost in generalized minutes.
    Gac,
}

impl std::fmt::Display for CostKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CostKind::Jt => "JT",
            CostKind::Gac => "GAC",
        })
    }
}

/// GAC weighting factors (all non-negative, per Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GacWeights {
    /// λ₁: access (time to reach the network, TAN).
    pub lambda_access: f64,
    /// λ₂: waiting time (WT).
    pub lambda_wait: f64,
    /// λ₃: in-vehicle time (IVT).
    pub lambda_ivt: f64,
    /// λ₄: egress time (ET).
    pub lambda_egress: f64,
    /// Transfer penalty TP, minutes per interchange.
    pub transfer_penalty_min: f64,
    /// Value of time VOT, £ per minute (TAG non-work ≈ £9.95/h).
    pub vot_per_min: f64,
    /// Fare model supplying FARE.
    pub fares: FareModel,
}

impl Default for GacWeights {
    /// TAG M3.2-style defaults: walk ×2.0, wait ×2.5, IVT ×1.0, egress ×2.0,
    /// 10 generalized minutes per interchange, VOT £9.95/h.
    fn default() -> Self {
        GacWeights {
            lambda_access: 2.0,
            lambda_wait: 2.5,
            lambda_ivt: 1.0,
            lambda_egress: 2.0,
            transfer_penalty_min: 10.0,
            vot_per_min: 9.95 / 60.0,
            fares: FareModel::default(),
        }
    }
}

impl GacWeights {
    /// Validates non-negativity; a negative weight silently inverts the
    /// meaning of a cost component.
    pub fn validate(&self) -> Result<(), String> {
        let vals = [
            self.lambda_access,
            self.lambda_wait,
            self.lambda_ivt,
            self.lambda_egress,
            self.transfer_penalty_min,
        ];
        if vals.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err("GAC weights must be finite and non-negative".into());
        }
        if self.vot_per_min.is_nan() || self.vot_per_min <= 0.0 {
            return Err("value of time must be positive".into());
        }
        Ok(())
    }
}

/// Computes one access cost for a journey, in (generalized) minutes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessCost {
    pub kind: CostKind,
    pub weights: GacWeights,
}

impl AccessCost {
    /// Journey-time cost model.
    pub fn jt() -> Self {
        AccessCost { kind: CostKind::Jt, weights: GacWeights::default() }
    }

    /// Generalized-access-cost model with default TAG weights.
    pub fn gac() -> Self {
        AccessCost { kind: CostKind::Gac, weights: GacWeights::default() }
    }

    /// Cost of `journey`, minutes (JT) or generalized minutes (GAC).
    pub fn cost(&self, journey: &Journey) -> f64 {
        match self.kind {
            CostKind::Jt => journey.jt_secs() as f64 / 60.0,
            CostKind::Gac => self.gac_cost(journey),
        }
    }

    fn gac_cost(&self, j: &Journey) -> f64 {
        let w = &self.weights;
        if j.is_walk_only() {
            // A walk-only trip has no wait/ride/fare; the walk *is* the
            // journey and is weighted as access time.
            return w.lambda_access * (j.jt_secs() as f64 / 60.0);
        }
        let tan = j.access_walk_secs() as f64 / 60.0;
        let wt = j.wait_secs() as f64 / 60.0;
        let ivt = j.in_vehicle_secs() as f64 / 60.0;
        let et = j.egress_walk_secs() as f64 / 60.0;
        // Interchange walking is perceived like access walking.
        let twalk = j.transfer_walk_secs() as f64 / 60.0;
        let tp = w.transfer_penalty_min * j.n_transfers() as f64;
        let fare = w.fares.fare(j.n_rides());
        w.lambda_access * (tan + twalk)
            + w.lambda_wait * wt
            + w.lambda_ivt * ivt
            + w.lambda_egress * et
            + tp
            + fare / w.vot_per_min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journey::Leg;
    use staq_gtfs::model::{RouteId, StopId, TripId};
    use staq_gtfs::time::Stime;

    fn simple_ride(depart: Stime, walk1: u32, wait: u32, ride: u32, walk2: u32) -> Journey {
        let mut t = depart;
        let mut legs = Vec::new();
        legs.push(Leg::Walk { secs: walk1, to_stop: Some(StopId(0)) });
        t = t.plus(walk1);
        legs.push(Leg::Wait { secs: wait, at_stop: StopId(0) });
        t = t.plus(wait);
        legs.push(Leg::Ride {
            trip: TripId(0),
            route: RouteId(0),
            from_stop: StopId(0),
            to_stop: StopId(1),
            board: t,
            alight: t.plus(ride),
        });
        t = t.plus(ride);
        legs.push(Leg::Walk { secs: walk2, to_stop: None });
        t = t.plus(walk2);
        Journey { depart, arrive: t, legs }
    }

    #[test]
    fn jt_cost_is_minutes() {
        let j = simple_ride(Stime::hms(8, 0, 0), 120, 180, 600, 60);
        assert!((AccessCost::jt().cost(&j) - 16.0).abs() < 1e-12);
    }

    #[test]
    fn gac_matches_hand_computation() {
        let j = simple_ride(Stime::hms(8, 0, 0), 120, 180, 600, 60);
        let w = GacWeights::default();
        let expected = 2.0 * 2.0       // access 2min * λ1
            + 2.5 * 3.0                // wait 3min * λ2
            + 1.0 * 10.0               // ivt
            + 2.0 * 1.0                // egress
            + 0.0                      // no transfers
            + 1.70 / w.vot_per_min; // one fare
        assert!((AccessCost::gac().cost(&j) - expected).abs() < 1e-9);
    }

    #[test]
    fn gac_walk_only_weighted_as_access() {
        let j = Journey::walk_only(Stime::hms(8, 0, 0), 600);
        let got = AccessCost::gac().cost(&j);
        assert!((got - 2.0 * 10.0).abs() < 1e-12);
    }

    #[test]
    fn gac_exceeds_jt_for_transit_trips() {
        // Generalized minutes weight everything >= 1x, plus fare: GAC > JT.
        let j = simple_ride(Stime::hms(8, 0, 0), 300, 300, 1200, 300);
        assert!(AccessCost::gac().cost(&j) > AccessCost::jt().cost(&j));
    }

    #[test]
    fn transfer_penalty_applies_per_interchange() {
        let mut j = simple_ride(Stime::hms(8, 0, 0), 60, 60, 300, 60);
        // Splice in a second ride.
        let t = j.arrive;
        j.legs.push(Leg::Ride {
            trip: TripId(1),
            route: RouteId(1),
            from_stop: StopId(1),
            to_stop: StopId(2),
            board: t,
            alight: t.plus(300),
        });
        j.arrive = t.plus(300);
        let one_ride = simple_ride(Stime::hms(8, 0, 0), 60, 60, 300, 60);
        let delta = AccessCost::gac().cost(&j) - AccessCost::gac().cost(&one_ride);
        let w = GacWeights::default();
        // Extra = 5min IVT + TP + extra fare.
        let expected = 5.0 + w.transfer_penalty_min + 1.70 / w.vot_per_min;
        assert!((delta - expected).abs() < 1e-9, "delta {delta} expected {expected}");
    }

    #[test]
    fn weights_validation() {
        let mut w = GacWeights::default();
        assert!(w.validate().is_ok());
        w.lambda_wait = -1.0;
        assert!(w.validate().is_err());
        let w2 = GacWeights { vot_per_min: 0.0, ..Default::default() };
        assert!(w2.validate().is_err());
    }
}

//! Feature standardization: zero mean, unit variance per column.

use crate::linalg::Matrix;
use serde::{Deserialize, Serialize};

/// A fitted per-column standardizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    mean: Vec<f64>,
    /// Standard deviation, floored at a small epsilon so constant columns
    /// scale to zero rather than NaN.
    std: Vec<f64>,
}

impl StandardScaler {
    /// Fits on `x`'s columns.
    pub fn fit(x: &Matrix) -> Self {
        let (n, d) = (x.rows(), x.cols());
        let mut mean = vec![0.0; d];
        for i in 0..n {
            for (j, &v) in x.row(i).iter().enumerate() {
                mean[j] += v;
            }
        }
        for m in &mut mean {
            *m /= n.max(1) as f64;
        }
        let mut var = vec![0.0; d];
        for i in 0..n {
            for (j, &v) in x.row(i).iter().enumerate() {
                let dv = v - mean[j];
                var[j] += dv * dv;
            }
        }
        let std = var.iter().map(|&v| (v / n.max(1) as f64).sqrt().max(1e-9)).collect();
        StandardScaler { mean, std }
    }

    /// Standardizes a matrix with this scaler's statistics.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.mean.len(), "scaler dimension mismatch");
        let mut out = x.clone();
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                *v = (*v - self.mean[j]) / self.std[j];
            }
        }
        out
    }

    /// Undoes [`StandardScaler::transform`].
    pub fn inverse_transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.mean.len(), "scaler dimension mismatch");
        let mut out = x.clone();
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                *v = *v * self.std[j] + self.mean[j];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_var() {
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 20.0], vec![5.0, 60.0]]);
        let s = StandardScaler::fit(&x);
        let z = s.transform(&x);
        for j in 0..2 {
            let col = z.col_vec(j);
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            let var: f64 = col.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn inverse_roundtrips() {
        let x = Matrix::from_rows(&[vec![1.0, -5.0], vec![2.5, 7.0], vec![9.0, 0.0]]);
        let s = StandardScaler::fit(&x);
        let back = s.inverse_transform(&s.transform(&x));
        for (a, b) in x.data().iter().zip(back.data()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_column_does_not_nan() {
        let x = Matrix::from_rows(&[vec![4.0], vec![4.0], vec![4.0]]);
        let s = StandardScaler::fit(&x);
        let z = s.transform(&x);
        assert!(z.data().iter().all(|v| v.is_finite()));
        assert!(z.data().iter().all(|v| v.abs() < 1e-6));
    }

    #[test]
    fn transform_uses_fit_statistics_not_input() {
        let train = Matrix::from_rows(&[vec![0.0], vec![10.0]]);
        let s = StandardScaler::fit(&train);
        let other = Matrix::from_rows(&[vec![5.0]]);
        let z = s.transform(&other);
        assert!(z[(0, 0)].abs() < 1e-12, "5 is the train mean");
    }
}

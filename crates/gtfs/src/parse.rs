//! Parsing GTFS text tables into a [`Feed`].
//!
//! Input is the set of GTFS files as strings (`agency.txt`, `stops.txt`,
//! `routes.txt`, `calendar.txt`, `trips.txt`, `stop_times.txt`). String ids
//! are interned to dense `u32` ids in first-seen order; cross-references are
//! resolved eagerly so later stages never handle missing ids.
//!
//! Stop coordinates: this crate stores planar meters. Real feeds carry
//! `stop_lat`/`stop_lon`; [`FeedText::parse`] projects them with
//! [`staq_geom::point::project_local`] around the feed centroid. Synthetic
//! feeds (written by [`crate::write`]) store planar meters in the same
//! columns with `planar=1` in `agency.txt`'s companion flag — detected via
//! coordinate magnitude (|lat| > 90 ⇒ planar).

use crate::csv;
use crate::model::*;
use crate::time::Stime;
use std::collections::HashMap;

/// The six GTFS tables as raw text.
#[derive(Debug, Clone, Default)]
pub struct FeedText {
    pub agency: String,
    pub stops: String,
    pub routes: String,
    pub calendar: String,
    pub trips: String,
    pub stop_times: String,
}

impl FeedText {
    /// Reads the six files from a directory on disk.
    pub fn from_dir(dir: &std::path::Path) -> Result<Self, String> {
        let read = |name: &str| {
            std::fs::read_to_string(dir.join(name)).map_err(|e| format!("reading {name}: {e}"))
        };
        Ok(FeedText {
            agency: read("agency.txt")?,
            stops: read("stops.txt")?,
            routes: read("routes.txt")?,
            calendar: read("calendar.txt")?,
            trips: read("trips.txt")?,
            stop_times: read("stop_times.txt")?,
        })
    }

    /// Parses all tables into a [`Feed`]. See module docs for coordinate
    /// handling.
    pub fn parse(&self) -> Result<Feed, String> {
        let mut feed = Feed::default();

        // agency.txt
        let t = csv::parse(&self.agency).map_err(|e| format!("agency.txt: {e}"))?;
        let (c_id, c_name) = (t.col("agency_id")?, t.col("agency_name")?);
        let mut agency_ids: HashMap<String, AgencyId> = HashMap::new();
        for row in &t.rows {
            let id = AgencyId(feed.agencies.len() as u32);
            if agency_ids.insert(row[c_id].clone(), id).is_some() {
                return Err(format!("duplicate agency_id {:?}", row[c_id]));
            }
            feed.agencies.push(Agency {
                id,
                gtfs_id: row[c_id].clone(),
                name: row[c_name].clone(),
            });
        }

        // stops.txt
        let t = csv::parse(&self.stops).map_err(|e| format!("stops.txt: {e}"))?;
        let (c_id, c_name) = (t.col("stop_id")?, t.col("stop_name")?);
        let (c_lat, c_lon) = (t.col("stop_lat")?, t.col("stop_lon")?);
        let mut stop_ids: HashMap<String, StopId> = HashMap::new();
        let mut raw: Vec<(f64, f64)> = Vec::with_capacity(t.rows.len());
        for row in &t.rows {
            let lat: f64 =
                row[c_lat].parse().map_err(|_| format!("bad stop_lat {:?}", row[c_lat]))?;
            let lon: f64 =
                row[c_lon].parse().map_err(|_| format!("bad stop_lon {:?}", row[c_lon]))?;
            raw.push((lat, lon));
        }
        // Geographic feeds have |lat| <= 90 everywhere; planar (synthetic)
        // feeds store meters, which exceed that immediately.
        let geographic = raw.iter().all(|&(lat, lon)| lat.abs() <= 90.0 && lon.abs() <= 180.0)
            && !raw.is_empty();
        let (lat0, lon0) = if geographic {
            let n = raw.len() as f64;
            (raw.iter().map(|r| r.0).sum::<f64>() / n, raw.iter().map(|r| r.1).sum::<f64>() / n)
        } else {
            (0.0, 0.0)
        };
        for (row, &(lat, lon)) in t.rows.iter().zip(&raw) {
            let id = StopId(feed.stops.len() as u32);
            if stop_ids.insert(row[c_id].clone(), id).is_some() {
                return Err(format!("duplicate stop_id {:?}", row[c_id]));
            }
            let pos = if geographic {
                staq_geom::point::project_local(lat, lon, lat0, lon0)
            } else {
                // Planar: stop_lat is y (northing), stop_lon is x (easting).
                staq_geom::Point::new(lon, lat)
            };
            feed.stops.push(Stop {
                id,
                gtfs_id: row[c_id].clone(),
                name: row[c_name].clone(),
                pos,
            });
        }

        // routes.txt
        let t = csv::parse(&self.routes).map_err(|e| format!("routes.txt: {e}"))?;
        let c_id = t.col("route_id")?;
        let c_agency = t.col("agency_id")?;
        let c_short = t.col("route_short_name")?;
        let c_type = t.col("route_type")?;
        let mut route_ids: HashMap<String, RouteId> = HashMap::new();
        for row in &t.rows {
            let id = RouteId(feed.routes.len() as u32);
            if route_ids.insert(row[c_id].clone(), id).is_some() {
                return Err(format!("duplicate route_id {:?}", row[c_id]));
            }
            let agency = *agency_ids.get(&row[c_agency]).ok_or_else(|| {
                format!("route {:?} references unknown agency {:?}", row[c_id], row[c_agency])
            })?;
            let code: u32 =
                row[c_type].parse().map_err(|_| format!("bad route_type {:?}", row[c_type]))?;
            feed.routes.push(Route {
                id,
                gtfs_id: row[c_id].clone(),
                agency,
                short_name: row[c_short].clone(),
                route_type: RouteType::from_code(code)?,
            });
        }

        // calendar.txt
        let t = csv::parse(&self.calendar).map_err(|e| format!("calendar.txt: {e}"))?;
        let c_id = t.col("service_id")?;
        let day_cols = [
            t.col("monday")?,
            t.col("tuesday")?,
            t.col("wednesday")?,
            t.col("thursday")?,
            t.col("friday")?,
            t.col("saturday")?,
            t.col("sunday")?,
        ];
        let mut service_ids: HashMap<String, ServiceId> = HashMap::new();
        for row in &t.rows {
            let id = ServiceId(feed.services.len() as u32);
            if service_ids.insert(row[c_id].clone(), id).is_some() {
                return Err(format!("duplicate service_id {:?}", row[c_id]));
            }
            let mut days = [false; 7];
            for (d, &col) in day_cols.iter().enumerate() {
                days[d] = match row[col].as_str() {
                    "1" => true,
                    "0" => false,
                    other => return Err(format!("bad calendar flag {other:?}")),
                };
            }
            feed.services.push(Service { id, gtfs_id: row[c_id].clone(), days });
        }

        // trips.txt
        let t = csv::parse(&self.trips).map_err(|e| format!("trips.txt: {e}"))?;
        let (c_route, c_svc, c_id) = (t.col("route_id")?, t.col("service_id")?, t.col("trip_id")?);
        let mut trip_ids: HashMap<String, TripId> = HashMap::new();
        for row in &t.rows {
            let id = TripId(feed.trips.len() as u32);
            if trip_ids.insert(row[c_id].clone(), id).is_some() {
                return Err(format!("duplicate trip_id {:?}", row[c_id]));
            }
            let route = *route_ids.get(&row[c_route]).ok_or_else(|| {
                format!("trip {:?} references unknown route {:?}", row[c_id], row[c_route])
            })?;
            let service = *service_ids.get(&row[c_svc]).ok_or_else(|| {
                format!("trip {:?} references unknown service {:?}", row[c_id], row[c_svc])
            })?;
            feed.trips.push(Trip { id, gtfs_id: row[c_id].clone(), route, service });
        }

        // stop_times.txt
        let t = csv::parse(&self.stop_times).map_err(|e| format!("stop_times.txt: {e}"))?;
        let c_trip = t.col("trip_id")?;
        let c_arr = t.col("arrival_time")?;
        let c_dep = t.col("departure_time")?;
        let c_stop = t.col("stop_id")?;
        let c_seq = t.col("stop_sequence")?;
        feed.stop_times.reserve(t.rows.len());
        for row in &t.rows {
            let trip = *trip_ids
                .get(&row[c_trip])
                .ok_or_else(|| format!("stop_time references unknown trip {:?}", row[c_trip]))?;
            let stop = *stop_ids
                .get(&row[c_stop])
                .ok_or_else(|| format!("stop_time references unknown stop {:?}", row[c_stop]))?;
            let arrival = Stime::parse(&row[c_arr])?;
            let departure = Stime::parse(&row[c_dep])?;
            let seq: u32 =
                row[c_seq].parse().map_err(|_| format!("bad stop_sequence {:?}", row[c_seq]))?;
            feed.stop_times.push(StopTime { trip, stop, arrival, departure, seq });
        }
        feed.normalize();
        Ok(feed)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A minimal planar two-stop, one-trip feed used across the crate's
    /// tests.
    pub(crate) fn tiny_feed_text() -> FeedText {
        FeedText {
            agency: "agency_id,agency_name\nA1,Test Buses\n".into(),
            stops: "stop_id,stop_name,stop_lat,stop_lon\n\
                    S1,First,1000,2000\nS2,Second,1500,2600\n"
                .into(),
            routes: "route_id,agency_id,route_short_name,route_type\nR1,A1,11A,3\n".into(),
            calendar: "service_id,monday,tuesday,wednesday,thursday,friday,saturday,sunday\n\
                       WK,1,1,1,1,1,0,0\n"
                .into(),
            trips: "route_id,service_id,trip_id\nR1,WK,T1\n".into(),
            stop_times: "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n\
                         T1,07:00:00,07:00:30,S1,0\nT1,07:06:00,07:06:00,S2,1\n"
                .into(),
        }
    }

    #[test]
    fn parses_tiny_feed() {
        let feed = tiny_feed_text().parse().unwrap();
        assert_eq!(feed.agencies.len(), 1);
        assert_eq!(feed.stops.len(), 2);
        assert_eq!(feed.routes.len(), 1);
        assert_eq!(feed.trips.len(), 1);
        assert_eq!(feed.stop_times.len(), 2);
        assert_eq!(feed.stops[0].pos, staq_geom::Point::new(2000.0, 1000.0));
        assert_eq!(feed.stop_times[0].departure, Stime::hms(7, 0, 30));
        assert!(feed.is_normalized());
    }

    #[test]
    fn geographic_coordinates_are_projected() {
        let mut text = tiny_feed_text();
        text.stops = "stop_id,stop_name,stop_lat,stop_lon\n\
                      S1,First,52.48,-1.89\nS2,Second,52.49,-1.88\n"
            .into();
        let feed = text.parse().unwrap();
        // ~1.3km apart after projection.
        let d = feed.stops[0].pos.dist(&feed.stops[1].pos);
        assert!((1000.0..2000.0).contains(&d), "projected distance {d}");
    }

    #[test]
    fn rejects_dangling_references() {
        let mut text = tiny_feed_text();
        text.trips = "route_id,service_id,trip_id\nNOPE,WK,T1\n".into();
        let err = text.parse().unwrap_err();
        assert!(err.contains("unknown route"), "{err}");

        let mut text = tiny_feed_text();
        text.stop_times = "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n\
                           T9,07:00:00,07:00:00,S1,0\n"
            .into();
        assert!(text.parse().unwrap_err().contains("unknown trip"));
    }

    #[test]
    fn rejects_duplicate_ids() {
        let mut text = tiny_feed_text();
        text.stops.push_str("S1,Again,0,0\n");
        assert!(text.parse().unwrap_err().contains("duplicate stop_id"));
    }

    #[test]
    fn rejects_bad_times_and_flags() {
        let mut text = tiny_feed_text();
        text.stop_times = "trip_id,arrival_time,departure_time,stop_id,stop_sequence\n\
                           T1,late,07:00:00,S1,0\n"
            .into();
        assert!(text.parse().is_err());

        let mut text = tiny_feed_text();
        text.calendar = "service_id,monday,tuesday,wednesday,thursday,friday,saturday,sunday\n\
                         WK,1,1,1,1,1,0,maybe\n"
            .into();
        assert!(text.parse().unwrap_err().contains("calendar flag"));
    }

    #[test]
    fn rejects_missing_columns() {
        let mut text = tiny_feed_text();
        text.routes = "route_id,route_short_name,route_type\nR1,11A,3\n".into();
        assert!(text.parse().unwrap_err().contains("agency_id"));
    }
}

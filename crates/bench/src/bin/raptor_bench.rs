//! RAPTOR scan-path bench: prices the flattened trip-boarding hot path.
//!
//! ```text
//! raptor-bench [--seed N] [--iters N] [--ods N] [--quick]
//!              [--emit-json path] [--baseline path]
//! ```
//!
//! Three measurements, one report (`BENCH_raptor.json`):
//!
//! 1. **Single-criterion scan.** Replays a warm OD set through
//!    [`Raptor::new`], reporting the median wall per query and
//!    `raptor.patterns_scanned` per query — the flattened position-major
//!    departure layout must hold this flat while making each round's trip
//!    probe a contiguous-column cursor walk instead of a binary search.
//! 2. **Pareto frontier.** The same OD set through `query_pareto`,
//!    reporting median wall per query, mean frontier size, and the
//!    `raptor.bag_inserts` / `raptor.labels_dominated` counters per query.
//! 3. **Transfer-capped queries.** `query_max_transfers(1)` over the set:
//!    the "fastest with ≤1 transfer" wall the serve path pays.
//!
//! `--baseline` compares fresh medians against a committed report and
//! *warns* on regression — it never fails the run (CI stays green; the
//! numbers are for humans and trend tooling).

use staq_geom::Point;
use staq_gtfs::time::{DayOfWeek, Stime};
use staq_obs::snapshot;
use staq_synth::{City, CityConfig};
use staq_transit::{Raptor, TransitNetwork};
use std::time::Instant;

struct Args {
    seed: u64,
    iters: usize,
    ods: usize,
    quick: bool,
    emit_json: Option<String>,
    baseline: Option<String>,
}

fn parse_args() -> Args {
    let mut args =
        Args { seed: 42, iters: 5, ods: 80, quick: false, emit_json: None, baseline: None };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => args.seed = parse(&mut it, "--seed"),
            "--iters" => args.iters = parse(&mut it, "--iters"),
            "--ods" => args.ods = parse(&mut it, "--ods"),
            "--quick" => args.quick = true,
            "--emit-json" => args.emit_json = Some(need(&mut it, "--emit-json")),
            "--baseline" => args.baseline = Some(need(&mut it, "--baseline")),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if args.iters == 0 {
        usage("--iters must be at least 1");
    }
    if args.ods == 0 {
        usage("--ods must be at least 1");
    }
    args
}

fn need(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")))
}

fn parse<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
    need(it, flag).parse().unwrap_or_else(|_| usage(&format!("{flag} needs a valid value")))
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: raptor-bench [--seed N] [--iters N] [--ods N] [--quick] \
         [--emit-json path] [--baseline path]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

fn counter(name: &str) -> u64 {
    snapshot().counter(name).unwrap_or(0)
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Runs `iters` passes of `work` over the OD set; returns the median
/// per-query wall in microseconds.
fn run_passes(ods: &[(Point, Point)], iters: usize, mut work: impl FnMut(&Point, &Point)) -> f64 {
    let mut walls = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        for (o, d) in ods {
            work(o, d);
        }
        walls.push(t.elapsed().as_secs_f64() * 1e6 / ods.len() as f64);
    }
    median(&mut walls)
}

fn main() {
    let args = parse_args();
    let iters = if args.quick { 2.min(args.iters) } else { args.iters };
    let n_ods = if args.quick { args.ods.min(25) } else { args.ods };
    let city = City::generate(&CityConfig::small(args.seed));
    let net = TransitNetwork::with_defaults(&city.road, &city.feed);
    let router = Raptor::new(&net);
    let ods: Vec<(Point, Point)> = (0..n_ods)
        .map(|i| {
            let o = city.zones[(i * 7) % city.n_zones()].centroid;
            let d = city.zones[(i * 13 + 5) % city.n_zones()].centroid;
            (o, d)
        })
        .collect();
    let depart = Stime::hms(7, 30, 0);
    let day = DayOfWeek::Tuesday;
    println!(
        "city: {} zones, {} patterns; {} ODs, {} iters (seed {})",
        city.n_zones(),
        net.patterns().len(),
        n_ods,
        iters,
        args.seed
    );

    // Warm-up pass: pays the access/egress cache misses once so the
    // measured passes reflect the steady serving state.
    for (o, d) in &ods {
        router.query(o, d, depart, day);
        router.query_pareto(o, d, depart, day);
    }

    let scans_before = counter("raptor.patterns_scanned");
    let query_us = run_passes(&ods, iters, |o, d| {
        router.query(o, d, depart, day);
    });
    let patterns_per_query =
        (counter("raptor.patterns_scanned") - scans_before) as f64 / (iters * ods.len()) as f64;
    println!(
        "single-criterion: median {query_us:.1} us/query, {patterns_per_query:.1} patterns/query"
    );

    let inserts_before = counter("raptor.bag_inserts");
    let dominated_before = counter("raptor.labels_dominated");
    let mut frontier_points = 0usize;
    let pareto_us = run_passes(&ods, iters, |o, d| {
        frontier_points += router.query_pareto(o, d, depart, day).len();
    });
    let n_queries = (iters * ods.len()) as f64;
    let mean_frontier = frontier_points as f64 / n_queries;
    let inserts_per_query = (counter("raptor.bag_inserts") - inserts_before) as f64 / n_queries;
    let dominated_per_query =
        (counter("raptor.labels_dominated") - dominated_before) as f64 / n_queries;
    println!(
        "pareto: median {pareto_us:.1} us/query, frontier {mean_frontier:.2}, \
         {inserts_per_query:.2} bag inserts + {dominated_per_query:.2} dominated/query"
    );

    let capped_us = run_passes(&ods, iters, |o, d| {
        router.query_max_transfers(o, d, depart, day, 1);
    });
    println!("max 1 transfer: median {capped_us:.1} us/query");

    if let Some(path) = &args.baseline {
        compare_baseline(path, query_us, pareto_us);
    }

    if let Some(path) = &args.emit_json {
        let json = format!(
            "{{\"bench\":\"raptor-bench\",\"seed\":{},\"iters\":{},\"ods\":{},\
             \"patterns\":{},\
             \"query\":{{\"median_wall_us\":{:.3},\"patterns_per_query\":{:.2}}},\
             \"pareto\":{{\"median_wall_us\":{:.3},\"mean_frontier\":{:.3},\
             \"bag_inserts_per_query\":{:.3},\"labels_dominated_per_query\":{:.3}}},\
             \"max_transfers_1\":{{\"median_wall_us\":{:.3}}},\
             \"metrics\":{}}}",
            args.seed,
            iters,
            n_ods,
            net.patterns().len(),
            query_us,
            patterns_per_query,
            pareto_us,
            mean_frontier,
            inserts_per_query,
            dominated_per_query,
            capped_us,
            snapshot().to_json(),
        );
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }
}

/// Warn-only regression gate against the committed baseline report.
/// Timing on shared CI boxes is noisy, so this prints and never exits
/// non-zero — the committed JSON is the trend record.
fn compare_baseline(path: &str, query_us: f64, pareto_us: f64) {
    let Ok(text) = std::fs::read_to_string(path) else {
        println!("baseline: cannot read {path}, skipping comparison");
        return;
    };
    for (section, fresh) in [("query", query_us), ("pareto", pareto_us)] {
        match json_f64(&text, section, "median_wall_us") {
            Some(old) if fresh > old * 1.25 => println!(
                "WARNING: {section} median regressed: {old:.1} us -> {fresh:.1} us (baseline {path})"
            ),
            Some(old) => {
                println!("baseline {section}: {old:.1} us -> {fresh:.1} us (within 25% tolerance)")
            }
            None => println!("baseline: no {section}.median_wall_us in {path}"),
        }
    }
    match json_f64(&text, "query", "patterns_per_query") {
        Some(old) => println!("baseline query.patterns_per_query: {old:.2} (scan-count invariant)"),
        None => println!("baseline: no query.patterns_per_query in {path}"),
    }
}

/// Extracts `"key":<number>` from inside the `"section":{...}` object of a
/// flat hand-rolled report. Good enough for our own JSON; not a parser.
fn json_f64(text: &str, section: &str, key: &str) -> Option<f64> {
    let sec = text.find(&format!("\"{section}\":"))?;
    let tail = &text[sec..];
    let k = tail.find(&format!("\"{key}\":"))?;
    let val = &tail[k + key.len() + 3..];
    let end = val.find([',', '}'])?;
    val[..end].trim().parse().ok()
}

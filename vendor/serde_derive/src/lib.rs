//! No-op `Serialize`/`Deserialize` derives.
//!
//! The vendored `serde` stand-in blanket-implements both traits, so the
//! derives have nothing to emit — they exist purely so that
//! `#[derive(Serialize, Deserialize)]` in the workspace keeps compiling
//! without registry access.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Origin-level feature aggregation (paper §IV-C).
//!
//! "The feature vector is generated on the OD level. For training, it is
//! aggregated to the origin-level using a mean function weighted by α_ij,
//! which applies the same weighting factor as the gravity-based access
//! measures."

use crate::features::{FeatureExtractor, FEATURE_DIM};
use staq_synth::{City, ZoneId};
use staq_todam::Todam;

/// α-weighted mean of a zone's OD feature vectors over its (nonzero-α)
/// POIs. `None` when the zone has no attracted POIs.
pub fn origin_features(
    fx: &FeatureExtractor<'_>,
    city: &City,
    m: &Todam,
    zone: ZoneId,
) -> Option<[f64; FEATURE_DIM]> {
    let alpha = m.zone_alpha(zone);
    if alpha.is_empty() {
        return None;
    }
    let mut acc = [0.0; FEATURE_DIM];
    let mut wsum = 0.0;
    for &(poi_idx, a) in alpha {
        let poi = &city.pois[m.pois[poi_idx as usize].idx()];
        let f = fx.features(zone, &poi.pos, poi.zone);
        for (dst, v) in acc.iter_mut().zip(f) {
            *dst += a * v;
        }
        wsum += a;
    }
    for v in &mut acc {
        *v /= wsum;
    }
    Some(acc)
}

/// Origin features for every zone (rows align with zone ids; zones with no
/// attracted POIs get `None`).
pub fn all_origin_features(
    fx: &FeatureExtractor<'_>,
    city: &City,
    m: &Todam,
) -> Vec<Option<[f64; FEATURE_DIM]>> {
    (0..city.n_zones() as u32).map(|z| origin_features(fx, city, m, ZoneId(z))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::HopTreeStore;
    use staq_gtfs::time::TimeInterval;
    use staq_road::IsochroneParams;
    use staq_synth::{CityConfig, PoiCategory};
    use staq_todam::TodamSpec;

    fn setup() -> (City, HopTreeStore, Todam) {
        let city = City::generate(&CityConfig::small(42));
        let store =
            HopTreeStore::build(&city, &TimeInterval::am_peak(), &IsochroneParams::default());
        let m = TodamSpec::default().build(&city, PoiCategory::School);
        (city, store, m)
    }

    #[test]
    fn aggregated_features_are_finite() {
        let (city, store, m) = setup();
        let fx = FeatureExtractor::new(&city, &store);
        let all = all_origin_features(&fx, &city, &m);
        assert_eq!(all.len(), city.n_zones());
        let some: Vec<_> = all.iter().flatten().collect();
        assert!(!some.is_empty());
        for f in some {
            assert!(f.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn weighted_mean_lies_within_od_range() {
        let (city, store, m) = setup();
        let fx = FeatureExtractor::new(&city, &store);
        let z = ZoneId(0);
        let Some(agg) = origin_features(&fx, &city, &m, z) else {
            panic!("zone 0 should attract POIs");
        };
        // Bounds: the α-weighted mean of each column must lie within the
        // min/max over the contributing OD vectors.
        let mut lo = [f64::INFINITY; FEATURE_DIM];
        let mut hi = [f64::NEG_INFINITY; FEATURE_DIM];
        for &(poi_idx, _) in m.zone_alpha(z) {
            let poi = &city.pois[m.pois[poi_idx as usize].idx()];
            let f = fx.features(z, &poi.pos, poi.zone);
            for k in 0..FEATURE_DIM {
                lo[k] = lo[k].min(f[k]);
                hi[k] = hi[k].max(f[k]);
            }
        }
        for k in 0..FEATURE_DIM {
            assert!(
                agg[k] >= lo[k] - 1e-9 && agg[k] <= hi[k] + 1e-9,
                "column {k}: {} outside [{}, {}]",
                agg[k],
                lo[k],
                hi[k]
            );
        }
    }

    #[test]
    fn single_poi_zone_equals_its_od_vector() {
        let (city, store, _) = setup();
        // Job centers: tiny category — many zones attract exactly one.
        let m = TodamSpec::default().build(&city, PoiCategory::JobCenter);
        let fx = FeatureExtractor::new(&city, &store);
        for z in 0..city.n_zones() {
            let zid = ZoneId(z as u32);
            let alpha = m.zone_alpha(zid);
            if alpha.len() == 1 {
                let poi = &city.pois[m.pois[alpha[0].0 as usize].idx()];
                let od = fx.features(zid, &poi.pos, poi.zone);
                let agg = origin_features(&fx, &city, &m, zid).unwrap();
                for k in 0..FEATURE_DIM {
                    assert!((od[k] - agg[k]).abs() < 1e-9);
                }
                return;
            }
        }
    }
}

//! GTFS round-trip and inspection: write the synthetic feed to disk as
//! standard GTFS text files, parse it back, validate it, and print a
//! timetable excerpt — demonstrating that the ingestion path is the same
//! one a real agency feed (e.g. TfWM's) would take.
//!
//! ```text
//! cargo run --release --example gtfs_inspect
//! ```

use staq_repro::gtfs::{validate, FeedIndex, StopId};
use staq_repro::prelude::*;

fn main() {
    let city = City::generate(&CityConfig::small(42));
    let feed = city.feed.feed();

    // Write to a temp dir as agency.txt / stops.txt / ... and re-read.
    let dir = std::env::temp_dir().join("staq_gtfs_demo");
    staq_repro::gtfs::write::to_dir(feed, &dir).expect("write feed");
    println!("wrote GTFS feed to {}", dir.display());
    let reread = staq_repro::gtfs::parse::FeedText::from_dir(&dir)
        .expect("read feed")
        .parse()
        .expect("parse feed");
    assert_eq!(*feed, reread, "round-trip must be lossless");
    let violations = validate::validate(&reread);
    println!(
        "re-parsed: {} stops, {} routes, {} trips, {} stop_times, {} violations",
        reread.stops.len(),
        reread.routes.len(),
        reread.trips.len(),
        reread.stop_times.len(),
        violations.len()
    );

    // Departure board for the busiest stop in the AM peak.
    let ix = FeedIndex::build(reread);
    let am = TimeInterval::am_peak();
    let busiest = (0..ix.n_stops() as u32)
        .map(StopId)
        .max_by_key(|&s| ix.departures_at(s, &am).count())
        .unwrap();
    println!(
        "\ndeparture board, stop {} ({} departures in {}):",
        busiest.0,
        ix.departures_at(busiest, &am).count(),
        am
    );
    for dep in ix.departures_at(busiest, &am).take(12) {
        let route = ix.trip_route(dep.trip);
        let calls = ix.trip_calls(dep.trip);
        let last = calls.last().unwrap();
        println!(
            "  {}  line {:<4} towards stop {:<4} (arrives {})",
            dep.departure,
            ix.feed().routes[route.idx()].short_name,
            last.stop.0,
            last.arrival
        );
    }
    if let Some(h) = ix.mean_headway(busiest, &am) {
        println!("mean headway: {:.0} s", h);
    }
}

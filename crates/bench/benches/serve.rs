//! Serving-path micro-benchmarks: wire-codec round-trips and the
//! end-to-end warm-cache query path through a real TCP server.
//!
//! The codec numbers bound the protocol overhead per request; the e2e
//! number is what a client of a warm server actually observes (framing +
//! queue + worker + cached-measure answer + framing back), to be read
//! against the cold path's full SSR pipeline run.

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, Criterion};
use staq_access::measures::ZoneMeasures;
use staq_access::AccessQuery;
use staq_serve::codec::{decode_request, decode_response, encode_request, encode_response};
use staq_serve::presets::CityPreset;
use staq_serve::{Client, Request, Response, ServerConfig};
use staq_synth::{PoiCategory, ZoneId};
use std::hint::black_box;

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_codec");

    let req = Request::Query {
        category: PoiCategory::School,
        query: AccessQuery::AtRisk { threshold_factor: 1.5 },
        approx: false,
    };
    g.bench_function("query_request_roundtrip", |b| {
        let mut buf = BytesMut::with_capacity(256);
        b.iter(|| {
            buf.clear();
            encode_request(black_box(&req), &mut buf);
            black_box(decode_request(&mut buf).unwrap().unwrap())
        })
    });

    // A measures response the size of the test city (120 zones).
    let resp = Response::Measures(
        (0..120)
            .map(|i| ZoneMeasures {
                zone: ZoneId(i),
                mac: 20.0 + i as f64 * 0.25,
                acsd: 1.0 + i as f64 * 0.01,
            })
            .collect(),
    );
    g.bench_function("measures_response_roundtrip_120z", |b| {
        let mut buf = BytesMut::with_capacity(4096);
        b.iter(|| {
            buf.clear();
            encode_response(black_box(&resp), &mut buf);
            black_box(decode_response(&mut buf).unwrap().unwrap())
        })
    });
    g.finish();
}

fn bench_e2e_warm(c: &mut Criterion) {
    // Real server, loopback TCP, cache warmed before measuring: numbers
    // reflect the serving overhead, not the SSR pipeline.
    let engine = CityPreset::Test.engine(0.05, 42);
    let mut handle = staq_serve::serve(
        engine,
        &ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_depth: 64,
            ..Default::default()
        },
    )
    .expect("bind loopback server");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.measures(PoiCategory::School).expect("warm the cache");

    let mut g = c.benchmark_group("serve_e2e_warm");
    g.sample_size(20);
    g.bench_function("mean_access_query", |b| {
        b.iter(|| {
            black_box(
                client.query(&AccessQuery::MeanAccess, PoiCategory::School).expect("warm query"),
            )
        })
    });
    g.bench_function("worst_zones_query", |b| {
        b.iter(|| {
            black_box(
                client
                    .query(&AccessQuery::WorstZones { k: 10 }, PoiCategory::School)
                    .expect("warm query"),
            )
        })
    });
    g.bench_function("stats", |b| b.iter(|| black_box(client.stats().expect("stats"))));
    g.finish();
    drop(client);
    handle.shutdown();
}

criterion_group!(benches, bench_codec, bench_e2e_warm);
criterion_main!(benches);

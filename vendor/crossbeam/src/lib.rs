//! Offline stand-in for `crossbeam`.
//!
//! Provides the two pieces the workspace uses, in crossbeam's API shape:
//!
//! * [`scope`] — scoped threads, built on `std::thread::scope` (child
//!   panics propagate as a panic at the scope, rather than surfacing in
//!   the returned `Result`; every call site treats both as fatal).
//! * [`channel`] — MPMC channels with bounded and unbounded flavors, a
//!   Mutex+Condvar ring shared by any number of cloned senders/receivers.

pub mod channel;

use std::marker::PhantomData;

/// Scoped thread handle collection, mirroring `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    _marker: PhantomData<&'env ()>,
}

/// Handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread; `Err` carries the panic payload.
    pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread tied to the scope; the closure receives the scope
    /// (crossbeam's signature) so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner, _marker: PhantomData })) }
    }
}

/// Runs `f` with a scope in which borrowing, scoped threads can be
/// spawned; returns once all of them finished. A panicking child thread
/// panics here (std semantics) instead of producing `Err` — the `Result`
/// exists for call-site compatibility and is always `Ok`.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s, _marker: PhantomData })))
}

/// `crossbeam::thread` module alias, matching upstream layout.
pub mod thread {
    pub use crate::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all() {
        let n = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    n.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    n.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 1);
    }
}

//! School-access equity analysis: classify every zone's accessibility,
//! compare fairness across demographic weightings, and show how the
//! generalized access cost (fares, waiting, interchanges) changes the
//! picture relative to plain journey time.
//!
//! ```text
//! cargo run --release --example school_fairness
//! ```

use staq_repro::access::classify;
use staq_repro::prelude::*;
use std::collections::HashMap;

fn main() {
    let city = City::generate(&CityConfig::small(7));

    for cost in [CostKind::Jt, CostKind::Gac] {
        let engine = AccessEngine::new(
            city.clone(),
            PipelineConfig { beta: 0.15, model: ModelKind::Mlp, cost, ..Default::default() },
        );

        println!("=== cost model: {cost} ===");
        match engine.query(&AccessQuery::MeanAccess, PoiCategory::School) {
            QueryAnswer::MeanAccess { mean_mac, mean_acsd, .. } => {
                println!("mean access cost {mean_mac:.1}, temporal spread {mean_acsd:.1}")
            }
            other => unreachable!("{other:?}"),
        }

        // Accessibility classification (paper §III-D's four classes).
        match engine.query(&AccessQuery::Classification, PoiCategory::School) {
            QueryAnswer::Classification(classes) => {
                let mut hist: HashMap<&str, usize> = HashMap::new();
                for (_, c) in &classes {
                    *hist.entry(c.label()).or_default() += 1;
                }
                let mut order: Vec<_> = hist.into_iter().collect();
                order.sort();
                print!("classes:");
                for (label, n) in order {
                    print!("  {label}: {n}");
                }
                println!();
            }
            other => unreachable!("{other:?}"),
        }

        // Fairness overall vs for children (the school-age population).
        for weight in
            [DemographicWeight::Uniform, DemographicWeight::Population, DemographicWeight::Children]
        {
            match engine.query(&AccessQuery::Fairness { weight }, PoiCategory::School) {
                QueryAnswer::Fairness(j) => println!("fairness ({weight:?}): {j:.4}"),
                other => unreachable!("{other:?}"),
            }
        }

        // Worst five zones with their classes.
        match engine.query(&AccessQuery::WorstZones { k: 5 }, PoiCategory::School) {
            QueryAnswer::WorstZones(zs) => {
                println!("worst-served zones:");
                let measures = engine.measures(PoiCategory::School).predicted.clone();
                let ref_means = classify::means_from(&measures);
                for (z, mac) in zs {
                    let m = measures.iter().find(|m| m.zone == z).unwrap();
                    let class =
                        classify::AccessClass::classify(m.mac, m.acsd, ref_means.0, ref_means.1);
                    println!("  zone {:>4}: cost {mac:>6.1} ({class})", z.0);
                }
            }
            other => unreachable!("{other:?}"),
        }
        println!();
    }
}

//! Offline artifact cost: hop-tree store construction (isochrones + both
//! tree families for every zone) — the paper's precomputation step.

use criterion::{criterion_group, criterion_main, Criterion};
use staq_gtfs::time::TimeInterval;
use staq_hoptree::HopTreeStore;
use staq_road::IsochroneParams;
use staq_synth::{City, CityConfig};
use std::hint::black_box;

fn bench_store_build(c: &mut Criterion) {
    let city = City::generate(&CityConfig::small(42));
    let v = TimeInterval::am_peak();
    let params = IsochroneParams::default();

    let mut g = c.benchmark_group("hoptree");
    g.sample_size(10);
    g.bench_function("store_build_120_zones", |b| {
        b.iter(|| black_box(HopTreeStore::build(&city, &v, &params)))
    });

    let store = HopTreeStore::build(&city, &v, &params);
    g.bench_function("rebuild_8_zones_incremental", |b| {
        let zones: Vec<_> = (0..8u32).map(staq_synth::ZoneId).collect();
        b.iter_batched(
            || store_clone(&city, &v, &params),
            |mut s| s.rebuild_zones(&city, &zones),
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
    drop(store);
}

fn store_clone(city: &City, v: &TimeInterval, p: &IsochroneParams) -> HopTreeStore {
    HopTreeStore::build(city, v, p)
}

criterion_group!(benches, bench_store_build);
criterion_main!(benches);

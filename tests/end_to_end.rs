//! End-to-end integration: the full stack from city generation through SSR
//! inference must reproduce the paper's qualitative results on a small
//! city.

use staq_repro::prelude::*;

fn setup() -> (City, OfflineArtifacts, TodamSpec) {
    let city = City::generate(&CityConfig::small(42));
    let spec = TodamSpec { per_hour: 4, ..Default::default() };
    let artifacts = OfflineArtifacts::build(
        &city,
        &spec.interval,
        &staq_repro::road::IsochroneParams::default(),
    );
    (city, artifacts, spec)
}

#[test]
fn ssr_recovers_spatial_access_pattern() {
    let (city, artifacts, spec) = setup();
    let truth = NaiveResult::compute(&city, &spec, PoiCategory::School, CostKind::Jt);
    let cfg =
        PipelineConfig { beta: 0.2, model: ModelKind::Mlp, todam: spec, ..Default::default() };
    let result = SsrPipeline::new(&city, &artifacts, cfg).run(PoiCategory::School);
    let report = evaluate(&truth, &result);
    assert!(report.mac_corr > 0.5, "MAC correlation should be strongly positive: {report}");
    assert!(report.mac_mae < 15.0, "JT MAE should be minutes, not tens: {report}");
    assert!(report.fie < 0.15, "fairness index error should be small: {report}");
}

#[test]
fn ssr_beats_mean_predictor() {
    let (city, artifacts, spec) = setup();
    let truth = NaiveResult::compute(&city, &spec, PoiCategory::VaxCenter, CostKind::Jt);
    let cfg =
        PipelineConfig { beta: 0.2, model: ModelKind::Mlp, todam: spec, ..Default::default() };
    let result = SsrPipeline::new(&city, &artifacts, cfg).run(PoiCategory::VaxCenter);
    let report = evaluate(&truth, &result);

    // Mean predictor baseline over the same evaluation zones.
    let labeled: std::collections::HashSet<ZoneId> = result.labeled.iter().copied().collect();
    let labeled_mean =
        result.labeled_stats.iter().map(|s| s.mac).sum::<f64>() / result.labeled_stats.len() as f64;
    let base_mae = truth
        .measures
        .iter()
        .filter(|m| !labeled.contains(&m.zone))
        .map(|m| (m.mac - labeled_mean).abs())
        .sum::<f64>()
        / truth.measures.iter().filter(|m| !labeled.contains(&m.zone)).count() as f64;
    assert!(
        report.mac_mae < base_mae,
        "SSR MAE {} must beat constant-prediction {}",
        report.mac_mae,
        base_mae
    );
}

#[test]
fn labeling_cost_scales_with_beta() {
    let (city, artifacts, spec) = setup();
    let run = |beta: f64| {
        let cfg = PipelineConfig {
            beta,
            model: ModelKind::Ols,
            todam: spec.clone(),
            ..Default::default()
        };
        SsrPipeline::new(&city, &artifacts, cfg).run(PoiCategory::School)
    };
    let small = run(0.05);
    let large = run(0.5);
    // Trip counts scale with beta (the saving mechanism of Table II).
    assert!(large.labeled_trips > small.labeled_trips * 5);
    // And the SSR run labels only a fraction of the matrix.
    assert!(small.labeled_trips * 10 < small.matrix.n_trips());
}

#[test]
fn gac_and_jt_produce_different_but_correlated_rankings() {
    let (city, _artifacts, spec) = setup();
    let jt = NaiveResult::compute(&city, &spec, PoiCategory::Hospital, CostKind::Jt);
    let gac = NaiveResult::compute(&city, &spec, PoiCategory::Hospital, CostKind::Gac);
    assert_eq!(jt.measures.len(), gac.measures.len());
    let a: Vec<f64> = jt.measures.iter().map(|m| m.mac).collect();
    let b: Vec<f64> = gac.measures.iter().map(|m| m.mac).collect();
    let corr = staq_repro::ml::metrics::pearson(&a, &b);
    assert!(corr > 0.6, "JT and GAC should broadly agree: corr {corr}");
    // But GAC is strictly more expensive (weights >= 1, fares added).
    for (x, y) in a.iter().zip(&b) {
        assert!(y >= x, "GAC {y} below JT {x}");
    }
}

#[test]
fn walk_only_trips_are_schedule_independent() {
    // The paper attributes low-β ACSD trouble to walk-only trips: "when a
    // zone is associated to a POI that is walkable ... the trip is not
    // dependent on the road network and schedule" (§V-B2). Two parts:
    // (a) the synthetic city produces walk-only trips at all, and
    // (b) a walk-only journey's cost does not vary with departure time —
    //     the mechanism that pins ACSD at 0 for walkable pairs.
    use staq_repro::gtfs::time::{DayOfWeek, Stime};
    use staq_repro::transit::{Raptor, TransitNetwork};

    let (city, _artifacts, spec) = setup();
    let truth = NaiveResult::compute(&city, &spec, PoiCategory::School, CostKind::Jt);
    let total_walk_frac: f64 = truth.stats.iter().flatten().map(|s| s.walk_only_frac).sum();
    assert!(total_walk_frac > 0.0, "no walk-only trips in the whole city");

    // Find an OD pair that walks and probe it across the interval.
    let net = TransitNetwork::with_defaults(&city.road, &city.feed);
    let router = Raptor::new(&net);
    let schools = city.pois_of(PoiCategory::School);
    let pair = city.zones.iter().find_map(|z| {
        schools.iter().find_map(|p| {
            let j = router.query(&z.centroid, &p.pos, Stime::hms(7, 0, 0), DayOfWeek::Tuesday);
            j.is_walk_only().then_some((z.centroid, p.pos))
        })
    });
    let (o, d) = pair.expect("at least one walkable (zone, school) pair");
    let base = router.query(&o, &d, Stime::hms(7, 0, 0), DayOfWeek::Tuesday).jt_secs();
    for minutes in [15u32, 47, 95] {
        let t = Stime::hms(7, 0, 0).plus(minutes * 60);
        let j = router.query(&o, &d, t, DayOfWeek::Tuesday);
        assert_eq!(j.jt_secs(), base, "walk-only journey time must not depend on departure time");
    }
}

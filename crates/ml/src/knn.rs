//! Minkowski k-NN regression: COREG's base learner.

use crate::linalg::Matrix;

/// A k-nearest-neighbour regressor under a Minkowski-`p` metric.
///
/// Stores its training set; prediction averages the targets of the `k`
/// nearest training rows. COREG instantiates two of these with different
/// `p` orders so the co-trained views disagree usefully (Zhou & Li 2005 use
/// p = 2 and p = 5).
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    pub k: usize,
    /// Minkowski order (2 = Euclidean).
    pub p: f64,
    x: Vec<Vec<f64>>,
    y: Vec<Vec<f64>>,
}

impl KnnRegressor {
    /// New untrained regressor.
    pub fn new(k: usize, p: f64) -> Self {
        assert!(k >= 1, "k must be >= 1");
        assert!(p >= 1.0, "Minkowski order must be >= 1");
        KnnRegressor { k, p, x: Vec::new(), y: Vec::new() }
    }

    /// Replaces the training set.
    pub fn fit(&mut self, x: &Matrix, y: &Matrix) {
        assert_eq!(x.rows(), y.rows());
        self.x = (0..x.rows()).map(|i| x.row(i).to_vec()).collect();
        self.y = (0..y.rows()).map(|i| y.row(i).to_vec()).collect();
    }

    /// Adds one training example (used by COREG's incremental labeling).
    pub fn push(&mut self, x: &[f64], y: &[f64]) {
        self.x.push(x.to_vec());
        self.y.push(y.to_vec());
    }

    /// Number of stored training rows.
    pub fn n_train(&self) -> usize {
        self.x.len()
    }

    /// Features of stored training row `i` (used by COREG's selection
    /// criterion, which re-evaluates a candidate's labeled neighbourhood).
    pub fn train_x(&self, i: usize) -> &[f64] {
        &self.x[i]
    }

    /// Targets of stored training row `i`.
    pub fn train_y(&self, i: usize) -> &[f64] {
        &self.y[i]
    }

    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        let s: f64 = a.iter().zip(b).map(|(x, y)| (x - y).abs().powf(self.p)).sum();
        s.powf(1.0 / self.p)
    }

    /// Indices of the `k` nearest training rows to `q` (ascending distance).
    pub fn neighbors(&self, q: &[f64]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.x.len()).collect();
        let k = self.k.min(idx.len());
        if k == 0 {
            return Vec::new();
        }
        idx.sort_by(|&a, &b| {
            self.dist(q, &self.x[a]).partial_cmp(&self.dist(q, &self.x[b])).unwrap()
        });
        idx.truncate(k);
        idx
    }

    /// Predicts one query row (mean of neighbour targets). Panics when
    /// untrained.
    pub fn predict_one(&self, q: &[f64]) -> Vec<f64> {
        let nb = self.neighbors(q);
        assert!(!nb.is_empty(), "predict on untrained kNN");
        let m = self.y[0].len();
        let mut out = vec![0.0; m];
        for &i in &nb {
            for (o, &v) in out.iter_mut().zip(&self.y[i]) {
                *o += v;
            }
        }
        for o in &mut out {
            *o /= nb.len() as f64;
        }
        out
    }

    /// Predicts a whole matrix of query rows.
    pub fn predict(&self, x: &Matrix) -> Matrix {
        let m = self.y.first().map_or(0, |r| r.len());
        let mut out = Matrix::zeros(x.rows(), m);
        for i in 0..x.rows() {
            let p = self.predict_one(x.row(i));
            out.row_mut(i).copy_from_slice(&p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit_line(k: usize, p: f64) -> KnnRegressor {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let y = Matrix::from_rows(&[vec![0.0], vec![10.0], vec![20.0], vec![30.0]]);
        let mut knn = KnnRegressor::new(k, p);
        knn.fit(&x, &y);
        knn
    }

    #[test]
    fn k1_returns_nearest_target() {
        let knn = fit_line(1, 2.0);
        assert_eq!(knn.predict_one(&[1.2]), vec![10.0]);
        assert_eq!(knn.predict_one(&[2.9]), vec![30.0]);
    }

    #[test]
    fn k2_averages() {
        let knn = fit_line(2, 2.0);
        assert_eq!(knn.predict_one(&[1.5]), vec![15.0]);
    }

    #[test]
    fn k_larger_than_train_uses_all() {
        let knn = fit_line(10, 2.0);
        assert_eq!(knn.predict_one(&[0.0]), vec![15.0]);
    }

    #[test]
    fn minkowski_orders_differ_in_2d() {
        // Query equidistant under L2 but not under higher p.
        let x = Matrix::from_rows(&[vec![3.0, 0.0], vec![2.2, 2.2]]);
        let y = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let mut k2 = KnnRegressor::new(1, 2.0);
        let mut k5 = KnnRegressor::new(1, 5.0);
        k2.fit(&x, &y);
        k5.fit(&x, &y);
        let q = [0.0, 0.0];
        // L2: |(3,0)| = 3.0 < |(2.2,2.2)| ≈ 3.11 -> picks first.
        assert_eq!(k2.predict_one(&q), vec![1.0]);
        // L5: 3.0 vs 2.2 * 2^(1/5) ≈ 2.53 -> picks second.
        assert_eq!(k5.predict_one(&q), vec![2.0]);
    }

    #[test]
    fn push_extends_training_set() {
        let mut knn = fit_line(1, 2.0);
        knn.push(&[10.0], &[100.0]);
        assert_eq!(knn.n_train(), 5);
        assert_eq!(knn.predict_one(&[9.0]), vec![100.0]);
    }

    #[test]
    fn matrix_prediction_shape() {
        let knn = fit_line(2, 2.0);
        let q = Matrix::from_rows(&[vec![0.5], vec![2.5]]);
        let out = knn.predict(&q);
        assert_eq!((out.rows(), out.cols()), (2, 1));
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_rejected() {
        KnnRegressor::new(0, 2.0);
    }

    /// Brute-force k-nearest reference: independent Minkowski distance,
    /// stable selection sort over (distance, index).
    fn brute_force_neighbors(x: &[Vec<f64>], q: &[f64], k: usize, p: f64) -> Vec<usize> {
        let mut scored: Vec<(f64, usize)> = x
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let s: f64 = row.iter().zip(q).map(|(a, b)| (a - b).abs().powf(p)).sum();
                (s.powf(1.0 / p), i)
            })
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        scored.into_iter().take(k).map(|(_, i)| i).collect()
    }

    proptest::proptest! {
        /// `neighbors` returns exactly the brute-force k-nearest — same
        /// indices in the same order — on random feature sets, including
        /// duplicate points (forced ties), k ≥ n, and the degenerate
        /// zero-dimensional feature space where every distance ties at 0.
        #[test]
        fn neighbors_match_brute_force(
            rows in proptest::collection::vec(
                proptest::collection::vec(-100.0f64..100.0, 0..4), 1..40),
            q_seed in proptest::collection::vec(-120.0f64..120.0, 4),
            k in 1usize..50,
            p_idx in 0usize..3,
        ) {
            let p = [1.0, 2.0, 5.0][p_idx];
            // All rows share the first row's dimension (0..=3 features);
            // duplicates of the first row force exact distance ties.
            let d = rows[0].len();
            let mut x: Vec<Vec<f64>> = rows
                .iter()
                .map(|r| {
                    let mut r = r.clone();
                    r.resize(d, 0.0);
                    r
                })
                .collect();
            x.push(x[0].clone());
            x.push(x[0].clone());
            let q = &q_seed[..d];
            let mut knn = KnnRegressor::new(k, p);
            for row in &x {
                knn.push(row, &[0.0]);
            }
            let got = knn.neighbors(q);
            let want = brute_force_neighbors(&x, q, k, p);
            proptest::prop_assert_eq!(got, want);
        }
    }
}

//! Dynamic-scenario integration: the engine's edits keep every invariant of
//! the underlying structures and produce the causally expected direction of
//! change — and incremental delta application is *exact*: replaying the
//! delta log on a fresh engine, or rebuilding an engine from the mutated
//! feed, lands on bit-identical measures.

use staq_repro::gtfs::model::{RouteId, TripId};
use staq_repro::gtfs::{validate, Delta};
use staq_repro::prelude::*;
use staq_repro::rt::RtEngine;

fn engine() -> AccessEngine {
    let city = City::generate(&CityConfig::small(42));
    AccessEngine::new(
        city,
        PipelineConfig {
            beta: 0.2,
            model: ModelKind::Ols,
            todam: TodamSpec { per_hour: 3, ..Default::default() },
            ..Default::default()
        },
    )
}

#[test]
fn added_route_keeps_feed_valid() {
    let e = engine();
    let a = e.city().zones[3].centroid;
    let b = e.city().cores[0];
    e.add_bus_route(&[a, a.midpoint(&b), b], 480);
    let violations = validate::validate(e.city().feed.feed());
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn added_route_shortens_journeys_from_its_terminus() {
    use staq_repro::gtfs::time::{DayOfWeek, Stime};
    use staq_repro::transit::{Raptor, TransitNetwork};

    let e = engine();
    // Pick the zone farthest from the center: its journey to the center
    // should benefit from a direct express route.
    let center = e.city().cores[0];
    let far = e
        .city()
        .zones
        .iter()
        .max_by(|x, y| x.centroid.dist(&center).partial_cmp(&y.centroid.dist(&center)).unwrap())
        .unwrap()
        .clone();

    let before = {
        let city = e.city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        Raptor::new(&net)
            .query(&far.centroid, &center, Stime::hms(8, 0, 0), DayOfWeek::Tuesday)
            .jt_secs()
    };
    e.add_bus_route(&[far.centroid, far.centroid.midpoint(&center), center], 300);
    let after = {
        let city = e.city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        Raptor::new(&net)
            .query(&far.centroid, &center, Stime::hms(8, 0, 0), DayOfWeek::Tuesday)
            .jt_secs()
    };
    assert!(
        after <= before,
        "a direct 5-minute-headway route must not worsen the journey: {before}s -> {after}s"
    );
    assert!(
        after < before,
        "journey from the periphery should strictly improve: {before}s -> {after}s"
    );
}

#[test]
fn poi_edits_extend_the_poi_set_consistently() {
    let e = engine();
    let n = e.city().pois.len();
    let pos = e.city().cores[0];
    let id = e.add_poi(PoiCategory::JobCenter, pos);
    assert_eq!(e.city().pois.len(), n + 1);
    let poi = &e.city().pois[id.idx()];
    assert_eq!(poi.category, PoiCategory::JobCenter);
    assert_eq!(poi.pos, pos);
    // Zone association must be the nearest centroid.
    let tree = staq_repro::geom::KdTree::build(&e.city().zone_points());
    assert_eq!(poi.zone.0, tree.nearest(&pos).unwrap().item);
}

#[test]
fn queries_work_after_many_edits() {
    let e = engine();
    let c = e.city().cores[0];
    for k in 0..3 {
        let p = c.offset(100.0 * k as f64, -50.0 * k as f64);
        e.add_poi(PoiCategory::VaxCenter, p);
    }
    let side = e.city().config.side_m;
    e.add_bus_route(
        &[
            staq_repro::geom::Point::new(side * 0.1, side * 0.1),
            staq_repro::geom::Point::new(side * 0.5, side * 0.5),
            staq_repro::geom::Point::new(side * 0.9, side * 0.9),
        ],
        600,
    );
    for cat in [PoiCategory::VaxCenter, PoiCategory::School] {
        match e.query(&AccessQuery::MeanAccess, cat) {
            QueryAnswer::MeanAccess { mean_mac, .. } => {
                assert!(mean_mac.is_finite() && mean_mac > 0.0)
            }
            other => panic!("{other:?}"),
        }
    }
}

/// A mixed slice of live-feed history: one of each structural kind plus
/// an advisory alert in the middle.
fn sample_history(side: f64) -> Vec<Delta> {
    vec![
        Delta::TripDelay { trip: TripId(0), delay_secs: 240 },
        Delta::ServiceAlert { route: RouteId(2), message: "expect crowding".into() },
        Delta::TripCancel { trip: TripId(3) },
        Delta::AddRoute {
            stops: vec![
                staq_repro::geom::Point::new(side * 0.2, side * 0.8),
                staq_repro::geom::Point::new(side * 0.5, side * 0.5),
                staq_repro::geom::Point::new(side * 0.8, side * 0.2),
            ],
            headway_s: 420,
        },
        Delta::RouteRemove { route: RouteId(1) },
    ]
}

#[test]
fn delta_log_replay_on_a_fresh_engine_is_bit_identical() {
    // Live path: deltas arrive one at a time, applied incrementally.
    let live = RtEngine::new(std::sync::Arc::new(engine()));
    let history = sample_history(live.engine().city().config.side_m);
    for d in &history {
        live.apply(d.clone()).expect("live delta applies");
    }
    assert_eq!(live.seq(), history.len() as u64);

    // Replica path: a fresh same-seed engine replays the whole log as
    // one sequenced batch.
    let replica = RtEngine::new(std::sync::Arc::new(engine()));
    let applied = replica.apply_batch(1, &live.log_tail(0)).expect("log replays");
    assert_eq!(applied.seq, live.seq());

    // Incremental application must be deterministic: both worlds agree
    // bit-for-bit on every category's measures and on the feed itself.
    for cat in [PoiCategory::School, PoiCategory::Hospital, PoiCategory::VaxCenter] {
        assert_eq!(
            live.engine().measures(cat).predicted,
            replica.engine().measures(cat).predicted,
            "replayed measures diverged for {cat:?}"
        );
    }
    assert_eq!(
        live.engine().city().feed.feed(),
        replica.engine().city().feed.feed(),
        "replayed feed diverged"
    );
}

#[test]
fn incremental_apply_matches_a_from_scratch_rebuild() {
    let config = PipelineConfig {
        beta: 0.2,
        model: ModelKind::Ols,
        todam: TodamSpec { per_hour: 3, ..Default::default() },
        ..Default::default()
    };
    let city = City::generate(&CityConfig::small(42));
    let history = sample_history(city.config.side_m);

    // Incremental path: an engine built on the pristine city, mutated
    // delta by delta (partial hop-tree rebuilds, cache invalidation).
    let incremental = AccessEngine::new(city.clone(), config.clone());
    for d in &history {
        incremental.apply_delta(d).expect("incremental delta applies");
    }

    // Rebuild path: the same deltas mutate the raw feed first, then a
    // brand-new engine computes everything from scratch.
    let mut mutated = city;
    let bus_speed = mutated.config.bus_speed_mps;
    for d in &history {
        mutated.feed.apply_delta(d, bus_speed).expect("feed delta applies");
    }
    let rebuilt = AccessEngine::new(mutated, config);

    // The incremental invalidation must be *exact*: nothing stale may
    // survive, so both engines answer bit-identically.
    for cat in [PoiCategory::School, PoiCategory::Hospital] {
        assert_eq!(
            incremental.measures(cat).predicted,
            rebuilt.measures(cat).predicted,
            "incremental apply diverged from full rebuild for {cat:?}"
        );
    }
    let violations = validate::validate(incremental.city().feed.feed());
    assert!(violations.is_empty(), "mutated feed must stay valid: {violations:?}");
}

//! Graceful shutdown of the serving binaries' cores: in-flight requests
//! drain and their replies are flushed before the listener goes away,
//! and a second `shutdown()` is an idempotent no-op rather than a
//! deadlock or a double-join panic.

use staq_repro::prelude::*;
use staq_serve::presets::CityPreset;
use staq_serve::{Client, MuxClient, Request, Response, ServerConfig};
use staq_shard::{route, Backend, RouterConfig, ShardSupervisor, SupervisorConfig, ThreadBackend};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn query(category: PoiCategory) -> Request {
    Request::Query { category, query: AccessQuery::MeanAccess, approx: false }
}

#[test]
fn serve_shutdown_drains_in_flight_requests_and_is_idempotent() {
    let engine = CityPreset::Test.engine(0.05, 42);
    let mut server = staq_serve::serve(
        engine,
        &ServerConfig { addr: "127.0.0.1:0".into(), workers: 2, ..Default::default() },
    )
    .expect("bind server");
    let addr = server.addr();

    // A cold query is a full pipeline run — slow enough that shutdown
    // begins while it is still executing.
    let mux = MuxClient::connect(addr).expect("connect");
    let in_flight = {
        let mux = mux.clone();
        std::thread::spawn(move || mux.call(&query(PoiCategory::School)))
    };
    std::thread::sleep(Duration::from_millis(20)); // let the worker take it

    server.shutdown();

    // The caller whose request was already admitted gets a real answer,
    // not a hangup: drain completes the job and flushes the reply.
    let answer = in_flight.join().unwrap().expect("in-flight reply must be flushed");
    assert!(matches!(answer, Response::Query(_)), "{answer:?}");

    // Stopping twice is a no-op.
    server.shutdown();

    // The listener is really gone.
    assert!(TcpStream::connect(addr).is_err(), "listener must be closed after shutdown");
}

#[test]
fn shard_router_shutdown_is_idempotent_and_closes_the_listener() {
    let backends: Vec<Box<dyn Backend>> = (0..2)
        .map(|_| {
            Box::new(ThreadBackend::new(2, || Arc::new(CityPreset::Test.engine(0.05, 42))))
                as Box<dyn Backend>
        })
        .collect();
    let sup = ShardSupervisor::start(backends, SupervisorConfig::default()).expect("fleet up");
    let mut router = route(sup, &RouterConfig::default()).expect("bind router");
    let addr = router.addr();

    let mut c = Client::connect(addr).expect("connect");
    c.query(&AccessQuery::MeanAccess, PoiCategory::School).expect("routed query");

    router.shutdown();
    router.shutdown(); // idempotent
    assert!(TcpStream::connect(addr).is_err(), "router listener must be closed after shutdown");
}

//! staq-trace: fetch a trace dump from a server or router and render
//! per-query span trees.
//!
//! ```text
//! staq-trace [--addr 127.0.0.1:7900] [--min-dur-us N] [--set-capture-us N]
//!            [--limit N] [--min-dur DUR] [--sort total|self|start] [--top N]
//! ```
//!
//! Issues a `TraceDump` request (routers fan it out across the fleet and
//! concatenate), stitches the returned spans into trees by
//! `(trace, parent)` links, and prints one tree per trace — newest first
//! — with each span's total time and self time (total minus the children
//! that ran under it).
//!
//! `--min-dur-us` filters the dump server-side; `--set-capture-us`
//! retunes the server's capture threshold for *future* spans, which is
//! how an operator keeps sub-microsecond spans from flooding the ring
//! before taking a dump worth reading.
//!
//! Triage flags operate client-side on whole traces: `--min-dur` drops
//! traces whose end-to-end time is under a threshold (`250us`, `5ms`,
//! `1s`; a bare number is microseconds), `--sort` orders them by
//! `total` (end-to-end, slowest first), `self` (largest single-span
//! self time first) or `start` (newest first — the default, unchanged),
//! and `--top N` keeps only the first N after sorting.

use staq_obs::{fmt_dur, OwnedSpan};
use staq_serve::Client;
use std::collections::HashMap;
use std::time::Duration;

#[derive(Clone, Copy, PartialEq, Eq)]
enum SortKey {
    /// End-to-end duration, slowest first.
    Total,
    /// Largest single-span self time, largest first.
    SelfTime,
    /// Newest activity first (the historical default).
    Start,
}

struct Args {
    addr: String,
    min_dur_us: u64,
    set_capture_us: Option<u64>,
    limit: usize,
    min_dur_ns: u64,
    sort: SortKey,
    top: Option<usize>,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7900".into(),
        min_dur_us: 0,
        set_capture_us: None,
        limit: 20,
        min_dur_ns: 0,
        sort: SortKey::Start,
        top: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => args.addr = need(&mut it, "--addr"),
            "--min-dur-us" => args.min_dur_us = parse(&mut it, "--min-dur-us"),
            "--set-capture-us" => args.set_capture_us = Some(parse(&mut it, "--set-capture-us")),
            "--limit" => args.limit = parse(&mut it, "--limit"),
            "--min-dur" => {
                let v = need(&mut it, "--min-dur");
                args.min_dur_ns = parse_dur_ns(&v)
                    .unwrap_or_else(|| usage("--min-dur wants e.g. 250us, 5ms or 1s"));
            }
            "--sort" => {
                args.sort = match need(&mut it, "--sort").as_str() {
                    "total" => SortKey::Total,
                    "self" => SortKey::SelfTime,
                    "start" => SortKey::Start,
                    _ => usage("--sort must be total, self or start"),
                }
            }
            "--top" => args.top = Some(parse(&mut it, "--top")),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    args
}

/// `250us` / `5ms` / `1s` / `1000ns`; a bare number is microseconds,
/// matching the CLI's other duration flags.
fn parse_dur_ns(v: &str) -> Option<u64> {
    let (digits, scale) = match v {
        _ if v.ends_with("ns") => (&v[..v.len() - 2], 1),
        _ if v.ends_with("us") => (&v[..v.len() - 2], 1_000),
        _ if v.ends_with("ms") => (&v[..v.len() - 2], 1_000_000),
        _ if v.ends_with('s') => (&v[..v.len() - 1], 1_000_000_000),
        _ => (v, 1_000),
    };
    digits.parse::<u64>().ok().map(|n| n.saturating_mul(scale))
}

fn need(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")))
}

fn parse<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
    need(it, flag).parse().unwrap_or_else(|_| usage(&format!("{flag} needs a valid value")))
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: staq-trace [--addr host:port] [--min-dur-us N] [--set-capture-us N] [--limit N]\n\
         \x20                 [--min-dur DUR] [--sort total|self|start] [--top N]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

fn main() {
    let args = parse_args();
    let mut client = Client::connect(&args.addr).unwrap_or_else(|e| {
        eprintln!("error: cannot connect to {}: {e}", args.addr);
        std::process::exit(1);
    });
    let spans = client
        .trace_dump(args.min_dur_us * 1_000, args.set_capture_us.map(|us| us * 1_000))
        .unwrap_or_else(|e| {
            eprintln!("error: trace dump failed: {e}");
            std::process::exit(1);
        });
    if let Some(us) = args.set_capture_us {
        eprintln!("capture threshold set to {us}us");
    }
    if spans.is_empty() {
        println!("no spans (ring empty, filtered out, or server built with obs-off)");
        return;
    }
    print_traces(&spans, &args);
}

fn trace_total_ns(ss: &[&OwnedSpan]) -> u64 {
    let start = ss.iter().map(|s| s.start_unix_ns).min().unwrap_or(0);
    let end = ss.iter().map(|s| s.start_unix_ns + s.dur_ns).max().unwrap_or(0);
    end.saturating_sub(start)
}

/// A trace's largest single-span self time (total minus children).
fn trace_max_self_ns(ss: &[&OwnedSpan]) -> u64 {
    ss.iter()
        .map(|s| {
            let child_ns: u64 = ss
                .iter()
                .filter(|c| c.parent == s.span && c.span != s.span)
                .map(|c| c.dur_ns)
                .sum();
            s.dur_ns.saturating_sub(child_ns)
        })
        .max()
        .unwrap_or(0)
}

/// Groups spans by trace, orders per `--sort` (newest first by
/// default), and prints each as a tree.
fn print_traces(spans: &[OwnedSpan], args: &Args) {
    let mut by_trace: HashMap<u64, Vec<&OwnedSpan>> = HashMap::new();
    for s in spans {
        by_trace.entry(s.trace).or_default().push(s);
    }
    let mut traces: Vec<(u64, Vec<&OwnedSpan>)> = by_trace.into_iter().collect();
    if args.min_dur_ns > 0 {
        traces.retain(|(_, ss)| trace_total_ns(ss) >= args.min_dur_ns);
    }
    match args.sort {
        // Newest activity first: a dump is usually taken to look at what
        // just happened.
        SortKey::Start => traces
            .sort_by_key(|(_, ss)| std::cmp::Reverse(ss.iter().map(|s| s.start_unix_ns).max())),
        SortKey::Total => traces.sort_by_key(|(_, ss)| std::cmp::Reverse(trace_total_ns(ss))),
        SortKey::SelfTime => traces.sort_by_key(|(_, ss)| std::cmp::Reverse(trace_max_self_ns(ss))),
    }
    let limit = args.top.unwrap_or(args.limit);
    let total = traces.len();
    for (trace, mut ss) in traces.into_iter().take(limit) {
        ss.sort_by_key(|s| (s.start_unix_ns, s.span));
        let start = ss.iter().map(|s| s.start_unix_ns).min().unwrap_or(0);
        let end = ss.iter().map(|s| s.start_unix_ns + s.dur_ns).max().unwrap_or(0);
        println!(
            "trace {trace:016x}  {} span(s), {} end to end",
            ss.len(),
            fmt_dur(Duration::from_nanos(end.saturating_sub(start)))
        );
        // Parent → children index; roots are spans whose parent is absent
        // from the dump (evicted, below threshold, or on another host).
        let ids: HashMap<u64, ()> = ss.iter().map(|s| (s.span, ())).collect();
        let mut children: HashMap<u64, Vec<&OwnedSpan>> = HashMap::new();
        let mut roots: Vec<&OwnedSpan> = Vec::new();
        for s in &ss {
            if s.parent != 0 && ids.contains_key(&s.parent) && s.parent != s.span {
                children.entry(s.parent).or_default().push(s);
            } else {
                roots.push(s);
            }
        }
        for root in roots {
            print_tree(root, &children, 1, ss.len());
        }
    }
    if total > limit {
        let flag = if args.top.is_some() { "--top" } else { "--limit" };
        println!("... {} more trace(s); raise {flag} to see them", total - limit);
    }
}

fn print_tree(s: &OwnedSpan, children: &HashMap<u64, Vec<&OwnedSpan>>, depth: usize, cap: usize) {
    // Depth is bounded by the span count, so corrupt parent links cannot
    // recurse forever.
    if depth > cap {
        return;
    }
    let kids = children.get(&s.span).map(Vec::as_slice).unwrap_or(&[]);
    let child_ns: u64 = kids.iter().map(|k| k.dur_ns).sum();
    let self_ns = s.dur_ns.saturating_sub(child_ns);
    let mut line = format!(
        "{}{}  total={} self={}",
        "  ".repeat(depth),
        s.name,
        fmt_dur(Duration::from_nanos(s.dur_ns)),
        fmt_dur(Duration::from_nanos(self_ns)),
    );
    for (k, v) in &s.attrs {
        line.push_str(&format!(" {k}={v}"));
    }
    println!("{line}");
    for k in kids {
        print_tree(k, children, depth + 1, cap);
    }
}

//! Labeling-throughput bench: prices the SPQ hot path end to end.
//!
//! ```text
//! label-bench [--seed N] [--workers N] [--iters N] [--quick]
//!             [--emit-json path] [--baseline path]
//! ```
//!
//! Three measurements, one report (`BENCH_label.json`):
//!
//! 1. **Scheduling.** Labels an adversarially *skewed* zone ordering —
//!    trip-heavy zones packed into the chunk slots static striding hands
//!    to worker 0 — under both [`LabelSchedule`]s, reporting the median
//!    labeling wall and each schedule's max/min worker-wall ratio. Static
//!    striding is the recorded baseline the work-stealing default is
//!    judged against.
//! 2. **RAPTOR pruning.** Replays a warm query set through
//!    [`Raptor::reference`] (pruning off) and [`Raptor::new`], reporting
//!    `raptor.patterns_scanned` per query for both and the drop.
//! 3. **Access-isochrone memoization.** Cache hit/miss counters across
//!    the whole run.
//!
//! `--baseline` compares the fresh medians against a committed report and
//! *warns* on regression — it never fails the run (CI stays green; the
//! numbers are for humans and trend tooling).

use staq_bench::fmt_dur;
use staq_gtfs::time::{DayOfWeek, Stime, TimeInterval};
use staq_obs::snapshot;
use staq_synth::{City, CityConfig, PoiCategory, ZoneId};
use staq_todam::{LabelEngine, LabelSchedule, Todam, TodamSpec};
use staq_transit::{AccessCost, Raptor};
use std::time::{Duration, Instant};

struct Args {
    seed: u64,
    workers: usize,
    iters: usize,
    quick: bool,
    emit_json: Option<String>,
    baseline: Option<String>,
}

fn parse_args() -> Args {
    let mut args =
        Args { seed: 42, workers: 8, iters: 5, quick: false, emit_json: None, baseline: None };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => args.seed = parse(&mut it, "--seed"),
            "--workers" => args.workers = parse(&mut it, "--workers"),
            "--iters" => args.iters = parse(&mut it, "--iters"),
            "--quick" => args.quick = true,
            "--emit-json" => args.emit_json = Some(need(&mut it, "--emit-json")),
            "--baseline" => args.baseline = Some(need(&mut it, "--baseline")),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if args.workers == 0 {
        usage("--workers must be at least 1");
    }
    if args.iters == 0 {
        usage("--iters must be at least 1");
    }
    args
}

fn need(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")))
}

fn parse<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
    need(it, flag).parse().unwrap_or_else(|_| usage(&format!("{flag} needs a valid value")))
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: label-bench [--seed N] [--workers N] [--iters N] [--quick] \
         [--emit-json path] [--baseline path]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

/// Zone ordering that is worst-case for static striding: zones sorted by
/// trip count descending, then laid out so the heaviest chunks all land at
/// chunk indices `≡ 0 (mod workers)` — i.e. every heavy chunk goes to
/// worker 0, every second-heaviest to worker 1, and so on. Work stealing
/// is insensitive to ordering by construction; static striding is not, and
/// this ordering shows it.
fn skewed_zone_order(m: &Todam, n_zones: usize, workers: usize) -> Vec<ZoneId> {
    const CHUNK: usize = 4; // LABEL_CHUNK
    let mut zones: Vec<ZoneId> = (0..n_zones as u32).map(ZoneId).collect();
    zones.sort_by_key(|&z| std::cmp::Reverse(m.zone_trips(z).len()));
    let n_chunks = zones.len().div_ceil(CHUNK);
    // Chunk indices in the order static striding assigns them: all of
    // worker 0's chunks first, then worker 1's, ...
    let mut slots: Vec<usize> = (0..n_chunks).collect();
    slots.sort_by_key(|&c| (c % workers, c / workers));
    let mut out = vec![ZoneId(0); zones.len()];
    let mut next = zones.into_iter();
    for &chunk in &slots {
        let start = chunk * CHUNK;
        let end = (start + CHUNK).min(out.len());
        for slot in out.iter_mut().take(end).skip(start) {
            *slot = next.next().expect("chunk layout covers all zones");
        }
    }
    out
}

fn counter(name: &str) -> u64 {
    snapshot().counter(name).unwrap_or(0)
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

struct ScheduleReport {
    median_wall_secs: f64,
    wall_ratio: f64,
}

/// Runs `iters` labeling passes under `schedule`; returns the median pass
/// wall and the median max/min per-worker wall ratio.
fn run_schedule(engine: &LabelEngine, m: &Todam, zones: &[ZoneId], iters: usize) -> ScheduleReport {
    let mut walls = Vec::with_capacity(iters);
    let mut ratios = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        let (_, worker_walls) = engine.label_zones_timed(m, zones);
        walls.push(t.elapsed().as_secs_f64());
        let max = worker_walls.iter().max().copied().unwrap_or(Duration::ZERO);
        let min = worker_walls.iter().min().copied().unwrap_or(Duration::ZERO);
        ratios.push(max.as_secs_f64() / min.as_secs_f64().max(1e-9));
    }
    ScheduleReport { median_wall_secs: median(&mut walls), wall_ratio: median(&mut ratios) }
}

fn main() {
    let args = parse_args();
    let iters = if args.quick { 2.min(args.iters) } else { args.iters };
    let city = City::generate(&CityConfig::small(args.seed));
    let m = TodamSpec { per_hour: if args.quick { 3 } else { 6 }, ..Default::default() }
        .build(&city, PoiCategory::School);
    let zones = skewed_zone_order(&m, city.n_zones(), args.workers);
    println!(
        "city: {} zones, {} trips; {} workers, {} iters (seed {})",
        city.n_zones(),
        m.n_trips(),
        args.workers,
        iters,
        args.seed
    );

    let mut engine = LabelEngine::new(&city, AccessCost::jt(), TimeInterval::am_peak());
    engine.n_workers = args.workers;

    // Warm-up pass: pays the one-time access-cache misses so the measured
    // passes reflect the steady labeling state.
    engine.schedule = LabelSchedule::WorkStealing;
    engine.label_zones(&m, &zones);

    engine.schedule = LabelSchedule::Static;
    let st = run_schedule(&engine, &m, &zones, iters);
    engine.schedule = LabelSchedule::WorkStealing;
    let claims_before = counter("label.chunks_claimed");
    let ws = run_schedule(&engine, &m, &zones, iters);
    let chunks_claimed = counter("label.chunks_claimed") - claims_before;

    println!(
        "static:        median {} | worker-wall max/min {:.2}",
        fmt_dur(Duration::from_secs_f64(st.median_wall_secs)),
        st.wall_ratio
    );
    println!(
        "work-stealing: median {} | worker-wall max/min {:.2} | {} chunk claims",
        fmt_dur(Duration::from_secs_f64(ws.median_wall_secs)),
        ws.wall_ratio,
        chunks_claimed
    );

    // RAPTOR pruning: warm query replay, reference vs pruned.
    let net = engine.network();
    let reference = Raptor::reference(net);
    let pruned = Raptor::new(net);
    let ods: Vec<_> = (0..60)
        .map(|i| {
            let o = city.zones[(i * 7) % city.n_zones()].centroid;
            let d = city.zones[(i * 13 + 5) % city.n_zones()].centroid;
            (o, d)
        })
        .collect();
    let depart = Stime::hms(7, 30, 0);
    for (o, d) in &ods {
        reference.query(o, d, depart, DayOfWeek::Tuesday);
        pruned.query(o, d, depart, DayOfWeek::Tuesday);
    }
    let base = counter("raptor.patterns_scanned");
    for (o, d) in &ods {
        reference.query(o, d, depart, DayOfWeek::Tuesday);
    }
    let ref_scans = (counter("raptor.patterns_scanned") - base) as f64 / ods.len() as f64;
    let base = counter("raptor.patterns_scanned");
    for (o, d) in &ods {
        pruned.query(o, d, depart, DayOfWeek::Tuesday);
    }
    let pruned_scans = (counter("raptor.patterns_scanned") - base) as f64 / ods.len() as f64;
    let drop_pct = 100.0 * (1.0 - pruned_scans / ref_scans.max(1e-9));
    println!(
        "raptor patterns/query: reference {ref_scans:.1}, pruned {pruned_scans:.1} \
         ({drop_pct:.0}% drop)"
    );

    let hits = counter("transit.access_cache.hit");
    let misses = counter("transit.access_cache.miss");
    let hit_rate = hits as f64 / ((hits + misses) as f64).max(1.0);
    println!("access cache: {hits} hits / {misses} misses ({:.1}% hit rate)", 100.0 * hit_rate);

    if let Some(path) = &args.baseline {
        compare_baseline(path, st.median_wall_secs, ws.median_wall_secs);
    }

    if let Some(path) = &args.emit_json {
        let json = format!(
            "{{\"bench\":\"label-bench\",\"seed\":{},\"workers\":{},\"iters\":{},\
             \"zones\":{},\"trips\":{},\
             \"static\":{{\"median_wall_secs\":{:.6},\"wall_ratio\":{:.3}}},\
             \"work_stealing\":{{\"median_wall_secs\":{:.6},\"wall_ratio\":{:.3},\
             \"chunks_claimed\":{}}},\
             \"raptor\":{{\"reference_patterns_per_query\":{:.2},\
             \"pruned_patterns_per_query\":{:.2},\"drop_pct\":{:.1}}},\
             \"access_cache\":{{\"hits\":{},\"misses\":{},\"hit_rate\":{:.4}}},\
             \"metrics\":{}}}",
            args.seed,
            args.workers,
            iters,
            city.n_zones(),
            m.n_trips(),
            st.median_wall_secs,
            st.wall_ratio,
            ws.median_wall_secs,
            ws.wall_ratio,
            chunks_claimed,
            ref_scans,
            pruned_scans,
            drop_pct,
            hits,
            misses,
            hit_rate,
            snapshot().to_json(),
        );
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }
}

/// Warn-only regression gate: compares fresh medians against the committed
/// baseline report. Timing on shared CI boxes is noisy, so this prints and
/// never exits non-zero — the committed JSON is the trend record.
fn compare_baseline(path: &str, static_median: f64, ws_median: f64) {
    let Ok(text) = std::fs::read_to_string(path) else {
        println!("baseline: cannot read {path}, skipping comparison");
        return;
    };
    for (section, fresh) in [("static", static_median), ("work_stealing", ws_median)] {
        match json_f64(&text, section, "median_wall_secs") {
            Some(old) if fresh > old * 1.25 => println!(
                "WARNING: {section} labeling median regressed: {} -> {} (baseline {path})",
                fmt_dur(Duration::from_secs_f64(old)),
                fmt_dur(Duration::from_secs_f64(fresh)),
            ),
            Some(old) => println!(
                "baseline {section}: {} -> {} (within 25% tolerance)",
                fmt_dur(Duration::from_secs_f64(old)),
                fmt_dur(Duration::from_secs_f64(fresh)),
            ),
            None => println!("baseline: no {section}.median_wall_secs in {path}"),
        }
    }
}

/// Extracts `"key":<number>` from inside the `"section":{...}` object of a
/// flat hand-rolled report. Good enough for our own JSON; not a parser.
fn json_f64(text: &str, section: &str, key: &str) -> Option<f64> {
    let sec = text.find(&format!("\"{section}\":"))?;
    let tail = &text[sec..];
    let k = tail.find(&format!("\"{key}\":"))?;
    let val = &tail[k + key.len() + 3..];
    let end = val.find([',', '}'])?;
    val[..end].trim().parse().ok()
}

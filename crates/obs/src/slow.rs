//! Tail-based slow-query capture: a bounded top-K store of complete
//! traces worth keeping.
//!
//! The span ring ([`trace`](crate::trace)) is drop-oldest — under load a
//! slow trace is overwritten within seconds, exactly when an operator
//! wants it most. This module adds a retention policy on top: when a
//! request *completes*, the serving layer calls [`maybe_promote`]; if
//! the request exceeded its class's slow threshold (or ended in an
//! error frame), every span of its trace is copied out of the ring into
//! a K-bounded store ordered by root duration. Promotion happens on the
//! worker thread that just finished the request — the only place where
//! the class, the outcome, and a still-fresh ring coexist — and costs
//! one ring scan, paid only by requests that are already slow.
//!
//! The store is fleet-mergeable the same way `TraceDump` is: each
//! backend reports its own top-K in the `OpsReport` frame and the shard
//! router folds them, deduping by trace id (in-process fleets share
//! this store, so the router takes one copy).

use crate::slo::SloClass;
use crate::trace::{OwnedSpan, TraceId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Traces the store retains (per process).
pub const SLOW_KEEP: usize = 16;

/// Spans copied per promoted trace — a runaway span flood inside one
/// trace must not balloon the store.
pub const MAX_SPANS_PER_TRACE: usize = 256;

/// One retained trace: the promotion verdict plus the full span tree as
/// it stood in the ring at completion time.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowTrace {
    pub trace: TraceId,
    /// SLO class name of the request that completed the trace.
    pub class: String,
    /// The completed request's end-to-end duration.
    pub root_dur_ns: u64,
    /// True when promotion was triggered by an error outcome rather
    /// than (or in addition to) the latency threshold.
    pub is_error: bool,
    /// Unix time of promotion.
    pub captured_unix_ns: u64,
    pub spans: Vec<OwnedSpan>,
}

/// Traces promoted into the store (cumulative).
#[cfg(not(feature = "obs-off"))]
static PROMOTED: crate::registry::Counter = crate::registry::Counter::new("obs.slow.promoted");

// Per-class promotion thresholds (fixed bank, same reason as the shed
// counters: no dynamic metric names, no locks on the completion path
// until the threshold has actually been crossed).
static THRESHOLD_QUERY: AtomicU64 = AtomicU64::new(25_000_000);
static THRESHOLD_PLAN: AtomicU64 = AtomicU64::new(50_000_000);
static THRESHOLD_MEASURES: AtomicU64 = AtomicU64::new(25_000_000);
static THRESHOLD_EDITS: AtomicU64 = AtomicU64::new(100_000_000);

fn threshold_cell(class: SloClass) -> &'static AtomicU64 {
    match class {
        SloClass::Query => &THRESHOLD_QUERY,
        SloClass::Plan => &THRESHOLD_PLAN,
        SloClass::Measures => &THRESHOLD_MEASURES,
        SloClass::Edits => &THRESHOLD_EDITS,
    }
}

/// The promotion threshold for `class`, in nanoseconds.
pub fn threshold_ns(class: SloClass) -> u64 {
    threshold_cell(class).load(Ordering::Relaxed)
}

/// Sets the promotion threshold for `class` at runtime.
pub fn set_threshold_ns(class: SloClass, ns: u64) {
    threshold_cell(class).store(ns, Ordering::Relaxed);
}

static STORE: Mutex<Vec<SlowTrace>> = Mutex::new(Vec::new());

/// Considers a just-completed request for promotion. Cheap when the
/// request was fast and clean: two relaxed loads, no lock. No-op under
/// `obs-off` and for untraced requests (`trace == 0`).
pub fn maybe_promote(class: SloClass, trace: TraceId, root_dur_ns: u64, is_error: bool) {
    #[cfg(feature = "obs-off")]
    {
        let _ = (class, trace, root_dur_ns, is_error);
    }
    #[cfg(not(feature = "obs-off"))]
    {
        if trace == 0 || (!is_error && root_dur_ns < threshold_ns(class)) {
            return;
        }
        let mut spans: Vec<OwnedSpan> =
            crate::trace::dump(0).into_iter().filter(|s| s.trace == trace).collect();
        if spans.len() > MAX_SPANS_PER_TRACE {
            // Over the cap, keep the *longest* spans: the root and the
            // stage spans are what triage needs, and a flood of
            // microsecond leaves is exactly what the cap is for. (The
            // root completes last, so a ring-order truncate would drop
            // it first.)
            spans.sort_by_key(|s| std::cmp::Reverse(s.dur_ns));
            spans.truncate(MAX_SPANS_PER_TRACE);
            spans.sort_by_key(|s| (s.start_unix_ns, s.span));
        }
        let captured_unix_ns = std::time::SystemTime::now()
            .duration_since(std::time::SystemTime::UNIX_EPOCH)
            .unwrap_or_default()
            .as_nanos() as u64;
        let entry = SlowTrace {
            trace,
            class: class.name().to_string(),
            root_dur_ns,
            is_error,
            captured_unix_ns,
            spans,
        };
        let mut store = STORE.lock().expect("slow-trace store poisoned");
        insert_top_k(&mut store, entry, SLOW_KEEP);
        PROMOTED.inc();
    }
}

/// Inserts into a duration-descending top-K list, deduping by trace id
/// (a re-promoted trace keeps its longer incarnation). Shared with the
/// router's fleet merge.
pub fn insert_top_k(store: &mut Vec<SlowTrace>, entry: SlowTrace, keep: usize) {
    if let Some(existing) = store.iter_mut().find(|t| t.trace == entry.trace) {
        if entry.root_dur_ns > existing.root_dur_ns {
            *existing = entry;
        }
    } else {
        store.push(entry);
    }
    store.sort_by_key(|t| std::cmp::Reverse(t.root_dur_ns));
    store.truncate(keep);
}

/// The current top-K, slowest first.
pub fn dump() -> Vec<SlowTrace> {
    STORE.lock().expect("slow-trace store poisoned").clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(trace: u64, dur: u64) -> SlowTrace {
        SlowTrace {
            trace,
            class: "query".into(),
            root_dur_ns: dur,
            is_error: false,
            captured_unix_ns: 0,
            spans: vec![],
        }
    }

    #[test]
    fn top_k_keeps_slowest_and_dedups_by_trace() {
        let mut store = Vec::new();
        for i in 1..=10u64 {
            insert_top_k(&mut store, entry(i, i * 100), 4);
        }
        let durs: Vec<u64> = store.iter().map(|t| t.root_dur_ns).collect();
        assert_eq!(durs, vec![1000, 900, 800, 700]);
        // Re-promoting a kept trace with a longer duration replaces it
        // in place rather than duplicating.
        insert_top_k(&mut store, entry(9, 5000), 4);
        assert_eq!(store[0].trace, 9);
        assert_eq!(store.iter().filter(|t| t.trace == 9).count(), 1);
        // A shorter re-promotion is ignored.
        insert_top_k(&mut store, entry(9, 1), 4);
        assert_eq!(store[0].root_dur_ns, 5000);
    }

    /// Records `root` with one `child` span and returns the trace id
    /// once both are visible in the ring. Sibling tests in this binary
    /// flip the global capture threshold under their own lock, so a
    /// recording attempt can be silently filtered — retry rather than
    /// touching the knob (writing it here would race *their* windows).
    #[cfg(not(feature = "obs-off"))]
    fn record_tree(root: &'static str, child: &'static str) -> u64 {
        for _ in 0..200 {
            let trace;
            {
                let r = crate::trace::root_span(root);
                trace = r.context().trace;
                let _c = crate::trace::span(child);
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
            let mine = crate::trace::dump(0).into_iter().filter(|s| s.trace == trace).count();
            if trace != 0 && mine == 2 {
                return trace;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        panic!("span tree never recorded: capture stayed filtered");
    }

    #[test]
    #[cfg(not(feature = "obs-off"))]
    fn promotion_copies_the_span_tree_out_of_the_ring() {
        let trace = record_tree("test.slow.root", "test.slow.child");
        // Below threshold and clean: not promoted.
        set_threshold_ns(SloClass::Query, u64::MAX);
        maybe_promote(SloClass::Query, trace, 1_000, false);
        assert!(!dump().iter().any(|t| t.trace == trace));
        // Above threshold: promoted with both spans.
        set_threshold_ns(SloClass::Query, 1_000);
        maybe_promote(SloClass::Query, trace, u64::MAX, false);
        let store = dump();
        let kept = store.iter().find(|t| t.trace == trace).expect("promoted");
        assert_eq!(kept.class, "query");
        assert_eq!(kept.spans.len(), 2, "root + child captured");
        assert!(kept.spans.iter().any(|s| s.name == "test.slow.root"));
        set_threshold_ns(SloClass::Query, 25_000_000);
    }

    #[test]
    #[cfg(not(feature = "obs-off"))]
    fn error_outcomes_promote_regardless_of_duration() {
        let trace = record_tree("test.slow.err", "test.slow.err_child");
        maybe_promote(SloClass::Plan, trace, 1, true);
        let store = dump();
        let kept = store.iter().find(|t| t.trace == trace).expect("error promoted");
        assert!(kept.is_error);
    }

    #[test]
    fn untraced_requests_never_promote() {
        let before = dump().len();
        maybe_promote(SloClass::Query, 0, u64::MAX, true);
        assert_eq!(dump().len(), before);
    }
}

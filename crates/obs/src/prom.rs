//! Prometheus text exposition of a [`MetricsSnapshot`].
//!
//! The scrape surface renders whatever [`snapshot()`](crate::snapshot())
//! returns — counters and gauges as-is, histograms as cumulative
//! `_bucket{le="..."}` series reconstructed from the sparse log-bucket
//! pairs. Names map `.` → `_` under a `staq_` prefix; durations follow
//! the Prometheus convention of seconds. Every family gets exactly one
//! `# HELP` and one `# TYPE` line, even when two raw names sanitize to
//! the same family.

use crate::hist::bucket_value;
use crate::snapshot::MetricsSnapshot;
use std::collections::HashSet;

/// Renders the snapshot in Prometheus text exposition format (v0.0.4).
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    let mut seen: HashSet<String> = HashSet::new();
    for c in &snap.counters {
        let name = metric_name(&c.name);
        header(&mut out, &mut seen, &name, &c.name, "counter");
        out.push_str(&format!("{name} {}\n", c.value));
    }
    for g in &snap.gauges {
        let name = metric_name(&g.name);
        header(&mut out, &mut seen, &name, &g.name, "gauge");
        out.push_str(&format!("{name} {}\n", g.value));
    }
    for h in &snap.histograms {
        let name = metric_name(&h.name);
        header(&mut out, &mut seen, &name, &h.name, "histogram");
        let mut cum = 0u64;
        for &(idx, n) in &h.buckets {
            cum += n;
            let le = bucket_value(idx as usize) as f64 / 1e9;
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{name}_sum {}\n", h.sum_ns as f64 / 1e9));
        out.push_str(&format!("{name}_count {}\n", h.count));
    }
    out
}

/// Emits the `# HELP` / `# TYPE` pair for a family, once.
fn header(out: &mut String, seen: &mut HashSet<String>, name: &str, raw: &str, kind: &str) {
    if !seen.insert(name.to_string()) {
        return;
    }
    out.push_str(&format!("# HELP {name} {}\n# TYPE {name} {kind}\n", help_text(raw, kind)));
}

/// One-line family description. Prometheus help text escapes `\` and
/// newlines; raw metric names are the only foreign content.
fn help_text(raw: &str, kind: &str) -> String {
    let what = match kind {
        "counter" => "cumulative counter",
        "gauge" => "level gauge",
        _ => "latency histogram (seconds)",
    };
    let mut escaped = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => escaped.push_str("\\\\"),
            '\n' => escaped.push_str("\\n"),
            c => escaped.push(c),
        }
    }
    format!("STAQ {what} '{escaped}'")
}

/// `engine.cache.hits` → `staq_engine_cache_hits`; anything outside
/// `[a-zA-Z0-9_]` becomes `_` so foreign names can't break the format.
fn metric_name(raw: &str) -> String {
    let mut s = String::with_capacity(raw.len() + 5);
    s.push_str("staq_");
    for c in raw.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            s.push(c);
        } else {
            s.push('_');
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;
    use crate::snapshot::{CounterSample, GaugeSample, HistogramSample};
    use std::time::Duration;

    #[test]
    fn counters_and_gauges_render_with_types() {
        let snap = MetricsSnapshot {
            counters: vec![CounterSample { name: "engine.cache.hits".into(), value: 42 }],
            gauges: vec![GaugeSample { name: "serve.workers".into(), value: 8 }],
            histograms: vec![],
        };
        let text = render(&snap);
        assert!(text.contains("# HELP staq_engine_cache_hits "));
        assert!(text.contains("# TYPE staq_engine_cache_hits counter\n"));
        assert!(text.contains("staq_engine_cache_hits 42\n"));
        assert!(text.contains("# HELP staq_serve_workers "));
        assert!(text.contains("# TYPE staq_serve_workers gauge\n"));
        assert!(text.contains("staq_serve_workers 8\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let mut h = LatencyHistogram::new();
        for i in 1..=100u64 {
            h.record(Duration::from_micros(i));
        }
        let snap = MetricsSnapshot {
            histograms: vec![HistogramSample::from_histogram("serve.request.query", &h)],
            ..Default::default()
        };
        let text = render(&snap);
        assert!(text.contains("# TYPE staq_serve_request_query histogram\n"));
        assert!(text.contains("staq_serve_request_query_bucket{le=\"+Inf\"} 100\n"));
        assert!(text.contains("staq_serve_request_query_count 100\n"));
        // Bucket counts never decrease down the page.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{le=")) {
            let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(n >= last, "non-cumulative bucket line: {line}");
            last = n;
        }
    }

    #[test]
    fn weird_names_sanitize() {
        let snap = MetricsSnapshot {
            counters: vec![CounterSample { name: "a.b-c d\"e".into(), value: 1 }],
            ..Default::default()
        };
        assert!(render(&snap).contains("staq_a_b_c_d_e 1\n"));
    }

    #[test]
    fn colliding_sanitized_names_emit_one_header_pair() {
        // `a.b` and `a_b` both sanitize to `staq_a_b`; the family header
        // must appear once, while both sample lines survive.
        let snap = MetricsSnapshot {
            counters: vec![
                CounterSample { name: "a.b".into(), value: 1 },
                CounterSample { name: "a_b".into(), value: 2 },
            ],
            ..Default::default()
        };
        let text = render(&snap);
        assert_eq!(text.matches("# TYPE staq_a_b counter").count(), 1);
        assert_eq!(text.matches("# HELP staq_a_b ").count(), 1);
        assert!(text.contains("staq_a_b 1\n") && text.contains("staq_a_b 2\n"));
    }

    #[test]
    fn help_text_escapes_backslashes_and_newlines() {
        let snap = MetricsSnapshot {
            counters: vec![CounterSample { name: "bad\\name\nwith.breaks".into(), value: 1 }],
            ..Default::default()
        };
        let text = render(&snap);
        let help = text.lines().find(|l| l.starts_with("# HELP")).unwrap();
        assert!(help.contains("bad\\\\name\\nwith.breaks"), "{help}");
        // The raw newline must not have split the page mid-directive:
        // every line is a comment or a sample, never a bare fragment.
        for line in text.lines().filter(|l| !l.is_empty()) {
            assert!(line.starts_with('#') || line.starts_with("staq_"), "stray line: {line}");
        }
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render(&MetricsSnapshot::default()), "");
    }
}

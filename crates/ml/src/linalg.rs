//! Dense row-major matrices and the small set of operations the models need.

use serde::{Deserialize, Serialize};

/// A dense `rows x cols` matrix of `f64`, row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds from a row-major vec. Panics when the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds from row slices. All rows must share a length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Single-column matrix from a slice.
    pub fn column(v: &[f64]) -> Self {
        Matrix { rows: v.len(), cols: 1, data: v.to_vec() }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Raw data, row-major.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Column `j` copied out.
    pub fn col_vec(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order: streams over `other`'s rows, cache-friendly.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// `self + alpha * other`, shapes must match.
    pub fn add_scaled(&self, other: &Matrix, alpha: f64) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| a + alpha * b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Vertical stack: `self` above `other` (same column count).
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// New matrix of selected rows.
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (k, &i) in idx.iter().enumerate() {
            out.row_mut(k).copy_from_slice(self.row(i));
        }
        out
    }

    /// Appends a constant-1 bias column on the right.
    pub fn with_bias_column(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols + 1);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out[(i, self.cols)] = 1.0;
        }
        out
    }

    /// Solves `self * X = b` for square `self` via Gaussian elimination with
    /// partial pivoting. Returns `None` for a singular system.
    pub fn solve(&self, b: &Matrix) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "solve needs a square matrix");
        assert_eq!(self.rows, b.rows, "rhs row mismatch");
        let n = self.rows;
        let m = b.cols;
        // Augmented copy.
        let mut a = self.clone();
        let mut x = b.clone();
        for col in 0..n {
            // Pivot.
            let mut piv = col;
            let mut best = a[(col, col)].abs();
            for r in col + 1..n {
                let v = a[(r, col)].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < 1e-12 {
                return None;
            }
            if piv != col {
                for j in 0..n {
                    let tmp = a[(col, j)];
                    a[(col, j)] = a[(piv, j)];
                    a[(piv, j)] = tmp;
                }
                for j in 0..m {
                    let tmp = x[(col, j)];
                    x[(col, j)] = x[(piv, j)];
                    x[(piv, j)] = tmp;
                }
            }
            // Eliminate below.
            let pivval = a[(col, col)];
            for r in col + 1..n {
                let f = a[(r, col)] / pivval;
                if f == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[(r, j)] -= f * a[(col, j)];
                }
                for j in 0..m {
                    x[(r, j)] -= f * x[(col, j)];
                }
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let pivval = a[(col, col)];
            for j in 0..m {
                x[(col, j)] /= pivval;
            }
            for r in 0..col {
                let f = a[(r, col)];
                if f == 0.0 {
                    continue;
                }
                for j in 0..m {
                    x[(r, j)] -= f * x[(col, j)];
                }
            }
        }
        Some(x)
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.5, -2.0, 3.0], vec![0.0, 4.0, 5.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let b = Matrix::column(&[5.0, 10.0]);
        let x = a.solve(&b).unwrap();
        assert!((x[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((x[(1, 0)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        let b = Matrix::column(&[1.0, 2.0]);
        assert!(a.solve(&b).is_none());
    }

    #[test]
    fn solve_multiple_rhs() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![6.0, 9.0], vec![4.0, 8.0]]);
        let x = a.solve(&b).unwrap();
        assert_eq!(x.row(0), &[2.0, 3.0]);
        assert_eq!(x.row(1), &[2.0, 4.0]);
    }

    #[test]
    fn solve_verifies_by_multiplication() {
        // Moderately sized random-ish SPD system.
        let n = 12;
        let mut a = Matrix::identity(n);
        let mut s = 1u64;
        for i in 0..n {
            for j in 0..n {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                a[(i, j)] += ((s >> 33) as f64 / u32::MAX as f64 - 0.5) * 0.3;
            }
            a[(i, i)] += 3.0;
        }
        let b = Matrix::from_vec(n, 1, (0..n).map(|i| i as f64).collect());
        let x = a.solve(&b).unwrap();
        let r = a.matmul(&x).add_scaled(&b, -1.0);
        assert!(r.frobenius() < 1e-9, "residual {}", r.frobenius());
    }

    #[test]
    fn stacking_and_selection() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let v = a.vstack(&b);
        assert_eq!(v.rows(), 3);
        let sel = v.select_rows(&[2, 0]);
        assert_eq!(sel.row(0), &[5.0, 6.0]);
        assert_eq!(sel.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn bias_column_appended() {
        let a = Matrix::from_rows(&[vec![2.0], vec![3.0]]);
        let ab = a.with_bias_column();
        assert_eq!(ab.row(0), &[2.0, 1.0]);
        assert_eq!(ab.row(1), &[3.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}

//! Windowed metric aggregation: a ring of snapshot deltas.
//!
//! The registry only ever accumulates — `serve.requests` is
//! "since boot", which answers capacity questions but not "what is p99
//! *right now*". This module turns consecutive [`MetricsSnapshot`]s into
//! per-window *deltas*: [`diff`] subtracts two snapshots (counters by
//! value, histograms bucket-pair-wise), and [`WindowRing`] keeps the
//! last N deltas so callers can read per-window rates and rebuild
//! sliding-window quantiles with [`LatencyHistogram::from_sparse`].
//!
//! Windows are *closed by ticks*, not by a background thread: whoever
//! owns the ring calls [`WindowRing::tick`] with a fresh snapshot (the
//! ops layer does this lazily when a report is requested, so the
//! dashboard's polling cadence defines the window width — each window
//! records its own `span_ns`, nothing assumes the interval is exact).
//! The ring itself is plain data, usable under `obs-off` (snapshots are
//! just empty there).

use crate::hist::{bucket_value, LatencyHistogram};
use crate::snapshot::{HistogramSample, MetricsSnapshot};
use std::collections::VecDeque;

/// One closed window: what changed between two consecutive snapshots.
///
/// `delta` is a [`MetricsSnapshot`] whose counters hold *increments*,
/// whose histograms hold only the samples recorded inside the window,
/// and whose gauges hold the level observed at the window's close (a
/// gauge is not a flow; subtracting levels would be meaningless).
#[derive(Debug, Clone, PartialEq)]
pub struct Window {
    /// Wall time the window covers, in nanoseconds.
    pub span_ns: u64,
    /// Unix time at the window's close.
    pub end_unix_ns: u64,
    pub delta: MetricsSnapshot,
}

impl Window {
    /// Counter increment over this window.
    pub fn count(&self, counter: &str) -> u64 {
        self.delta.counter(counter).unwrap_or(0)
    }

    /// Counter rate over this window, per second.
    pub fn rate(&self, counter: &str) -> f64 {
        if self.span_ns == 0 {
            return 0.0;
        }
        self.count(counter) as f64 / (self.span_ns as f64 / 1e9)
    }

    /// Quantile of a histogram's *window-local* samples, in nanoseconds.
    /// Returns 0 when the histogram saw nothing this window.
    pub fn quantile_ns(&self, hist: &str, q: f64) -> u64 {
        match self.delta.histogram(hist) {
            Some(h) => h.to_histogram().percentile(q).as_nanos() as u64,
            None => 0,
        }
    }
}

/// Subtracts `prev` from `cur`, producing the delta snapshot described
/// on [`Window`]. Metrics absent from `prev` (registered mid-window)
/// count from zero; metrics absent from `cur` are dropped.
pub fn diff(prev: &MetricsSnapshot, cur: &MetricsSnapshot) -> MetricsSnapshot {
    let mut out = MetricsSnapshot::default();
    for c in &cur.counters {
        let before = prev.counter(&c.name).unwrap_or(0);
        out.counters.push(crate::snapshot::CounterSample {
            name: c.name.clone(),
            value: c.value.saturating_sub(before),
        });
    }
    // Gauges are levels: report the closing level, not a difference.
    out.gauges = cur.gauges.clone();
    for h in &cur.histograms {
        let delta = match prev.histogram(&h.name) {
            Some(p) => diff_histogram(p, h),
            None => h.clone(),
        };
        out.histograms.push(delta);
    }
    out
}

/// Bucket-pair subtraction of two cumulative samples of the *same*
/// histogram. The window's `max_ns` is not observable from cumulative
/// state, so it is approximated by the upper edge of the highest bucket
/// that grew (clamped to the cumulative max — an upper bound either way).
fn diff_histogram(prev: &HistogramSample, cur: &HistogramSample) -> HistogramSample {
    let mut buckets: Vec<(u32, u64)> = Vec::new();
    for &(idx, n) in &cur.buckets {
        let before = prev.buckets.iter().find(|&&(i, _)| i == idx).map(|&(_, n)| n).unwrap_or(0);
        let d = n.saturating_sub(before);
        if d > 0 {
            buckets.push((idx, d));
        }
    }
    let count: u64 = buckets.iter().map(|&(_, n)| n).sum();
    let sum_ns = cur.sum_ns.saturating_sub(prev.sum_ns);
    let max_ns = buckets
        .iter()
        .map(|&(idx, _)| bucket_value(idx as usize))
        .max()
        .unwrap_or(0)
        .min(cur.max_ns);
    let h = LatencyHistogram::from_sparse(&buckets, sum_ns as u128, max_ns);
    let mut sample = HistogramSample::from_histogram(&cur.name, &h);
    sample.count = count; // from_sparse already sums, but be explicit
    sample
}

/// A bounded ring of closed windows, newest last.
#[derive(Debug, Clone)]
pub struct WindowRing {
    cap: usize,
    /// Snapshot at the last tick — next window's subtrahend.
    prev: MetricsSnapshot,
    windows: VecDeque<Window>,
}

impl WindowRing {
    /// An empty ring holding at most `cap` windows. The first [`tick`]
    /// closes a window against the `baseline` snapshot (pass the current
    /// snapshot to exclude pre-ring history, or
    /// [`MetricsSnapshot::default()`] to count from boot).
    ///
    /// [`tick`]: WindowRing::tick
    pub fn new(cap: usize, baseline: MetricsSnapshot) -> Self {
        assert!(cap > 0, "a window ring needs at least one slot");
        WindowRing { cap, prev: baseline, windows: VecDeque::with_capacity(cap) }
    }

    /// Closes the current window: everything recorded between the last
    /// tick's snapshot and `cur` becomes one [`Window`] covering
    /// `span_ns` of wall time, evicting the oldest window at capacity.
    pub fn tick(&mut self, cur: MetricsSnapshot, span_ns: u64, end_unix_ns: u64) {
        let delta = diff(&self.prev, &cur);
        if self.windows.len() == self.cap {
            self.windows.pop_front();
        }
        self.windows.push_back(Window { span_ns, end_unix_ns, delta });
        self.prev = cur;
    }

    /// Closed windows held, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &Window> {
        self.windows.iter()
    }

    /// Number of closed windows held.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The most recently closed window.
    pub fn last(&self) -> Option<&Window> {
        self.windows.back()
    }

    /// Merges the newest windows until at least `target_span_ns` of wall
    /// time is covered (or the ring runs out), returning the covered
    /// span and the summed deltas — the sliding-window view burn rates
    /// are computed from. Gauges in the result are meaningless (they sum
    /// across windows); use only counters and histograms.
    pub fn trailing(&self, target_span_ns: u64) -> (u64, MetricsSnapshot) {
        let mut covered = 0u64;
        let mut merged = MetricsSnapshot::default();
        for w in self.windows.iter().rev() {
            merged.merge(&w.delta);
            covered = covered.saturating_add(w.span_ns);
            if covered >= target_span_ns {
                break;
            }
        }
        (covered, merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::CounterSample;
    use std::time::Duration;

    fn snap_with(counter: u64, samples: &[u64]) -> MetricsSnapshot {
        let mut h = LatencyHistogram::new();
        for &ns in samples {
            h.record_ns(ns);
        }
        MetricsSnapshot {
            counters: vec![CounterSample { name: "t.reqs".into(), value: counter }],
            gauges: vec![],
            histograms: vec![HistogramSample::from_histogram("t.lat", &h)],
        }
    }

    #[test]
    fn diff_subtracts_counters_and_buckets() {
        let a = snap_with(10, &[1_000, 2_000]);
        let b = snap_with(25, &[1_000, 2_000, 50_000, 50_000, 50_000]);
        let d = diff(&a, &b);
        assert_eq!(d.counter("t.reqs"), Some(15));
        let h = d.histogram("t.lat").unwrap();
        assert_eq!(h.count, 3, "only the window's samples remain");
        // The delta's quantiles reflect the 50µs burst, not the 1-2µs
        // cumulative history.
        assert!(h.to_histogram().percentile(50.0) >= Duration::from_nanos(40_000));
    }

    #[test]
    fn diff_of_identical_snapshots_is_empty_flow() {
        let a = snap_with(7, &[5_000]);
        let d = diff(&a, &a.clone());
        assert_eq!(d.counter("t.reqs"), Some(0));
        assert_eq!(d.histogram("t.lat").unwrap().count, 0);
    }

    #[test]
    fn new_metric_mid_window_counts_from_zero() {
        let a = MetricsSnapshot::default();
        let b = snap_with(4, &[9_000]);
        let d = diff(&a, &b);
        assert_eq!(d.counter("t.reqs"), Some(4));
        assert_eq!(d.histogram("t.lat").unwrap().count, 1);
    }

    #[test]
    fn ring_rotates_and_sums_trailing_windows() {
        let mut ring = WindowRing::new(3, MetricsSnapshot::default());
        for i in 1..=5u64 {
            ring.tick(snap_with(i * 10, &[]), 1_000_000_000, i);
        }
        assert_eq!(ring.len(), 3, "capacity bounds the ring");
        // Each window saw +10; the oldest two rotated out.
        assert_eq!(ring.last().unwrap().count("t.reqs"), 10);
        assert!((ring.last().unwrap().rate("t.reqs") - 10.0).abs() < 1e-9);
        let (covered, merged) = ring.trailing(2_000_000_000);
        assert_eq!(covered, 2_000_000_000);
        assert_eq!(merged.counter("t.reqs"), Some(20));
        // Asking for more than the ring holds returns what's there.
        let (covered, merged) = ring.trailing(u64::MAX);
        assert_eq!(covered, 3_000_000_000);
        assert_eq!(merged.counter("t.reqs"), Some(30));
    }

    #[test]
    fn window_quantile_reads_window_local_samples() {
        let mut ring = WindowRing::new(4, snap_with(0, &[]));
        ring.tick(snap_with(3, &[1_000, 1_000, 1_000]), 1_000_000_000, 1);
        let slow: Vec<u64> = vec![1_000, 1_000, 1_000, 8_000_000, 8_000_000, 8_000_000];
        ring.tick(snap_with(6, &slow), 1_000_000_000, 2);
        // The burst window's p99 is the 8ms spike even though the
        // cumulative histogram is half fast samples.
        let p99 = ring.last().unwrap().quantile_ns("t.lat", 99.0);
        assert!(p99 >= 7_000_000, "burst window p99 = {p99}ns");
        let p99_first = ring.windows().next().unwrap().quantile_ns("t.lat", 99.0);
        assert!(p99_first <= 2_000, "quiet window p99 = {p99_first}ns");
    }
}

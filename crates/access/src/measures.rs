//! Zone-level access measures (paper §III-D).

use serde::{Deserialize, Serialize};
use staq_synth::ZoneId;
use staq_todam::ZoneStats;

/// The labeled measures of one zone, ready for classification, fairness
/// analysis and mapping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZoneMeasures {
    pub zone: ZoneId,
    /// Mean access cost (Eq. 2), minutes (JT) or generalized minutes (GAC).
    pub mac: f64,
    /// Access-cost standard deviation.
    pub acsd: f64,
}

impl ZoneMeasures {
    /// From a labeling result.
    pub fn from_stats(zone: ZoneId, stats: &ZoneStats) -> Self {
        ZoneMeasures { zone, mac: stats.mac, acsd: stats.acsd }
    }

    /// Collects measures from a full labeling pass, skipping unlabeled
    /// zones.
    pub fn collect(stats: &[Option<ZoneStats>]) -> Vec<ZoneMeasures> {
        stats
            .iter()
            .enumerate()
            .filter_map(|(z, s)| s.as_ref().map(|s| ZoneMeasures::from_stats(ZoneId(z as u32), s)))
            .collect()
    }
}

/// Mean over zones of a measure column; the city-level summary used in
/// reports.
pub fn city_mean(measures: &[ZoneMeasures], f: impl Fn(&ZoneMeasures) -> f64) -> f64 {
    if measures.is_empty() {
        return 0.0;
    }
    measures.iter().map(f).sum::<f64>() / measures.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(mac: f64, acsd: f64) -> ZoneStats {
        ZoneStats { mac, acsd, n_trips: 5, walk_only_frac: 0.0 }
    }

    #[test]
    fn collect_skips_unlabeled() {
        let got = ZoneMeasures::collect(&[Some(stats(10.0, 1.0)), None, Some(stats(20.0, 2.0))]);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].zone, ZoneId(0));
        assert_eq!(got[1].zone, ZoneId(2));
        assert_eq!(got[1].mac, 20.0);
    }

    #[test]
    fn city_mean_of_columns() {
        let ms = ZoneMeasures::collect(&[Some(stats(10.0, 1.0)), Some(stats(30.0, 3.0))]);
        assert_eq!(city_mean(&ms, |m| m.mac), 20.0);
        assert_eq!(city_mean(&ms, |m| m.acsd), 2.0);
        assert_eq!(city_mean(&[], |m| m.mac), 0.0);
    }
}

//! **Table II** — naïve full-labeling cost vs the SSR solution's end-to-end
//! cost (TODAM + feature extraction + β-labeling + training), and the
//! percentage saving, per POI type × β × city.
//!
//! ```text
//! cargo run --release -p staq-bench --bin table2 -- --scale 0.06
//! ```
//!
//! Paper shape to verify: savings of ~96–97 % at β = 3 % falling to ~77 %
//! at β = 30 %; labeling dominates the solution cost so the saving tracks
//! (1 − β) closely.

use staq_bench::{birmingham, coventry, BenchArgs, CsvOut};
use staq_core::{NaiveResult, OfflineArtifacts, PipelineConfig, SsrPipeline};
use staq_ml::ModelKind;
use staq_synth::PoiCategory;
use staq_todam::TodamSpec;
use staq_transit::CostKind;

fn main() {
    let args = BenchArgs::parse_with_default(BenchArgs { scale: 0.06, ..Default::default() });
    let betas: &[f64] = if args.quick { &[0.03, 0.1, 0.3] } else { &PipelineConfig::BETA_SWEEP };
    // The paper's |R| = 60 (30/hr over the 2h peak): Table II's saving is a
    // labeling-vs-everything ratio, so the start-time rate must match.
    let spec = TodamSpec { per_hour: 30, ..Default::default() };

    let mut csv =
        CsvOut::new(&["city", "category", "beta", "label_cost_s", "solution_cost_s", "saving_pct"]);
    println!("== Table II: runtime of naive vs SSR solution (scale {}) ==", args.scale);

    for city in [birmingham(&args), coventry(&args)] {
        let artifacts =
            OfflineArtifacts::build(&city, &spec.interval, &staq_road::IsochroneParams::default());
        println!("\n{} (|Z|={})", city.config.name, city.n_zones());
        println!(
            "{:<12} {:>10} | {}",
            "POI type",
            "label(s)",
            betas.iter().map(|b| format!("{:>6.0}%", b * 100.0)).collect::<Vec<_>>().join(" ")
        );
        for category in PoiCategory::ALL {
            let truth = NaiveResult::compute(&city, &spec, category, CostKind::Jt);
            let mut cells = Vec::new();
            let mut savings = Vec::new();
            for &beta in betas {
                let cfg = PipelineConfig {
                    beta,
                    model: ModelKind::Mlp,
                    cost: CostKind::Jt,
                    todam: spec.clone(),
                    seed: args.seed,
                    ..Default::default()
                };
                let result = SsrPipeline::new(&city, &artifacts, cfg).run(category);
                let solution = result.timings.total();
                let saving = (1.0 - solution / truth.label_secs) * 100.0;
                cells.push(format!("{solution:>6.2}"));
                savings.push(format!("{saving:>5.1}%"));
                csv.row(&[
                    city.config.name.clone(),
                    category.label().to_string(),
                    format!("{beta}"),
                    format!("{:.3}", truth.label_secs),
                    format!("{:.3}", solution),
                    format!("{:.2}", saving),
                ]);
            }
            println!(
                "{:<12} {:>10.2} | {}   saving: {}",
                category.label(),
                truth.label_secs,
                cells.join(" "),
                savings.join(" ")
            );
        }
    }
    csv.maybe_write(&args.out);
}

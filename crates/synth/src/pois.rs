//! POI set generation.
//!
//! POIs cluster toward density cores with category-specific spread: schools
//! are ubiquitous and follow population closely; hospitals and job centers
//! are few and central; vaccination centers (per the TfWM use case) were
//! deliberately spread across the city.

use crate::city::{nearest_zone, Poi, PoiCategory, PoiId, Zone};
use crate::config::CityConfig;
use rand::rngs::StdRng;
use rand::RngExt;
use staq_geom::{KdTree, Point};

/// Per-category placement: `(count, core_affinity)` where affinity 1.0 means
/// placement mirrors population density exactly and 0.0 means uniform.
fn plan(config: &CityConfig) -> [(PoiCategory, u32, f64); 4] {
    [
        (PoiCategory::School, config.pois.schools, 0.8),
        (PoiCategory::Hospital, config.pois.hospitals, 0.9),
        (PoiCategory::VaxCenter, config.pois.vax_centers, 0.4),
        (PoiCategory::JobCenter, config.pois.job_centers, 0.95),
    ]
}

/// Generates all POI sets for the city.
pub fn generate(
    config: &CityConfig,
    zones: &[Zone],
    cores: &[Point],
    rng: &mut StdRng,
) -> Vec<Poi> {
    let zone_tree = KdTree::build(&zones.iter().map(|z| (z.centroid, z.id.0)).collect::<Vec<_>>());
    // Cumulative population weights for density-proportional placement.
    let mut cum: Vec<f64> = Vec::with_capacity(zones.len());
    let mut acc = 0.0;
    for z in zones {
        acc += z.population;
        cum.push(acc);
    }
    let total = acc;

    let mut out = Vec::new();
    for (cat, count, affinity) in plan(config) {
        for _ in 0..count {
            let pos = if rng.random_range(0.0..1.0) < affinity {
                // Density-proportional: pick a zone by population, jitter
                // within roughly one zone diameter.
                let u = rng.random_range(0.0..total);
                let zi = cum.partition_point(|&c| c < u).min(zones.len() - 1);
                let cell = config.side_m / (zones.len() as f64).sqrt();
                zones[zi]
                    .centroid
                    .offset(rng.random_range(-0.6..0.6) * cell, rng.random_range(-0.6..0.6) * cell)
            } else {
                // Uniform over the study area (with a small margin).
                let m = config.side_m * 0.03;
                Point::new(
                    rng.random_range(m..config.side_m - m),
                    rng.random_range(m..config.side_m - m),
                )
            };
            let id = PoiId(out.len() as u32);
            out.push(Poi { id, category: cat, pos, zone: nearest_zone(&zone_tree, &pos) });
        }
    }
    // Suppress an unused warning when cores gain no direct role here; core
    // pull is already baked into zone populations.
    let _ = cores;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::City;
    use rand::SeedableRng;

    #[test]
    fn counts_per_category() {
        let cfg = CityConfig::small(21);
        let city = City::generate(&cfg);
        let counts = |cat| city.pois.iter().filter(|p| p.category == cat).count() as u32;
        assert_eq!(counts(PoiCategory::School), cfg.pois.schools);
        assert_eq!(counts(PoiCategory::Hospital), cfg.pois.hospitals);
        assert_eq!(counts(PoiCategory::VaxCenter), cfg.pois.vax_centers);
        assert_eq!(counts(PoiCategory::JobCenter), cfg.pois.job_centers);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let city = City::generate(&CityConfig::small(22));
        for (i, p) in city.pois.iter().enumerate() {
            assert_eq!(p.id.idx(), i);
        }
    }

    #[test]
    fn schools_follow_population() {
        // Schools (affinity 0.8) should be nearer the core on average than a
        // uniform scatter would be.
        let cfg = CityConfig::small(23);
        let city = City::generate(&cfg);
        let center = city.cores[0];
        let mean_school_dist: f64 = {
            let schools = city.pois_of(PoiCategory::School);
            schools.iter().map(|p| p.pos.dist(&center)).sum::<f64>() / schools.len() as f64
        };
        // Uniform expectation over a square of side L centered at L/2 is
        // ≈ 0.3826 L; population-following placement should land well under.
        assert!(
            mean_school_dist < cfg.side_m * 0.34,
            "schools not clustered: mean dist {mean_school_dist}"
        );
    }

    #[test]
    fn poi_positions_inside_area() {
        let cfg = CityConfig::small(24);
        let city = City::generate(&cfg);
        for p in &city.pois {
            assert!(p.pos.x > -cfg.side_m * 0.05 && p.pos.x < cfg.side_m * 1.05);
            assert!(p.pos.y > -cfg.side_m * 0.05 && p.pos.y < cfg.side_m * 1.05);
        }
    }

    #[test]
    fn generate_standalone_is_deterministic() {
        let cfg = CityConfig::small(25);
        let city = City::generate(&cfg);
        let mut rng = StdRng::seed_from_u64(99);
        let a = generate(&cfg, &city.zones, &city.cores, &mut rng);
        let mut rng = StdRng::seed_from_u64(99);
        let b = generate(&cfg, &city.zones, &city.cores, &mut rng);
        assert_eq!(a, b);
    }
}

//! Benchmark for the staq-rt streaming subsystem.
//!
//! ```text
//! staq-rt-bench [--duration secs] [--readers N] [--scenarios K]
//!               [--seed N] [--emit-json path]
//! ```
//!
//! Two phases:
//!
//! * **Stream** — one writer applies timetable deltas through the
//!   sequenced log as fast as the engine absorbs them while `--readers`
//!   threads hammer queries against the same engine. Reported as
//!   deltas/sec and queries/sec over `--duration`; the mix alternates
//!   structural `TripDelay`s (incremental hop-tree rebuilds + cache
//!   invalidation) with advisory `ServiceAlert`s (no locks taken), which
//!   is what live feeds look like.
//! * **What-if** — `--scenarios` (K) counterfactuals evaluated two ways
//!   against the same pristine city: once through
//!   [`RtEngine::what_if`]'s copy-on-write overlays over one immutable
//!   base, and once the naive way — K cloned cities, each mutated and
//!   given a brand-new engine that recomputes everything. The report
//!   carries both wall times and their ratio; the subsystem's contract
//!   is `ratio < 0.30` at K = 8.
//!
//! `--emit-json` writes `BENCH_rt.json` with both sections for CI
//! archiving.
//!
//! [`RtEngine::what_if`]: staq_rt::RtEngine::what_if

use staq_core::{AccessEngine, PipelineConfig};
use staq_gtfs::model::{RouteId, TripId};
use staq_gtfs::Delta;
use staq_ml::ModelKind;
use staq_rt::RtEngine;
use staq_synth::{City, CityConfig, PoiCategory};
use staq_todam::TodamSpec;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    duration: Duration,
    readers: usize,
    scenarios: usize,
    seed: u64,
    emit_json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        duration: Duration::from_secs(5),
        readers: 4,
        scenarios: 8,
        seed: 42,
        emit_json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--duration" => args.duration = Duration::from_secs_f64(parse(&mut it, "--duration")),
            "--readers" => args.readers = parse(&mut it, "--readers"),
            "--scenarios" => args.scenarios = parse(&mut it, "--scenarios"),
            "--seed" => args.seed = parse(&mut it, "--seed"),
            "--emit-json" => args.emit_json = Some(need(&mut it, "--emit-json")),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if args.readers == 0 {
        usage("--readers must be at least 1");
    }
    if args.scenarios == 0 {
        usage("--scenarios must be at least 1");
    }
    args
}

fn need(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")))
}

fn parse<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
    need(it, flag).parse().unwrap_or_else(|_| usage(&format!("{flag} needs a valid value")))
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}\n");
    }
    eprintln!(
        "usage: staq-rt-bench [--duration secs] [--readers N] [--scenarios K] \
         [--seed N] [--emit-json path]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

fn pipeline_config() -> PipelineConfig {
    PipelineConfig {
        beta: 0.2,
        model: ModelKind::Ols,
        todam: TodamSpec { per_hour: 3, ..Default::default() },
        ..Default::default()
    }
}

/// Streams deltas through the log while reader threads query.
fn bench_stream(args: &Args) -> (u64, u64, f64) {
    let city = City::generate(&CityConfig::small(args.seed));
    let n_trips = city.feed.feed().trips.len() as u32;
    let rt = Arc::new(RtEngine::new(Arc::new(AccessEngine::new(city, pipeline_config()))));

    // Warm every category the readers will touch: the stream phase
    // measures steady-state invalidate/recompute, not four cold starts.
    let cats = [PoiCategory::School, PoiCategory::Hospital];
    for c in cats {
        rt.engine().measures(c);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let queries = Arc::new(AtomicU64::new(0));
    let deltas = crossbeam::scope(|scope| {
        for r in 0..args.readers {
            let rt = Arc::clone(&rt);
            let stop = Arc::clone(&stop);
            let queries = Arc::clone(&queries);
            scope.spawn(move |_| {
                let mut i = r;
                while !stop.load(Ordering::Relaxed) {
                    let cat = cats[i % cats.len()];
                    rt.engine().query(&staq_access::AccessQuery::MeanAccess, cat);
                    queries.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }

        // The writer: alternate structural delays with advisory alerts,
        // rotating over real trips so every delta is valid.
        let deadline = Instant::now() + args.duration;
        let mut applied = 0u64;
        let mut i = 0u32;
        while Instant::now() < deadline {
            let delta = if i.is_multiple_of(2) {
                Delta::TripDelay { trip: TripId(i / 2 % n_trips), delay_secs: 30 }
            } else {
                Delta::ServiceAlert { route: RouteId(0), message: "bench alert".into() }
            };
            rt.apply(delta).expect("bench delta applies");
            applied += 1;
            i += 1;
        }
        stop.store(true, Ordering::Relaxed);
        applied
    })
    .expect("stream scope");

    let q = queries.load(Ordering::Relaxed);
    (deltas, q, args.duration.as_secs_f64())
}

/// K what-if overlays vs K cloned-and-rebuilt engines.
fn bench_what_if(args: &Args) -> (f64, f64, u64) {
    let city = City::generate(&CityConfig::small(args.seed));
    let n_routes = city.feed.feed().routes.len() as u32;
    let bus_speed = city.config.bus_speed_mps;
    let category = PoiCategory::School;
    let scenarios: Vec<Vec<Delta>> = (0..args.scenarios)
        .map(|k| vec![Delta::RouteRemove { route: RouteId(k as u32 % n_routes) }])
        .collect();

    let rt = RtEngine::new(Arc::new(AccessEngine::new(city.clone(), pipeline_config())));
    // The base measures are what-if's shared immutable input; computing
    // them is the cost of *serving*, not of the scenarios.
    rt.engine().measures(category);

    let t = Instant::now();
    let outcomes = rt.what_if(category, &scenarios).expect("what-if evaluates");
    let what_if_s = t.elapsed().as_secs_f64();
    let overlay_bytes: u64 = outcomes.iter().map(|o| o.overlay.overlay_bytes as u64).sum();

    // Naive baseline: clone the city per scenario, mutate its feed, and
    // pay a full fresh-engine pipeline run for the same measures.
    let t = Instant::now();
    for deltas in &scenarios {
        let mut clone = city.clone();
        for d in deltas {
            clone.feed.apply_delta(d, bus_speed).expect("baseline delta applies");
        }
        let fresh = AccessEngine::new(clone, pipeline_config());
        fresh.measures(category);
    }
    let clone_s = t.elapsed().as_secs_f64();

    (what_if_s, clone_s, overlay_bytes)
}

fn main() {
    let args = parse_args();

    println!("== stream: deltas under {} readers ==", args.readers);
    let (deltas, queries, secs) = bench_stream(&args);
    let dps = deltas as f64 / secs;
    let qps = queries as f64 / secs;
    println!("  applied {deltas} deltas in {secs:.1}s  ({dps:.0} deltas/s)");
    println!("  served  {queries} queries concurrently ({qps:.0} queries/s)");

    println!("== what-if: K={} overlays vs K clones ==", args.scenarios);
    let (what_if_s, clone_s, overlay_bytes) = bench_what_if(&args);
    let ratio = what_if_s / clone_s;
    let pass = ratio < 0.30;
    println!("  what-if  {:.0} ms  ({overlay_bytes} overlay bytes)", what_if_s * 1e3);
    println!("  clones   {:.0} ms", clone_s * 1e3);
    println!("  ratio    {ratio:.3}  (contract < 0.300: {})", if pass { "pass" } else { "FAIL" });

    if let Some(path) = &args.emit_json {
        let json = format!(
            "{{\"bench\":\"staq-rt-bench\",\"seed\":{},\
             \"stream\":{{\"readers\":{},\"duration_s\":{:.3},\"deltas_applied\":{},\
             \"deltas_per_sec\":{:.1},\"queries_served\":{},\"queries_per_sec\":{:.1}}},\
             \"what_if\":{{\"k\":{},\"what_if_ms\":{:.3},\"clone_ms\":{:.3},\
             \"ratio\":{:.4},\"gate\":0.30,\"gate_pass\":{},\"overlay_bytes\":{}}}}}",
            args.seed,
            args.readers,
            secs,
            deltas,
            dps,
            queries,
            qps,
            args.scenarios,
            what_if_s * 1e3,
            clone_s * 1e3,
            ratio,
            pass,
            overlay_bytes,
        );
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }
}

//! # staq-obs
//!
//! Zero-dependency metrics & tracing for the STAQ workspace. The paper's
//! cost analysis (§IV-E) says SPQ labeling dominates end-to-end runtime;
//! this crate makes "where do the seconds go" answerable in-process and
//! over the wire, without taking a lock on any hot path.
//!
//! Three pieces:
//!
//! * [`registry`] — `static`-declared [`Counter`]s, [`Gauge`]s and
//!   concurrent [`AtomicHistogram`]s that self-register on first touch.
//!   Recording is relaxed atomics only; [`snapshot()`] assembles the
//!   registry's state on demand without blocking writers.
//! * [`hist`] — the log-bucketed mergeable [`LatencyHistogram`]
//!   (previously in `staq-bench`, re-exported there for compatibility)
//!   plus the bucket math shared with the atomic variant.
//! * [`snapshot`] — [`MetricsSnapshot`], the serde-typed interchange view
//!   with a hand-rolled JSON codec (`to_json`/`from_json`) for
//!   `BENCH_*.json` trajectories and the serve `Stats` frame.
//!
//! Instrumentation cost: a counter bump is one relaxed `fetch_add` plus a
//! relaxed flag load; a histogram record is three. Building with the
//! `obs-off` feature compiles every recording call to a no-op so the
//! overhead itself is benchmarkable.

pub mod hist;
pub mod registry;
pub mod snapshot;

pub use hist::{fmt_dur, LatencyHistogram};
pub use registry::{snapshot, AtomicHistogram, Counter, Gauge, ScopedTimer};
pub use snapshot::{CounterSample, GaugeSample, HistogramSample, JsonError, MetricsSnapshot};

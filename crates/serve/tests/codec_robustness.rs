//! Codec robustness: the shard router decodes frames produced by backend
//! processes it does not control, so the decoder must survive arbitrary
//! bytes — truncated frames, corrupted bytes, lying length prefixes and
//! element counts — without panicking or allocating unboundedly.
//!
//! Complements the round-trip tests inside `codec.rs`: those check that
//! well-formed frames survive; this file checks that malformed ones fail
//! *cleanly*.

use bytes::{BufMut, BytesMut};
use proptest::prelude::*;
use staq_access::measures::ZoneMeasures;
use staq_access::{AccessClass, AccessQuery, DemographicWeight, QueryAnswer};
use staq_geom::Point;
use staq_obs::{CounterSample, GaugeSample, HistogramSample, MetricsSnapshot};
use staq_serve::codec::{
    decode_request, decode_response, encode_request, encode_response, ErrorCode, Request, Response,
    StatsReply,
};
use staq_synth::{PoiCategory, ZoneId};

/// One of every request variant, exercising every encoder branch.
fn request_catalogue() -> Vec<Request> {
    vec![
        Request::Measures { category: PoiCategory::School, approx: false },
        Request::Measures { category: PoiCategory::JobCenter, approx: true },
        Request::Query {
            category: PoiCategory::Hospital,
            query: AccessQuery::MeanAccess,
            approx: false,
        },
        Request::Query {
            category: PoiCategory::School,
            query: AccessQuery::Classification,
            approx: false,
        },
        Request::Query {
            category: PoiCategory::VaxCenter,
            query: AccessQuery::AtRisk { threshold_factor: 1.25 },
            approx: false,
        },
        Request::Query {
            category: PoiCategory::JobCenter,
            query: AccessQuery::Fairness { weight: DemographicWeight::Vulnerable },
            approx: false,
        },
        Request::Query {
            category: PoiCategory::School,
            query: AccessQuery::WorstZones { k: 5 },
            approx: false,
        },
        Request::Query {
            category: PoiCategory::Hospital,
            query: AccessQuery::PointAccess { x: 512.0, y: -80.25 },
            approx: true,
        },
        Request::AddPoi { category: PoiCategory::Hospital, pos: Point::new(-12.5, 99.0) },
        Request::AddBusRoute {
            stops: vec![Point::new(0.0, 0.0), Point::new(100.0, 50.0), Point::new(10.0, 1.0)],
            headway_s: 450,
        },
        Request::Stats,
    ]
}

fn sample_metrics() -> MetricsSnapshot {
    MetricsSnapshot {
        counters: vec![CounterSample { name: "a.b".into(), value: 7 }],
        gauges: vec![GaugeSample { name: "c".into(), value: 1 }],
        histograms: vec![HistogramSample {
            name: "d.e".into(),
            count: 10,
            sum_ns: 1000,
            max_ns: 200,
            p50_ns: 90,
            p95_ns: 180,
            p99_ns: 199,
            buckets: vec![(3, 9), (40, 1)],
        }],
    }
}

/// One of every response variant, including every answer tag and error
/// code.
fn response_catalogue() -> Vec<Response> {
    vec![
        Response::Measures(vec![
            ZoneMeasures { zone: ZoneId(1), mac: 11.0, acsd: 0.25 },
            ZoneMeasures { zone: ZoneId(9), mac: 44.5, acsd: 3.5 },
        ]),
        Response::Query(QueryAnswer::MeanAccess { mean_mac: 9.5, mean_acsd: 1.0, n_zones: 64 }),
        Response::Query(QueryAnswer::Classification(vec![
            (ZoneId(0), AccessClass::Best),
            (ZoneId(1), AccessClass::MostlyGood),
            (ZoneId(2), AccessClass::MostlyBad),
            (ZoneId(3), AccessClass::Worst),
        ])),
        Response::Query(QueryAnswer::AtRisk(vec![ZoneId(5), ZoneId(6)])),
        Response::Query(QueryAnswer::Fairness(0.5)),
        Response::Query(QueryAnswer::WorstZones(vec![(ZoneId(2), 80.0), (ZoneId(4), 70.0)])),
        Response::AddPoi { poi_id: 17 },
        Response::AddBusRoute { zones_rebuilt: 4 },
        Response::Stats(StatsReply {
            pipeline_runs: 2,
            requests_served: 99,
            cached: vec![PoiCategory::School, PoiCategory::VaxCenter],
            workers: 4,
            metrics: sample_metrics(),
        }),
        Response::Error { code: ErrorCode::BadRequest, message: "x".into() },
        Response::Error { code: ErrorCode::Invalid, message: "yy".into() },
        Response::Error { code: ErrorCode::Unavailable, message: String::new() },
    ]
}

fn encoded_requests() -> Vec<Vec<u8>> {
    request_catalogue()
        .iter()
        .map(|r| {
            let mut b = BytesMut::new();
            encode_request(r, &mut b);
            b.to_vec()
        })
        .collect()
}

fn encoded_responses() -> Vec<Vec<u8>> {
    response_catalogue()
        .iter()
        .map(|r| {
            let mut b = BytesMut::new();
            encode_response(r, &mut b);
            b.to_vec()
        })
        .collect()
}

#[test]
fn every_request_variant_roundtrips() {
    for req in request_catalogue() {
        let mut b = BytesMut::new();
        encode_request(&req, &mut b);
        let got = decode_request(&mut b).unwrap().expect("complete frame");
        assert_eq!(got, req);
        assert!(b.is_empty());
    }
}

#[test]
fn every_response_variant_roundtrips() {
    for resp in response_catalogue() {
        let mut b = BytesMut::new();
        encode_response(&resp, &mut b);
        let got = decode_response(&mut b).unwrap().expect("complete frame");
        assert_eq!(got, resp);
        assert!(b.is_empty());
    }
}

/// Rewrites the length prefix of `raw[..cut]` so the truncation presents
/// as a complete frame; `None` when the cut leaves no full prefix.
fn truncated_frame(raw: &[u8], cut: usize) -> Option<BytesMut> {
    if cut < 4 {
        return None;
    }
    let mut t = raw[..cut].to_vec();
    let len = (cut - 4) as u32;
    t[..4].copy_from_slice(&len.to_be_bytes());
    let mut b = BytesMut::new();
    b.extend_from_slice(&t);
    Some(b)
}

/// Every strict truncation of every variant, presented as a complete
/// frame, must decode to a clean error — never a panic, never a silently
/// shorter value.
#[test]
fn truncations_of_every_request_fail_cleanly() {
    for raw in encoded_requests() {
        for cut in 0..raw.len() {
            let Some(mut b) = truncated_frame(&raw, cut) else { continue };
            match decode_request(&mut b) {
                Err(_) | Ok(None) => {}
                Ok(Some(got)) => panic!("truncation at {cut}/{} decoded as {got:?}", raw.len()),
            }
        }
    }
}

#[test]
fn truncations_of_every_response_fail_cleanly() {
    for raw in encoded_responses() {
        for cut in 0..raw.len() {
            let Some(mut b) = truncated_frame(&raw, cut) else { continue };
            match decode_response(&mut b) {
                Err(_) | Ok(None) => {}
                Ok(Some(got)) => panic!("truncation at {cut}/{} decoded as {got:?}", raw.len()),
            }
        }
    }
}

/// A frame that claims a huge element count but carries almost no bytes
/// must be rejected without reserving the claimed capacity (the decoder
/// caps its pre-allocation by the bytes actually present).
#[test]
fn lying_element_counts_do_not_allocate() {
    // Measures response claiming u32::MAX zones, 0 carried.
    let mut b = BytesMut::new();
    b.put_u32(2 + 4); // version + kind + count
    b.put_u8(staq_serve::WIRE_VERSION);
    b.put_u8(0x81); // K_R_MEASURES
    b.put_u32(u32::MAX);
    assert!(decode_response(&mut b).is_err());

    // Classification answer claiming u32::MAX entries.
    let mut b = BytesMut::new();
    b.put_u32(2 + 1 + 4); // version + kind + tag + count
    b.put_u8(staq_serve::WIRE_VERSION);
    b.put_u8(0x82); // K_R_QUERY
    b.put_u8(1); // Classification tag
    b.put_u32(u32::MAX);
    assert!(decode_response(&mut b).is_err());

    // AddBusRoute request claiming u16::MAX stops.
    let mut b = BytesMut::new();
    b.put_u32(2 + 4 + 2); // version + kind + headway + count
    b.put_u8(staq_serve::WIRE_VERSION);
    b.put_u8(0x04); // K_ADD_BUS_ROUTE
    b.put_u32(600);
    b.put_u16(u16::MAX);
    assert!(decode_request(&mut b).is_err());
}

/// Drains a buffer the way a connection loop does; returns how many
/// frames decoded before the stream ended or went bad.
fn drain_responses(mut b: BytesMut) -> usize {
    let mut n = 0;
    loop {
        match decode_response(&mut b) {
            Ok(Some(_)) => n += 1,
            Ok(None) | Err(_) => return n,
        }
    }
}

fn drain_requests(mut b: BytesMut) -> usize {
    let mut n = 0;
    loop {
        match decode_request(&mut b) {
            Ok(Some(_)) => n += 1,
            Ok(None) | Err(_) => return n,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Flipping any single byte of any well-formed response frame must
    /// never panic the decoder (it may still decode — some bytes are
    /// payload values — but it must return).
    #[test]
    fn single_byte_corruption_never_panics(
        frame_idx in 0usize..12,
        byte_idx in 0usize..4096,
        value in 0u8..=255u8,
    ) {
        let frames = encoded_responses();
        let raw = &frames[frame_idx % frames.len()];
        let mut corrupted = raw.clone();
        let i = byte_idx % corrupted.len();
        corrupted[i] = value;
        let mut b = BytesMut::new();
        b.extend_from_slice(&corrupted);
        drain_responses(b);
    }

    #[test]
    fn request_corruption_never_panics(
        frame_idx in 0usize..9,
        byte_idx in 0usize..4096,
        value in 0u8..=255u8,
    ) {
        let frames = encoded_requests();
        let raw = &frames[frame_idx % frames.len()];
        let mut corrupted = raw.clone();
        let i = byte_idx % corrupted.len();
        corrupted[i] = value;
        let mut b = BytesMut::new();
        b.extend_from_slice(&corrupted);
        drain_requests(b);
    }

    /// Entirely arbitrary bytes: the decoders must terminate cleanly on
    /// garbage streams of any shape.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255u8, 0..2048)) {
        let mut b = BytesMut::new();
        b.extend_from_slice(&bytes);
        drain_responses(b);
        let mut b = BytesMut::new();
        b.extend_from_slice(&bytes);
        drain_requests(b);
    }
}

//! # staq-transit
//!
//! The multimodal journey planner — this repository's substitute for Open
//! Trip Planner, which the paper uses as its `(o, d, t) → journey` oracle
//! for labeling (§IV-D). Given an origin point, destination point, departure
//! time and day, the router returns the earliest-arriving journey as a
//! sequence of legs (access walk, wait, ride, transfer, egress walk), from
//! which both access costs are computed:
//!
//! * **JT** — journey time, `c(o,d,t) = AT(d) − t` (§III-C);
//! * **GAC** — generalized access cost, Eq. (1): weighted walk/wait/in-vehicle
//!   time, transfer penalties, and fare divided by the value of time,
//!   following the UK DfT TAG M3.2 convention the paper cites.
//!
//! Two routing algorithms are provided:
//!
//! * [`raptor`] — round-based RAPTOR over trip patterns: exact earliest
//!   arrival with a bounded number of transfers. The production labeler.
//!   Also answers multi-criteria queries: [`raptor::Raptor::query_pareto`]
//!   returns the (arrival, transfers) frontier via [`pareto`]'s `Bag`, and
//!   [`raptor::Raptor::query_max_transfers`] the fastest ≤K-transfer
//!   journey.
//! * [`mmdijkstra`] — a time-dependent multimodal Dijkstra baseline used for
//!   cross-validation tests and the router ablation benchmark.
//!
//! [`network::TransitNetwork`] precomputes the structures both share: trip
//! patterns, stop→road-node snapping, stop-to-stop foot transfers.

pub mod cost;
pub mod fare;
pub mod journey;
pub mod mmdijkstra;
pub mod network;
pub mod pareto;
pub mod raptor;
pub mod shared_cache;

pub use cost::{AccessCost, CostKind, GacWeights};
pub use fare::FareModel;
pub use journey::{Journey, Leg};
pub use network::{AccessCache, OverlayStats, RouterConfig, TransitNetwork};
pub use pareto::{Bag, ParetoLabel};
pub use raptor::Raptor;
pub use shared_cache::{QueryCache, SharedAccessCache, SharedCacheHandle};

//! # staq-core
//!
//! The end-to-end system: dynamic spatio-temporal **access queries** solved
//! with semi-supervised regression (the paper's Fig. 1 pipeline), plus the
//! naïve fully-labeled baseline it is evaluated against.
//!
//! The flow, one module per stage:
//!
//! ```text
//!   city (staq-synth)
//!     └─ offline: hop trees + isochrones          [artifacts]
//!         └─ TODAM M_g (gravity-gated trips)      [staq-todam]
//!             ├─ β-sample zones → label via SPQs  [pipeline]
//!             ├─ OD features → α-weighted origin  [staq-hoptree]
//!             └─ SSR train + infer                [staq-ml]
//!                 └─ measures, classes, fairness  [staq-access]
//! ```
//!
//! * [`config`] — pipeline parameters (β, model, cost kind, spec).
//! * [`artifacts`] — the offline bundle shared across runs.
//! * [`naive`] — ground truth: label every zone (Table II's "Label Cost").
//! * [`pipeline`] — the SSR solution with stage timings.
//! * [`report`] — evaluation (MAE, correlations, class accuracy, FIE) and
//!   runtime accounting.
//! * [`engine`] — [`engine::AccessEngine`]: a stateful façade that answers
//!   [`staq_access::AccessQuery`]s and supports *dynamic scenario edits*
//!   (add a POI, add a bus route) with incremental artifact rebuilds.

pub mod artifacts;
pub mod config;
pub mod engine;
pub mod naive;
pub mod pipeline;
pub mod report;

pub use artifacts::OfflineArtifacts;
pub use config::{PipelineConfig, SamplingStrategy};
pub use engine::{AccessEngine, ApproxConfig, DeltaApplied, EngineOptions, ScenarioOutcome};
pub use naive::NaiveResult;
pub use pipeline::{PipelineResult, SsrPipeline};
pub use report::{evaluate, EvalReport};

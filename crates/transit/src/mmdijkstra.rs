//! Time-dependent multimodal Dijkstra: the baseline router.
//!
//! Labels stops with earliest arrival and relaxes two move kinds: foot
//! transfers, and "board the next catchable trip and alight at any later
//! stop". Unlike RAPTOR it has no boarding bound, making it the reference
//! implementation: RAPTOR must never beat it, and matches it whenever the
//! optimum uses at most `max_boardings` rides. The router ablation benchmark
//! (DESIGN.md) compares the two.

use crate::network::TransitNetwork;
use staq_geom::Point;
use staq_gtfs::time::{DayOfWeek, Stime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Earliest arrival at `dest` from `origin` departing `depart` on `day`,
/// including the walk-only fallback (always finite).
pub fn earliest_arrival(
    net: &TransitNetwork<'_>,
    origin: &Point,
    dest: &Point,
    depart: Stime,
    day: DayOfWeek,
) -> Stime {
    let n_stops = net.n_stops();
    let mut arr = vec![u32::MAX; n_stops];
    let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();

    for (s, walk) in net.access_stops(origin) {
        let t = depart.0.saturating_add(walk);
        if t < arr[s.idx()] {
            arr[s.idx()] = t;
            heap.push(Reverse((t, s.0)));
        }
    }

    // Egress walks, for early exit bookkeeping.
    let mut egress = vec![u32::MAX; n_stops];
    for (s, walk) in net.access_stops(dest) {
        egress[s.idx()] = walk;
    }

    let direct = depart.0.saturating_add(net.direct_walk_secs(origin, dest));
    let mut best_total = direct;

    while let Some(Reverse((t, s))) = heap.pop() {
        if t > arr[s as usize] {
            continue; // stale
        }
        if t >= best_total {
            break; // nothing on the heap can still improve the destination
        }
        if egress[s as usize] != u32::MAX {
            best_total = best_total.min(t.saturating_add(egress[s as usize]));
        }
        let stop = staq_gtfs::model::StopId(s);
        // Foot transfers.
        for tr in net.transfers_from(stop) {
            let nt = t.saturating_add(tr.walk_secs);
            if nt < arr[tr.to.idx()] {
                arr[tr.to.idx()] = nt;
                heap.push(Reverse((nt, tr.to.0)));
            }
        }
        // Ride the next catchable trip of every pattern through this stop.
        for &(pi, pos) in net.patterns_at(stop) {
            let p = &net.patterns()[pi as usize];
            let Some(trip) = p.earliest_trip(pos as usize, Stime(t), day) else {
                continue;
            };
            for i in (pos as usize + 1)..p.stops.len() {
                let at = p.arrival(trip, i).0;
                let to = p.stops[i];
                if at < arr[to.idx()] {
                    arr[to.idx()] = at;
                    heap.push(Reverse((at, to.0)));
                }
            }
        }
    }

    Stime(best_total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raptor::Raptor;
    use staq_synth::{City, CityConfig};

    #[test]
    fn dijkstra_never_loses_to_raptor() {
        let city = City::generate(&CityConfig::small(42));
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let raptor = Raptor::new(&net);
        let depart = Stime::hms(7, 30, 0);
        let mut equal = 0;
        let n = 30;
        for i in 0..n {
            let o = city.zones[(i * 11) % city.zones.len()].centroid;
            let d = city.zones[(i * 17 + 3) % city.zones.len()].centroid;
            let dij = earliest_arrival(&net, &o, &d, depart, DayOfWeek::Tuesday);
            let rap = raptor.earliest_arrival(&o, &d, depart, DayOfWeek::Tuesday);
            assert!(dij <= rap, "unbounded Dijkstra ({dij}) must not lose to RAPTOR ({rap})");
            if dij == rap {
                equal += 1;
            }
        }
        assert!(equal * 10 >= n * 7, "routers should agree on most ODs, agreed {equal}/{n}");
    }

    #[test]
    fn walk_fallback_on_sunday() {
        let city = City::generate(&CityConfig::tiny(5));
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let o = city.zones[0].centroid;
        let d = city.zones[city.zones.len() - 1].centroid;
        let depart = Stime::hms(8, 0, 0);
        let at = earliest_arrival(&net, &o, &d, depart, DayOfWeek::Sunday);
        assert_eq!(at.0, depart.0 + net.direct_walk_secs(&o, &d));
    }

    #[test]
    fn arrival_never_precedes_departure() {
        let city = City::generate(&CityConfig::tiny(6));
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let depart = Stime::hms(7, 0, 0);
        for z in &city.zones {
            let at =
                earliest_arrival(&net, &city.cores[0], &z.centroid, depart, DayOfWeek::Tuesday);
            assert!(at >= depart);
        }
    }
}

//! Sequence helpers.

use crate::RngCore;

/// Slice shuffling and choosing.
pub trait SliceRandom {
    type Item;

    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// Uniformly chosen element, `None` when empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let span = (i + 1) as u128;
            let j = (((rng.next_u64() as u128).wrapping_mul(span)) >> 64) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            return None;
        }
        let span = self.len() as u128;
        let i = (((rng.next_u64() as u128).wrapping_mul(span)) >> 64) as usize;
        Some(&self[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut r = StdRng::seed_from_u64(9);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}

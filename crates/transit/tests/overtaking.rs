//! Regression tests for delay-induced overtaking in the trip-boarding path.
//!
//! A uniform `TripDelay` can make a delayed trip *cross* a slower successor
//! — depart after it at the first stop yet arrive before it downstream.
//! Rebuilding a network from such a feed used to hit `check_no_overtaking`'s
//! `assert!` and panic a serving backend; the boarding binary search also
//! leaned on departure columns being sorted, which only arrivals were ever
//! checked for. The fix splits overtaking trips into separate
//! non-overtaking patterns at build time (mirroring what the overlay delay
//! path always did) and reserves errors for genuinely malformed trips.

use staq_geom::Point;
use staq_gtfs::model::{
    Agency, AgencyId, Feed, Route, RouteId, RouteType, Service, ServiceId, Stop, StopId, StopTime,
    Trip, TripId,
};
use staq_gtfs::time::{DayOfWeek, Stime};
use staq_gtfs::{Delta, FeedIndex};
use staq_synth::{City, CityConfig};
use staq_transit::{Raptor, TransitNetwork};

/// A feed with one route, three stops, and two trips whose run times
/// differ: trip 0 is fast (10-minute hops), trip 1 slow (20-minute hops).
/// Delaying trip 0 past trip 1's departure makes it overtake trip 1.
fn crossing_feed(stops_at: [Point; 3]) -> Feed {
    let stops: Vec<Stop> = stops_at
        .iter()
        .enumerate()
        .map(|(k, p)| Stop {
            id: StopId(k as u32),
            gtfs_id: format!("S{k}"),
            name: format!("Stop {k}"),
            pos: *p,
        })
        .collect();
    let mut stop_times = Vec::new();
    // trip 0: departs 8:00, 600 s hops; trip 1: departs 8:05, 1200 s hops.
    for (trip, start, hop) in [(0u32, 8 * 3600, 600u32), (1, 8 * 3600 + 300, 1200)] {
        for seq in 0u32..3 {
            let arr = start + seq * hop;
            let dep = if seq < 2 { arr + 15 } else { arr };
            stop_times.push(StopTime {
                trip: TripId(trip),
                stop: StopId(seq),
                arrival: Stime(arr),
                departure: Stime(dep),
                seq,
            });
        }
    }
    Feed {
        agencies: vec![Agency { id: AgencyId(0), gtfs_id: "A".into(), name: "Test".into() }],
        stops,
        routes: vec![Route {
            id: RouteId(0),
            gtfs_id: "R0".into(),
            agency: AgencyId(0),
            short_name: "X1".into(),
            route_type: RouteType::Bus,
        }],
        services: vec![Service {
            id: ServiceId(0),
            gtfs_id: "WK".into(),
            days: [true, true, true, true, true, false, false],
        }],
        trips: (0..2)
            .map(|t| Trip {
                id: TripId(t),
                gtfs_id: format!("T{t}"),
                route: RouteId(0),
                service: ServiceId(0),
            })
            .collect(),
        stop_times,
    }
}

/// A delay that makes trip 0 depart after trip 1 at stop 0 (8:10 vs 8:05)
/// while still arriving downstream before it (8:30 vs 8:45 at stop 2).
const CROSSING_DELAY: u32 = 600;

#[test]
fn live_overtaking_delay_builds_and_splits_instead_of_panicking() {
    let city = City::generate(&CityConfig::small(42));
    let stops = [city.zones[2].centroid, city.cores[0], city.zones[9].centroid];
    let mut ix = FeedIndex::build(crossing_feed(stops));
    ix.apply_delta(&Delta::TripDelay { trip: TripId(0), delay_secs: CROSSING_DELAY }, 8.0)
        .expect("delay applies");

    // Regression: this construction used to panic on the overtaking pattern.
    let net = TransitNetwork::with_defaults(&city.road, &ix);
    assert_eq!(net.patterns().len(), 2, "the crossing trips must be split into separate patterns");
    let total_trips: usize = net.patterns().iter().map(|p| p.trips.len()).sum();
    assert_eq!(total_trips, 2, "splitting must not lose trips");

    // The boarding search must pick the delayed (now faster-downstream)
    // trip: leaving stop 0 at 8:06 catches trip 0 at 8:10 and arrives at
    // stop 2 at 8:30, not trip 1's 8:45.
    let router = Raptor::new(&net);
    let j = router.query(&stops[0], &stops[2], Stime::hms(8, 6, 0), DayOfWeek::Tuesday);
    assert!(!j.is_walk_only(), "zone-to-zone hop must use the bus");
    // Rode the delayed trip: off the bus at 8:30 (plus a short egress walk),
    // well before trip 1's 8:45 at the same stop.
    let off_bus = Stime(8 * 3600 + CROSSING_DELAY + 2 * 600);
    let trip1_arrival = Stime(8 * 3600 + 300 + 2 * 1200);
    assert!(j.arrive >= off_bus && j.arrive < trip1_arrival, "must ride the delayed trip: {j:?}");
}

#[test]
fn overlay_and_rebuilt_feed_agree_on_overtaking_delay() {
    let city = City::generate(&CityConfig::small(42));
    let stops = [city.zones[2].centroid, city.cores[0], city.zones[9].centroid];
    let base_ix = FeedIndex::build(crossing_feed(stops));
    let base = TransitNetwork::with_defaults(&city.road, &base_ix);
    assert_eq!(base.patterns().len(), 1, "undelayed trips share one pattern");

    let delta = Delta::TripDelay { trip: TripId(0), delay_secs: CROSSING_DELAY };

    // Live path: mutate a copy of the feed, rebuild from scratch.
    let mut mutated = base_ix.clone();
    mutated.apply_delta(&delta, 8.0).expect("delay applies");
    let rebuilt = TransitNetwork::with_defaults(&city.road, &mutated);

    // Overlay path: copy-on-write split on the base network.
    let (overlay, stats) = base.overlay(std::slice::from_ref(&delta), 8.0).expect("overlay");
    assert_eq!(stats.patterns_added, 1);

    // Identical journeys from both views, across probe ODs and times.
    let r_rebuilt = Raptor::new(&rebuilt);
    let r_overlay = Raptor::new(&overlay);
    for (o, d) in [(stops[0], stops[2]), (stops[0], stops[1]), (stops[1], stops[2])] {
        for t in [Stime::hms(7, 55, 0), Stime::hms(8, 2, 0), Stime::hms(8, 6, 0)] {
            let a = r_rebuilt.query(&o, &d, t, DayOfWeek::Tuesday);
            let b = r_overlay.query(&o, &d, t, DayOfWeek::Tuesday);
            assert_eq!(a.arrive, b.arrive, "o={o:?} d={d:?} t={t:?}");
            assert_eq!(a.n_transfers(), b.n_transfers(), "o={o:?} d={d:?} t={t:?}");
        }
    }
}

#[test]
fn genuinely_malformed_trip_is_an_error_not_a_panic() {
    let city = City::generate(&CityConfig::small(42));
    let stops = [city.zones[2].centroid, city.cores[0], city.zones[9].centroid];
    let mut feed = crossing_feed(stops);
    // Time travel inside trip 1: second call arrives before the first
    // call's departure. No pattern split can repair this.
    feed.stop_times[4].arrival = Stime(7 * 3600);
    feed.stop_times[4].departure = Stime(7 * 3600 + 15);
    let ix = FeedIndex::build(feed);
    let err = TransitNetwork::try_new(&city.road, &ix, Default::default())
        .expect_err("malformed trip must be rejected");
    assert!(err.contains("non-monotonic"), "{err}");
}

//! Backend lifecycle and the per-shard call path.
//!
//! [`ShardSupervisor::start`] boots every backend in parallel, readiness-
//! probes each one (connect + `Stats` until it answers) and only then
//! admits traffic. A monitor thread watches liveness: a backend that dies
//! — observed either by the monitor or by a failed call — is marked down,
//! and after `respawn_backoff` the monitor restarts it, re-probes, and
//! brings its pool back up under a fresh generation.
//!
//! While a shard is down, calls to it fail fast with
//! `ErrorCode::Unavailable` — no dialing, no timeout-waiting — so the
//! categories owned by live shards are completely unaffected by a crashed
//! neighbour.
//!
//! Retry semantics on a mid-call failure:
//!
//! * **Reads** (`Measures`, `Query`, `Stats`, `WhatIf`) are idempotent
//!   and retried once on a *fresh* stream (a multiplexed connection that
//!   failed mid-frame is poisoned and discarded — even with request ids,
//!   a desynced stream cannot be reused).
//! * **Edits** (`AddPoi`, `AddBusRoute`, `ApplyDelta`) are not retried:
//!   the backend may have applied the edit before the connection died,
//!   and replaying it would double-apply. The caller gets `Unavailable`
//!   and decides. `DeltaBatch` carries explicit sequence numbers, so the
//!   backend deduplicates replays itself and the batch *is* retryable.
//!
//! # The fleet edit log
//!
//! Schedule edits must land on every replica or the fleet serves
//! divergent answers. The supervisor owns the authoritative, sequenced
//! delta log: [`ShardSupervisor::broadcast_delta`] appends the delta,
//! assigns it the next fleet sequence number, and fans it out. Each
//! shard's highest *acked* sequence is tracked; a lagging shard first
//! receives the missing tail as an explicitly-sequenced `DeltaBatch`
//! (idempotent — the backend skips what it already has), then the new
//! delta. A `SeqGap` reply means the backend respawned with an empty log;
//! the full log is resent once from sequence 1. The broadcast replies OK
//! only when **all** shards acked the new sequence number; a partial
//! application reports `Unavailable` with the applied count, and the
//! delta stays in the log so lagging shards converge on the next edit or
//! when the monitor re-syncs them after a respawn. A delta rejected by
//! *every* shard (validation is deterministic and replicas are identical)
//! is popped from the log and the rejection relayed.

use crate::backend::Backend;
use crate::metrics;
use crate::pool::{BackendPool, PoolConfig, PoolError};
use parking_lot::Mutex;
use staq_gtfs::Delta;
use staq_obs::trace;
use staq_serve::codec::{DeltaAck, ErrorCode, Request, Response};
use staq_serve::{Client, ClientConfig};
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Supervisor tunables.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Delay between a backend being marked down and the respawn attempt.
    pub respawn_backoff: Duration,
    /// Readiness-probe window per backend start.
    pub probe_timeout: Duration,
    /// Monitor thread tick.
    pub poll_interval: Duration,
    /// Per-backend connection pool settings.
    pub pool: PoolConfig,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            respawn_backoff: Duration::from_millis(500),
            probe_timeout: Duration::from_secs(600),
            poll_interval: Duration::from_millis(50),
            pool: PoolConfig::default(),
        }
    }
}

struct Slot {
    backend: Mutex<Box<dyn Backend>>,
    pool: BackendPool,
}

/// The fleet's authoritative sequenced delta log. `log[i]` carries
/// sequence number `i + 1`; `acked[shard]` is the highest sequence that
/// shard is known to have applied (contiguously from 1).
struct EditLog {
    log: Vec<Delta>,
    acked: Vec<u64>,
}

struct Inner {
    slots: Vec<Slot>,
    cfg: SupervisorConfig,
    shutdown: AtomicBool,
    edits: Mutex<EditLog>,
}

/// Spawns, probes, monitors and respawns the backend fleet; owns the
/// routed call path. Dropping the supervisor kills every backend.
pub struct ShardSupervisor {
    inner: Arc<Inner>,
    /// Behind a mutex so [`shutdown`](Self::shutdown) can take `&self` —
    /// the router shares the supervisor across connection threads.
    monitor: Mutex<Option<JoinHandle<()>>>,
    in_process: bool,
}

impl ShardSupervisor {
    /// Starts every backend concurrently (city builds dominate startup),
    /// probes readiness, and admits traffic. Fails if any backend cannot
    /// start or never answers its probe.
    pub fn start(
        backends: Vec<Box<dyn Backend>>,
        cfg: SupervisorConfig,
    ) -> io::Result<ShardSupervisor> {
        assert!(!backends.is_empty(), "a shard fleet needs at least one backend");
        let in_process = backends.iter().any(|b| b.in_process());
        let probe_timeout = cfg.probe_timeout;
        let slots: Vec<Slot> = backends
            .into_iter()
            .map(|b| Slot { backend: Mutex::new(b), pool: BackendPool::new(cfg.pool.clone()) })
            .collect();

        let addrs: Vec<io::Result<SocketAddr>> = crossbeam::scope(|scope| {
            let handles: Vec<_> = slots
                .iter()
                .map(|slot| {
                    scope.spawn(move |_| -> io::Result<SocketAddr> {
                        let addr = slot.backend.lock().start()?;
                        probe(addr, probe_timeout)?;
                        Ok(addr)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("backend start panicked")).collect()
        })
        .expect("backend start scope");

        for (slot, addr) in slots.iter().zip(addrs) {
            match addr {
                Ok(a) => slot.pool.bring_up(a),
                Err(e) => {
                    for s in &slots {
                        s.backend.lock().kill();
                    }
                    return Err(e);
                }
            }
        }

        let n = slots.len();
        let inner = Arc::new(Inner {
            slots,
            cfg,
            shutdown: AtomicBool::new(false),
            edits: Mutex::new(EditLog { log: Vec::new(), acked: vec![0; n] }),
        });
        let monitor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("staq-shard-monitor".into())
                .spawn(move || monitor_loop(&inner))
                .expect("spawning monitor thread")
        };
        Ok(ShardSupervisor { inner, monitor: Mutex::new(Some(monitor)), in_process })
    }

    /// Number of shards in the fleet.
    pub fn n_shards(&self) -> usize {
        self.inner.slots.len()
    }

    /// True when any backend shares this process (and its metrics
    /// registry) — the Stats merge must not sum identical snapshots.
    pub fn any_in_process(&self) -> bool {
        self.in_process
    }

    /// Whether a shard is currently admitting traffic.
    pub fn is_up(&self, shard: usize) -> bool {
        self.inner.slots[shard].pool.is_up()
    }

    /// Test hook: hard-kills one backend, as a crash would. The monitor
    /// respawns it after the configured backoff.
    pub fn kill_backend(&self, shard: usize) {
        let slot = &self.inner.slots[shard];
        slot.backend.lock().kill();
        if slot.pool.mark_down() {
            metrics::FAILOVERS.inc();
        }
    }

    /// Sends one request to one shard through its pool, with the retry
    /// semantics described at module level. Failures come back as
    /// `Unavailable` error frames, never as transport errors — the front
    /// connection stays healthy while backends churn.
    pub fn call(&self, shard: usize, request: &Request) -> Response {
        call_inner(&self.inner, shard, request)
    }

    /// Appends `delta` to the fleet log under the next sequence number
    /// and fans it out to every shard (catching lagging shards up first).
    /// `Ok` only when **all** shards acked; see the module docs for the
    /// partial/rejected cases.
    pub fn broadcast_delta(&self, delta: Delta) -> Result<DeltaAck, Response> {
        let mut edits = self.inner.edits.lock();
        broadcast_one(&self.inner, &mut edits, delta)
    }

    /// Replays an explicitly-sequenced run of deltas against the fleet
    /// log. Sequences the router already has are skipped idempotently;
    /// genuinely new ones are settled one at a time through the same
    /// all-acked broadcast as [`broadcast_delta`](Self::broadcast_delta).
    pub fn broadcast_batch(&self, first_seq: u64, deltas: &[Delta]) -> Response {
        if first_seq == 0 {
            return Response::Error {
                code: ErrorCode::Invalid,
                message: "a delta batch carries explicit sequence numbers (first_seq >= 1)".into(),
            };
        }
        let inner = &self.inner;
        let mut edits = inner.edits.lock();
        let have = edits.log.len() as u64;
        if first_seq > have + 1 {
            return Response::Error {
                code: ErrorCode::SeqGap,
                message: format!("fleet log has {have} deltas; batch starts at {first_seq}"),
            };
        }
        let skip = (have + 1 - first_seq) as usize;
        for d in deltas.iter().skip(skip) {
            if let Err(e) = broadcast_one(inner, &mut edits, d.clone()) {
                return e;
            }
        }
        Response::DeltaBatch { last_seq: edits.log.len() as u64 }
    }

    /// Test hook: the fleet log's current highest sequence number.
    pub fn edit_seq(&self) -> u64 {
        self.inner.edits.lock().log.len() as u64
    }

    /// Test hook: the highest sequence `shard` is known to have applied.
    pub fn edit_acked(&self, shard: usize) -> u64 {
        self.inner.edits.lock().acked[shard]
    }

    /// Stops the monitor and kills every backend. Idempotent.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(h) = self.monitor.lock().take() {
            h.join().expect("monitor thread panicked");
        }
        for slot in &self.inner.slots {
            slot.backend.lock().kill();
            slot.pool.mark_down();
        }
    }
}

/// The routed call path (see [`ShardSupervisor::call`]); free-standing so
/// the monitor thread and the broadcast fan-out can use it too.
fn call_inner(inner: &Inner, shard: usize, request: &Request) -> Response {
    let slot = &inner.slots[shard];
    let retryable = !matches!(
        request,
        Request::AddPoi { .. } | Request::AddBusRoute { .. } | Request::ApplyDelta { .. }
    );
    let attempts = if retryable { 2 } else { 1 };

    for attempt in 0..attempts {
        let t = Instant::now();
        // The pool's mux client encodes the current span context into
        // the frame, so opening this span *before* the call is what
        // propagates the trace to the backend.
        let mut span = trace::span("shard.backend.call");
        span.attr("shard", shard as u64);
        span.attr("attempt", attempt as u64);
        let result = slot.pool.call(request);
        drop(span);
        match result {
            Ok(resp) => {
                metrics::backend_latency(shard).record(t.elapsed());
                return resp;
            }
            Err(PoolError::Down) => return unavailable(shard, "down"),
            Err(PoolError::Overloaded) => return unavailable(shard, "overloaded"),
            Err(PoolError::Io { gen }) => {
                // The stream is poisoned and will be replaced on the
                // next call; a retry dials (or picks) a fresh one.
                if attempt + 1 < attempts {
                    metrics::RETRIES.inc();
                    continue;
                }
                if slot.pool.mark_down_if(gen) {
                    metrics::FAILOVERS.inc();
                }
                return unavailable(shard, "failed mid-request");
            }
        }
    }
    unreachable!("attempts >= 1")
}

impl Drop for ShardSupervisor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn unavailable(shard: usize, why: &str) -> Response {
    Response::Error { code: ErrorCode::Unavailable, message: format!("shard {shard} is {why}") }
}

/// Appends `delta` under the next fleet sequence number and settles it on
/// every shard concurrently. The edit lock is held for the whole round
/// trip: edits serialize through the log (queries are unaffected — they
/// never touch it). Returns the first shard's ack on unanimous success.
fn broadcast_one(inner: &Inner, edits: &mut EditLog, delta: Delta) -> Result<DeltaAck, Response> {
    edits.log.push(delta.clone());
    let seq = edits.log.len() as u64;
    let n = inner.slots.len();
    let log = &edits.log[..];
    let acked = edits.acked.clone();
    let delta = &delta;
    let ctx = trace::current();

    // Scope threads are new stacks: hand each the caller's span context
    // so per-shard calls stay inside the request's trace.
    let outcomes: Vec<(u64, Result<DeltaAck, Response>)> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let acked_i = acked[i];
                scope.spawn(move |_| {
                    let _ctx = trace::attach(ctx);
                    apply_on_shard(inner, i, log, acked_i, seq, delta)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("broadcast thread panicked")).collect()
    })
    .expect("broadcast scope");

    let mut first_ack = None;
    let mut first_err = None;
    let mut applied = 0usize;
    let mut all_rejected = true;
    for (i, (new_acked, result)) in outcomes.into_iter().enumerate() {
        edits.acked[i] = new_acked;
        match result {
            Ok(ack) => {
                applied += 1;
                all_rejected = false;
                first_ack.get_or_insert(ack);
            }
            Err(e) => {
                if !matches!(&e, Response::Error { code: ErrorCode::Invalid, .. }) {
                    all_rejected = false;
                }
                first_err.get_or_insert(e);
            }
        }
    }
    match (first_ack, first_err) {
        (Some(ack), None) => Ok(ack),
        (None, Some(err)) if all_rejected => {
            // Validation is deterministic over identical replicas: a
            // unanimous rejection means no shard's log grew. Un-sequence
            // the delta and relay the rejection.
            edits.log.pop();
            Err(err)
        }
        (_, Some(_)) => Err(Response::Error {
            code: ErrorCode::Unavailable,
            message: format!(
                "delta {seq} applied on {applied}/{n} shards; lagging shards converge on \
                 the next edit or respawn sync"
            ),
        }),
        (None, None) => unreachable!("fleet is never empty"),
    }
}

/// Settles sequence `seq` (the last entry of `log`) on one shard:
/// catch-up batch for any missing prefix, then the delta itself. Returns
/// the shard's new acked sequence plus the ack or the failure.
fn apply_on_shard(
    inner: &Inner,
    shard: usize,
    log: &[Delta],
    mut acked: u64,
    seq: u64,
    delta: &Delta,
) -> (u64, Result<DeltaAck, Response>) {
    if acked + 1 < seq {
        let batch = Request::DeltaBatch {
            first_seq: acked + 1,
            deltas: log[acked as usize..(seq - 1) as usize].to_vec(),
        };
        match call_inner(inner, shard, &batch) {
            Response::DeltaBatch { last_seq } => acked = last_seq,
            Response::Error { code: ErrorCode::SeqGap, .. } => {
                // The backend respawned with an empty log: resend the
                // whole committed prefix once.
                let full = Request::DeltaBatch {
                    first_seq: 1,
                    deltas: log[..(seq - 1) as usize].to_vec(),
                };
                match call_inner(inner, shard, &full) {
                    Response::DeltaBatch { last_seq } => acked = last_seq,
                    err @ Response::Error { .. } => return (0, Err(err)),
                    _ => return (0, Err(unavailable(shard, "answering out of protocol"))),
                }
            }
            err @ Response::Error { .. } => return (acked, Err(err)),
            _ => return (acked, Err(unavailable(shard, "answering out of protocol"))),
        }
        if acked + 1 != seq {
            return (acked, Err(unavailable(shard, "lagging after catch-up")));
        }
    }
    match call_inner(inner, shard, &Request::ApplyDelta { seq, delta: delta.clone() }) {
        Response::ApplyDelta(ack) => (seq, Ok(ack)),
        Response::Error { code: ErrorCode::SeqGap, .. } => {
            // Respawned between catch-up and apply; one full resend,
            // new delta included.
            let full = Request::DeltaBatch { first_seq: 1, deltas: log[..seq as usize].to_vec() };
            match call_inner(inner, shard, &full) {
                Response::DeltaBatch { last_seq } if last_seq >= seq => {
                    (last_seq, Ok(DeltaAck { seq, zones_rebuilt: 0, replayed: false }))
                }
                Response::DeltaBatch { last_seq } => {
                    (last_seq, Err(unavailable(shard, "lagging after full resend")))
                }
                err @ Response::Error { .. } => (0, Err(err)),
                _ => (0, Err(unavailable(shard, "answering out of protocol"))),
            }
        }
        err @ Response::Error { .. } => (acked, Err(err)),
        _ => (acked, Err(unavailable(shard, "answering out of protocol"))),
    }
}

/// Replays the full fleet log onto a freshly-respawned shard (its own
/// log restarted empty). On failure the shard stays marked at sequence 0
/// and the next broadcast retries the catch-up.
fn sync_shard(inner: &Inner, shard: usize) {
    let mut edits = inner.edits.lock();
    edits.acked[shard] = 0;
    if edits.log.is_empty() {
        return;
    }
    let batch = Request::DeltaBatch { first_seq: 1, deltas: edits.log.clone() };
    if let Response::DeltaBatch { last_seq } = call_inner(inner, shard, &batch) {
        edits.acked[shard] = last_seq;
    }
}

/// Readiness: the backend must answer a real `Stats` request, not merely
/// accept a connection — the listener comes up before the worker pool.
fn probe(addr: SocketAddr, timeout: Duration) -> io::Result<()> {
    let deadline = Instant::now() + timeout;
    // A bounded read timeout keeps a half-open backend (accepts, never
    // answers) from wedging the probe loop past its own deadline.
    let cfg = ClientConfig {
        read_timeout: Some(Duration::from_secs(1)),
        write_timeout: Some(Duration::from_secs(1)),
    };
    loop {
        if let Ok(mut c) = Client::connect_with(addr, &cfg) {
            if c.stats().is_ok() {
                return Ok(());
            }
        }
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("backend at {addr} never answered its readiness probe"),
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Watches liveness and respawns dead backends after the backoff.
fn monitor_loop(inner: &Inner) {
    // Per-slot deadline for the next respawn attempt.
    let mut respawn_at: Vec<Option<Instant>> = vec![None; inner.slots.len()];
    while !inner.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(inner.cfg.poll_interval);
        for (i, slot) in inner.slots.iter().enumerate() {
            if slot.pool.is_up() {
                respawn_at[i] = None;
                // The process can die without any call noticing (idle
                // shard): poll liveness directly.
                if !slot.backend.lock().is_alive() && slot.pool.mark_down() {
                    metrics::FAILOVERS.inc();
                }
                continue;
            }
            let due =
                *respawn_at[i].get_or_insert_with(|| Instant::now() + inner.cfg.respawn_backoff);
            if Instant::now() < due {
                continue;
            }
            // Attempt a restart; on failure, back off again.
            let started = {
                let mut backend = slot.backend.lock();
                backend.start().and_then(|addr| {
                    probe(addr, inner.cfg.probe_timeout)?;
                    Ok(addr)
                })
            };
            match started {
                Ok(addr) => {
                    slot.pool.bring_up(addr);
                    metrics::RESPAWNS.inc();
                    respawn_at[i] = None;
                    // The respawned backend's delta log restarted empty:
                    // replay the fleet's committed edits before it serves
                    // answers that diverge from its replicas.
                    sync_shard(inner, i);
                }
                Err(_) => {
                    respawn_at[i] = Some(Instant::now() + inner.cfg.respawn_backoff);
                }
            }
            if inner.shutdown.load(Ordering::SeqCst) {
                return;
            }
        }
    }
}

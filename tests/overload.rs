//! Saturation behaviour of the serving core: a full queue answers
//! `Overloaded` immediately (load shedding, not queueing), requests
//! whose deadline expired while queued are shed *before* execution, and
//! the admission/connection metrics account for every outcome.
//!
//! Everything lives in ONE `#[test]` because the admission counters are
//! process-global: a second test running in a parallel harness thread
//! would corrupt the accounting.

use staq_net::admission::{ADMITTED, SHED, SHED_EXPIRED};
use staq_repro::prelude::*;
use staq_serve::presets::CityPreset;
use staq_serve::{MuxClient, Request, Response, ServerConfig};
use std::time::{Duration, Instant};

fn query(category: PoiCategory) -> Request {
    Request::Query { category, query: AccessQuery::MeanAccess, approx: false }
}

fn add_poi(category: PoiCategory, x: f64) -> Request {
    Request::AddPoi { category, pos: staq_repro::geom::Point::new(x, x) }
}

fn is_overloaded(resp: &Response) -> bool {
    matches!(resp, Response::Error { code: staq_serve::codec::ErrorCode::Overloaded, .. })
}

/// Fetches stats, riding out `Overloaded` bounces while the tiny queue
/// drains. Counts every attempt (shed ones included) into `sent`.
fn stats_eventually(mux: &MuxClient, sent: &mut u64) -> staq_serve::StatsReply {
    for _ in 0..100 {
        *sent += 1;
        match mux.call(&Request::Stats).expect("stats") {
            Response::Stats(s) => return s,
            resp if is_overloaded(&resp) => std::thread::sleep(Duration::from_millis(10)),
            other => panic!("{other:?}"),
        }
    }
    panic!("the queue never drained");
}

#[test]
fn saturation_sheds_fast_and_every_outcome_is_accounted_for() {
    let admitted0 = ADMITTED.get();
    let shed0 = SHED.get();
    let expired0 = SHED_EXPIRED.get();
    let mut sent = 0u64; // valid requests that reached the server
    let mut expected_runs = 0u64; // pipeline runs we deliberately caused

    let engine = CityPreset::Test.engine(0.05, 42);
    let mut server = staq_serve::serve(
        engine,
        &ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_depth: 1,
            ..Default::default()
        },
    )
    .expect("bind server");
    let mux = MuxClient::connect(server.addr()).expect("connect");

    let stats0 = stats_eventually(&mux, &mut sent);

    // ---- part 1: a full queue answers Overloaded fast -----------------
    //
    // One worker, queue depth one. A cold School query occupies the
    // worker for a full pipeline run; a concurrent burst can then park
    // at most one request — the rest must bounce immediately, while the
    // blocker is still running, not after the queue drains behind it.
    let mut bounced = 0u64;
    let mut attempts = 0;
    while bounced == 0 {
        attempts += 1;
        assert!(attempts <= 10, "ten cold bursts with zero sheds: the queue is not bounded");
        // (Re-)chill the School cache so the blocker is a pipeline run.
        let resp = mux.call(&add_poi(PoiCategory::School, 1500.0)).expect("add poi");
        assert!(matches!(resp, Response::AddPoi { .. }));
        sent += 1;
        expected_runs += 1; // the blocker recomputes School below

        crossbeam::scope(|scope| {
            let blocker = {
                let mux = mux.clone();
                scope.spawn(move |_| {
                    let resp = mux.call(&query(PoiCategory::School)).expect("blocker");
                    (Instant::now(), resp)
                })
            };
            std::thread::sleep(Duration::from_millis(5)); // let the worker take it
            let burst: Vec<_> = (0..8)
                .map(|_| {
                    let mux = mux.clone();
                    scope.spawn(move |_| {
                        let resp = mux.call(&query(PoiCategory::School)).expect("burst call");
                        (Instant::now(), resp)
                    })
                })
                .collect();
            let outcomes: Vec<_> = burst.into_iter().map(|h| h.join().unwrap()).collect();
            let (blocker_done, blocker_resp) = blocker.join().unwrap();
            assert!(!is_overloaded(&blocker_resp), "the blocker itself was admitted");
            for (when, resp) in &outcomes {
                if is_overloaded(resp) {
                    bounced += 1;
                    assert!(
                        *when < blocker_done,
                        "an Overloaded reply must not wait for the running request"
                    );
                }
            }
        })
        .unwrap();
        sent += 1 + 8; // blocker + burst
    }

    // ---- part 2: expired deadlines are shed before execution ----------
    //
    // Hospital stays cold throughout. A Hospital query carrying a 1 ms
    // deadline is queued behind a School pipeline run, so by the time
    // the worker sees it, it is dead — it must be shed, never executed,
    // or `cached`/`pipeline_runs` would betray a Hospital run.
    let mut expired_shed = 0u64;
    let mut stats = stats0.clone();
    attempts = 0;
    while expired_shed == 0 {
        attempts += 1;
        assert!(attempts <= 10, "deadline-carrying requests keep executing");
        let resp = mux.call(&add_poi(PoiCategory::School, 2500.0)).expect("add poi");
        assert!(matches!(resp, Response::AddPoi { .. }));
        sent += 1;
        expected_runs += 1; // this attempt's School blocker

        let expired_before = SHED_EXPIRED.get();
        crossbeam::scope(|scope| {
            let blocker = {
                let mux = mux.clone();
                scope.spawn(move |_| mux.call(&query(PoiCategory::School)).expect("blocker"))
            };
            std::thread::sleep(Duration::from_millis(5));
            // The 1 ms deadline doubles as the client-side timeout, so
            // the *client* gives up first; what matters is the server's
            // side of it, checked below through the counters.
            match mux.call_with_deadline(&query(PoiCategory::Hospital), Duration::from_millis(1)) {
                Ok(resp) => assert!(is_overloaded(&resp), "an expired request ran: {resp:?}"),
                Err(staq_serve::ClientError::TimedOut) => {}
                Err(e) => panic!("transport failure: {e:?}"),
            }
            blocker.join().unwrap();
        })
        .unwrap();
        sent += 2; // blocker + deadline call

        // FIFO barrier: by the time a Stats answer comes back, the
        // single worker has already dealt with the deadline request.
        stats = stats_eventually(&mux, &mut sent);
        if SHED_EXPIRED.get() > expired_before {
            expired_shed += 1;
        } else {
            // Lost the race: the worker was free in time and the query
            // ran, warming Hospital. Re-chill it and try again.
            assert!(stats.cached.contains(&PoiCategory::Hospital));
            let resp = mux.call(&add_poi(PoiCategory::Hospital, 1800.0)).expect("re-chill");
            assert!(matches!(resp, Response::AddPoi { .. }));
            sent += 1;
            expected_runs += 1; // the accidental Hospital run
        }
    }
    assert!(
        !stats.cached.contains(&PoiCategory::Hospital),
        "a shed request must never have executed: {:?}",
        stats.cached
    );
    assert_eq!(
        stats.pipeline_runs,
        stats0.pipeline_runs + expected_runs,
        "only the deliberate blockers may have run the pipeline"
    );

    // ---- part 3: the metrics account for every outcome ----------------
    //
    // Every request was either admitted or shed — with one subtlety: a
    // request admitted to the queue whose deadline then expires counts
    // in BOTH `admitted` (it was enqueued) and `shed` (the worker
    // refused to execute it). Those double-counted requests are exactly
    // the `admission.shed.expired` ones.
    let admitted = ADMITTED.get() - admitted0;
    let shed = SHED.get() - shed0;
    let expired_twice = SHED_EXPIRED.get() - expired0;
    assert_eq!(
        admitted + shed,
        sent + expired_twice,
        "admission metrics must account for every request \
         (admitted {admitted}, shed {shed}, sent {sent}, expired {expired_twice})"
    );
    assert!(
        shed >= bounced + expired_shed,
        "every Overloaded answer stems from a recorded shed ({shed} < {bounced}+{expired_shed})"
    );

    // Connection accounting: our one mux connection is the only one
    // live; after shutdown the gauge returns to zero and every accepted
    // connection has a matching close.
    let live = staq_obs::snapshot();
    assert_eq!(live.gauge("net.conns"), Some(1), "one live client connection");
    drop(mux);
    server.shutdown();
    let settled = staq_obs::snapshot();
    assert_eq!(settled.gauge("net.conns"), Some(0), "shutdown must close every connection");
    assert_eq!(
        settled.counter("net.accepted"),
        settled.counter("net.closed"),
        "every accepted connection must be closed exactly once"
    );
}

//! Nearest-neighbour indexes behind one trait — the machinery the serving
//! layer's approximate access-query path probes.
//!
//! The engine interpolates an answer from the k nearest *cached exact
//! answers* in feature space (see `staq-core`'s approximate query mode), so
//! it needs sub-microsecond k-NN over a small, incrementally grown point
//! set. [`AnnIndex`] abstracts the index; two implementations ship:
//!
//! * [`LinearAnn`] — brute-force scan. Exact, trivially correct, and the
//!   oracle the kd-tree is property-tested against.
//! * [`KdAnn`] — a kd-tree with amortized incremental insert (points buffer
//!   until the tree doubles, then it rebuilds by median splits), pruned
//!   exact k-NN search. The "approximate" in ANN lives in how the *caller*
//!   uses the neighbours (interpolation within a confidence radius), not in
//!   the search, which returns true nearest neighbours.
//!
//! Distances are Euclidean. [`KnnRegressor`](crate::knn::KnnRegressor)
//! remains the Minkowski-general regressor for COREG; these indexes serve
//! the latency-critical path where p = 2 and targets live outside the index.

/// An incremental k-nearest-neighbour index over fixed-dimension points.
pub trait AnnIndex {
    /// Adds one point; its id is the insertion ordinal (0-based).
    fn push(&mut self, point: &[f64]);
    /// Number of indexed points.
    fn len(&self) -> usize;
    /// True when no point is indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// The `k` nearest points to `q` as `(id, euclidean distance)`,
    /// ascending by distance, ties broken by insertion id. Fewer than `k`
    /// when the index is smaller.
    fn nearest(&self, q: &[f64], k: usize) -> Vec<(usize, f64)>;
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Merges `(id, dist²)` into a bounded best-k list kept ascending by
/// `(dist², id)`.
fn offer(best: &mut Vec<(usize, f64)>, k: usize, id: usize, d2: f64) {
    let pos = best.partition_point(|&(bi, bd)| bd < d2 || (bd == d2 && bi < id));
    if pos < k {
        if best.len() == k {
            best.pop();
        }
        best.insert(pos, (id, d2));
    }
}

fn finish(best: Vec<(usize, f64)>) -> Vec<(usize, f64)> {
    best.into_iter().map(|(i, d2)| (i, d2.sqrt())).collect()
}

/// Brute-force exact k-NN: the reference implementation.
#[derive(Debug, Clone, Default)]
pub struct LinearAnn {
    /// Point coordinates, flattened row-major (`dim` values per point):
    /// one contiguous allocation keeps the scan cache-friendly.
    coords: Vec<f64>,
    n: usize,
    dim: usize,
}

impl LinearAnn {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    fn point(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dim..i * self.dim + self.dim]
    }
}

impl AnnIndex for LinearAnn {
    fn push(&mut self, point: &[f64]) {
        if self.n == 0 {
            self.dim = point.len();
        }
        assert_eq!(point.len(), self.dim, "AnnIndex points must share one dimension");
        self.coords.extend_from_slice(point);
        self.n += 1;
    }

    fn len(&self) -> usize {
        self.n
    }

    fn nearest(&self, q: &[f64], k: usize) -> Vec<(usize, f64)> {
        let mut best = Vec::with_capacity(k.min(self.n) + 1);
        if k == 0 {
            return best;
        }
        for i in 0..self.n {
            offer(&mut best, k, i, dist2(q, self.point(i)));
        }
        finish(best)
    }
}

/// A kd-tree node: splitting point + axis, children by index.
struct KdNode {
    /// Id (insertion ordinal) of the point stored at this node.
    id: usize,
    axis: usize,
    left: Option<u32>,
    right: Option<u32>,
}

/// kd-tree k-NN with amortized incremental insert.
///
/// Inserts append past the tree as a linear *tail*; when the tail outgrows
/// an eighth of the indexed set, the whole set rebuilds by median splits —
/// O(n log² n) every n/8 inserts, O(log² n) amortized per insert. Queries
/// search the tree with hypersphere/hyperplane pruning and scan the
/// (short) tail linearly, so results are always exact regardless of
/// rebuild timing. Coordinates live in one flat row-major buffer, and the
/// tail is just the id range `tree_n..n` of that buffer: the serving layer
/// probes this index on its approximate-query hot path, and both the
/// pointer-chase of a `Vec<Vec<f64>>` and a long tail of scattered ids
/// cost more there than the tree search itself.
#[derive(Default)]
pub struct KdAnn {
    /// Point coordinates, flattened row-major (`dim` values per point).
    coords: Vec<f64>,
    n: usize,
    dim: usize,
    nodes: Vec<KdNode>,
    root: Option<u32>,
    /// Points `0..tree_n` are in the tree; `tree_n..n` are the tail.
    tree_n: usize,
}

impl KdAnn {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    fn point(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dim..i * self.dim + self.dim]
    }

    /// Builds the tree over every point, emptying the tail.
    fn rebuild(&mut self) {
        self.nodes.clear();
        self.tree_n = self.n;
        let mut ids: Vec<usize> = (0..self.n).collect();
        self.root = self.build(&mut ids, 0);
    }

    fn build(&mut self, ids: &mut [usize], depth: usize) -> Option<u32> {
        if ids.is_empty() {
            return None;
        }
        let axis = if self.dim == 0 { 0 } else { depth % self.dim };
        // Median by the split axis; ties keep id order for determinism.
        ids.sort_by(|&a, &b| {
            let (ka, kb) = (self.coord(a, axis), self.coord(b, axis));
            ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
        });
        let mid = ids.len() / 2;
        let id = ids[mid];
        let node = self.nodes.len() as u32;
        self.nodes.push(KdNode { id, axis, left: None, right: None });
        let (lo, rest) = ids.split_at_mut(mid);
        let hi = &mut rest[1..];
        let left = self.build(lo, depth + 1);
        let right = self.build(hi, depth + 1);
        self.nodes[node as usize].left = left;
        self.nodes[node as usize].right = right;
        Some(node)
    }

    fn coord(&self, id: usize, axis: usize) -> f64 {
        if axis < self.dim {
            self.coords[id * self.dim + axis]
        } else {
            0.0
        }
    }

    fn search(&self, node: u32, q: &[f64], k: usize, best: &mut Vec<(usize, f64)>) {
        let n = &self.nodes[node as usize];
        let p = self.point(n.id);
        offer(best, k, n.id, dist2(q, p));
        if self.dim == 0 {
            // Zero-dimensional points are all ties: no axis to prune on,
            // visit everything.
            if let Some(c) = n.left {
                self.search(c, q, k, best);
            }
            if let Some(c) = n.right {
                self.search(c, q, k, best);
            }
            return;
        }
        let diff = q.get(n.axis).copied().unwrap_or(0.0) - p[n.axis];
        let (near, far) = if diff < 0.0 { (n.left, n.right) } else { (n.right, n.left) };
        if let Some(c) = near {
            self.search(c, q, k, best);
        }
        // The far half-space can only help if the splitting hyperplane is
        // closer than the current k-th best (or the list is short).
        let need_far = best.len() < k || diff * diff <= best.last().map_or(f64::INFINITY, |b| b.1);
        if need_far {
            if let Some(c) = far {
                self.search(c, q, k, best);
            }
        }
    }
}

impl AnnIndex for KdAnn {
    fn push(&mut self, point: &[f64]) {
        if self.n == 0 {
            self.dim = point.len();
        }
        assert_eq!(point.len(), self.dim, "AnnIndex points must share one dimension");
        self.coords.extend_from_slice(point);
        self.n += 1;
        // Keep the linearly-scanned tail short: queries pay for every tail
        // point on every call, rebuilds amortize across n/8 inserts.
        if (self.n - self.tree_n) * 8 > self.n {
            self.rebuild();
        }
    }

    fn len(&self) -> usize {
        self.n
    }

    fn nearest(&self, q: &[f64], k: usize) -> Vec<(usize, f64)> {
        let mut best = Vec::with_capacity(k.min(self.n) + 1);
        if k == 0 {
            return best;
        }
        if let Some(root) = self.root {
            self.search(root, q, k, &mut best);
        }
        for id in self.tree_n..self.n {
            let d2 = dist2(q, self.point(id));
            // Cheap reject before the sorted-insert bookkeeping: most tail
            // points lose to an already-full best list.
            if best.len() < k || d2 <= best.last().map_or(f64::INFINITY, |b| b.1) {
                offer(&mut best, k, id, d2);
            }
        }
        finish(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for x in 0..5 {
            for y in 0..5 {
                pts.push(vec![x as f64, y as f64]);
            }
        }
        pts
    }

    #[test]
    fn kd_matches_linear_on_grid() {
        let (mut kd, mut lin) = (KdAnn::new(), LinearAnn::new());
        for p in grid() {
            kd.push(&p);
            lin.push(&p);
        }
        for q in [[0.2, 0.1], [2.5, 2.5], [10.0, -3.0]] {
            for k in [1, 3, 7, 30] {
                assert_eq!(kd.nearest(&q, k), lin.nearest(&q, k), "q={q:?} k={k}");
            }
        }
    }

    #[test]
    fn nearest_is_ascending_and_exact() {
        let mut kd = KdAnn::new();
        for p in grid() {
            kd.push(&p);
        }
        let nb = kd.nearest(&[1.1, 1.1], 4);
        assert_eq!(nb.len(), 4);
        assert!((nb[0].1 - (0.02f64).sqrt()).abs() < 1e-12);
        assert!(nb.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn duplicate_points_tie_break_by_insertion_id() {
        let (mut kd, mut lin) = (KdAnn::new(), LinearAnn::new());
        for _ in 0..4 {
            kd.push(&[1.0, 1.0]);
            lin.push(&[1.0, 1.0]);
        }
        let want = vec![(0, 0.0), (1, 0.0), (2, 0.0)];
        assert_eq!(lin.nearest(&[1.0, 1.0], 3), want);
        assert_eq!(kd.nearest(&[1.0, 1.0], 3), want);
    }

    #[test]
    fn empty_and_oversized_k() {
        let kd = KdAnn::new();
        assert!(kd.nearest(&[0.0], 3).is_empty());
        let mut kd = KdAnn::new();
        kd.push(&[1.0]);
        assert_eq!(kd.nearest(&[0.0], 5), vec![(0, 1.0)]);
        assert!(kd.nearest(&[0.0], 0).is_empty());
    }

    #[test]
    fn zero_dimensional_points_are_all_ties() {
        let mut kd = KdAnn::new();
        for _ in 0..3 {
            kd.push(&[]);
        }
        assert_eq!(kd.nearest(&[], 2), vec![(0, 0.0), (1, 0.0)]);
    }

    proptest::proptest! {
        /// The kd-tree returns exactly the brute-force k-NN — same ids,
        /// same distances — under random point sets, duplicates included.
        #[test]
        fn kd_equals_linear(
            pts in proptest::collection::vec(
                proptest::collection::vec(-50.0f64..50.0, 3), 1..60),
            q in proptest::collection::vec(-60.0f64..60.0, 3),
            k in 1usize..10,
        ) {
            let (mut kd, mut lin) = (KdAnn::new(), LinearAnn::new());
            // Duplicate every third point to force distance ties.
            for (i, p) in pts.iter().enumerate() {
                kd.push(p);
                lin.push(p);
                if i % 3 == 0 {
                    kd.push(p);
                    lin.push(p);
                }
            }
            let a = kd.nearest(&q, k);
            let b = lin.nearest(&q, k);
            proptest::prop_assert_eq!(a, b);
        }
    }
}

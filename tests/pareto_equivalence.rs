//! End-to-end Pareto serving: `Plan` frames over real loopback TCP must
//! return the same (arrival, transfers) frontier a local router computes
//! on the identical city, and the transfer-capped variant must equal the
//! frontier filtered to the cap. Runs in both the release matrix and the
//! obs-off serving suite — the frontier math must not depend on metrics
//! being compiled in.

use staq_gtfs::time::{DayOfWeek, Stime};
use staq_serve::codec::ErrorCode;
use staq_serve::presets::CityPreset;
use staq_serve::{Client, ClientError, ServerConfig, ServerHandle};
use staq_synth::City;
use staq_transit::{Raptor, TransitNetwork};

fn start_server(workers: usize) -> ServerHandle {
    let engine = CityPreset::Test.engine(0.05, 42);
    staq_serve::serve(
        engine,
        &ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            queue_depth: 64,
            ..Default::default()
        },
    )
    .expect("bind loopback server")
}

#[test]
fn served_plan_frontier_matches_local_router() {
    let mut server = start_server(4);
    let mut c = Client::connect(server.addr()).expect("connect");

    // The same city the `Test` preset serves, rebuilt locally as the oracle.
    let city = CityPreset::Test.generate(0.05, 42);
    let net = TransitNetwork::with_defaults(&city.road, &city.feed);
    let router = Raptor::new(&net);

    let depart = Stime::hms(7, 30, 0);
    let day = DayOfWeek::Tuesday;
    for (o, d) in od_pairs(&city, 8) {
        let served = c.plan(o, d, depart, day, None).expect("plan answered");
        let local = router.query_pareto(&o, &d, depart, day);
        assert_eq!(served, local, "served frontier diverged for o={o:?} d={d:?}");
        assert!(!served.is_empty(), "frontier always has the walk fallback");
        for w in served.windows(2) {
            assert!(w[0].n_transfers() < w[1].n_transfers());
            assert!(w[0].arrive > w[1].arrive, "more transfers must buy time");
        }

        // "Fastest with ≤1 transfer" over the wire equals the frontier
        // filtered to the cap.
        let capped = c.plan(o, d, depart, day, Some(1)).expect("capped plan");
        assert_eq!(capped.len(), 1);
        assert!(capped[0].n_transfers() <= 1);
        let want = served
            .iter()
            .filter(|j| j.n_transfers() <= 1)
            .map(|j| j.arrive)
            .min()
            .expect("walk fallback has zero transfers");
        assert_eq!(capped[0].arrive, want);
    }

    // Garbage endpoints are a semantic error, not a dead connection.
    match c.plan(
        staq_geom::Point::new(f64::INFINITY, 0.0),
        staq_geom::Point::new(0.0, 0.0),
        depart,
        day,
        None,
    ) {
        Err(ClientError::Server { code: ErrorCode::Invalid, .. }) => {}
        other => panic!("non-finite origin must be Invalid, got {other:?}"),
    }
    c.stats().expect("connection stays usable after the error");

    server.shutdown();
}

fn od_pairs(city: &City, n: usize) -> Vec<(staq_geom::Point, staq_geom::Point)> {
    (0..n)
        .map(|i| {
            let o = city.zones[(i * 7) % city.zones.len()].centroid;
            let d = city.zones[(i * 13 + 5) % city.zones.len()].centroid;
            (o, d)
        })
        .collect()
}

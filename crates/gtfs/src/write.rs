//! Serializing a [`Feed`] back to GTFS text tables.
//!
//! Round-trips with [`crate::parse`]: synthetic feeds are written to text and
//! re-parsed so every experiment exercises the same ingestion path a real
//! agency feed would take. Planar coordinates are written into
//! `stop_lat`/`stop_lon` as meters (`y`, `x`), which the parser detects by
//! magnitude.

use crate::csv;
use crate::model::Feed;
use crate::parse::FeedText;

/// Serializes `feed` into the six GTFS tables.
pub fn to_text(feed: &Feed) -> FeedText {
    let agency = csv::write(
        &["agency_id", "agency_name"],
        &feed.agencies.iter().map(|a| vec![a.gtfs_id.clone(), a.name.clone()]).collect::<Vec<_>>(),
    );
    let stops = csv::write(
        &["stop_id", "stop_name", "stop_lat", "stop_lon"],
        &feed
            .stops
            .iter()
            .map(|s| {
                vec![
                    s.gtfs_id.clone(),
                    s.name.clone(),
                    format!("{}", s.pos.y),
                    format!("{}", s.pos.x),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let routes = csv::write(
        &["route_id", "agency_id", "route_short_name", "route_type"],
        &feed
            .routes
            .iter()
            .map(|r| {
                vec![
                    r.gtfs_id.clone(),
                    feed.agencies[r.agency.idx()].gtfs_id.clone(),
                    r.short_name.clone(),
                    r.route_type.code().to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let calendar = csv::write(
        &[
            "service_id",
            "monday",
            "tuesday",
            "wednesday",
            "thursday",
            "friday",
            "saturday",
            "sunday",
        ],
        &feed
            .services
            .iter()
            .map(|s| {
                let mut row = vec![s.gtfs_id.clone()];
                row.extend(
                    s.days.iter().map(|&d| if d { "1".to_string() } else { "0".to_string() }),
                );
                row
            })
            .collect::<Vec<_>>(),
    );
    let trips = csv::write(
        &["route_id", "service_id", "trip_id"],
        &feed
            .trips
            .iter()
            .map(|t| {
                vec![
                    feed.routes[t.route.idx()].gtfs_id.clone(),
                    feed.services[t.service.idx()].gtfs_id.clone(),
                    t.gtfs_id.clone(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let stop_times = csv::write(
        &["trip_id", "arrival_time", "departure_time", "stop_id", "stop_sequence"],
        &feed
            .stop_times
            .iter()
            .map(|st| {
                vec![
                    feed.trips[st.trip.idx()].gtfs_id.clone(),
                    st.arrival.to_string(),
                    st.departure.to_string(),
                    feed.stops[st.stop.idx()].gtfs_id.clone(),
                    st.seq.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    FeedText { agency, stops, routes, calendar, trips, stop_times }
}

/// Writes the six tables into `dir` as standard GTFS file names.
pub fn to_dir(feed: &Feed, dir: &std::path::Path) -> Result<(), String> {
    let text = to_text(feed);
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    for (name, body) in [
        ("agency.txt", &text.agency),
        ("stops.txt", &text.stops),
        ("routes.txt", &text.routes),
        ("calendar.txt", &text.calendar),
        ("trips.txt", &text.trips),
        ("stop_times.txt", &text.stop_times),
    ] {
        std::fs::write(dir.join(name), body).map_err(|e| format!("writing {name}: {e}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feed_roundtrips_through_text() {
        let text = crate::parse::tests::tiny_feed_text();
        let feed = text.parse().unwrap();
        let reparsed = to_text(&feed).parse().unwrap();
        assert_eq!(feed, reparsed);
    }

    #[test]
    fn writes_all_tables_nonempty() {
        let feed = crate::parse::tests::tiny_feed_text().parse().unwrap();
        let text = to_text(&feed);
        for body in
            [&text.agency, &text.stops, &text.routes, &text.calendar, &text.trips, &text.stop_times]
        {
            assert!(body.lines().count() >= 2, "header plus at least one row");
        }
    }
}

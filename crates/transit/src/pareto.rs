//! Multi-criteria Pareto machinery over **(arrival time, transfers)**.
//!
//! A [`ParetoLabel`] is one point in criteria space; a [`Bag`] is the
//! classic multi-criteria RAPTOR container holding the undominated set.
//! Label `a` dominates `b` when it arrives no later *and* uses no more
//! transfers; a label equal to one already present is treated as dominated
//! (the bag holds distinct frontier points, first writer wins).
//!
//! The bag stays tiny — at most `max_boardings + 1` points — so inserts
//! are linear scans, not trees. Two process-wide counters meter the
//! frontier work: `raptor.bag_inserts` (labels that entered a bag) and
//! `raptor.labels_dominated` (labels rejected or evicted by dominance).

use staq_gtfs::time::Stime;
use staq_obs::Counter;

/// Labels accepted into a Pareto bag.
static BAG_INSERTS: Counter = Counter::new("raptor.bag_inserts");
/// Labels rejected on insert, plus existing labels evicted by a new
/// dominating label.
static LABELS_DOMINATED: Counter = Counter::new("raptor.labels_dominated");

/// One point on the (arrival, transfers) frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParetoLabel {
    /// Arrival time at the destination.
    pub arrival: Stime,
    /// Number of transfers (rides minus one; zero for walk-only and
    /// single-ride journeys).
    pub transfers: u8,
}

impl ParetoLabel {
    /// True when `self` dominates `other`: arrives no later with no more
    /// transfers. Equal labels dominate each other — callers treat an
    /// exact duplicate as dominated.
    #[inline]
    pub fn dominates(&self, other: &ParetoLabel) -> bool {
        self.arrival <= other.arrival && self.transfers <= other.transfers
    }
}

/// An undominated set of [`ParetoLabel`]s.
#[derive(Debug, Default)]
pub struct Bag {
    labels: Vec<ParetoLabel>,
}

impl Bag {
    /// An empty bag.
    pub fn new() -> Self {
        Bag { labels: Vec::new() }
    }

    /// Inserts `label` unless an existing label dominates it (duplicates
    /// count as dominated); evicts every existing label the newcomer
    /// dominates. Returns whether the label entered the bag.
    pub fn insert(&mut self, label: ParetoLabel) -> bool {
        if self.labels.iter().any(|l| l.dominates(&label)) {
            LABELS_DOMINATED.inc();
            return false;
        }
        let before = self.labels.len();
        self.labels.retain(|l| !label.dominates(l));
        LABELS_DOMINATED.add((before - self.labels.len()) as u64);
        self.labels.push(label);
        BAG_INSERTS.inc();
        true
    }

    /// True when exactly `label` is in the bag.
    pub fn contains(&self, label: &ParetoLabel) -> bool {
        self.labels.contains(label)
    }

    /// The undominated labels, in insertion order.
    pub fn labels(&self) -> &[ParetoLabel] {
        &self.labels
    }

    /// The earliest-arriving label using at most `max_transfers` transfers.
    pub fn best_within(&self, max_transfers: u8) -> Option<ParetoLabel> {
        self.labels
            .iter()
            .filter(|l| l.transfers <= max_transfers)
            .min_by_key(|l| (l.arrival, l.transfers))
            .copied()
    }

    /// Number of frontier points held.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when no label has been kept.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(arrival: u32, transfers: u8) -> ParetoLabel {
        ParetoLabel { arrival: Stime(arrival), transfers }
    }

    #[test]
    fn dominated_labels_are_rejected() {
        let mut bag = Bag::new();
        assert!(bag.insert(l(1000, 2)));
        assert!(!bag.insert(l(1000, 2)), "exact duplicate is dominated");
        assert!(!bag.insert(l(1100, 2)), "later same-transfers is dominated");
        assert!(!bag.insert(l(1100, 3)), "later with more transfers is dominated");
        assert_eq!(bag.len(), 1);
    }

    #[test]
    fn dominating_label_evicts_the_dominated() {
        let mut bag = Bag::new();
        bag.insert(l(1200, 0));
        bag.insert(l(1000, 2));
        assert_eq!(bag.len(), 2, "incomparable labels coexist");
        assert!(bag.insert(l(900, 0)), "dominates both");
        assert_eq!(bag.labels(), &[l(900, 0)]);
        assert!(!bag.contains(&l(1200, 0)));
    }

    #[test]
    fn frontier_is_always_undominated() {
        let mut bag = Bag::new();
        for lab in [l(1500, 0), l(1200, 1), l(1100, 2), l(1300, 1), l(1050, 3)] {
            bag.insert(lab);
        }
        let f = bag.labels();
        for a in f {
            for b in f {
                assert!(a == b || !a.dominates(b), "{a:?} dominates {b:?} in frontier");
            }
        }
        assert_eq!(bag.best_within(0), Some(l(1500, 0)));
        assert_eq!(bag.best_within(1), Some(l(1200, 1)));
        assert_eq!(bag.best_within(9), Some(l(1050, 3)));
    }

    #[test]
    fn empty_bag_has_no_best() {
        let bag = Bag::new();
        assert!(bag.is_empty());
        assert_eq!(bag.best_within(4), None);
    }
}

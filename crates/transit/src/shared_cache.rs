//! Process-shared, read-mostly access-isochrone cache.
//!
//! The per-router [`AccessCache`](crate::network::AccessCache) memoizes
//! bounded road-graph Dijkstras privately, so N workers warm N identical
//! copies. [`SharedAccessCache`] lets a whole worker pool warm **one**:
//! the cache publishes immutable *generations* (map + arena behind an
//! `Arc`), readers pin a generation snapshot per query and probe it
//! lock-free, and writers publish a new generation on insert. An epoch
//! counter invalidates everything at once — the engine bumps it from
//! `apply_delta` when a structural edit changes the stop set or road
//! reachability a memoized isochrone depends on.
//!
//! ## Memory model
//!
//! * **Readers** hold a [`SharedCacheHandle`] (one per router, `!Sync` like
//!   the router itself). [`begin_query`](SharedCacheHandle::begin_query)
//!   performs one relaxed atomic load of the publication version; only when
//!   someone has published since does it take the mutex for the few ns an
//!   `Arc` clone costs. The pinned snapshot keeps every range handed out
//!   during the query valid even if the cache is concurrently invalidated —
//!   the generation's arena is immutable and kept alive by the `Arc`.
//! * **Writers** (any handle, on a miss) clone the current generation,
//!   append, and publish. Cloning is O(entries) but a miss already paid a
//!   full bounded Dijkstra, which dwarfs it; steady state is all hits and
//!   publishes stop.
//! * **Invalidation** swaps in an empty generation and bumps the epoch
//!   (acquire/release). A handle that revalidated after the bump can never
//!   observe a pre-bump entry, and a handle mid-query keeps its pinned —
//!   possibly stale — snapshot only until its current query ends; inserts
//!   computed under a stale epoch are discarded rather than published.
//!
//! Hits and misses are counted in the same `transit.access_cache.{hit,miss}`
//! counters as the private cache, evictions in
//! `transit.access_cache.evictions`.

use crate::network::{
    AccessCache, AccessRange, TransitNetwork, ACCESS_CACHE_EVICTIONS, ACCESS_CACHE_HIT,
    ACCESS_CACHE_MISS,
};
use staq_geom::Point;
use staq_gtfs::model::StopId;
use staq_road::{dijkstra, NodeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Tag bit marking a range that resolves in the handle's local arena (a
/// miss computed this query) rather than the pinned shared generation.
const LOCAL_BIT: u32 = 1 << 31;

/// One immutable published generation: quantized-point map plus the arena
/// its ranges index. Never mutated after publication.
#[derive(Default)]
struct Generation {
    map: HashMap<(i64, i64), AccessRange>,
    arena: Vec<(StopId, u32)>,
}

/// Shared mutable state: the current generation and the version counter
/// readers revalidate against.
struct Published {
    current: Arc<Generation>,
    /// Monotonic publication count; readers refetch the `Arc` when it moves.
    version: u64,
}

/// The process-shared cache. `Sync`: clone the `Arc<SharedAccessCache>` into
/// every worker and derive one [`SharedCacheHandle`] per router.
pub struct SharedAccessCache {
    published: Mutex<Published>,
    /// Mirrors `Published::version` for the lock-free fast path.
    version: AtomicU64,
    /// Bumped by [`invalidate`](Self::invalidate); stale-epoch inserts are
    /// dropped instead of published.
    epoch: AtomicU64,
    max_entries: usize,
}

impl Default for SharedAccessCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedAccessCache {
    /// Shared cache with the same default entry budget as the private one.
    pub fn new() -> Self {
        Self::with_max_entries(4096)
    }

    /// Shared cache holding at most `max_entries` memoized isochrones.
    pub fn with_max_entries(max_entries: usize) -> Self {
        SharedAccessCache {
            published: Mutex::new(Published {
                current: Arc::new(Generation::default()),
                version: 0,
            }),
            version: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            max_entries: max_entries.max(2),
        }
    }

    /// A per-router reader/writer handle pinned to the current generation.
    pub fn handle(self: &Arc<Self>) -> SharedCacheHandle {
        let (snap, version) = {
            let p = self.published.lock().expect("shared cache poisoned");
            (Arc::clone(&p.current), p.version)
        };
        SharedCacheHandle {
            shared: Arc::clone(self),
            snap,
            seen_version: version,
            seen_epoch: self.epoch.load(Ordering::Acquire),
            local_arena: Vec::new(),
            local_map: HashMap::new(),
        }
    }

    /// Drops every memoized isochrone and bumps the epoch: entries computed
    /// before the call can never be served to a query that begins after it.
    pub fn invalidate(&self) {
        let mut p = self.published.lock().expect("shared cache poisoned");
        self.epoch.fetch_add(1, Ordering::Release);
        p.current = Arc::new(Generation::default());
        p.version += 1;
        self.version.store(p.version, Ordering::Release);
    }

    /// Current invalidation epoch (diagnostics / tests).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Number of isochrones in the current published generation.
    pub fn len(&self) -> usize {
        self.published.lock().expect("shared cache poisoned").current.map.len()
    }

    /// True when the current generation is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Publishes `stops` as the isochrone of `key`, unless `seen_epoch` is
    /// stale (the result was computed against a pre-invalidation network)
    /// or the key is already present (another worker won the race).
    fn publish(&self, seen_epoch: u64, key: (i64, i64), stops: &[(StopId, u32)]) {
        let mut p = self.published.lock().expect("shared cache poisoned");
        if self.epoch.load(Ordering::Acquire) != seen_epoch || p.current.map.contains_key(&key) {
            return;
        }
        let mut next = Generation { map: p.current.map.clone(), arena: p.current.arena.clone() };
        if next.map.len() >= self.max_entries {
            // The shared generation is warmed by a fleet and sized for the
            // whole workload; overflow means the budget was undersized, so
            // restart the generation rather than track per-entry age
            // through immutable snapshots.
            ACCESS_CACHE_EVICTIONS.add(next.map.len() as u64);
            next.map.clear();
            next.arena.clear();
        }
        let start = next.arena.len() as u32;
        next.arena.extend_from_slice(stops);
        next.map.insert(key, (start, stops.len() as u32));
        p.current = Arc::new(next);
        p.version += 1;
        self.version.store(p.version, Ordering::Release);
    }
}

/// A router's view of a [`SharedAccessCache`]: a pinned generation snapshot
/// plus a small local arena for this query's own misses. Mirrors the
/// private [`AccessCache`] query API so the router treats both uniformly.
pub struct SharedCacheHandle {
    shared: Arc<SharedAccessCache>,
    snap: Arc<Generation>,
    seen_version: u64,
    seen_epoch: u64,
    /// Isochrones computed by *this* handle since the last `begin_query`;
    /// their ranges carry [`LOCAL_BIT`].
    local_arena: Vec<(StopId, u32)>,
    local_map: HashMap<(i64, i64), AccessRange>,
}

impl SharedCacheHandle {
    /// Call once per query: revalidates the snapshot (one relaxed load on
    /// the no-change path) and resets the local arena. Ranges handed out
    /// after this call stay valid until the next one.
    pub fn begin_query(&mut self) {
        let v = self.shared.version.load(Ordering::Relaxed);
        if v != self.seen_version {
            let p = self.shared.published.lock().expect("shared cache poisoned");
            self.snap = Arc::clone(&p.current);
            self.seen_version = p.version;
            drop(p);
            self.seen_epoch = self.shared.epoch.load(Ordering::Acquire);
        }
        self.local_arena.clear();
        self.local_map.clear();
    }

    fn get(&self, key: (i64, i64)) -> Option<AccessRange> {
        if let Some(&r) = self.local_map.get(&key) {
            return Some(r);
        }
        self.snap.map.get(&key).copied()
    }

    fn insert(&mut self, key: (i64, i64), stops: &[(StopId, u32)]) -> AccessRange {
        let start = self.local_arena.len() as u32;
        self.local_arena.extend_from_slice(stops);
        let range = (start | LOCAL_BIT, stops.len() as u32);
        self.local_map.insert(key, range);
        self.shared.publish(self.seen_epoch, key, stops);
        range
    }

    /// Resolves a range returned by [`QueryCache::lookup`].
    pub fn slice(&self, (start, len): AccessRange) -> &[(StopId, u32)] {
        if start & LOCAL_BIT != 0 {
            let s = (start & !LOCAL_BIT) as usize;
            &self.local_arena[s..s + len as usize]
        } else {
            &self.snap.arena[start as usize..(start as usize + len as usize)]
        }
    }
}

/// The per-query cache a router owns: its private arena or a handle onto
/// the fleet-shared one. Both uphold the same invariant — ranges handed out
/// between two `begin_query` calls never move.
pub enum QueryCache {
    /// The classic per-router memo.
    Private(AccessCache),
    /// A handle onto a process-shared cache.
    Shared(SharedCacheHandle),
}

impl QueryCache {
    /// Call once per query before any lookup.
    pub fn begin_query(&mut self) {
        match self {
            QueryCache::Private(c) => c.begin_query(),
            QueryCache::Shared(h) => h.begin_query(),
        }
    }

    /// The memoized isochrone of `point`, computing (and memoizing) it via
    /// `net` on a miss. Same contract as
    /// [`TransitNetwork::access_stops_cached`].
    pub fn lookup(
        &mut self,
        net: &TransitNetwork<'_>,
        point: &Point,
        walk: &mut dijkstra::WalkScratch,
        nodes: &mut Vec<(NodeId, f64)>,
        tmp: &mut Vec<(StopId, u32)>,
    ) -> AccessRange {
        match self {
            QueryCache::Private(c) => net.access_stops_cached(point, c, walk, nodes, tmp),
            QueryCache::Shared(h) => {
                let key = AccessCache::key(point);
                if let Some(r) = h.get(key) {
                    ACCESS_CACHE_HIT.inc();
                    return r;
                }
                ACCESS_CACHE_MISS.inc();
                let _span = staq_obs::trace::span("network.access_isochrone");
                net.access_stops_into(point, walk, nodes, tmp);
                h.insert(key, tmp)
            }
        }
    }

    /// Resolves a range returned by [`lookup`](Self::lookup).
    pub fn slice(&self, range: AccessRange) -> &[(StopId, u32)] {
        match self {
            QueryCache::Private(c) => c.slice(range),
            QueryCache::Shared(h) => h.slice(range),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iso(n: u32) -> Vec<(StopId, u32)> {
        (0..n).map(|i| (StopId(i), 60 + i)).collect()
    }

    #[test]
    fn handle_sees_other_handles_inserts_after_begin_query() {
        let shared = Arc::new(SharedAccessCache::new());
        let mut a = shared.handle();
        let mut b = shared.handle();
        a.begin_query();
        let stops = iso(4);
        a.insert((1, 2), &stops);
        assert_eq!(a.slice(a.get((1, 2)).unwrap()), &stops[..]);
        // b's pinned snapshot predates the insert...
        assert!(b.get((1, 2)).is_none());
        // ...until its next query revalidates.
        b.begin_query();
        let r = b.get((1, 2)).expect("published entry visible after revalidation");
        assert_eq!(b.slice(r), &stops[..]);
    }

    #[test]
    fn pinned_ranges_survive_concurrent_invalidation() {
        let shared = Arc::new(SharedAccessCache::new());
        let mut a = shared.handle();
        a.begin_query();
        a.insert((1, 1), &iso(3));
        let mut b = shared.handle();
        b.begin_query();
        let r = b.get((1, 1)).expect("warm entry");
        shared.invalidate();
        // b's range still resolves (the Arc pins the old generation)...
        assert_eq!(b.slice(r).len(), 3);
        // ...but a fresh query can no longer see the pre-bump entry.
        b.begin_query();
        assert!(b.get((1, 1)).is_none(), "stale-epoch read after invalidation");
    }

    #[test]
    fn stale_epoch_inserts_are_not_published() {
        let shared = Arc::new(SharedAccessCache::new());
        let mut a = shared.handle();
        a.begin_query();
        shared.invalidate();
        // a computed this isochrone against the pre-invalidation network:
        // usable for its own in-flight query, never published.
        let r = a.insert((7, 7), &iso(2));
        assert_eq!(a.slice(r).len(), 2);
        assert!(shared.is_empty(), "stale insert must be discarded");
        a.begin_query();
        assert!(a.get((7, 7)).is_none());
    }

    #[test]
    fn budget_overflow_restarts_the_generation_and_counts_evictions() {
        let shared = Arc::new(SharedAccessCache::with_max_entries(3));
        let before = ACCESS_CACHE_EVICTIONS.get();
        let mut h = shared.handle();
        for i in 0..4 {
            h.begin_query();
            h.insert((i, i), &iso(2));
        }
        assert!(shared.len() <= 3);
        assert!(ACCESS_CACHE_EVICTIONS.get() > before);
        // The freshest entry is present.
        h.begin_query();
        assert!(h.get((3, 3)).is_some());
    }

    #[test]
    fn concurrent_warmup_converges_without_duplicate_keys() {
        let shared = Arc::new(SharedAccessCache::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let shared = Arc::clone(&shared);
                s.spawn(move || {
                    let mut h = shared.handle();
                    for i in 0..32 {
                        h.begin_query();
                        let key = (i, i % 7);
                        if h.get(key).is_none() {
                            h.insert(key, &iso((t + 2) as u32));
                        }
                    }
                });
            }
        });
        assert!(shared.len() <= 32, "keys must dedupe across workers");
        assert!(!shared.is_empty());
    }
}

//! Point-in-time metric snapshots and their interchange format.
//!
//! [`MetricsSnapshot`] is the serde-derived view of the registry: plain
//! integer samples, safe to ship over the wire protocol or dump as a
//! `BENCH_*.json` trajectory point. Since the workspace's serde backend
//! is the vendored API stand-in (derives compile, no driver), the actual
//! byte format here is a hand-rolled JSON codec, mirroring how the rest
//! of the repo treats persistence; the derives keep call sites identical
//! for the day real serde is swapped back in.

use crate::hist::LatencyHistogram;
use serde::{Deserialize, Serialize};

/// One counter's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSample {
    pub name: String,
    pub value: u64,
}

/// One gauge's level at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSample {
    pub name: String,
    pub value: u64,
}

/// One histogram, compacted to its non-empty buckets plus precomputed
/// headline percentiles (nanoseconds).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSample {
    pub name: String,
    pub count: u64,
    /// Exact sample sum in ns (saturated to u64 for the wire).
    pub sum_ns: u64,
    pub max_ns: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    /// Sparse `(bucket index, count)` pairs; merge-preserving.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSample {
    /// Compacts a histogram under `name`.
    pub fn from_histogram(name: &str, h: &LatencyHistogram) -> Self {
        HistogramSample {
            name: name.to_string(),
            count: h.count(),
            sum_ns: h.sum_ns().min(u64::MAX as u128) as u64,
            max_ns: h.max().as_nanos().min(u64::MAX as u128) as u64,
            p50_ns: h.percentile(50.0).as_nanos() as u64,
            p95_ns: h.percentile(95.0).as_nanos() as u64,
            p99_ns: h.percentile(99.0).as_nanos() as u64,
            buckets: h.nonzero_buckets(),
        }
    }

    /// Rebuilds a mergeable histogram (for quantiles beyond the headline
    /// three).
    pub fn to_histogram(&self) -> LatencyHistogram {
        LatencyHistogram::from_sparse(&self.buckets, self.sum_ns as u128, self.max_ns)
    }
}

/// Everything the registry knew at one instant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<CounterSample>,
    pub gauges: Vec<GaugeSample>,
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// Counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// Gauge level by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Histogram sample by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Folds another snapshot in, for scatter-gather over processes that
    /// each own a registry (the staq-shard router merging its backends):
    /// counters and gauges sum by name (a gauge is a level, so the sum is
    /// the fleet-wide level — total queue depth, total cache entries);
    /// histograms merge bucket-wise, which preserves quantiles exactly at
    /// bucket resolution. Names sort afterwards so merged output stays
    /// deterministic.
    ///
    /// Merging snapshots taken from the *same* registry double-counts;
    /// callers with in-process backends must take one snapshot instead.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for c in &other.counters {
            match self.counters.iter_mut().find(|m| m.name == c.name) {
                Some(m) => m.value += c.value,
                None => self.counters.push(c.clone()),
            }
        }
        for g in &other.gauges {
            match self.gauges.iter_mut().find(|m| m.name == g.name) {
                Some(m) => m.value += g.value,
                None => self.gauges.push(g.clone()),
            }
        }
        for h in &other.histograms {
            match self.histograms.iter_mut().find(|m| m.name == h.name) {
                Some(m) => {
                    let mut merged = m.to_histogram();
                    merged.merge(&h.to_histogram());
                    *m = HistogramSample::from_histogram(&h.name, &merged);
                }
                None => self.histograms.push(h.clone()),
            }
        }
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        self.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Serializes to JSON text (stable field order).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str("{\"counters\":[");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{{\"name\":{},\"value\":{}}}", json_str(&c.name), c.value));
        }
        s.push_str("],\"gauges\":[");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{{\"name\":{},\"value\":{}}}", json_str(&g.name), g.value));
        }
        s.push_str("],\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":{},\"count\":{},\"sum_ns\":{},\"max_ns\":{},\
                 \"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"buckets\":[",
                json_str(&h.name),
                h.count,
                h.sum_ns,
                h.max_ns,
                h.p50_ns,
                h.p95_ns,
                h.p99_ns
            ));
            for (j, (idx, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!("[{idx},{n}]"));
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }

    /// Parses the JSON produced by [`to_json`] (tolerates whitespace and
    /// reordered object keys).
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, JsonError> {
        let value = JsonValue::parse(text)?;
        let obj = value.as_object()?;
        let mut snap = MetricsSnapshot::default();
        for item in obj.get_array("counters")? {
            let o = item.as_object()?;
            snap.counters
                .push(CounterSample { name: o.get_string("name")?, value: o.get_u64("value")? });
        }
        for item in obj.get_array("gauges")? {
            let o = item.as_object()?;
            snap.gauges
                .push(GaugeSample { name: o.get_string("name")?, value: o.get_u64("value")? });
        }
        for item in obj.get_array("histograms")? {
            let o = item.as_object()?;
            let mut buckets = Vec::new();
            for pair in o.get_array("buckets")? {
                let JsonValue::Array(xs) = pair else {
                    return Err(JsonError("bucket pair must be an array"));
                };
                if xs.len() != 2 {
                    return Err(JsonError("bucket pair must have two elements"));
                }
                buckets.push((xs[0].as_u64()? as u32, xs[1].as_u64()?));
            }
            snap.histograms.push(HistogramSample {
                name: o.get_string("name")?,
                count: o.get_u64("count")?,
                sum_ns: o.get_u64("sum_ns")?,
                max_ns: o.get_u64("max_ns")?,
                p50_ns: o.get_u64("p50_ns")?,
                p95_ns: o.get_u64("p95_ns")?,
                p99_ns: o.get_u64("p99_ns")?,
                buckets,
            });
        }
        Ok(snap)
    }
}

/// Escapes a string for JSON (metric names are plain, but be safe).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse failure: a static description of what went wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonError(pub &'static str);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

/// Minimal JSON value tree: just enough for the snapshot schema (and the
/// unsigned-integer-only numbers it uses).
enum JsonValue {
    Object(Vec<(String, JsonValue)>),
    Array(Vec<JsonValue>),
    String(String),
    Number(u64),
}

struct JsonObject<'a>(&'a [(String, JsonValue)]);

impl JsonValue {
    fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError("trailing characters"));
        }
        Ok(v)
    }

    fn as_object(&self) -> Result<JsonObject<'_>, JsonError> {
        match self {
            JsonValue::Object(fields) => Ok(JsonObject(fields)),
            _ => Err(JsonError("expected object")),
        }
    }

    fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            JsonValue::Number(n) => Ok(*n),
            _ => Err(JsonError("expected number")),
        }
    }
}

impl<'a> JsonObject<'a> {
    fn get(&self, key: &str) -> Result<&'a JsonValue, JsonError> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v).ok_or(JsonError("missing object key"))
    }

    fn get_array(&self, key: &str) -> Result<&'a [JsonValue], JsonError> {
        match self.get(key)? {
            JsonValue::Array(xs) => Ok(xs),
            _ => Err(JsonError("expected array")),
        }
    }

    fn get_string(&self, key: &str) -> Result<String, JsonError> {
        match self.get(key)? {
            JsonValue::String(s) => Ok(s.clone()),
            _ => Err(JsonError("expected string")),
        }
    }

    fn get_u64(&self, key: &str) -> Result<u64, JsonError> {
        self.get(key)?.as_u64()
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError("unexpected character"))
    }
}

fn peek(b: &[u8], pos: &mut usize) -> Option<u8> {
    skip_ws(b, pos);
    b.get(*pos).copied()
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    match peek(b, pos).ok_or(JsonError("unexpected end of input"))? {
        b'{' => parse_object(b, pos),
        b'[' => parse_array(b, pos),
        b'"' => Ok(JsonValue::String(parse_string(b, pos)?)),
        b'0'..=b'9' => parse_number(b, pos),
        _ => Err(JsonError("unsupported value")),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    if peek(b, pos) == Some(b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(fields));
    }
    loop {
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        match peek(b, pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            _ => return Err(JsonError("expected ',' or '}'")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    if peek(b, pos) == Some(b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        match peek(b, pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(JsonError("expected ',' or ']'")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or(JsonError("unterminated escape"))?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        if *pos + 4 >= b.len() {
                            return Err(JsonError("truncated \\u escape"));
                        }
                        let hex = std::str::from_utf8(&b[*pos + 1..*pos + 5])
                            .map_err(|_| JsonError("bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError("bad \\u escape"))?;
                        out.push(char::from_u32(code).ok_or(JsonError("bad \\u code point"))?);
                        *pos += 4;
                    }
                    _ => return Err(JsonError("unknown escape")),
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always a valid boundary walk).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&b[start..*pos]).map_err(|_| JsonError("bad UTF-8"))?,
                );
            }
        }
    }
    Err(JsonError("unterminated string"))
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if start == *pos {
        return Err(JsonError("expected digits"));
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("digits are ASCII");
    text.parse::<u64>().map(JsonValue::Number).map_err(|_| JsonError("number out of range"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut h = LatencyHistogram::new();
        for i in 1..=100u64 {
            h.record(Duration::from_micros(i * 3));
        }
        MetricsSnapshot {
            counters: vec![
                CounterSample { name: "engine.cache.hits".into(), value: 42 },
                CounterSample { name: "raptor.queries".into(), value: 123_456 },
            ],
            gauges: vec![GaugeSample { name: "serve.workers".into(), value: 8 }],
            histograms: vec![HistogramSample::from_histogram("serve.request.query", &h)],
        }
    }

    #[test]
    fn json_roundtrip_is_identity() {
        let snap = sample_snapshot();
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn roundtrip_preserves_quantiles_beyond_headline() {
        let snap = sample_snapshot();
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        let a = snap.histograms[0].to_histogram();
        let b = back.histograms[0].to_histogram();
        for p in [10.0, 25.0, 75.0, 99.9] {
            assert_eq!(a.percentile(p), b.percentile(p));
        }
    }

    #[test]
    fn lookup_helpers_find_by_name() {
        let snap = sample_snapshot();
        assert_eq!(snap.counter("raptor.queries"), Some(123_456));
        assert_eq!(snap.counter("nope"), None);
        assert_eq!(snap.gauge("serve.workers"), Some(8));
        assert!(snap.histogram("serve.request.query").is_some());
    }

    #[test]
    fn parser_tolerates_whitespace_and_key_order() {
        let text = r#" {
            "gauges" : [ ] ,
            "histograms": [],
            "counters": [ { "value": 7, "name": "x" } ]
        } "#;
        let snap = MetricsSnapshot::from_json(text).unwrap();
        assert_eq!(snap.counter("x"), Some(7));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(MetricsSnapshot::from_json("").is_err());
        assert!(MetricsSnapshot::from_json("{").is_err());
        assert!(MetricsSnapshot::from_json("{\"counters\":[}").is_err());
        assert!(MetricsSnapshot::from_json("null").is_err());
        let valid = sample_snapshot().to_json();
        assert!(MetricsSnapshot::from_json(&format!("{valid}x")).is_err());
    }

    #[test]
    fn merge_sums_by_name_and_merges_histograms() {
        let mut a = sample_snapshot();
        let b = sample_snapshot();
        // A reference histogram holding both copies of the samples.
        let mut both = a.histograms[0].to_histogram();
        both.merge(&b.histograms[0].to_histogram());

        a.merge(&b);
        assert_eq!(a.counter("engine.cache.hits"), Some(84));
        assert_eq!(a.counter("raptor.queries"), Some(2 * 123_456));
        assert_eq!(a.gauge("serve.workers"), Some(16));
        let h = a.histogram("serve.request.query").unwrap();
        assert_eq!(h.count, 200);
        assert_eq!(h.to_histogram().percentile(95.0), both.percentile(95.0));

        // Disjoint names just union in, sorted.
        a.merge(&MetricsSnapshot {
            counters: vec![CounterSample { name: "aaa.first".into(), value: 1 }],
            ..Default::default()
        });
        assert_eq!(a.counters[0].name, "aaa.first");
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        // An untouched registry (or an obs-off build) snapshots to three
        // empty arrays; the codec must not choke on the degenerate form.
        let snap = MetricsSnapshot::default();
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
        assert!(back.counters.is_empty() && back.gauges.is_empty() && back.histograms.is_empty());
    }

    #[test]
    fn u64_max_values_roundtrip_exactly() {
        // Counter/gauge values are u64 end to end; the JSON number path
        // must not round through f64 (2^64 - 1 is not representable).
        let snap = MetricsSnapshot {
            counters: vec![CounterSample { name: "c".into(), value: u64::MAX }],
            gauges: vec![GaugeSample { name: "g".into(), value: u64::MAX }],
            histograms: Vec::new(),
        };
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back.counter("c"), Some(u64::MAX));
        assert_eq!(back.gauge("g"), Some(u64::MAX));
    }

    #[test]
    fn overflow_bucket_only_histogram_roundtrips() {
        // Samples beyond the bucketed range (~18 min) all saturate into
        // the top bucket; a histogram holding nothing else still has to
        // survive the wire with count, max and bucket index intact.
        let mut h = LatencyHistogram::new();
        for _ in 0..5 {
            h.record_ns(u64::MAX);
        }
        let sample = HistogramSample::from_histogram("overflow", &h);
        assert_eq!(sample.buckets.len(), 1, "all mass in one bucket");
        assert_eq!(sample.buckets[0], (crate::hist::N_BUCKETS as u32 - 1, 5));

        let snap = MetricsSnapshot { histograms: vec![sample], ..Default::default() };
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        let rebuilt = back.histograms[0].to_histogram();
        assert_eq!(rebuilt.count(), 5);
        assert_eq!(rebuilt.max(), Duration::from_nanos(u64::MAX));
        // Percentiles resolve to the overflow bucket's representative
        // value (the bucketed range tops out well below the true max).
        let top = Duration::from_nanos(crate::hist::bucket_value(crate::hist::N_BUCKETS - 1));
        assert_eq!(rebuilt.percentile(99.0), top);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let snap = MetricsSnapshot {
            counters: vec![CounterSample {
                name: "weird \"name\"\\with\nescapes".into(),
                value: 1,
            }],
            ..Default::default()
        };
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }
}

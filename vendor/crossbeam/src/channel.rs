//! MPMC channels in the `crossbeam_channel` API shape.
//!
//! One Mutex-guarded deque plus two condvars; senders and receivers are
//! cheap `Arc` clones. Bounded channels block senders at capacity, which
//! is what the serve worker pool relies on for back-pressure.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: Option<usize>,
}

struct State<T> {
    items: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Sending half; clonable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half; clonable (MPMC: each item goes to exactly one receiver).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error on send into a channel with no receivers; returns the value.
pub struct SendError<T>(pub T);

/// Error on receive from an empty channel with no senders.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error for [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

/// Error for [`Sender::try_send`].
pub enum TrySendError<T> {
    Full(T),
    Disconnected(T),
}

/// Error for [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TrySendError::Full(_) => "Full(..)",
            TrySendError::Disconnected(_) => "Disconnected(..)",
        })
    }
}

/// Creates a channel holding at most `cap` items.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_cap(Some(cap))
}

/// Creates a channel with unlimited buffering.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_cap(None)
}

fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(State { items: VecDeque::new(), senders: 1, receivers: 1 }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        cap,
    });
    (Sender { shared: shared.clone() }, Receiver { shared })
}

impl<T> Sender<T> {
    /// Blocks while the channel is full; errors when all receivers left.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.queue.lock().expect("channel lock");
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            match self.shared.cap {
                Some(cap) if state.items.len() >= cap => {
                    state = self.shared.not_full.wait(state).expect("channel lock");
                }
                _ => break,
            }
        }
        state.items.push_back(value);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Non-blocking send.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.queue.lock().expect("channel lock");
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = self.shared.cap {
            if state.items.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        state.items.push_back(value);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Items currently buffered.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().expect("channel lock").items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Blocks until an item arrives; errors once empty with no senders.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.queue.lock().expect("channel lock");
        loop {
            if let Some(v) = state.items.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).expect("channel lock");
        }
    }

    /// Bounded-time blocking receive.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.queue.lock().expect("channel lock");
        loop {
            if let Some(v) = state.items.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (s, res) =
                self.shared.not_empty.wait_timeout(state, deadline - now).expect("channel lock");
            state = s;
            if res.timed_out() && state.items.is_empty() {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.queue.lock().expect("channel lock");
        if let Some(v) = state.items.pop_front() {
            drop(state);
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if state.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Items currently buffered.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().expect("channel lock").items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().expect("channel lock").senders += 1;
        Sender { shared: self.shared.clone() }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().expect("channel lock").receivers += 1;
        Receiver { shared: self.shared.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().expect("channel lock");
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().expect("channel lock");
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpmc_delivers_everything_once() {
        let (tx, rx) = bounded::<u32>(4);
        let collected = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for w in 0..3 {
                let rx = rx.clone();
                let collected = &collected;
                s.spawn(move || {
                    while let Ok(v) = rx.recv() {
                        collected.lock().unwrap().push((w, v));
                    }
                });
            }
            drop(rx);
            for v in 0..100 {
                tx.send(v).unwrap();
            }
            drop(tx);
        });
        let mut got: Vec<u32> =
            collected.into_inner().unwrap().into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_try_send_fills() {
        let (tx, rx) = bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
    }

    #[test]
    fn recv_errors_after_senders_gone() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = bounded::<u32>(1);
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
    }
}

//! Per-backend connection pool: shared multiplexed streams, bounded
//! in-flight, generations.
//!
//! One [`BackendPool`] fronts one shard. Since the v4 wire protocol
//! carries request IDs, the pool no longer checks connections out
//! exclusively: it keeps a small, fixed set of [`MuxClient`] streams per
//! backend and round-robins concurrent calls across them, so N router
//! workers hitting the same shard coalesce into pipelined frames on a
//! handful of sockets instead of N private connections. The in-flight
//! count is still capped: past the cap, [`call`](BackendPool::call)
//! blocks briefly and then fails with [`PoolError::Overloaded`], turning
//! a wedged backend into backpressure instead of an unbounded pile-up.
//!
//! Respawn safety is generation-based. Every `bring_up` bumps the pool's
//! generation and discards the previous incarnation's streams; a call
//! that fails mid-flight reports [`PoolError::Io`] with the generation it
//! ran under, and the caller's `mark_down_if(gen)` is a no-op when that
//! incarnation has already been replaced. Without this, a slow request
//! that started before a crash could — on failing — mark the *respawned*
//! backend down.
//!
//! The pool never unpoisons: a [`MuxClient`] that failed mid-frame
//! ([`MuxClient::is_poisoned`]) is dropped at the next slot pick, never
//! reused — on a desynced stream every in-flight and future call is
//! unrecoverable.

use crate::metrics;
use parking_lot::{Condvar, Mutex};
use staq_serve::codec::{Request, Response};
use staq_serve::MuxClient;
use std::net::SocketAddr;
use std::time::Duration;

/// Pool tunables.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Multiplexed streams kept per backend; concurrent calls
    /// round-robin across them.
    pub mux_conns: usize,
    /// Concurrent calls per backend; past this, [`BackendPool::call`] waits.
    pub max_inflight: usize,
    /// Connect attempts before declaring the backend unreachable.
    pub connect_retries: u32,
    /// Backoff between connect attempts (linear: 1×, 2×, ...).
    pub connect_backoff: Duration,
    /// How long a call waits for an in-flight permit before failing.
    pub acquire_timeout: Duration,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            mux_conns: 2,
            max_inflight: 64,
            connect_retries: 3,
            connect_backoff: Duration::from_millis(20),
            acquire_timeout: Duration::from_secs(2),
        }
    }
}

/// Why a call failed. `Down` and `Overloaded` map to
/// `ErrorCode::Unavailable` frames at the router; `Io` is a mid-request
/// transport failure the caller may retry or escalate into a
/// down-marking via [`BackendPool::mark_down_if`] with the carried
/// generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// The backend is marked down (crashed, or connects are failing).
    Down,
    /// The in-flight cap held for the whole acquire timeout.
    Overloaded,
    /// The stream died mid-request under this pool generation.
    Io { gen: u64 },
}

struct PoolState {
    /// `None` while the backend is down.
    addr: Option<SocketAddr>,
    /// Bumped on every `bring_up`; stale-generation events are ignored.
    gen: u64,
    /// The shared streams; `None` until first use and after poisoning.
    conns: Vec<Option<MuxClient>>,
    /// Round-robin cursor over `conns`.
    next: usize,
    inflight: usize,
}

/// The pool for one backend.
pub struct BackendPool {
    cfg: PoolConfig,
    state: Mutex<PoolState>,
    permit_freed: Condvar,
}

impl BackendPool {
    /// A pool starting in the *down* state; the supervisor calls
    /// [`bring_up`](Self::bring_up) after the readiness probe passes.
    pub fn new(cfg: PoolConfig) -> Self {
        let n = cfg.mux_conns.max(1);
        BackendPool {
            cfg,
            state: Mutex::new(PoolState {
                addr: None,
                gen: 0,
                conns: (0..n).map(|_| None).collect(),
                next: 0,
                inflight: 0,
            }),
            permit_freed: Condvar::new(),
        }
    }

    /// Whether the backend is currently accepting traffic.
    pub fn is_up(&self) -> bool {
        self.state.lock().addr.is_some()
    }

    /// Current generation (for stale-event filtering by callers).
    pub fn generation(&self) -> u64 {
        self.state.lock().gen
    }

    /// Admits traffic to `addr` under a fresh generation, discarding any
    /// streams to the previous incarnation.
    pub fn bring_up(&self, addr: SocketAddr) {
        let mut s = self.state.lock();
        s.addr = Some(addr);
        s.gen += 1;
        for c in &mut s.conns {
            *c = None;
        }
        drop(s);
        self.permit_freed.notify_all();
    }

    /// Marks the backend down if `gen` is still current; returns whether
    /// this call performed the up→down transition (the caller counts
    /// failovers on `true`). A stale generation is a no-op: the failure
    /// belongs to an incarnation that has already been replaced.
    pub fn mark_down_if(&self, gen: u64) -> bool {
        let mut s = self.state.lock();
        if s.gen != gen || s.addr.is_none() {
            return false;
        }
        s.addr = None;
        for c in &mut s.conns {
            *c = None;
        }
        drop(s);
        // Waiters should fail fast with Down rather than ride out the
        // acquire timeout.
        self.permit_freed.notify_all();
        true
    }

    /// Marks the backend down unconditionally (supervisor-observed death,
    /// explicit kill); same transition reporting as [`mark_down_if`](Self::mark_down_if).
    pub fn mark_down(&self) -> bool {
        let gen = self.state.lock().gen;
        self.mark_down_if(gen)
    }

    /// Sends one request over a shared multiplexed stream, dialing lazily
    /// (with `connect_retries` × `connect_backoff`) when the picked slot
    /// has no healthy stream. Fails fast with [`PoolError::Down`] while
    /// the backend is down — no dialing, no waiting — and with
    /// [`PoolError::Overloaded`] when the in-flight cap held for the
    /// whole acquire timeout.
    pub fn call(&self, request: &Request) -> Result<Response, PoolError> {
        let (client, gen) = {
            let mut s = self.state.lock();
            loop {
                let Some(addr) = s.addr else { return Err(PoolError::Down) };
                if s.inflight < self.cfg.max_inflight {
                    s.inflight += 1;
                    let slot = s.next % s.conns.len();
                    s.next = s.next.wrapping_add(1);
                    // Drop a stream that died since its last use; the
                    // dial below replaces it.
                    if s.conns[slot].as_ref().is_some_and(|c| c.is_poisoned()) {
                        s.conns[slot] = None;
                    }
                    if let Some(c) = &s.conns[slot] {
                        break (c.clone(), s.gen);
                    }
                    let gen = s.gen;
                    drop(s);
                    break (self.dial(addr, gen, slot)?, gen);
                }
                if self.permit_freed.wait_for(&mut s, self.cfg.acquire_timeout).timed_out() {
                    return Err(PoolError::Overloaded);
                }
            }
        };

        let result = client.call(request);
        self.release_permit();
        result.map_err(|_| PoolError::Io { gen })
    }

    /// Dials one stream for `slot` outside the state lock; connects can
    /// take milliseconds. On success the stream is parked in `conns[slot]`
    /// for sharing — unless the generation moved mid-dial (respawn), in
    /// which case the old incarnation must not be talked to. On final
    /// failure the backend is marked down. Either way the caller's
    /// in-flight permit is released on error.
    fn dial(&self, addr: SocketAddr, gen: u64, slot: usize) -> Result<MuxClient, PoolError> {
        let mut attempt = 0;
        loop {
            match MuxClient::connect(addr) {
                Ok(client) => {
                    let mut s = self.state.lock();
                    if s.gen == gen && s.addr.is_some() {
                        s.conns[slot] = Some(client.clone());
                        return Ok(client);
                    }
                    drop(s);
                    self.release_permit();
                    return Err(PoolError::Down);
                }
                Err(_) if attempt + 1 < self.cfg.connect_retries => {
                    attempt += 1;
                    metrics::RETRIES.inc();
                    std::thread::sleep(self.cfg.connect_backoff * attempt);
                }
                Err(_) => {
                    self.release_permit();
                    if self.mark_down_if(gen) {
                        metrics::FAILOVERS.inc();
                    }
                    return Err(PoolError::Down);
                }
            }
        }
    }

    /// Frees an in-flight permit.
    fn release_permit(&self) {
        let mut s = self.state.lock();
        s.inflight = s.inflight.saturating_sub(1);
        drop(s);
        self.permit_freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use staq_serve::codec::{self, ErrorCode};
    use std::io::{Read, Write};
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// A minimal protocol backend: accepts connections (counting them)
    /// and answers every request with an `Invalid` error frame after
    /// `delay` — enough to exercise the pool without booting an engine.
    fn backend(listener: TcpListener, delay: Duration) -> Arc<AtomicUsize> {
        let accepts = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&accepts);
        std::thread::spawn(move || {
            while let Ok((mut s, _)) = listener.accept() {
                counter.fetch_add(1, Ordering::SeqCst);
                std::thread::spawn(move || {
                    let mut buf = BytesMut::new();
                    let mut scratch = [0u8; 4096];
                    loop {
                        while let Ok(Some(d)) = codec::decode_request_full(&mut buf) {
                            if !delay.is_zero() {
                                std::thread::sleep(delay);
                            }
                            let resp =
                                Response::Error { code: ErrorCode::Invalid, message: "ok".into() };
                            let mut out = BytesMut::new();
                            codec::encode_response_to(&resp, d.version, d.req_id, &mut out);
                            if s.write_all(&out).is_err() {
                                return;
                            }
                        }
                        match s.read(&mut scratch) {
                            Ok(0) | Err(_) => return,
                            Ok(n) => buf.extend_from_slice(&scratch[..n]),
                        }
                    }
                });
            }
        });
        accepts
    }

    #[test]
    fn down_pool_fails_fast_without_dialing() {
        let pool = BackendPool::new(PoolConfig::default());
        assert!(!pool.is_up());
        assert_eq!(pool.call(&Request::Stats).unwrap_err(), PoolError::Down);
    }

    #[test]
    fn concurrent_calls_share_one_multiplexed_stream() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accepts = backend(listener, Duration::from_millis(10));
        let pool = Arc::new(BackendPool::new(PoolConfig { mux_conns: 1, ..PoolConfig::default() }));
        pool.bring_up(addr);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || pool.call(&Request::Stats))
            })
            .collect();
        for h in handles {
            assert!(matches!(h.join().unwrap(), Ok(Response::Error { .. })));
        }
        assert_eq!(
            accepts.load(Ordering::SeqCst),
            1,
            "eight concurrent calls must coalesce onto one socket"
        );
    }

    #[test]
    fn respawn_generation_is_tracked_and_stale_downs_ignored() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let pool = BackendPool::new(PoolConfig::default());
        pool.bring_up(addr);
        let gen = pool.generation();

        // Backend "crashes" and comes back (same addr, new incarnation).
        assert!(pool.mark_down());
        assert!(!pool.mark_down(), "transition reported once");
        assert_eq!(pool.call(&Request::Stats).unwrap_err(), PoolError::Down);
        pool.bring_up(addr);
        assert_eq!(pool.generation(), gen + 1, "bring_up bumps the generation");
        // A stale-generation down-marking must not take the new pool down.
        assert!(!pool.mark_down_if(gen));
        assert!(pool.is_up());
    }

    #[test]
    fn inflight_cap_turns_into_overloaded() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _accepts = backend(listener, Duration::from_millis(300));
        let pool = Arc::new(BackendPool::new(PoolConfig {
            max_inflight: 1,
            acquire_timeout: Duration::from_millis(50),
            ..PoolConfig::default()
        }));
        pool.bring_up(addr);
        let holder = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.call(&Request::Stats))
        };
        // Let the holder claim the single permit, then contend.
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(pool.call(&Request::Stats).unwrap_err(), PoolError::Overloaded);
        assert!(holder.join().unwrap().is_ok());
        // The permit came back: the next call goes through.
        assert!(pool.call(&Request::Stats).is_ok());
    }

    #[test]
    fn mid_request_death_reports_io_with_the_generation() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            while let Ok((s, _)) = listener.accept() {
                std::thread::sleep(Duration::from_millis(20));
                drop(s); // close without answering
            }
        });
        let pool = BackendPool::new(PoolConfig::default());
        pool.bring_up(addr);
        let gen = pool.generation();
        assert_eq!(pool.call(&Request::Stats).unwrap_err(), PoolError::Io { gen });
        // The pool itself never marks down on call errors; retry vs
        // mark_down_if(gen) is the caller's policy.
        assert!(pool.is_up());
    }

    #[test]
    fn unreachable_backend_marks_itself_down() {
        // Bind a port, then drop the listener so connects are refused.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let cfg = PoolConfig {
            connect_retries: 2,
            connect_backoff: Duration::from_millis(1),
            ..PoolConfig::default()
        };
        let pool = BackendPool::new(cfg);
        pool.bring_up(addr);
        assert_eq!(pool.call(&Request::Stats).unwrap_err(), PoolError::Down);
        assert!(!pool.is_up(), "failed dialing must mark the backend down");
    }
}

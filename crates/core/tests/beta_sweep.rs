//! The central claim, as a test: errors degrade gracefully as the labeling
//! budget shrinks, and cost scales with β — on a seeded small city.

use staq_core::{evaluate, NaiveResult, OfflineArtifacts, PipelineConfig, SsrPipeline};
use staq_ml::ModelKind;
use staq_road::IsochroneParams;
use staq_synth::{City, CityConfig, PoiCategory};
use staq_todam::TodamSpec;
use staq_transit::CostKind;

#[test]
fn errors_shrink_with_budget_on_average() {
    let city = City::generate(&CityConfig::small(42));
    let spec = TodamSpec { per_hour: 4, ..Default::default() };
    let artifacts = OfflineArtifacts::build(&city, &spec.interval, &IsochroneParams::default());
    let truth = NaiveResult::compute(&city, &spec, PoiCategory::School, CostKind::Jt);

    // Average MAE over three seeds at each budget to damp sampling noise.
    let mean_mae = |beta: f64| -> f64 {
        [1u64, 2, 3]
            .iter()
            .map(|&seed| {
                let cfg = PipelineConfig {
                    beta,
                    model: ModelKind::Mlp,
                    todam: spec.clone(),
                    seed,
                    ..Default::default()
                };
                evaluate(&truth, &SsrPipeline::new(&city, &artifacts, cfg).run(PoiCategory::School))
                    .mac_mae
            })
            .sum::<f64>()
            / 3.0
    };
    let lo = mean_mae(0.05);
    let hi = mean_mae(0.40);
    assert!(hi < lo, "mean JT MAE should improve from beta 5% ({lo:.2}) to 40% ({hi:.2})");
}

#[test]
fn solution_cost_tracks_beta_linearly_enough() {
    let city = City::generate(&CityConfig::small(42));
    let spec = TodamSpec { per_hour: 6, ..Default::default() };
    let artifacts = OfflineArtifacts::build(&city, &spec.interval, &IsochroneParams::default());
    let trips_at = |beta: f64| {
        let cfg = PipelineConfig {
            beta,
            model: ModelKind::Ols,
            todam: spec.clone(),
            ..Default::default()
        };
        SsrPipeline::new(&city, &artifacts, cfg).run(PoiCategory::School).labeled_trips as f64
    };
    let t05 = trips_at(0.05);
    let t20 = trips_at(0.20);
    let t40 = trips_at(0.40);
    // Labeled-trip counts scale ~linearly with beta (the Table II mechanism).
    assert!(t20 / t05 > 2.0 && t20 / t05 < 8.0, "5%->20%: {t05} -> {t20}");
    assert!(t40 / t20 > 1.5 && t40 / t20 < 3.0, "20%->40%: {t20} -> {t40}");
}

//! HTTP/1.1 JSON gateway over the binary wire protocol.
//!
//! The staq stack speaks a length-prefixed binary protocol end to end —
//! compact and multiplexable, but opaque to anything that isn't a staq
//! client. This module is the thin translation layer that makes the
//! stack curl-able: it serves a small JSON API over
//! [`staq_net::http`] and forwards each request to a `staq-serve` or
//! `staq-shard` endpoint over a single shared [`MuxClient`] connection,
//! so a burst of HTTP callers does not fan out into a burst of backend
//! sockets.
//!
//! Routes:
//!
//! | method | path           | body / params                             |
//! |--------|----------------|-------------------------------------------|
//! | GET    | `/healthz`     | — (gateway liveness only)                 |
//! | GET    | `/v1/stats`    | —                                         |
//! | GET    | `/v1/measures` | `?category=school[&approx=true]`          |
//! | POST   | `/v1/query`    | `{category, query:{kind,...}, approx?}`   |
//! | POST   | `/v1/plan`     | `{origin:{x,y}, dest:{x,y}, depart, ...}` |
//! | POST   | `/v1/poi`      | `{category, x, y}`                        |
//! | GET    | `/metrics`     | — (gateway-process Prometheus exposition) |
//! | GET    | `/v1/ops/health`  | — (fleet summary: rates, burn, budget) |
//! | GET    | `/v1/ops/slo`     | — (per-class objectives + burn state)  |
//! | GET    | `/v1/ops/windows` | — (last closed window, per class)      |
//! | GET    | `/v1/ops/slow`    | `?limit=N` (retained slow traces)      |
//!
//! The four `/v1/ops/*` routes are views over one backend `OpsReport`
//! poll — against a `staq-shard` router that is a fleet-merged report,
//! against a single `staq-serve` endpoint the process-local one.
//! `/metrics` is different: it renders the *gateway's own* registry, so
//! a scrape never touches the backend. The gateway records a
//! `gateway.http.request` latency histogram and `gateway.http.{2,4,5}xx`
//! status counters, so a standalone gateway's scrape is never empty.
//!
//! Every backend-touching request accepts an optional `deadline_ms`
//! (body field on POSTs, query param on GETs). When present it is
//! stamped into the wire frame so the backend's admission control can
//! shed the request instead of executing it after the caller has given
//! up; the gateway itself gives up at the same instant with `504`.
//!
//! Error mapping: backend `BadRequest`/`Invalid` → 400, `SeqGap` → 409,
//! `Unavailable` → 503, `Overloaded` → 429, transport failures → 502,
//! deadline expiry → 504. The body is always `{"error": "..."}`.

use crate::client::ClientError;
use crate::codec::{ErrorCode, Request, Response, StatsReply};
use crate::mux::MuxClient;
use parking_lot::Mutex;
use staq_access::measures::ZoneMeasures;
use staq_access::{AccessClass, AccessQuery, DemographicWeight, QueryAnswer};
use staq_geom::Point;
use staq_gtfs::time::{DayOfWeek, Stime};
use staq_net::http::{serve_http, Handler, HttpHandle, HttpRequest, HttpResponse};
use staq_net::json::Json;
use staq_obs::{
    AtomicHistogram, BurnWindow, ClassWindow, Counter, OpsReport, OwnedSpan, SloStatus, SlowTrace,
};
use staq_synth::PoiCategory;
use staq_transit::{Journey, Leg};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Gateway tuning knobs.
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// Address the HTTP listener binds (`host:port`, port 0 for ephemeral).
    pub addr: String,
    /// HTTP worker threads (each handles one connection at a time).
    pub threads: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig { addr: "127.0.0.1:0".into(), threads: 4 }
    }
}

/// Starts the gateway in background threads; dropping the handle (or
/// calling [`HttpHandle::shutdown`]) stops it. The backend connection
/// is dialed lazily on the first request, so the gateway can come up
/// before (or outlive a restart of) the endpoint it fronts.
pub fn gateway(backend: SocketAddr, cfg: &GatewayConfig) -> std::io::Result<HttpHandle> {
    let state = Arc::new(GatewayState { backend, mux: Mutex::new(None) });
    let handler: Handler = Arc::new(move |req| route(&state, req));
    serve_http(&cfg.addr, cfg.threads.max(1), handler)
}

struct GatewayState {
    backend: SocketAddr,
    /// One multiplexed connection shared by every HTTP worker. A
    /// poisoned client is dropped and redialed on the next call.
    mux: Mutex<Option<MuxClient>>,
}

impl GatewayState {
    fn client(&self) -> Result<MuxClient, ClientError> {
        let mut slot = self.mux.lock();
        if let Some(c) = slot.as_ref() {
            if !c.is_poisoned() {
                return Ok(c.clone());
            }
        }
        let c = MuxClient::connect(self.backend).map_err(ClientError::Io)?;
        *slot = Some(c.clone());
        Ok(c)
    }

    fn call(&self, request: &Request, deadline: Option<Duration>) -> Result<Response, ClientError> {
        let client = self.client()?;
        match deadline {
            Some(d) => client.call_with_deadline(request, d),
            None => client.call(request),
        }
    }
}

// The gateway's own process registry — what a standalone gateway's
// `/metrics` scrape shows even when the backend lives in another
// process (backend metrics are reached via `/v1/ops/*` instead).
static H_HTTP: AtomicHistogram = AtomicHistogram::new("gateway.http.request");
static C_HTTP_2XX: Counter = Counter::new("gateway.http.2xx");
static C_HTTP_4XX: Counter = Counter::new("gateway.http.4xx");
static C_HTTP_5XX: Counter = Counter::new("gateway.http.5xx");

fn route(state: &GatewayState, req: &HttpRequest) -> HttpResponse {
    let start = std::time::Instant::now();
    let resp = dispatch(state, req);
    H_HTTP.record(start.elapsed());
    match resp.status {
        200..=299 => C_HTTP_2XX.inc(),
        400..=499 => C_HTTP_4XX.inc(),
        _ => C_HTTP_5XX.inc(),
    }
    resp
}

fn dispatch(state: &GatewayState, req: &HttpRequest) -> HttpResponse {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            HttpResponse::json(200, Json::obj(vec![("ok", Json::Bool(true))]).to_string())
        }
        ("GET", "/v1/stats") => stats(state, req),
        ("GET", "/v1/measures") => measures(state, req),
        ("POST", "/v1/query") => query(state, req),
        ("POST", "/v1/plan") => plan(state, req),
        ("POST", "/v1/poi") => add_poi(state, req),
        ("GET", "/metrics") => {
            HttpResponse::text(200, &staq_obs::prom::render(&staq_obs::snapshot()))
        }
        ("GET", "/v1/ops/health") => ops_health(state, req),
        ("GET", "/v1/ops/slo") => ops_slo(state, req),
        ("GET", "/v1/ops/windows") => ops_windows(state, req),
        ("GET", "/v1/ops/slow") => ops_slow(state, req),
        (
            _,
            "/healthz" | "/v1/stats" | "/v1/measures" | "/v1/query" | "/v1/plan" | "/v1/poi"
            | "/metrics" | "/v1/ops/health" | "/v1/ops/slo" | "/v1/ops/windows" | "/v1/ops/slow",
        ) => error_response(405, "method not allowed on this route"),
        _ => error_response(404, "no such route"),
    }
}

// ---------------------------------------------------------------- routes

fn stats(state: &GatewayState, req: &HttpRequest) -> HttpResponse {
    let deadline = match query_deadline(req) {
        Ok(d) => d,
        Err(resp) => return resp,
    };
    forward(state, &Request::Stats, deadline, |resp| match resp {
        Response::Stats(s) => Some(stats_json(&s)),
        _ => None,
    })
}

fn measures(state: &GatewayState, req: &HttpRequest) -> HttpResponse {
    let deadline = match query_deadline(req) {
        Ok(d) => d,
        Err(resp) => return resp,
    };
    let Some(category) = req.param("category").and_then(parse_category) else {
        return error_response(400, "category must be school|hospital|vax_center|job_center");
    };
    let approx = req.param("approx").is_some_and(|v| v == "true" || v == "1");
    forward(state, &Request::Measures { category, approx }, deadline, |resp| match resp {
        Response::Measures(zones) => Some(Json::Arr(zones.iter().map(measures_json).collect())),
        _ => None,
    })
}

fn query(state: &GatewayState, req: &HttpRequest) -> HttpResponse {
    let body = match body_json(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let Some(category) = body.get("category").and_then(Json::as_str).and_then(parse_category)
    else {
        return error_response(400, "category must be school|hospital|vax_center|job_center");
    };
    let query = match body.get("query").map(parse_access_query) {
        Some(Ok(q)) => q,
        Some(Err(msg)) => return error_response(400, &msg),
        None => return error_response(400, "missing query object"),
    };
    let approx = body.get("approx").and_then(Json::as_bool).unwrap_or(false);
    let request = Request::Query { category, query, approx };
    forward(state, &request, body_deadline(&body), |resp| match resp {
        Response::Query(answer) => Some(answer_json(&answer)),
        _ => None,
    })
}

fn plan(state: &GatewayState, req: &HttpRequest) -> HttpResponse {
    let body = match body_json(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let (origin, dest) = match (parse_point(body.get("origin")), parse_point(body.get("dest"))) {
        (Some(o), Some(d)) => (o, d),
        _ => return error_response(400, "origin and dest must be {x, y} objects"),
    };
    let Some(depart) = body.get("depart").and_then(Json::as_f64) else {
        return error_response(400, "missing depart (seconds since midnight)");
    };
    let day = match body.get("day").and_then(Json::as_str) {
        Some(name) => match parse_day(name) {
            Some(d) => d,
            None => return error_response(400, "day must be monday..sunday"),
        },
        None => DayOfWeek::Monday,
    };
    let max_transfers = body.get("max_transfers").and_then(Json::as_f64).map(|n| n as u8);
    let request = Request::Plan { origin, dest, depart: Stime(depart as u32), day, max_transfers };
    forward(state, &request, body_deadline(&body), |resp| match resp {
        Response::Plan(journeys) => Some(Json::obj(vec![(
            "journeys",
            Json::Arr(journeys.iter().map(journey_json).collect()),
        )])),
        _ => None,
    })
}

fn add_poi(state: &GatewayState, req: &HttpRequest) -> HttpResponse {
    let body = match body_json(req) {
        Ok(b) => b,
        Err(resp) => return resp,
    };
    let Some(category) = body.get("category").and_then(Json::as_str).and_then(parse_category)
    else {
        return error_response(400, "category must be school|hospital|vax_center|job_center");
    };
    let (x, y) = match (body.get("x").and_then(Json::as_f64), body.get("y").and_then(Json::as_f64))
    {
        (Some(x), Some(y)) => (x, y),
        _ => return error_response(400, "missing x/y coordinates"),
    };
    let request = Request::AddPoi { category, pos: Point::new(x, y) };
    forward(state, &request, body_deadline(&body), |resp| match resp {
        Response::AddPoi { poi_id } => Some(Json::obj(vec![("poi_id", Json::Num(poi_id as f64))])),
        _ => None,
    })
}

// ------------------------------------------------------------ ops routes

/// All `/v1/ops/*` routes poll the backend once and shape a view of the
/// same [`OpsReport`]; they share deadline handling and error mapping.
fn ops_call(
    state: &GatewayState,
    req: &HttpRequest,
    render: impl Fn(&OpsReport) -> Json,
) -> HttpResponse {
    let deadline = match query_deadline(req) {
        Ok(d) => d,
        Err(resp) => return resp,
    };
    forward(state, &Request::OpsReport, deadline, |resp| match resp {
        Response::OpsReport(report) => Some(render(&report)),
        _ => None,
    })
}

fn ops_health(state: &GatewayState, req: &HttpRequest) -> HttpResponse {
    ops_call(state, req, |r| {
        // "ok" means no class is burning its fast-window budget faster
        // than the sustainable pace — the page-someone threshold.
        let ok = r.slo.iter().all(|s| s.burn_fast() < 1.0);
        let classes = r
            .classes
            .iter()
            .map(|c| {
                let slo = r.slo_for(&c.class);
                Json::obj(vec![
                    ("class", Json::str(&c.class)),
                    ("rps", Json::Num(c.rps())),
                    ("p99_ms", Json::Num(ns_to_ms(c.quantile_ns(99.0)))),
                    ("shed", Json::Num(c.shed as f64)),
                    ("burn_fast", Json::Num(slo.map_or(0.0, SloStatus::burn_fast))),
                    ("budget_remaining", Json::Num(slo.map_or(1.0, SloStatus::budget_remaining))),
                ])
            })
            .collect();
        Json::obj(vec![
            ("ok", Json::Bool(ok)),
            ("generated_unix_ms", Json::Num(ns_to_ms(r.generated_unix_ns))),
            ("interval_ms", Json::Num(ns_to_ms(r.interval_ns))),
            ("windows", Json::Num(r.windows as f64)),
            ("classes", Json::Arr(classes)),
        ])
    })
}

fn ops_slo(state: &GatewayState, req: &HttpRequest) -> HttpResponse {
    ops_call(state, req, |r| {
        Json::obj(vec![("classes", Json::Arr(r.slo.iter().map(slo_json).collect()))])
    })
}

fn ops_windows(state: &GatewayState, req: &HttpRequest) -> HttpResponse {
    ops_call(state, req, |r| {
        Json::obj(vec![
            ("interval_ms", Json::Num(ns_to_ms(r.interval_ns))),
            ("windows", Json::Num(r.windows as f64)),
            ("classes", Json::Arr(r.classes.iter().map(window_json).collect())),
        ])
    })
}

fn ops_slow(state: &GatewayState, req: &HttpRequest) -> HttpResponse {
    let limit = match req.param("limit") {
        None => staq_obs::slow::SLOW_KEEP,
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return error_response(400, "limit must be an integer"),
        },
    };
    ops_call(state, req, move |r| {
        Json::obj(vec![(
            "traces",
            Json::Arr(r.slow.iter().take(limit).map(slow_trace_json).collect()),
        )])
    })
}

fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn slo_json(s: &SloStatus) -> Json {
    Json::obj(vec![
        ("class", Json::str(&s.class)),
        ("objective_milli", Json::Num(s.objective_milli as f64)),
        ("threshold_ms", Json::Num(ns_to_ms(s.threshold_ns))),
        ("fast", burn_json(&s.fast, s.burn_fast())),
        ("slow", burn_json(&s.slow, s.burn_slow())),
        ("budget_remaining", Json::Num(s.budget_remaining())),
        ("shed_total", Json::Num(s.shed_total as f64)),
    ])
}

fn burn_json(w: &BurnWindow, burn: f64) -> Json {
    Json::obj(vec![
        ("span_ms", Json::Num(ns_to_ms(w.span_ns))),
        ("total", Json::Num(w.total as f64)),
        ("bad", Json::Num(w.bad as f64)),
        ("burn", Json::Num(burn)),
    ])
}

fn window_json(c: &ClassWindow) -> Json {
    Json::obj(vec![
        ("class", Json::str(&c.class)),
        ("span_ms", Json::Num(ns_to_ms(c.span_ns))),
        ("count", Json::Num(c.count as f64)),
        ("rps", Json::Num(c.rps())),
        ("p50_ms", Json::Num(ns_to_ms(c.quantile_ns(50.0)))),
        ("p90_ms", Json::Num(ns_to_ms(c.quantile_ns(90.0)))),
        ("p99_ms", Json::Num(ns_to_ms(c.quantile_ns(99.0)))),
        ("max_ms", Json::Num(ns_to_ms(c.max_ns))),
        ("shed", Json::Num(c.shed as f64)),
    ])
}

fn slow_trace_json(t: &SlowTrace) -> Json {
    Json::obj(vec![
        ("trace", Json::str(format!("{:016x}", t.trace))),
        ("class", Json::str(&t.class)),
        ("root_dur_ms", Json::Num(ns_to_ms(t.root_dur_ns))),
        ("is_error", Json::Bool(t.is_error)),
        ("captured_unix_ms", Json::Num(ns_to_ms(t.captured_unix_ns))),
        ("spans", Json::Arr(t.spans.iter().map(span_json).collect())),
    ])
}

fn span_json(s: &OwnedSpan) -> Json {
    let parent = if s.parent == 0 { Json::Null } else { Json::str(format!("{:016x}", s.parent)) };
    Json::obj(vec![
        ("span", Json::str(format!("{:016x}", s.span))),
        ("parent", parent),
        ("name", Json::str(&s.name)),
        ("start_unix_ms", Json::Num(ns_to_ms(s.start_unix_ns))),
        ("dur_ms", Json::Num(ns_to_ms(s.dur_ns))),
        (
            "attrs",
            Json::obj(s.attrs.iter().map(|(k, v)| (k.as_str(), Json::Num(*v as f64))).collect()),
        ),
    ])
}

// ------------------------------------------------------- request parsing

fn body_json(req: &HttpRequest) -> Result<Json, HttpResponse> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| error_response(400, "body is not valid UTF-8"))?;
    Json::parse(text).map_err(|e| error_response(400, &format!("bad JSON body: {e}")))
}

fn body_deadline(body: &Json) -> Option<Duration> {
    body.get("deadline_ms").and_then(Json::as_f64).map(|ms| Duration::from_millis(ms as u64))
}

fn query_deadline(req: &HttpRequest) -> Result<Option<Duration>, HttpResponse> {
    match req.param("deadline_ms") {
        None => Ok(None),
        Some(v) => match v.parse::<u64>() {
            Ok(ms) => Ok(Some(Duration::from_millis(ms))),
            Err(_) => Err(error_response(400, "deadline_ms must be an integer")),
        },
    }
}

fn parse_category(name: &str) -> Option<PoiCategory> {
    match name {
        "school" => Some(PoiCategory::School),
        "hospital" => Some(PoiCategory::Hospital),
        "vax_center" => Some(PoiCategory::VaxCenter),
        "job_center" => Some(PoiCategory::JobCenter),
        _ => None,
    }
}

fn category_slug(category: PoiCategory) -> &'static str {
    match category {
        PoiCategory::School => "school",
        PoiCategory::Hospital => "hospital",
        PoiCategory::VaxCenter => "vax_center",
        PoiCategory::JobCenter => "job_center",
    }
}

fn parse_weight(name: &str) -> Option<DemographicWeight> {
    match name {
        "uniform" => Some(DemographicWeight::Uniform),
        "population" => Some(DemographicWeight::Population),
        "unemployed" => Some(DemographicWeight::Unemployed),
        "vulnerable" => Some(DemographicWeight::Vulnerable),
        "children" => Some(DemographicWeight::Children),
        _ => None,
    }
}

fn parse_day(name: &str) -> Option<DayOfWeek> {
    match name {
        "monday" => Some(DayOfWeek::Monday),
        "tuesday" => Some(DayOfWeek::Tuesday),
        "wednesday" => Some(DayOfWeek::Wednesday),
        "thursday" => Some(DayOfWeek::Thursday),
        "friday" => Some(DayOfWeek::Friday),
        "saturday" => Some(DayOfWeek::Saturday),
        "sunday" => Some(DayOfWeek::Sunday),
        _ => None,
    }
}

fn parse_point(value: Option<&Json>) -> Option<Point> {
    let v = value?;
    Some(Point::new(v.get("x")?.as_f64()?, v.get("y")?.as_f64()?))
}

fn parse_access_query(q: &Json) -> Result<AccessQuery, String> {
    let Some(kind) = q.get("kind").and_then(Json::as_str) else {
        return Err("query needs a kind".into());
    };
    match kind {
        "mean_access" => Ok(AccessQuery::MeanAccess),
        "classification" => Ok(AccessQuery::Classification),
        "at_risk" => {
            let f = q.get("threshold_factor").and_then(Json::as_f64).unwrap_or(1.0);
            Ok(AccessQuery::AtRisk { threshold_factor: f })
        }
        "fairness" => {
            let weight = match q.get("weight").and_then(Json::as_str) {
                Some(name) => parse_weight(name).ok_or_else(|| {
                    "weight must be uniform|population|unemployed|vulnerable|children".to_string()
                })?,
                None => DemographicWeight::Uniform,
            };
            Ok(AccessQuery::Fairness { weight })
        }
        "worst_zones" => {
            let k = q.get("k").and_then(Json::as_f64).unwrap_or(10.0);
            Ok(AccessQuery::WorstZones { k: k as usize })
        }
        "point_access" => {
            match (q.get("x").and_then(Json::as_f64), q.get("y").and_then(Json::as_f64)) {
                (Some(x), Some(y)) => Ok(AccessQuery::PointAccess { x, y }),
                _ => Err("point_access needs x and y".into()),
            }
        }
        other => Err(format!(
            "unknown query kind {other:?} (want mean_access|classification|at_risk|fairness|\
             worst_zones|point_access)"
        )),
    }
}

// ------------------------------------------------------ response shaping

/// Forwards one request to the backend and renders the response. The
/// `render` closure returns `None` when the backend answered with an
/// unexpected response kind — a protocol bug, reported as 502.
fn forward(
    state: &GatewayState,
    request: &Request,
    deadline: Option<Duration>,
    render: impl Fn(Response) -> Option<Json>,
) -> HttpResponse {
    match state.call(request, deadline) {
        Ok(Response::Error { code, message }) => error_response(error_code_status(code), &message),
        Ok(resp) => match render(resp) {
            Some(json) => HttpResponse::json(200, json.to_string()),
            None => error_response(502, "backend answered with an unexpected response kind"),
        },
        Err(ClientError::Server { code, message }) => {
            error_response(error_code_status(code), &message)
        }
        Err(ClientError::TimedOut) => error_response(504, "deadline elapsed"),
        Err(e) => error_response(502, &format!("backend unreachable: {e}")),
    }
}

fn error_code_status(code: ErrorCode) -> u16 {
    match code {
        ErrorCode::BadRequest | ErrorCode::Invalid => 400,
        ErrorCode::Unavailable => 503,
        ErrorCode::SeqGap => 409,
        ErrorCode::Overloaded => 429,
    }
}

fn error_response(status: u16, message: &str) -> HttpResponse {
    HttpResponse::json(status, Json::obj(vec![("error", Json::str(message))]).to_string())
}

fn measures_json(m: &ZoneMeasures) -> Json {
    Json::obj(vec![
        ("zone", Json::Num(m.zone.0 as f64)),
        ("mac", Json::Num(m.mac)),
        ("acsd", Json::Num(m.acsd)),
    ])
}

fn class_label(class: AccessClass) -> &'static str {
    match class {
        AccessClass::Best => "best",
        AccessClass::MostlyGood => "mostly_good",
        AccessClass::MostlyBad => "mostly_bad",
        AccessClass::Worst => "worst",
    }
}

fn answer_json(answer: &QueryAnswer) -> Json {
    match answer {
        QueryAnswer::MeanAccess { mean_mac, mean_acsd, n_zones } => Json::obj(vec![
            ("kind", Json::str("mean_access")),
            ("mean_mac", Json::Num(*mean_mac)),
            ("mean_acsd", Json::Num(*mean_acsd)),
            ("n_zones", Json::Num(*n_zones as f64)),
        ]),
        QueryAnswer::Classification(classes) => Json::obj(vec![
            ("kind", Json::str("classification")),
            (
                "zones",
                Json::Arr(
                    classes
                        .iter()
                        .map(|(zone, class)| {
                            Json::obj(vec![
                                ("zone", Json::Num(zone.0 as f64)),
                                ("class", Json::str(class_label(*class))),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        QueryAnswer::AtRisk(zones) => Json::obj(vec![
            ("kind", Json::str("at_risk")),
            ("zones", Json::Arr(zones.iter().map(|z| Json::Num(z.0 as f64)).collect())),
        ]),
        QueryAnswer::Fairness(score) => {
            Json::obj(vec![("kind", Json::str("fairness")), ("score", Json::Num(*score))])
        }
        QueryAnswer::WorstZones(zones) => Json::obj(vec![
            ("kind", Json::str("worst_zones")),
            (
                "zones",
                Json::Arr(
                    zones
                        .iter()
                        .map(|(zone, mac)| {
                            Json::obj(vec![
                                ("zone", Json::Num(zone.0 as f64)),
                                ("mac", Json::Num(*mac)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        QueryAnswer::PointAccess { zone, mac, acsd } => Json::obj(vec![
            ("kind", Json::str("point_access")),
            ("zone", Json::Num(zone.0 as f64)),
            ("mac", Json::Num(*mac)),
            ("acsd", Json::Num(*acsd)),
        ]),
    }
}

fn stats_json(s: &StatsReply) -> Json {
    Json::obj(vec![
        ("pipeline_runs", Json::Num(s.pipeline_runs as f64)),
        ("requests_served", Json::Num(s.requests_served as f64)),
        ("workers", Json::Num(s.workers as f64)),
        ("cached", Json::Arr(s.cached.iter().map(|c| Json::str(category_slug(*c))).collect())),
    ])
}

fn journey_json(j: &Journey) -> Json {
    Json::obj(vec![
        ("depart", Json::Num(j.depart.0 as f64)),
        ("arrive", Json::Num(j.arrive.0 as f64)),
        ("legs", Json::Arr(j.legs.iter().map(leg_json).collect())),
    ])
}

fn leg_json(leg: &Leg) -> Json {
    match leg {
        Leg::Walk { secs, to_stop } => Json::obj(vec![
            ("kind", Json::str("walk")),
            ("secs", Json::Num(*secs as f64)),
            ("to_stop", to_stop.map_or(Json::Null, |s| Json::Num(s.0 as f64))),
        ]),
        Leg::Wait { secs, at_stop } => Json::obj(vec![
            ("kind", Json::str("wait")),
            ("secs", Json::Num(*secs as f64)),
            ("at_stop", Json::Num(at_stop.0 as f64)),
        ]),
        Leg::Ride { trip, route, from_stop, to_stop, board, alight } => Json::obj(vec![
            ("kind", Json::str("ride")),
            ("trip", Json::Num(trip.0 as f64)),
            ("route", Json::Num(route.0 as f64)),
            ("from_stop", Json::Num(from_stop.0 as f64)),
            ("to_stop", Json::Num(to_stop.0 as f64)),
            ("board", Json::Num(board.0 as f64)),
            ("alight", Json::Num(alight.0 as f64)),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staq_synth::ZoneId;

    #[test]
    fn access_queries_parse_from_json() {
        let q = Json::parse(r#"{"kind":"at_risk","threshold_factor":0.5}"#).unwrap();
        assert_eq!(parse_access_query(&q).unwrap(), AccessQuery::AtRisk { threshold_factor: 0.5 });

        let q = Json::parse(r#"{"kind":"fairness","weight":"children"}"#).unwrap();
        assert_eq!(
            parse_access_query(&q).unwrap(),
            AccessQuery::Fairness { weight: DemographicWeight::Children }
        );

        let q = Json::parse(r#"{"kind":"worst_zones","k":3}"#).unwrap();
        assert_eq!(parse_access_query(&q).unwrap(), AccessQuery::WorstZones { k: 3 });

        let q = Json::parse(r#"{"kind":"point_access","x":1.5,"y":-2.0}"#).unwrap();
        assert_eq!(parse_access_query(&q).unwrap(), AccessQuery::PointAccess { x: 1.5, y: -2.0 });

        let q = Json::parse(r#"{"kind":"telepathy"}"#).unwrap();
        assert!(parse_access_query(&q).is_err());
    }

    #[test]
    fn answers_render_to_stable_json() {
        let answer = QueryAnswer::MeanAccess { mean_mac: 2.0, mean_acsd: 0.5, n_zones: 7 };
        assert_eq!(
            answer_json(&answer).to_string(),
            r#"{"kind":"mean_access","mean_mac":2,"mean_acsd":0.5,"n_zones":7}"#
        );

        let answer = QueryAnswer::WorstZones(vec![(ZoneId(4), 9.25)]);
        assert_eq!(
            answer_json(&answer).to_string(),
            r#"{"kind":"worst_zones","zones":[{"zone":4,"mac":9.25}]}"#
        );

        let answer = QueryAnswer::Classification(vec![(ZoneId(1), AccessClass::MostlyGood)]);
        assert_eq!(
            answer_json(&answer).to_string(),
            r#"{"kind":"classification","zones":[{"zone":1,"class":"mostly_good"}]}"#
        );
    }

    #[test]
    fn error_codes_map_to_http_statuses() {
        assert_eq!(error_code_status(ErrorCode::BadRequest), 400);
        assert_eq!(error_code_status(ErrorCode::Invalid), 400);
        assert_eq!(error_code_status(ErrorCode::Unavailable), 503);
        assert_eq!(error_code_status(ErrorCode::SeqGap), 409);
        assert_eq!(error_code_status(ErrorCode::Overloaded), 429);
    }

    #[test]
    fn slow_traces_render_with_hex_ids() {
        let t = SlowTrace {
            trace: 0xFEED_F00D,
            class: "query".into(),
            root_dur_ns: 2_500_000,
            is_error: true,
            captured_unix_ns: 4_000_000,
            spans: vec![OwnedSpan {
                trace: 0xFEED_F00D,
                span: 0xAB,
                parent: 0,
                name: "serve.request.query".into(),
                start_unix_ns: 1_000_000,
                dur_ns: 2_000_000,
                attrs: vec![("shard".into(), 3)],
            }],
        };
        assert_eq!(
            slow_trace_json(&t).to_string(),
            r#"{"trace":"00000000feedf00d","class":"query","root_dur_ms":2.5,"is_error":true,"#
                .to_string()
                + r#""captured_unix_ms":4,"spans":[{"span":"00000000000000ab","parent":null,"#
                + r#""name":"serve.request.query","start_unix_ms":1,"dur_ms":2,"attrs":{"shard":3}}]}"#
        );
    }

    #[test]
    fn burn_windows_render_span_and_rate() {
        let w = BurnWindow { span_ns: 5_000_000_000, total: 100, bad: 2 };
        assert_eq!(
            burn_json(&w, 2.0).to_string(),
            r#"{"span_ms":5000,"total":100,"bad":2,"burn":2}"#
        );
    }

    #[test]
    fn days_and_categories_round_trip() {
        for c in PoiCategory::ALL {
            assert_eq!(parse_category(category_slug(c)), Some(c));
        }
        assert_eq!(parse_day("wednesday"), Some(DayOfWeek::Wednesday));
        assert!(parse_day("Someday").is_none());
    }
}

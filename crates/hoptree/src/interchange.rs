//! Interchange identification (paper §IV-B1).
//!
//! "An interchange occurs when any z_k ∈ OB is within walking distance of
//! any z_k ∈ IB, allowing a passenger to connect to that service. ... a
//! k-NN (k = 1) search is made for each z_k ∈ OB on IB to retrieve the
//! nearest-node pairs. For each of these pairs, the walking isochrone for
//! one is retrieved to test if the other intersects."

use crate::store::HopTreeStore;
use crate::tree::HopTree;
use serde::{Deserialize, Serialize};
use staq_geom::KdTree;
use staq_synth::ZoneId;

/// A feasible transfer point between an outbound and an inbound hop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interchange {
    /// Leaf of the origin's outbound tree.
    pub ob_zone: ZoneId,
    /// Leaf of the destination's inbound tree.
    pub ib_zone: ZoneId,
    /// Distance between the two leaf centroids, meters.
    pub gap_m: f64,
    /// Combined hop frequency (min of the two leaf counters — a chain is
    /// only as frequent as its rarer half).
    pub frequency: u32,
}

/// Finds interchanges between `ob` (outbound from the origin) and `ib`
/// (inbound to the destination) using the store's zone centroids and
/// isochrones.
pub fn find_interchanges(
    store: &HopTreeStore,
    ob: &HopTree,
    ib: &HopTree,
    centroids: &[staq_geom::Point],
) -> Vec<Interchange> {
    if ob.n_leaves() == 0 || ib.n_leaves() == 0 {
        return Vec::new();
    }
    // k-NN index over the inbound leaves.
    let ib_points: Vec<(staq_geom::Point, u32)> =
        ib.leaves().iter().map(|l| (centroids[l.zone.idx()], l.zone.0)).collect();
    let ib_tree = KdTree::build(&ib_points);

    let mut out = Vec::new();
    for ob_leaf in ob.leaves() {
        let q = centroids[ob_leaf.zone.idx()];
        let Some(nearest) = ib_tree.nearest(&q) else { continue };
        let ib_zone = ZoneId(nearest.item);
        // Isochrone intersection test: can a passenger actually walk the gap?
        let wa = store.isochrone(ob_leaf.zone);
        let wb = store.isochrone(ib_zone);
        if wa.overlaps(wb) {
            let ib_leaf = ib.leaf(ib_zone).expect("leaf present by construction");
            out.push(Interchange {
                ob_zone: ob_leaf.zone,
                ib_zone,
                gap_m: nearest.dist(),
                frequency: ob_leaf.count.min(ib_leaf.count),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use staq_gtfs::time::TimeInterval;
    use staq_road::IsochroneParams;
    use staq_synth::{City, CityConfig};

    fn setup() -> (City, HopTreeStore, Vec<staq_geom::Point>) {
        let city = City::generate(&CityConfig::small(42));
        let store =
            HopTreeStore::build(&city, &TimeInterval::am_peak(), &IsochroneParams::default());
        let centroids: Vec<_> = city.zones.iter().map(|z| z.centroid).collect();
        (city, store, centroids)
    }

    #[test]
    fn interchanges_exist_for_connected_pairs() {
        let (city, store, centroids) = setup();
        // Core zone to a peripheral zone: interchanges should exist in a
        // radial+orbital network.
        let core = ZoneId(store.zone_tree().nearest(&city.cores[0]).unwrap().item);
        let mut found_any = false;
        for z in 0..city.n_zones() {
            let dest = ZoneId(z as u32);
            let ints =
                find_interchanges(&store, store.outbound(core), store.inbound(dest), &centroids);
            if !ints.is_empty() {
                found_any = true;
                for i in &ints {
                    assert!(i.gap_m >= 0.0);
                    assert!(i.frequency >= 1);
                    assert!(store.outbound(core).reaches(i.ob_zone));
                    assert!(store.inbound(dest).reaches(i.ib_zone));
                }
                break;
            }
        }
        assert!(found_any, "no interchanges anywhere in the city");
    }

    #[test]
    fn empty_trees_give_no_interchanges() {
        let (_, store, centroids) = setup();
        let empty = HopTree::empty(ZoneId(0), crate::tree::Direction::Outbound);
        let ib = store.inbound(ZoneId(1));
        assert!(find_interchanges(&store, &empty, ib, &centroids).is_empty());
    }

    #[test]
    fn overlapping_walkshed_pairs_only() {
        let (city, store, centroids) = setup();
        let core = ZoneId(store.zone_tree().nearest(&city.cores[0]).unwrap().item);
        for z in (0..city.n_zones()).step_by(7) {
            let dest = ZoneId(z as u32);
            for i in
                find_interchanges(&store, store.outbound(core), store.inbound(dest), &centroids)
            {
                assert!(
                    store.isochrone(i.ob_zone).overlaps(store.isochrone(i.ib_zone)),
                    "reported interchange whose walksheds don't overlap"
                );
            }
        }
    }
}

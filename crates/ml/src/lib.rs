//! # staq-ml
//!
//! From-scratch machine learning for the SSR solution — the pure-Rust
//! substitute for the paper's PyTorch models (§V-A: OLS, MLP, COREG, Mean
//! Teacher, GNN). No BLAS, no framework: dense row-major matrices, hand
//! written backprop, Adam.
//!
//! All models implement [`ssr::SsrModel`]: *given features for `L ∪ U` and
//! targets for `L`, learn the labeling for `U`* — the semi-supervised
//! regression task of §IV-D. Targets are multi-output (the pipeline learns
//! MAC and ACSD jointly, matching how the paper reports both).
//!
//! * [`linalg`] — [`Matrix`], products, transposes, linear solves.
//! * [`scaler`] — feature/target standardization.
//! * [`metrics`] — MAE, RMSE, Pearson correlation, classification accuracy.
//! * [`ols`] — ridge-stabilized ordinary least squares.
//! * [`knn`] — Minkowski k-NN regressor (COREG's base learner).
//! * [`ann`] — incremental k-NN indexes ([`AnnIndex`]: kd-tree + linear
//!   scan) for the serving layer's approximate-query interpolation.
//! * [`coreg`] — COREG co-training with two k-NN regressors (Zhou & Li 2005).
//! * [`mlp`] — multi-layer perceptron with ReLU and Adam.
//! * [`mean_teacher`] — consistency-regularized MLP with EMA teacher
//!   (Tarvainen & Valpola 2017).
//! * [`gnn`] — graph convolutional network over a Gaussian-thresholded
//!   zone adjacency ([`adjacency::SparseAdj`]).

pub mod adjacency;
pub mod ann;
pub mod coreg;
pub mod gnn;
pub mod knn;
pub mod linalg;
pub mod mean_teacher;
pub mod metrics;
pub mod mlp;
pub mod ols;
pub mod scaler;
pub mod ssr;

pub use adjacency::SparseAdj;
pub use ann::{AnnIndex, KdAnn, LinearAnn};
pub use linalg::Matrix;
pub use ssr::{ModelKind, SsrModel, SsrTask};

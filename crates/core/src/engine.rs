//! The dynamic access-query engine.
//!
//! The paper's motivation (§I): planners "need to operate in a dynamic
//! environment and test new policy scenarios, such as optimally locating a
//! new school ... or introducing new bus stops to avoid access deserts",
//! which means the TODAM and its artifacts must be recomputable after every
//! spatio-temporal edit — cheaply.
//!
//! [`AccessEngine`] owns a city and its offline artifacts and supports:
//!
//! * answering [`AccessQuery`]s through the SSR pipeline (fast) with result
//!   caching per (category, cost);
//! * **scenario edits** — [`AccessEngine::add_poi`] (no network change: hop
//!   trees stay valid, only that category's TODAM/labels refresh) and
//!   [`AccessEngine::add_bus_route`] (schedule change: the GTFS feed is
//!   extended and only the zones whose walkshed touches a new-route stop
//!   get their hop trees rebuilt).

use crate::artifacts::OfflineArtifacts;
use crate::config::PipelineConfig;
use crate::pipeline::{PipelineResult, SsrPipeline};
use staq_access::{AccessQuery, QueryAnswer};
use staq_geom::{KdTree, Point};
use staq_gtfs::model::{Route, RouteId, RouteType, Service, ServiceId, Stop, StopId, StopTime, Trip, TripId};
use staq_gtfs::time::Stime;
use staq_gtfs::FeedIndex;
use staq_synth::{City, Poi, PoiCategory, PoiId, ZoneId};
use std::collections::HashMap;

/// A stateful engine over one (mutable) city.
pub struct AccessEngine {
    city: City,
    config: PipelineConfig,
    artifacts: OfflineArtifacts,
    /// SSR results per POI category (cost kind lives in `config`).
    cache: HashMap<PoiCategory, PipelineResult>,
}

impl AccessEngine {
    /// Builds offline artifacts for `city` (the expensive, once-per-interval
    /// step).
    pub fn new(city: City, config: PipelineConfig) -> Self {
        config.validate().expect("invalid engine config");
        let artifacts =
            OfflineArtifacts::build(&city, &config.todam.interval, &config.isochrone);
        AccessEngine { city, config, artifacts, cache: HashMap::new() }
    }

    /// The current city state.
    pub fn city(&self) -> &City {
        &self.city
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// SSR measures for one category, cached until the next scenario edit.
    pub fn measures(&mut self, category: PoiCategory) -> &PipelineResult {
        if !self.cache.contains_key(&category) {
            let result = SsrPipeline::new(&self.city, &self.artifacts, self.config.clone())
                .run(category);
            self.cache.insert(category, result);
        }
        &self.cache[&category]
    }

    /// Answers an access query for one category via SSR measures.
    pub fn query(&mut self, q: &AccessQuery, category: PoiCategory) -> QueryAnswer {
        let predicted = self.measures(category).predicted.clone();
        q.answer(&predicted, &self.city.zones)
    }

    /// Adds a POI (e.g. a candidate vaccination site). No transit change:
    /// only the category's cached result is invalidated. Returns the new
    /// POI's id.
    pub fn add_poi(&mut self, category: PoiCategory, pos: Point) -> PoiId {
        let zone_tree = KdTree::build(&self.city.zone_points());
        let zone = ZoneId(zone_tree.nearest(&pos).expect("city has zones").item);
        let id = PoiId(self.city.pois.len() as u32);
        self.city.pois.push(Poi { id, category, pos, zone });
        self.cache.remove(&category);
        id
    }

    /// Adds a new bus route calling at `stops_at` (in order) with the given
    /// peak headway, weekdays only. Returns the number of zones whose hop
    /// trees were incrementally rebuilt.
    ///
    /// The feed is extended GTFS-natively (new stops, route, service,
    /// trips); the hop-tree store is patched only for zones whose walking
    /// isochrone contains one of the new/touched stops — the incremental
    /// path that keeps dynamic queries dynamic.
    pub fn add_bus_route(&mut self, stops_at: &[Point], peak_headway_s: u32) -> usize {
        assert!(stops_at.len() >= 2, "a route needs at least two stops");
        let mut feed = self.city.feed.feed().clone();

        // New stops at the given points.
        let mut new_stops: Vec<StopId> = Vec::with_capacity(stops_at.len());
        for (k, p) in stops_at.iter().enumerate() {
            let id = StopId(feed.stops.len() as u32);
            feed.stops.push(Stop {
                id,
                gtfs_id: format!("DYN_S{}_{}", feed.routes.len(), k),
                name: format!("Dynamic stop {k}"),
                pos: *p,
            });
            new_stops.push(id);
        }

        // Weekday service dedicated to dynamic routes.
        let svc = ServiceId(feed.services.len() as u32);
        feed.services.push(Service {
            id: svc,
            gtfs_id: format!("DYN_WK{}", svc.0),
            days: [true, true, true, true, true, false, false],
        });
        let route = RouteId(feed.routes.len() as u32);
        feed.routes.push(Route {
            id: route,
            gtfs_id: format!("DYN_R{}", route.0),
            agency: feed.agencies[0].id,
            short_name: format!("D{}", route.0),
            route_type: RouteType::Bus,
        });

        // Run times from stop geometry (same convention as the generator).
        let bus_speed = self.city.config.bus_speed_mps;
        let runtimes: Vec<u32> = stops_at
            .windows(2)
            .map(|w| ((w[0].dist(&w[1]) * 1.25 / bus_speed).round() as u32).max(30))
            .collect();

        // All-day service at the peak headway (scenario routes are what-ifs;
        // a flat headway keeps the experiment interpretable).
        for dir in 0..2u32 {
            let ordered: Vec<StopId> = if dir == 0 {
                new_stops.clone()
            } else {
                new_stops.iter().rev().copied().collect()
            };
            let runs: Vec<u32> = if dir == 0 {
                runtimes.clone()
            } else {
                runtimes.iter().rev().copied().collect()
            };
            let mut t = 6 * 3600u32;
            let mut k = 0u32;
            while t < 22 * 3600 {
                let trip = TripId(feed.trips.len() as u32);
                feed.trips.push(Trip {
                    id: trip,
                    gtfs_id: format!("DYN_T{}_{dir}_{k}", route.0),
                    route,
                    service: svc,
                });
                let mut clock = Stime(t);
                for (i, &stop) in ordered.iter().enumerate() {
                    let arrival = clock;
                    let departure =
                        if i + 1 < ordered.len() { arrival.plus(15) } else { arrival };
                    feed.stop_times.push(StopTime {
                        trip,
                        stop,
                        arrival,
                        departure,
                        seq: i as u32,
                    });
                    if i < runs.len() {
                        clock = departure.plus(runs[i]);
                    }
                }
                k += 1;
                t += peak_headway_s.max(120);
            }
        }
        feed.normalize();
        staq_gtfs::validate::assert_valid(&feed);
        self.city.feed = FeedIndex::build(feed);

        // Incremental hop-tree rebuild: zones whose walkshed reaches a new
        // stop (crow-flies pre-filter by max walking radius, exact test via
        // the stored isochrone).
        let radius = self.config.isochrone.max_radius_m();
        let mut affected: Vec<ZoneId> = Vec::new();
        for z in 0..self.city.n_zones() {
            let zid = ZoneId(z as u32);
            let iso = self.artifacts.store.isochrone(zid);
            let touched = stops_at.iter().any(|p| {
                self.city.zone_centroid(zid).dist(p) <= radius * 1.5 && iso.contains(p)
            });
            if touched {
                affected.push(zid);
            }
        }
        self.artifacts.store.rebuild_zones(&self.city, &affected);
        self.cache.clear(); // schedule changed: every category is stale
        affected.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staq_ml::ModelKind;
    use staq_synth::CityConfig;
    use staq_todam::TodamSpec;

    fn engine() -> AccessEngine {
        let city = City::generate(&CityConfig::small(42));
        let config = PipelineConfig {
            beta: 0.25,
            model: ModelKind::Ols,
            todam: TodamSpec { per_hour: 3, ..Default::default() },
            ..Default::default()
        };
        AccessEngine::new(city, config)
    }

    #[test]
    fn queries_answer_from_ssr_measures() {
        let mut e = engine();
        let a = e.query(&AccessQuery::MeanAccess, PoiCategory::School);
        match a {
            QueryAnswer::MeanAccess { mean_mac, n_zones, .. } => {
                assert!(mean_mac > 0.0);
                assert!(n_zones > 0);
            }
            other => panic!("{other:?}"),
        }
        // Second call hits the cache (same result object).
        let n1 = e.measures(PoiCategory::School).predicted.len();
        let n2 = e.measures(PoiCategory::School).predicted.len();
        assert_eq!(n1, n2);
    }

    #[test]
    fn add_poi_invalidates_only_its_category() {
        let mut e = engine();
        let _ = e.measures(PoiCategory::School);
        let _ = e.measures(PoiCategory::Hospital);
        assert_eq!(e.cache.len(), 2);
        let center = e.city().cores[0];
        let id = e.add_poi(PoiCategory::School, center);
        assert_eq!(id.idx(), e.city().pois.len() - 1);
        assert!(!e.cache.contains_key(&PoiCategory::School));
        assert!(e.cache.contains_key(&PoiCategory::Hospital));
    }

    #[test]
    fn adding_a_poi_improves_nearby_access() {
        // Causal check against *ground truth* (SSR predictions add model
        // noise that could mask a small improvement): a hospital placed at
        // the worst-served zone lowers mean access cost.
        use crate::naive::NaiveResult;
        use staq_transit::CostKind;

        let mut e = engine();
        let spec = e.config().todam.clone();
        let before = NaiveResult::compute(e.city(), &spec, PoiCategory::Hospital, CostKind::Jt);
        let worst = *before
            .measures
            .iter()
            .max_by(|a, b| a.mac.partial_cmp(&b.mac).unwrap())
            .unwrap();
        let pos = e.city().zone_centroid(worst.zone);
        e.add_poi(PoiCategory::Hospital, pos);
        let after = NaiveResult::compute(e.city(), &spec, PoiCategory::Hospital, CostKind::Jt);
        let worst_after = after
            .measures
            .iter()
            .find(|m| m.zone == worst.zone)
            .expect("worst zone still labeled");
        // Note: the *city mean* MAC may legitimately rise — under gravity
        // trip redistribution a new attractor pulls trips toward itself from
        // zones it is far from. The zone that received the hospital,
        // however, must improve: its nearest hospital is now at distance
        // ~0 and dominates its attractiveness.
        assert!(
            worst_after.mac < worst.mac,
            "hospital at the worst zone must improve that zone: {} -> {}",
            worst.mac,
            worst_after.mac
        );
    }

    #[test]
    fn classification_query_covers_predicted_zones() {
        let mut e = engine();
        let n = e.measures(PoiCategory::School).predicted.len();
        match e.query(&AccessQuery::Classification, PoiCategory::School) {
            QueryAnswer::Classification(classes) => {
                assert_eq!(classes.len(), n);
                // All four quadrants exist in a heterogeneous city... at
                // least two distinct classes must appear.
                let distinct: std::collections::HashSet<_> =
                    classes.iter().map(|(_, c)| c.label()).collect();
                assert!(distinct.len() >= 2, "degenerate classification {distinct:?}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn add_bus_route_rebuilds_affected_zones() {
        let mut e = engine();
        let _ = e.measures(PoiCategory::School);
        let a = e.city().zones[0].centroid;
        let b = e.city().cores[0];
        let mid = a.midpoint(&b);
        let n = e.add_bus_route(&[a, mid, b], 600);
        assert!(n > 0, "route through the city must touch some walkshed");
        assert!(e.cache.is_empty(), "schedule edits invalidate all caches");
        // Engine still answers queries afterwards.
        let ans = e.query(&AccessQuery::MeanAccess, PoiCategory::School);
        assert!(matches!(ans, QueryAnswer::MeanAccess { .. }));
    }

    #[test]
    #[should_panic(expected = "at least two stops")]
    fn route_needs_two_stops() {
        let mut e = engine();
        e.add_bus_route(&[Point::new(0.0, 0.0)], 600);
    }
}

//! # staq-serve
//!
//! A concurrent access-query serving subsystem: the paper's dynamic
//! spatio-temporal access queries (§I, §IV) exposed as a network service.
//! Planners' tools connect over TCP, issue [`AccessQuery`]s, scenario
//! edits (`add_poi`, `add_bus_route`), live timetable deltas
//! (`apply_delta`, `delta_batch`) and counterfactual `what_if` requests,
//! and share one [`staq_core::AccessEngine`] whose per-category SSR
//! results are computed at most once per edit generation no matter how
//! many clients demand them concurrently (single-flight caching). Every
//! mutation flows through one sequenced [`staq_rt::RtEngine`] delta log,
//! so a server's edit history is replayable onto a fresh replica.
//!
//! Layers, bottom up:
//!
//! * [`codec`] — hand-rolled length-prefixed binary wire protocol
//!   (versioned header, request/response frames, error frames).
//! * [`pool`] — fixed worker threads over a bounded job queue; the only
//!   place engine methods are called.
//! * [`server`] — TCP accept loop and per-connection framing threads,
//!   with graceful shutdown.
//! * [`client`] — blocking client used by tests, the load generator and
//!   external tools.
//!
//! Binaries: `serve` (the daemon). The open-loop load generator
//! `staq-serve-bench` lives in `staq-shard` (it can drive either a single
//! server or the sharded router).
//!
//! [`AccessQuery`]: staq_access::AccessQuery

pub mod client;
pub mod codec;
pub mod gateway;
pub mod mux;
pub mod pool;
pub mod presets;
pub mod server;

pub use client::{Client, ClientConfig, ClientError};
pub use codec::{DeltaAck, Request, Response, StatsReply, WhatIfAnswer, WIRE_VERSION};
pub use mux::MuxClient;
pub use pool::{Reply, WorkerPool};
pub use server::{serve, serve_rt, serve_shared, serve_threaded, ServerConfig, ServerHandle};

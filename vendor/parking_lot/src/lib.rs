//! Offline stand-in for `parking_lot`.
//!
//! Same API shape (guards without `Result`, `Condvar::wait(&mut guard)`),
//! implemented over `std::sync`. Poisoning is translated to a panic at the
//! lock site, which matches parking_lot's effective behavior for this
//! workspace: a panicked critical section is a bug either way.

use std::sync;
use std::time::Duration;

/// Mutual exclusion, non-poisoning API.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`]. Holds the std guard in an `Option` so a `Condvar`
/// can temporarily take ownership during a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|_| panic!("mutex poisoned"));
        MutexGuard { guard: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(sync::TryLockError::WouldBlock) => None,
            Err(sync::TryLockError::Poisoned(_)) => panic!("mutex poisoned"),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|_| panic!("mutex poisoned"))
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard active")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard active")
    }
}

/// Reader–writer lock, non-poisoning API.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { guard: self.inner.read().unwrap_or_else(|_| panic!("rwlock poisoned")) }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { guard: self.inner.write().unwrap_or_else(|_| panic!("rwlock poisoned")) }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { guard: g }),
            Err(sync::TryLockError::WouldBlock) => None,
            Err(sync::TryLockError::Poisoned(_)) => panic!("rwlock poisoned"),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|_| panic!("rwlock poisoned"))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Condition variable working with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

/// Result of a timed wait.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard active");
        let std_guard = self.inner.wait(std_guard).unwrap_or_else(|_| panic!("mutex poisoned"));
        guard.guard = Some(std_guard);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.guard.take().expect("guard active");
        let (std_guard, res) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|_| panic!("mutex poisoned"));
        guard.guard = Some(std_guard);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(5));
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 10);
        drop((r1, r2));
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_signals() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut done = m.lock();
            *done = true;
            c.notify_one();
        });
        let (m, c) = &*pair;
        let mut done = m.lock();
        while !*done {
            c.wait(&mut done);
        }
        t.join().unwrap();
        assert!(*done);
    }
}

//! A pocket JSON value type with a recursive-descent parser and a
//! writer — just enough for the gateway's request/response bodies. No
//! serde integration on purpose: the gateway translates between JSON and
//! the binary protocol by hand, field by field, so shapes stay explicit.

use std::fmt;

#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Integers render without a fraction.
                    if n.fract() == 0.0 && n.abs() < 9e15 {
                        write!(f, "{}", *n as i64)
                    } else {
                        write!(f, "{n}")
                    }
                } else {
                    f.write_str("null") // JSON has no NaN/inf
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input came from &str, so
                // boundaries are valid).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).unwrap_or("\u{fffd}"));
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at offset {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let src = r#"{"a":[1,2.5,-3],"b":{"c":"x\"y","d":true,"e":null},"f":""}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Json::Null));
        // Re-parse of the rendering is identical.
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"open", "{\"a\" 1}", "12x", "[1] tail"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::num(42.0).to_string(), "42");
        assert_eq!(Json::num(2.5).to_string(), "2.5");
        assert_eq!(Json::parse("1e3").unwrap().as_f64(), Some(1000.0));
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = Json::parse(r#""café ☃""#).unwrap();
        assert_eq!(v, Json::Str("café ☃".into()));
    }
}

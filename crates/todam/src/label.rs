//! SPQ labeling: turning trips into access costs (paper §IV-D).
//!
//! "For labeling, each zone is selected in L and all of its respective trips
//! are retrieved from M_g. For each, an SPQ is run in G to calculate its
//! access cost. These access costs are then aggregated back to the
//! zone-level using the mean and standard deviation, which forms the target
//! vector."
//!
//! Labeling dominates end-to-end runtime (§IV-E), so it parallelizes across
//! zones with a crossbeam worker pool. On the evaluation box every run is
//! still deterministic: costs depend only on (city, matrix, router config),
//! never on scheduling.

use crate::build::{trip_origin, trip_poi_pos};
use crate::matrix::Todam;
use serde::{Deserialize, Serialize};
use staq_gtfs::time::TimeInterval;
use staq_obs::{trace, AtomicHistogram, Counter};
use staq_synth::{City, ZoneId};
use staq_transit::{AccessCost, Raptor, SharedAccessCache, TransitNetwork};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Zones labeled (attempted — zones without trips count; they cost a map
/// lookup, not a routing pass).
static ZONES_LABELED: Counter = Counter::new("label.zones");
/// Trips routed and costed across all labeling passes.
static TRIPS_LABELED: Counter = Counter::new("label.trips");
/// Per-worker wall from the labeling pass's start to that worker's
/// completion. The max/min spread is the load-balance diagnostic for
/// §IV-E's dominant cost: a balanced pass has every worker finishing
/// together (ratio ≈ 1); under skew, static striding leaves early
/// finishers idle while the overloaded worker runs on alone.
static WORKER_WALL: AtomicHistogram = AtomicHistogram::new("label.worker_wall");
/// Output chunks claimed from the shared cursor by work-stealing workers.
static CHUNKS_CLAIMED: Counter = Counter::new("label.chunks_claimed");

/// Zones handed to a worker per claimed output chunk. Small enough that
/// claims stay balanced when per-zone trip counts vary, large enough that
/// a chunk's writes stay on one cache line (and the claim cursor stays off
/// the per-zone path).
const LABEL_CHUNK: usize = 4;

/// One worker's claimed chunks: paired input zones and the exclusive
/// output slice their labels land in.
type LabelShare<'s> = Vec<(&'s [ZoneId], &'s mut [Option<ZoneStats>])>;

/// How `label_zones` distributes zone chunks across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelSchedule {
    /// Chunks assigned up front in stride order (worker `w` takes chunks
    /// `w, w + workers, ...`). Zero coordination, but skewed per-zone trip
    /// counts leave workers unbalanced — kept as the bench baseline.
    Static,
    /// Workers claim the next chunk from a shared atomic cursor as they
    /// finish the last — one relaxed `fetch_add` per `LABEL_CHUNK` zones.
    /// Balances skew by construction; the default.
    WorkStealing,
}

/// Shared base pointer into the output vector for work-stealing workers.
///
/// SAFETY: `Sync` is sound because workers write *disjoint* ranges — the
/// atomic cursor hands out each chunk index exactly once, and a chunk maps
/// to a fixed, non-overlapping output range.
struct OutPtr(*mut Option<ZoneStats>);
unsafe impl Sync for OutPtr {}

/// Per-zone labeling result: the SSR target vector's components.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZoneStats {
    /// Mean access cost (MAC numerator of Eq. 2, already gravity-weighted by
    /// sampling).
    pub mac: f64,
    /// Standard deviation of access costs (ACSD).
    pub acsd: f64,
    /// Number of labeled trips.
    pub n_trips: u32,
    /// Fraction of the zone's trips that were walk-only (drives the ACSD=0
    /// effect discussed in §V-B2).
    pub walk_only_frac: f64,
}

impl ZoneStats {
    /// Stats over a cost/walk-flag list. Returns `None` for an empty list
    /// (zones without trips cannot be labeled).
    pub fn from_costs(costs: &[(f64, bool)]) -> Option<ZoneStats> {
        if costs.is_empty() {
            return None;
        }
        let n = costs.len() as f64;
        let mean = costs.iter().map(|c| c.0).sum::<f64>() / n;
        let var = costs.iter().map(|c| (c.0 - mean).powi(2)).sum::<f64>() / n;
        let walks = costs.iter().filter(|c| c.1).count() as f64;
        Some(ZoneStats {
            mac: mean,
            acsd: var.sqrt(),
            n_trips: costs.len() as u32,
            walk_only_frac: walks / n,
        })
    }
}

/// The labeling engine: a router plus cost model over one city.
pub struct LabelEngine<'a> {
    city: &'a City,
    net: TransitNetwork<'a>,
    cost: AccessCost,
    interval: TimeInterval,
    /// Worker threads for zone-parallel labeling.
    pub n_workers: usize,
    /// Chunk-distribution strategy for the worker pool.
    pub schedule: LabelSchedule,
    /// When set, every worker's router memoizes access isochrones in this
    /// fleet-shared cache instead of a private one. Labels are
    /// bit-identical either way — the cache only changes who computes an
    /// isochrone.
    shared_cache: Option<Arc<SharedAccessCache>>,
}

impl<'a> LabelEngine<'a> {
    /// Creates an engine with the default router config.
    pub fn new(city: &'a City, cost: AccessCost, interval: TimeInterval) -> Self {
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let n_workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        LabelEngine {
            city,
            net,
            cost,
            interval,
            n_workers,
            schedule: LabelSchedule::WorkStealing,
            shared_cache: None,
        }
    }

    /// An engine over a caller-supplied network — the what-if path hands in
    /// a scenario overlay here so counterfactual labeling reuses all of the
    /// base engine's machinery.
    pub fn with_network(
        city: &'a City,
        net: TransitNetwork<'a>,
        cost: AccessCost,
        interval: TimeInterval,
    ) -> Self {
        let n_workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        LabelEngine {
            city,
            net,
            cost,
            interval,
            n_workers,
            schedule: LabelSchedule::WorkStealing,
            shared_cache: None,
        }
    }

    /// Routes access isochrones through a fleet-shared cache. Only sound
    /// for the network the cache was warmed against — what-if overlays
    /// must keep private caches (their stop sets differ from the base).
    pub fn with_shared_cache(mut self, cache: Arc<SharedAccessCache>) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// One router per worker: shared-cache handle when configured,
    /// private arena otherwise.
    fn router(&self) -> Raptor<'_, 'a> {
        match &self.shared_cache {
            Some(c) => Raptor::with_shared_cache(&self.net, c),
            None => Raptor::new(&self.net),
        }
    }

    /// The underlying network (shared with feature extraction).
    pub fn network(&self) -> &TransitNetwork<'a> {
        &self.net
    }

    /// Labels a single zone: routes every trip, aggregates to mean/std.
    /// `None` when the zone has no trips in `m`.
    pub fn label_zone(&self, m: &Todam, zone: ZoneId) -> Option<ZoneStats> {
        let router = self.router();
        self.label_zone_with(&router, m, zone)
    }

    /// [`label_zone`](Self::label_zone) against a caller-owned router, so
    /// workers amortize one `Raptor` (and its query scratch) across their
    /// whole share of zones instead of rebuilding it per zone.
    fn label_zone_with(&self, router: &Raptor, m: &Todam, zone: ZoneId) -> Option<ZoneStats> {
        let trips = m.zone_trips(zone);
        let mut costs = Vec::with_capacity(trips.len());
        for trip in trips {
            let o = trip_origin(self.city, trip);
            let d = trip_poi_pos(self.city, m, trip);
            let j = router.query(&o, &d, trip.start, self.interval.day);
            costs.push((self.cost.cost(&j), j.is_walk_only()));
        }
        ZONES_LABELED.inc();
        TRIPS_LABELED.add(trips.len() as u64);
        ZoneStats::from_costs(&costs)
    }

    /// Labels a set of zones in parallel. Output order matches `zones`;
    /// entries are `None` for zones without trips.
    pub fn label_zones(&self, m: &Todam, zones: &[ZoneId]) -> Vec<Option<ZoneStats>> {
        self.label_zones_timed(m, zones).0
    }

    /// [`label_zones`](Self::label_zones) plus each worker's wall time —
    /// what the labeling bench uses to measure load balance. The walls are
    /// also recorded in the `label.worker_wall` histogram.
    pub fn label_zones_timed(
        &self,
        m: &Todam,
        zones: &[ZoneId],
    ) -> (Vec<Option<ZoneStats>>, Vec<Duration>) {
        if zones.is_empty() {
            return (Vec::new(), Vec::new());
        }
        let workers = self.n_workers.clamp(1, zones.len());
        if workers == 1 {
            let t0 = std::time::Instant::now();
            let mut span = trace::span("label.worker");
            span.attr("worker", 0);
            span.attr("chunks", zones.len().div_ceil(LABEL_CHUNK) as u64);
            let router = self.router();
            let out = zones.iter().map(|&z| self.label_zone_with(&router, m, z)).collect();
            drop(span);
            let elapsed = t0.elapsed();
            WORKER_WALL.record(elapsed);
            return (out, vec![elapsed]);
        }
        // Either way, every result lands through memory only its worker
        // touches: the hot loop writes with no lock and no per-zone atomic.
        // The pre-PR-2 implementation funneled every zone's result through
        // one `Mutex<Vec>`, serializing workers on the lock (and its cache
        // line) once per zone.
        let mut out = vec![None; zones.len()];
        let walls = match self.schedule {
            LabelSchedule::Static => self.run_static(m, zones, &mut out, workers),
            LabelSchedule::WorkStealing => self.run_stealing(m, zones, &mut out, workers),
        };
        for &w in &walls {
            WORKER_WALL.record(w);
        }
        (out, walls)
    }

    /// Static striding: chunk `i` belongs to worker `i % workers`, decided
    /// before any work runs. Lock-free via per-worker `&mut` sub-slices.
    fn run_static(
        &self,
        m: &Todam,
        zones: &[ZoneId],
        out: &mut [Option<ZoneStats>],
        workers: usize,
    ) -> Vec<Duration> {
        let mut shares: Vec<LabelShare<'_>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, (zc, oc)) in zones.chunks(LABEL_CHUNK).zip(out.chunks_mut(LABEL_CHUNK)).enumerate()
        {
            shares[i % workers].push((zc, oc));
        }
        // Walls are measured from a shared pass start, not each thread's
        // spawn: finish-time spread is the balance signal, and spawn
        // jitter on an oversubscribed box would otherwise drown it.
        let t0 = std::time::Instant::now();
        // Worker threads start with an empty span stack; hand them the
        // pass's context so their spans join the caller's trace.
        let ctx = trace::current();
        crossbeam::scope(|scope| {
            let handles: Vec<_> = shares
                .into_iter()
                .enumerate()
                .map(|(w, share)| {
                    scope.spawn(move |_| {
                        let _ctx = trace::attach(ctx);
                        let mut span = trace::span("label.worker");
                        span.attr("worker", w as u64);
                        span.attr("chunks", share.len() as u64);
                        let router = self.router();
                        for (zc, oc) in share {
                            for (&z, slot) in zc.iter().zip(oc.iter_mut()) {
                                *slot = self.label_zone_with(&router, m, z);
                            }
                        }
                        drop(span);
                        t0.elapsed()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("labeling worker panicked")).collect()
        })
        .expect("labeling worker panicked")
    }

    /// Work stealing: workers claim the next `LABEL_CHUNK`-zone chunk from
    /// a shared cursor as they finish the last, so a worker stuck on a
    /// trip-heavy zone stops accumulating future chunks it hasn't started.
    fn run_stealing(
        &self,
        m: &Todam,
        zones: &[ZoneId],
        out: &mut [Option<ZoneStats>],
        workers: usize,
    ) -> Vec<Duration> {
        let n_chunks = zones.len().div_ceil(LABEL_CHUNK);
        let cursor = AtomicUsize::new(0);
        let out_ptr = OutPtr(out.as_mut_ptr());
        let t0 = std::time::Instant::now();
        let ctx = trace::current();
        crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let cursor = &cursor;
                    let out_ptr = &out_ptr;
                    scope.spawn(move |_| {
                        let _ctx = trace::attach(ctx);
                        let mut worker_span = trace::span("label.worker");
                        worker_span.attr("worker", w as u64);
                        let router = self.router();
                        let mut claimed = 0u64;
                        loop {
                            let c = cursor.fetch_add(1, Ordering::Relaxed);
                            if c >= n_chunks {
                                break;
                            }
                            claimed += 1;
                            let start = c * LABEL_CHUNK;
                            let end = (start + LABEL_CHUNK).min(zones.len());
                            let mut chunk_span = trace::span("label.chunk");
                            chunk_span.attr("chunk", c as u64);
                            chunk_span.attr("zones", (end - start) as u64);
                            for (i, &zone) in zones.iter().enumerate().take(end).skip(start) {
                                let stats = self.label_zone_with(&router, m, zone);
                                // SAFETY: the fetch_add handed chunk `c` to
                                // this worker alone, and `i` stays inside
                                // the chunk's output range — no two workers
                                // ever write the same slot, and the scope
                                // join orders the writes before the main
                                // thread reads `out`.
                                unsafe { *out_ptr.0.add(i) = stats };
                            }
                        }
                        worker_span.attr("chunks", claimed);
                        CHUNKS_CLAIMED.add(claimed);
                        t0.elapsed()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("labeling worker panicked")).collect()
        })
        .expect("labeling worker panicked")
    }

    /// Labels every zone of the matrix — the naïve full computation the
    /// paper's Table II prices against the SSR solution.
    pub fn label_all(&self, m: &Todam) -> Vec<Option<ZoneStats>> {
        let zones: Vec<ZoneId> = (0..m.n_zones() as u32).map(ZoneId).collect();
        self.label_zones(m, &zones)
    }

    /// Total trips labeled when covering `zones` (cost accounting).
    pub fn trip_count(&self, m: &Todam, zones: &[ZoneId]) -> usize {
        zones.iter().map(|&z| m.zone_trips(z).len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::TodamSpec;
    use staq_synth::{CityConfig, PoiCategory};

    fn setup() -> (City, Todam) {
        let city = City::generate(&CityConfig::tiny(42));
        let m = TodamSpec { per_hour: 5, ..Default::default() }.build(&city, PoiCategory::School);
        (city, m)
    }

    #[test]
    fn zone_stats_from_costs() {
        let s = ZoneStats::from_costs(&[(10.0, false), (20.0, false), (30.0, true)]).unwrap();
        assert!((s.mac - 20.0).abs() < 1e-12);
        assert!((s.acsd - (200.0f64 / 3.0).sqrt()).abs() < 1e-9);
        assert_eq!(s.n_trips, 3);
        assert!((s.walk_only_frac - 1.0 / 3.0).abs() < 1e-12);
        assert!(ZoneStats::from_costs(&[]).is_none());
    }

    #[test]
    fn labels_are_finite_and_positive() {
        let (city, m) = setup();
        let engine = LabelEngine::new(&city, AccessCost::jt(), TimeInterval::am_peak());
        let all = engine.label_all(&m);
        let labeled: Vec<_> = all.iter().flatten().collect();
        assert!(!labeled.is_empty());
        for s in labeled {
            assert!(s.mac.is_finite() && s.mac > 0.0);
            assert!(s.acsd.is_finite() && s.acsd >= 0.0);
            assert!(s.n_trips > 0);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let (city, m) = setup();
        let mut engine = LabelEngine::new(&city, AccessCost::jt(), TimeInterval::am_peak());
        let zones: Vec<ZoneId> = (0..city.n_zones() as u32).map(ZoneId).collect();
        engine.n_workers = 1;
        let seq = engine.label_zones(&m, &zones);
        for workers in [2, 4, 8] {
            engine.n_workers = workers;
            let par = engine.label_zones(&m, &zones);
            assert_eq!(seq, par, "diverged at {workers} workers");
        }
    }

    /// The fleet-shared access cache must not perturb labels: shared-cache
    /// parallel labeling is bit-identical to private-cache sequential, and
    /// the shared cache actually warms (later passes reuse it).
    #[test]
    fn shared_cache_labeling_matches_private() {
        let (city, m) = setup();
        let zones: Vec<ZoneId> = (0..city.n_zones() as u32).map(ZoneId).collect();
        let mut private = LabelEngine::new(&city, AccessCost::jt(), TimeInterval::am_peak());
        private.n_workers = 1;
        let seq = private.label_zones(&m, &zones);
        let shared = Arc::new(SharedAccessCache::new());
        let mut engine = LabelEngine::new(&city, AccessCost::jt(), TimeInterval::am_peak())
            .with_shared_cache(Arc::clone(&shared));
        for workers in [1, 4] {
            engine.n_workers = workers;
            assert_eq!(seq, engine.label_zones(&m, &zones), "diverged at {workers} workers");
        }
        assert!(!shared.is_empty(), "labeling must warm the shared cache");
    }

    /// Worker counts above the zone count (1-zone chunks everywhere, some
    /// workers idle) still produce the exact sequential labeling.
    #[test]
    fn oversubscribed_workers_match_sequential() {
        let (city, m) = setup();
        let mut engine = LabelEngine::new(&city, AccessCost::jt(), TimeInterval::am_peak());
        let zones: Vec<ZoneId> = (0..5).map(ZoneId).collect();
        engine.n_workers = 1;
        let seq = engine.label_zones(&m, &zones);
        engine.n_workers = 64;
        assert_eq!(seq, engine.label_zones(&m, &zones));
    }

    /// Scheduling is an implementation detail: both strategies produce the
    /// exact sequential labeling at every worker count.
    #[test]
    fn schedules_agree_with_each_other_and_sequential() {
        let (city, m) = setup();
        let mut engine = LabelEngine::new(&city, AccessCost::jt(), TimeInterval::am_peak());
        let zones: Vec<ZoneId> = (0..city.n_zones() as u32).map(ZoneId).collect();
        engine.n_workers = 1;
        let seq = engine.label_zones(&m, &zones);
        for workers in [3, 8] {
            engine.n_workers = workers;
            engine.schedule = LabelSchedule::Static;
            assert_eq!(seq, engine.label_zones(&m, &zones), "static diverged at {workers}");
            engine.schedule = LabelSchedule::WorkStealing;
            assert_eq!(seq, engine.label_zones(&m, &zones), "stealing diverged at {workers}");
        }
    }

    #[test]
    fn timed_labeling_reports_one_wall_per_worker() {
        let (city, m) = setup();
        let mut engine = LabelEngine::new(&city, AccessCost::jt(), TimeInterval::am_peak());
        let zones: Vec<ZoneId> = (0..city.n_zones() as u32).map(ZoneId).collect();
        engine.n_workers = 4;
        let (out, walls) = engine.label_zones_timed(&m, &zones);
        assert_eq!(out.len(), zones.len());
        assert_eq!(walls.len(), 4.min(zones.len()));
        engine.n_workers = 1;
        let (_, walls) = engine.label_zones_timed(&m, &zones);
        assert_eq!(walls.len(), 1);
    }

    #[test]
    fn gac_labels_exceed_jt_labels() {
        let (city, m) = setup();
        let jt = LabelEngine::new(&city, AccessCost::jt(), TimeInterval::am_peak());
        let gac = LabelEngine::new(&city, AccessCost::gac(), TimeInterval::am_peak());
        let z = ZoneId(0);
        if let (Some(a), Some(b)) = (jt.label_zone(&m, z), gac.label_zone(&m, z)) {
            assert!(b.mac >= a.mac * 0.99, "GAC MAC {} below JT MAC {}", b.mac, a.mac);
        }
    }

    #[test]
    fn trip_count_accounts_per_zone() {
        let (city, m) = setup();
        let engine = LabelEngine::new(&city, AccessCost::jt(), TimeInterval::am_peak());
        let zones: Vec<ZoneId> = (0..city.n_zones() as u32).map(ZoneId).collect();
        assert_eq!(engine.trip_count(&m, &zones), m.n_trips());
    }
}

//! Temporal variation: the same access question asked at three times of
//! day — the "how does this vary temporally?" half of the paper's first
//! analytical query, and the phenomenon behind ACSD.
//!
//! Each interval gets its own offline artifacts (hop trees are per-interval
//! structures) and its own ground-truth labeling, so the comparison is
//! exact.
//!
//! ```text
//! cargo run --release --example temporal_variation
//! ```

use staq_repro::gtfs::time::{DayOfWeek, Stime};
use staq_repro::prelude::*;

fn main() {
    let city = City::generate(&CityConfig::tiny(42));
    let intervals = [
        TimeInterval::am_peak(),
        TimeInterval::midday(),
        TimeInterval::pm_peak(),
        TimeInterval::new(Stime::hours(19), Stime::hours(22), DayOfWeek::Tuesday, "evening"),
    ];

    println!("hospital access across the day ({} zones):\n", city.n_zones());
    println!("{:<10} {:>10} {:>10} {:>9}", "interval", "mean JT", "mean ACSD", "fairness");
    let mut results = Vec::new();
    for v in &intervals {
        let spec = TodamSpec { interval: v.clone(), per_hour: 6, ..Default::default() };
        let truth = NaiveResult::compute(&city, &spec, PoiCategory::Hospital, CostKind::Jt);
        let mean_mac =
            truth.measures.iter().map(|m| m.mac).sum::<f64>() / truth.measures.len() as f64;
        let mean_acsd =
            truth.measures.iter().map(|m| m.acsd).sum::<f64>() / truth.measures.len() as f64;
        let fair = staq_repro::access::fairness::fairness_of(&truth.measures);
        println!("{:<10} {:>9.1}m {:>9.1}m {:>9.4}", v.label, mean_mac, mean_acsd, fair);
        results.push((v.label.clone(), mean_mac));
    }

    // Evening service is sparser (3x headways): expect worse access.
    let peak = results.iter().find(|r| r.0 == "AM peak").unwrap().1;
    let evening = results.iter().find(|r| r.0 == "evening").unwrap().1;
    println!(
        "\nevening vs AM peak: {:+.1} min ({:.0}% worse) — sparse headways degrade access",
        evening - peak,
        (evening / peak - 1.0) * 100.0
    );
}

//! The prepared multimodal network shared by both routers.
//!
//! Construction extracts **trip patterns** (maximal groups of trips on one
//! route with an identical stop sequence — the unit RAPTOR scans), flattens
//! their timetables into dense arrival/departure matrices, snaps stops to
//! road nodes, and precomputes stop-to-stop foot transfers.
//!
//! Networks come in two flavors sharing one type. A **base** network owns
//! its patterns and per-stop topology. An **overlay** ([`TransitNetwork::
//! overlay`]) evaluates a counterfactual scenario against a base network by
//! copy-on-write: patterns are `Arc`-shared and only the ones a delta
//! touches are replaced; per-stop rows (patterns-at-stop, transfers) are
//! shared wholesale through an `Arc<Topology>` with a small side table of
//! full replacement rows, so every accessor keeps returning plain slices
//! and the routers cannot tell the difference.

use serde::{Deserialize, Serialize};
use staq_geom::{KdTree, Point};
use staq_gtfs::model::{RouteId, StopId, TripId};
use staq_gtfs::time::{DayOfWeek, Stime};
use staq_gtfs::{Delta, FeedIndex};
use staq_obs::Counter;
use staq_road::{dijkstra, NodeId, NodeSnapper, RoadGraph};
use std::collections::HashMap;
use std::sync::Arc;

/// Service-day bitmask for scenario-added weekday routes (Mon..Fri).
const WEEKDAY_MASK: u8 = 0b0001_1111;

/// Access-isochrone memo lookups answered from the cache.
pub(crate) static ACCESS_CACHE_HIT: Counter = Counter::new("transit.access_cache.hit");
/// Access-isochrone memo lookups that ran the road-graph Dijkstra.
pub(crate) static ACCESS_CACHE_MISS: Counter = Counter::new("transit.access_cache.miss");
/// Memoized isochrones dropped to stay inside the entry budget.
pub(crate) static ACCESS_CACHE_EVICTIONS: Counter = Counter::new("transit.access_cache.evictions");

/// Router parameters. Defaults mirror the paper's walking parameters
/// (τ = 600 s, ω = 4.5 km/h) and a standard 3-transfer search depth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Maximum number of boardings (rides); RAPTOR runs this many rounds.
    pub max_boardings: usize,
    /// Walking budget to reach the first stop / leave the last stop, secs.
    pub access_budget_secs: f64,
    /// Maximum interchange walk between stops, secs.
    pub transfer_walk_secs: f64,
    /// Walking speed ω, m/s.
    pub omega_mps: f64,
    /// Crow-flies → street-distance factor for stop-to-stop transfer walks
    /// and the direct-walk fallback.
    pub walk_detour: f64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            max_boardings: 4,
            access_budget_secs: staq_road::DEFAULT_TAU_SECS,
            transfer_walk_secs: 240.0,
            omega_mps: staq_road::DEFAULT_OMEGA_MPS,
            walk_detour: 1.25,
        }
    }
}

/// A trip pattern: trips of one route sharing an exact stop sequence.
///
/// Patterns are fully self-contained (per-trip service days live here, not
/// in the feed) so overlay patterns carrying synthetic scenario trips need
/// no feed record behind them.
///
/// Timetable layout: arrivals are **trip-major** (`arrivals[t * n_stops +
/// i]` — reconstruction walks positions of one fixed trip), departures are
/// **position-major** (`departures[i * n_trips + t]` — the scan probes one
/// fixed position across trips, so each position's departure column is one
/// contiguous, sorted slice). Sortedness of every departure column is the
/// boarding invariant: `build_patterns` guarantees it by splitting trips
/// into non-overtaking chains, and `check_no_overtaking` re-verifies both
/// matrices.
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    pub route: RouteId,
    /// Ordered stops of the pattern.
    pub stops: Vec<StopId>,
    /// Trips sorted by departure time at the first stop. Because trips of
    /// one pattern form a dominance chain (no overtaking in arrivals *or*
    /// departures), this order is simultaneously the sorted order of every
    /// per-position departure column — the trip-index permutation of the
    /// flattened layout is the identity.
    pub trips: Vec<TripId>,
    /// Flattened `trips.len() x stops.len()` arrival matrix, trip-major.
    arrivals: Vec<Stime>,
    /// Flattened `stops.len() x trips.len()` departure matrix,
    /// position-major: `departures[i * n_trips + t]`.
    departures: Vec<Stime>,
    /// Per-trip service-day bitmask (bit `DayOfWeek::index()`), parallel to
    /// `trips`.
    trip_days: Vec<u8>,
    /// OR of `trip_days`: set when at least one trip runs that day. Lets
    /// the router skip whole patterns on no-service days before they are
    /// ever enqueued.
    service_days: u8,
}

impl Pattern {
    /// Builds a pattern from **trip-major** arrival/departure rows (one row
    /// of `stops.len()` calls per trip, in trip order) — the natural order
    /// every producer emits — transposing departures into the
    /// position-major scan layout.
    fn from_trip_major(
        route: RouteId,
        stops: Vec<StopId>,
        trips: Vec<TripId>,
        arrivals: Vec<Stime>,
        departures_tm: Vec<Stime>,
        trip_days: Vec<u8>,
    ) -> Pattern {
        let (ns, nt) = (stops.len(), trips.len());
        debug_assert_eq!(arrivals.len(), ns * nt);
        debug_assert_eq!(departures_tm.len(), ns * nt);
        let mut departures = vec![Stime(0); departures_tm.len()];
        for t in 0..nt {
            for i in 0..ns {
                departures[i * nt + t] = departures_tm[t * ns + i];
            }
        }
        let service_days = trip_days.iter().fold(0u8, |a, &b| a | b);
        Pattern { route, stops, trips, arrivals, departures, trip_days, service_days }
    }

    /// Arrival of trip index `t` (within this pattern) at stop position `i`.
    #[inline]
    pub fn arrival(&self, t: usize, i: usize) -> Stime {
        self.arrivals[t * self.stops.len() + i]
    }

    /// Departure of trip index `t` at stop position `i`.
    #[inline]
    pub fn departure(&self, t: usize, i: usize) -> Stime {
        self.departures[i * self.trips.len() + t]
    }

    /// The contiguous departure column of stop position `i`: one `Stime`
    /// per trip, sorted non-decreasing (the flattened-layout invariant).
    /// The round scan walks a cursor over this slice instead of
    /// re-running a binary search per position.
    #[inline]
    pub fn departures_at(&self, i: usize) -> &[Stime] {
        let n = self.trips.len();
        &self.departures[i * n..(i + 1) * n]
    }

    /// True when trip index `k` of this pattern runs on `day`.
    #[inline]
    pub fn trip_runs_on(&self, k: usize, day: DayOfWeek) -> bool {
        self.trip_days[k] & (1u8 << day.index()) != 0
    }

    /// Index (within this pattern) of the earliest trip departing stop
    /// position `i` at or after `t` and running on `day`.
    pub fn earliest_trip(&self, i: usize, t: Stime, day: DayOfWeek) -> Option<usize> {
        // Each position's departure column is contiguous and sorted (trips
        // form a dominance chain in *departures*, not just arrivals — the
        // sort key the search actually probes): binary search it.
        let col = self.departures_at(i);
        let lo = col.partition_point(|&d| d < t);
        let day_bit = 1u8 << day.index();
        (lo..col.len()).find(|&k| self.trip_days[k] & day_bit != 0)
    }

    /// True when at least one of this pattern's trips runs on `day`.
    /// Precomputed at network build; a pattern with no service can never
    /// board, so skipping it entirely is exact.
    #[inline]
    pub fn runs_on(&self, day: DayOfWeek) -> bool {
        self.service_days & (1u8 << day.index()) != 0
    }
}

/// A foot transfer to another stop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transfer {
    pub to: StopId,
    pub walk_secs: u32,
}

/// Per-stop routing topology, shared (copy-on-write via `Arc`) between a
/// base network and its scenario overlays.
struct Topology {
    /// For each stop: `(pattern index, position within pattern)` pairs.
    patterns_at_stop: Vec<Vec<(u32, u32)>>,
    /// Road node each stop snaps to.
    stop_node: Vec<NodeId>,
    /// Stops at a given road node (reverse of `stop_node`).
    node_stops: HashMap<u32, Vec<StopId>>,
    /// Foot transfers per stop.
    transfers: Vec<Vec<Transfer>>,
    snapper: NodeSnapper,
}

/// Overlay-only side table: full replacement rows for base stops a scenario
/// delta touched, plus parallel rows for scenario-added stops (which get
/// ids `n_base_stops..`). Accessors consult this first and fall through to
/// the shared [`Topology`], so slices keep coming back either way.
struct OverlayExt {
    n_base_stops: usize,
    /// Replacement patterns-at-stop rows for base stops, keyed by raw id.
    patterns_at: HashMap<u32, Vec<(u32, u32)>>,
    /// Replacement transfer rows for base stops, keyed by raw id.
    transfers_at: HashMap<u32, Vec<Transfer>>,
    /// Scenario-added stops, indexed by `id - n_base_stops`.
    new_stop_pos: Vec<Point>,
    new_stop_node: Vec<NodeId>,
    new_patterns_at: Vec<Vec<(u32, u32)>>,
    new_transfers: Vec<Vec<Transfer>>,
    /// Scenario-added stops at a road node, consulted *alongside* the base
    /// `node_stops` map during access walks.
    node_new_stops: HashMap<u32, Vec<StopId>>,
    /// Next synthetic trip/route ids (continuing the base feed's dense id
    /// spaces, exactly like the feed-mutating path would).
    next_trip: u32,
    next_route: u32,
}

/// What a scenario overlay materialized, for `rt.scenario.*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OverlayStats {
    /// Base patterns replaced by a copy-on-write edit.
    pub patterns_touched: usize,
    /// Patterns appended by the scenario (delayed-trip splits, new routes).
    pub patterns_added: usize,
    /// Stops added by the scenario.
    pub stops_added: usize,
    /// Approximate bytes the overlay materialized (vs cloning the network).
    pub overlay_bytes: usize,
}

/// The prepared multimodal network.
pub struct TransitNetwork<'a> {
    pub road: &'a RoadGraph,
    pub feed: &'a FeedIndex,
    pub cfg: RouterConfig,
    /// `Arc` so overlays share untouched patterns with their base.
    patterns: Vec<Arc<Pattern>>,
    topo: Arc<Topology>,
    /// Present only on overlay networks.
    ext: Option<Box<OverlayExt>>,
}

impl std::fmt::Debug for TransitNetwork<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransitNetwork")
            .field("n_stops", &self.n_stops())
            .field("n_patterns", &self.patterns.len())
            .field("overlay", &self.ext.is_some())
            .finish()
    }
}

impl<'a> TransitNetwork<'a> {
    /// Prepares the network. Panics on genuinely malformed feeds (a trip
    /// whose own call times run backwards); prefer [`try_new`](Self::try_new)
    /// on serving paths where the feed has been through live mutation.
    ///
    /// Inter-trip overtaking (e.g. a delayed trip passing its successor) is
    /// *not* an error: `build_patterns` splits such trips into separate
    /// non-overtaking patterns, exactly like the overlay delay path does.
    pub fn new(road: &'a RoadGraph, feed: &'a FeedIndex, cfg: RouterConfig) -> Self {
        Self::try_new(road, feed, cfg).expect("malformed feed")
    }

    /// Fallible [`new`](Self::new): errors (instead of panicking a serving
    /// backend) when the feed is genuinely malformed — a trip with
    /// non-monotonic call times, which no amount of pattern splitting can
    /// make scannable.
    pub fn try_new(
        road: &'a RoadGraph,
        feed: &'a FeedIndex,
        cfg: RouterConfig,
    ) -> Result<Self, String> {
        let patterns = build_patterns(feed)?;
        for p in &patterns {
            check_no_overtaking(p)?;
        }
        let n_stops = feed.n_stops();
        let mut patterns_at_stop: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n_stops];
        for (pi, p) in patterns.iter().enumerate() {
            for (pos, s) in p.stops.iter().enumerate() {
                patterns_at_stop[s.idx()].push((pi as u32, pos as u32));
            }
        }

        let snapper = NodeSnapper::new(road);
        let mut stop_node = Vec::with_capacity(n_stops);
        let mut node_stops: HashMap<u32, Vec<StopId>> = HashMap::new();
        for s in 0..n_stops {
            let node = snapper.snap_unchecked(&feed.stop_pos(StopId(s as u32)));
            stop_node.push(node);
            node_stops.entry(node.0).or_default().push(StopId(s as u32));
        }

        // Foot transfers: stops within walking range (crow-flies x detour).
        let stop_tree = KdTree::build(&feed.stop_points());
        let max_walk_m = cfg.transfer_walk_secs * cfg.omega_mps / cfg.walk_detour;
        let mut transfers: Vec<Vec<Transfer>> = vec![Vec::new(); n_stops];
        for (s, out) in transfers.iter_mut().enumerate() {
            let pos = feed.stop_pos(StopId(s as u32));
            for nb in stop_tree.within_radius(&pos, max_walk_m) {
                if nb.item == s as u32 {
                    continue;
                }
                let secs = (nb.dist() * cfg.walk_detour / cfg.omega_mps).round() as u32;
                out.push(Transfer { to: StopId(nb.item), walk_secs: secs });
            }
        }

        Ok(TransitNetwork {
            road,
            feed,
            cfg,
            patterns: patterns.into_iter().map(Arc::new).collect(),
            topo: Arc::new(Topology {
                patterns_at_stop,
                stop_node,
                node_stops,
                transfers,
                snapper,
            }),
            ext: None,
        })
    }

    /// With default configuration.
    pub fn with_defaults(road: &'a RoadGraph, feed: &'a FeedIndex) -> Self {
        Self::new(road, feed, RouterConfig::default())
    }

    /// All trip patterns (base + any scenario-appended ones).
    #[inline]
    pub fn patterns(&self) -> &[Arc<Pattern>] {
        &self.patterns
    }

    /// Total stops: base feed stops plus scenario-added ones.
    #[inline]
    pub fn n_stops(&self) -> usize {
        self.topo.stop_node.len() + self.ext.as_ref().map_or(0, |e| e.new_stop_pos.len())
    }

    /// True for a network produced by [`overlay`](Self::overlay).
    #[inline]
    pub fn is_overlay(&self) -> bool {
        self.ext.is_some()
    }

    /// Patterns serving `stop` with the position of `stop` in each.
    #[inline]
    pub fn patterns_at(&self, stop: StopId) -> &[(u32, u32)] {
        if let Some(ext) = &self.ext {
            let i = stop.idx();
            if i >= ext.n_base_stops {
                return &ext.new_patterns_at[i - ext.n_base_stops];
            }
            if let Some(row) = ext.patterns_at.get(&stop.0) {
                return row;
            }
        }
        &self.topo.patterns_at_stop[stop.idx()]
    }

    /// Foot transfers out of `stop`.
    #[inline]
    pub fn transfers_from(&self, stop: StopId) -> &[Transfer] {
        if let Some(ext) = &self.ext {
            let i = stop.idx();
            if i >= ext.n_base_stops {
                return &ext.new_transfers[i - ext.n_base_stops];
            }
            if let Some(row) = ext.transfers_at.get(&stop.0) {
                return row;
            }
        }
        &self.topo.transfers[stop.idx()]
    }

    /// Road node `stop` snaps to.
    #[inline]
    pub fn stop_node(&self, stop: StopId) -> NodeId {
        if let Some(ext) = &self.ext {
            let i = stop.idx();
            if i >= ext.n_base_stops {
                return ext.new_stop_node[i - ext.n_base_stops];
            }
        }
        self.topo.stop_node[stop.idx()]
    }

    /// Stops reachable on foot from `point` within the access budget, as
    /// `(stop, walk seconds)`. Walks the road graph (bounded Dijkstra), not
    /// crow-flies, so severed streets are respected.
    pub fn access_stops(&self, point: &Point) -> Vec<(StopId, u32)> {
        let mut out = Vec::new();
        self.access_stops_into(point, &mut dijkstra::WalkScratch::new(), &mut Vec::new(), &mut out);
        out
    }

    /// [`access_stops`](Self::access_stops) against caller-owned scratch and
    /// buffers — the query hot path runs two of these per SPQ, and the
    /// Dijkstra distance table alone spans the whole road graph.
    pub fn access_stops_into(
        &self,
        point: &Point,
        walk: &mut dijkstra::WalkScratch,
        nodes: &mut Vec<(NodeId, f64)>,
        out: &mut Vec<(StopId, u32)>,
    ) {
        out.clear();
        let Some((root, gap_m)) = self.topo.snapper.snap(point) else {
            return;
        };
        let entry = gap_m / self.cfg.omega_mps;
        let remaining = self.cfg.access_budget_secs - entry;
        if remaining < 0.0 {
            return;
        }
        dijkstra::bounded_walk_times_into(self.road, root, remaining, walk, nodes);
        for &(node, t) in nodes.iter() {
            if let Some(stops) = self.topo.node_stops.get(&node.0) {
                for &s in stops {
                    out.push((s, (entry + t).round() as u32));
                }
            }
            if let Some(ext) = &self.ext {
                if let Some(stops) = ext.node_new_stops.get(&node.0) {
                    for &s in stops {
                        out.push((s, (entry + t).round() as u32));
                    }
                }
            }
        }
    }

    /// [`access_stops_into`](Self::access_stops_into) through a memo: the
    /// cached stop list for `point` when present, the freshly computed (and
    /// now cached) one otherwise. Returns an arena range; resolve it with
    /// [`AccessCache::slice`].
    pub fn access_stops_cached(
        &self,
        point: &Point,
        cache: &mut AccessCache,
        walk: &mut dijkstra::WalkScratch,
        nodes: &mut Vec<(NodeId, f64)>,
        tmp: &mut Vec<(StopId, u32)>,
    ) -> AccessRange {
        if let Some(range) = cache.get(point) {
            ACCESS_CACHE_HIT.inc();
            return range;
        }
        ACCESS_CACHE_MISS.inc();
        // Only the miss path gets a span: a hit is a hash probe and would
        // drown the ring in sub-microsecond records.
        let _span = staq_obs::trace::span("network.access_isochrone");
        self.access_stops_into(point, walk, nodes, tmp);
        cache.insert(point, tmp)
    }

    /// Direct walking time from `o` to `d` in seconds: the walk-only
    /// fallback, always finite (crow-flies × detour at ω). City-scale direct
    /// walks are rarely competitive; when they are (nearby POIs) the
    /// approximation error is a few percent of a short walk.
    pub fn direct_walk_secs(&self, o: &Point, d: &Point) -> u32 {
        (o.dist(d) * self.cfg.walk_detour / self.cfg.omega_mps).round() as u32
    }

    /// Total number of patterns (diagnostics).
    pub fn n_patterns(&self) -> usize {
        self.patterns.len()
    }

    /// Structural summary for logs and reports.
    pub fn stats(&self) -> NetworkStats {
        let n_trips: usize = self.patterns.iter().map(|p| p.trips.len()).sum();
        let n_transfers: usize =
            (0..self.n_stops()).map(|s| self.transfers_from(StopId(s as u32)).len()).sum();
        NetworkStats {
            n_stops: self.n_stops(),
            n_patterns: self.patterns.len(),
            n_trips,
            n_transfers,
            mean_pattern_length: if self.patterns.is_empty() {
                0.0
            } else {
                self.patterns.iter().map(|p| p.stops.len()).sum::<usize>() as f64
                    / self.patterns.len() as f64
            },
        }
    }

    /// A copy-on-write counterfactual view of this network with `deltas`
    /// applied, plus what it cost to materialize. The base network is not
    /// mutated and untouched patterns/rows are shared, so K scenarios cost
    /// K small overlays rather than K network clones.
    ///
    /// Scenario edits follow exactly the semantics of the feed-mutating
    /// path ([`FeedIndex::apply_delta`]): same schedules, same ids, same
    /// no-op/error cases — routing over an overlay and routing over a
    /// network rebuilt from a mutated feed agree on every arrival time.
    pub fn overlay(
        &self,
        deltas: &[Delta],
        bus_speed_mps: f64,
    ) -> Result<(TransitNetwork<'a>, OverlayStats), String> {
        if self.ext.is_some() {
            return Err("overlays do not compose; put all deltas in one scenario".into());
        }
        let mut patterns = self.patterns.clone();
        let mut ext = OverlayExt {
            n_base_stops: self.topo.stop_node.len(),
            patterns_at: HashMap::new(),
            transfers_at: HashMap::new(),
            new_stop_pos: Vec::new(),
            new_stop_node: Vec::new(),
            new_patterns_at: Vec::new(),
            new_transfers: Vec::new(),
            node_new_stops: HashMap::new(),
            next_trip: self.feed.feed().trips.len() as u32,
            next_route: self.feed.feed().routes.len() as u32,
        };
        for delta in deltas {
            match delta {
                Delta::TripDelay { trip, delay_secs } => {
                    self.ov_delay(&mut patterns, &mut ext, *trip, *delay_secs)?
                }
                Delta::TripCancel { trip } => ov_cancel(&mut patterns, &ext, *trip)?,
                Delta::RouteRemove { route } => ov_remove_route(&mut patterns, &ext, *route)?,
                Delta::ServiceAlert { .. } => {}
                Delta::AddRoute { stops, headway_s } => {
                    self.ov_add_route(&mut patterns, &mut ext, stops, *headway_s, bus_speed_mps)?
                }
            }
        }

        let mut stats = OverlayStats::default();
        for (p, base) in patterns.iter().zip(&self.patterns) {
            if !Arc::ptr_eq(p, base) {
                stats.patterns_touched += 1;
                stats.overlay_bytes += pattern_bytes(p);
            }
        }
        for p in &patterns[self.patterns.len()..] {
            stats.patterns_added += 1;
            stats.overlay_bytes += pattern_bytes(p);
        }
        stats.stops_added = ext.new_stop_pos.len();
        stats.overlay_bytes += ext.patterns_at.values().map(|r| r.len() * 8).sum::<usize>()
            + ext.new_patterns_at.iter().map(|r| r.len() * 8).sum::<usize>()
            + ext.transfers_at.values().map(|r| r.len() * 8).sum::<usize>()
            + ext.new_transfers.iter().map(|r| r.len() * 8).sum::<usize>()
            + ext.new_stop_pos.len() * (std::mem::size_of::<Point>() + 4);

        Ok((
            TransitNetwork {
                road: self.road,
                feed: self.feed,
                cfg: self.cfg,
                patterns,
                topo: Arc::clone(&self.topo),
                ext: Some(Box::new(ext)),
            },
            stats,
        ))
    }

    /// Overlay a uniform holding delay: the trip is split out of its
    /// pattern into an appended single-trip pattern shifted by the delay
    /// (so the reduced original and the new pattern each trivially keep the
    /// no-overtaking invariant), and every call stop gains a row entry for
    /// the new pattern.
    fn ov_delay(
        &self,
        patterns: &mut Vec<Arc<Pattern>>,
        ext: &mut OverlayExt,
        trip: TripId,
        delay_secs: u32,
    ) -> Result<(), String> {
        let (pi, k) =
            find_trip(patterns, trip).ok_or_else(|| format!("trip #{} makes no calls", trip.0))?;
        let p = Arc::clone(&patterns[pi]);
        let ns = p.stops.len();
        let delayed = Pattern::from_trip_major(
            p.route,
            p.stops.clone(),
            vec![trip],
            p.arrivals[k * ns..(k + 1) * ns].iter().map(|t| t.plus(delay_secs)).collect(),
            (0..ns).map(|i| p.departure(k, i).plus(delay_secs)).collect(),
            vec![p.trip_days[k]],
        );
        patterns[pi] = Arc::new(without_trip(&p, k));
        let pi_new = patterns.len() as u32;
        patterns.push(Arc::new(delayed));
        for (pos, &s) in p.stops.iter().enumerate() {
            pattern_row(&self.topo, ext, s).push((pi_new, pos as u32));
        }
        Ok(())
    }

    /// Overlay a new dynamic route: scenario stops get fresh ids past the
    /// base feed, two appended patterns carry the [`dyn_route_timetable`]
    /// schedule with synthetic trip ids continuing the feed's id space, and
    /// foot transfers to/from the new stops replace the touched base rows.
    fn ov_add_route(
        &self,
        patterns: &mut Vec<Arc<Pattern>>,
        ext: &mut OverlayExt,
        stops: &[Point],
        headway_s: u32,
        bus_speed_mps: f64,
    ) -> Result<(), String> {
        if stops.iter().any(|p| !p.is_finite()) {
            return Err("route stops must be finite".into());
        }
        let tt = staq_gtfs::delta::dyn_route_timetable(stops, headway_s, bus_speed_mps)?;
        let route = RouteId(ext.next_route);
        ext.next_route += 1;

        let first = (ext.n_base_stops + ext.new_stop_pos.len()) as u32;
        let new_stops: Vec<StopId> = (0..stops.len() as u32).map(|k| StopId(first + k)).collect();
        for (&sid, p) in new_stops.iter().zip(stops) {
            let node = self.topo.snapper.snap_unchecked(p);
            ext.new_stop_pos.push(*p);
            ext.new_stop_node.push(node);
            ext.new_patterns_at.push(Vec::new());
            ext.new_transfers.push(Vec::new());
            ext.node_new_stops.entry(node.0).or_default().push(sid);
        }

        for dir in 0..2usize {
            let ordered: Vec<StopId> = if dir == 0 {
                new_stops.clone()
            } else {
                new_stops.iter().rev().copied().collect()
            };
            let n = ordered.len();
            let mut trips = Vec::with_capacity(tt.starts.len());
            let mut arrivals = Vec::with_capacity(tt.starts.len() * n);
            let mut departures = Vec::with_capacity(tt.starts.len() * n);
            for &start in &tt.starts {
                trips.push(TripId(ext.next_trip));
                ext.next_trip += 1;
                for i in 0..n {
                    let (arr, dep) = tt.offsets[dir][i];
                    arrivals.push(Stime(start + arr));
                    departures.push(Stime(start + dep));
                }
            }
            let trip_days = vec![WEEKDAY_MASK; trips.len()];
            let pi = patterns.len() as u32;
            patterns.push(Arc::new(Pattern::from_trip_major(
                route,
                ordered.clone(),
                trips,
                arrivals,
                departures,
                trip_days,
            )));
            for (pos, &s) in ordered.iter().enumerate() {
                pattern_row(&self.topo, ext, s).push((pi, pos as u32));
            }
        }

        // Foot transfers for the new stops: a linear scan over base stops
        // (scenario routes have a handful of stops, so no tree needed),
        // with the same radius/cost convention as the base KdTree build.
        let max_walk_m = self.cfg.transfer_walk_secs * self.cfg.omega_mps / self.cfg.walk_detour;
        for (k, &sid) in new_stops.iter().enumerate() {
            let pos = stops[k];
            let my = sid.idx() - ext.n_base_stops;
            for s in 0..ext.n_base_stops as u32 {
                let d = pos.dist(&self.feed.stop_pos(StopId(s)));
                if d <= max_walk_m {
                    let secs = (d * self.cfg.walk_detour / self.cfg.omega_mps).round() as u32;
                    ext.new_transfers[my].push(Transfer { to: StopId(s), walk_secs: secs });
                    ext.transfers_at
                        .entry(s)
                        .or_insert_with(|| self.topo.transfers[s as usize].clone())
                        .push(Transfer { to: sid, walk_secs: secs });
                }
            }
            // Earlier scenario-added stops (previous routes and this
            // route's earlier stops).
            for j in 0..my {
                let d = pos.dist(&ext.new_stop_pos[j]);
                if d <= max_walk_m {
                    let secs = (d * self.cfg.walk_detour / self.cfg.omega_mps).round() as u32;
                    let other = StopId((ext.n_base_stops + j) as u32);
                    ext.new_transfers[my].push(Transfer { to: other, walk_secs: secs });
                    ext.new_transfers[j].push(Transfer { to: sid, walk_secs: secs });
                }
            }
        }
        Ok(())
    }
}

/// Locates `trip` as `(pattern index, trip index within pattern)`.
fn find_trip(patterns: &[Arc<Pattern>], trip: TripId) -> Option<(usize, usize)> {
    patterns
        .iter()
        .enumerate()
        .find_map(|(pi, p)| p.trips.iter().position(|&t| t == trip).map(|k| (pi, k)))
}

/// `p` with trip index `k` spliced out (an emptied pattern keeps its stop
/// sequence; with no service days it is skipped before ever being scanned).
fn without_trip(p: &Pattern, k: usize) -> Pattern {
    let ns = p.stops.len();
    let nt = p.trips.len();
    let mut trips = p.trips.clone();
    trips.remove(k);
    let mut arrivals = p.arrivals.clone();
    arrivals.drain(k * ns..(k + 1) * ns);
    // Departures are position-major: drop trip `k`'s element from every
    // position column.
    let mut departures = Vec::with_capacity((nt - 1) * ns);
    for i in 0..ns {
        for t in 0..nt {
            if t != k {
                departures.push(p.departure(t, i));
            }
        }
    }
    let mut trip_days = p.trip_days.clone();
    trip_days.remove(k);
    let service_days = trip_days.iter().fold(0u8, |a, &b| a | b);
    Pattern {
        route: p.route,
        stops: p.stops.clone(),
        trips,
        arrivals,
        departures,
        trip_days,
        service_days,
    }
}

/// The mutable patterns-at-stop row for `stop` inside an overlay: the
/// parallel row for scenario-added stops, else the replacement row for the
/// base stop (cloned from the shared topology on first touch).
fn pattern_row<'e>(
    topo: &Topology,
    ext: &'e mut OverlayExt,
    stop: StopId,
) -> &'e mut Vec<(u32, u32)> {
    let i = stop.idx();
    if i >= ext.n_base_stops {
        &mut ext.new_patterns_at[i - ext.n_base_stops]
    } else {
        ext.patterns_at.entry(stop.0).or_insert_with(|| topo.patterns_at_stop[i].clone())
    }
}

/// Overlay a cancellation: splice the trip out of its pattern. A trip that
/// already makes no calls (cancelled twice, or empty in the base feed) is a
/// no-op, matching [`FeedIndex::cancel_trip`].
fn ov_cancel(patterns: &mut [Arc<Pattern>], ext: &OverlayExt, trip: TripId) -> Result<(), String> {
    match find_trip(patterns, trip) {
        Some((pi, k)) => {
            patterns[pi] = Arc::new(without_trip(&patterns[pi], k));
            Ok(())
        }
        None if trip.0 < ext.next_trip => Ok(()),
        None => Err(format!("unknown trip #{}", trip.0)),
    }
}

/// Overlay a route removal: every pattern of the route is emptied (the
/// route/stop records conceptually remain, exactly like the feed path).
fn ov_remove_route(
    patterns: &mut [Arc<Pattern>],
    ext: &OverlayExt,
    route: RouteId,
) -> Result<(), String> {
    if route.0 >= ext.next_route {
        return Err(format!("unknown route #{}", route.0));
    }
    for p in patterns.iter_mut() {
        if p.route == route && !p.trips.is_empty() {
            *p = Arc::new(Pattern {
                route,
                stops: p.stops.clone(),
                trips: Vec::new(),
                arrivals: Vec::new(),
                departures: Vec::new(),
                trip_days: Vec::new(),
                service_days: 0,
            });
        }
    }
    Ok(())
}

/// Approximate heap bytes of one pattern (for overlay accounting).
fn pattern_bytes(p: &Pattern) -> usize {
    p.stops.len() * std::mem::size_of::<StopId>()
        + p.trips.len() * (std::mem::size_of::<TripId>() + 1)
        + (p.arrivals.len() + p.departures.len()) * std::mem::size_of::<Stime>()
}

/// An entry handle into an [`AccessCache`] arena: `(start, len)`.
pub type AccessRange = (u32, u32);

/// Memo of access/egress stop isochrones, keyed by quantized query point.
///
/// Labeling routes every trip of a zone from the *same* origin centroid to
/// one of a handful of POI destinations, so the bounded road-graph Dijkstra
/// behind [`TransitNetwork::access_stops_into`] recomputes identical
/// isochrones thousands of times per pass. The memo collapses those to one
/// computation each: keys are points snapped to a millimeter grid (an
/// identity in practice — distinct zone centroids, POIs, and request points
/// sit meters apart), and results live in a single arena so hits are
/// allocation-free.
///
/// The cache is per-router (routers are per-worker), so no synchronization
/// is needed. Eviction is **second-chance** (a clock over insertion order):
/// [`begin_query`](Self::begin_query) pops the oldest entries whose
/// referenced bit is clear — a hit since the last sweep earns one reprieve —
/// until the query's (up to two) inserts fit the budget, then compacts the
/// arena. Because eviction happens only between queries, ranges handed out
/// within one query are never invalidated mid-query. Evictions are counted
/// in `transit.access_cache.evictions`.
pub struct AccessCache {
    map: HashMap<(i64, i64), CacheEntry>,
    /// Insertion-ordered key queue the clock hand sweeps. Keys are unique:
    /// [`insert`](Self::insert) only runs on a miss.
    order: std::collections::VecDeque<(i64, i64)>,
    arena: Vec<(StopId, u32)>,
    max_entries: usize,
}

struct CacheEntry {
    range: AccessRange,
    /// Set on every hit, cleared when the clock hand passes — a hot entry
    /// survives exactly one sweep beyond a cold one.
    referenced: bool,
}

impl Default for AccessCache {
    fn default() -> Self {
        Self::new()
    }
}

impl AccessCache {
    /// Default entry budget: generous for a labeling pass (zones + POIs),
    /// small next to the router's own scratch.
    const DEFAULT_MAX_ENTRIES: usize = 4096;

    /// An empty cache with the default entry budget.
    pub fn new() -> Self {
        Self::with_max_entries(Self::DEFAULT_MAX_ENTRIES)
    }

    /// An empty cache holding at most `max_entries` memoized isochrones.
    pub fn with_max_entries(max_entries: usize) -> Self {
        AccessCache {
            map: HashMap::new(),
            order: std::collections::VecDeque::new(),
            arena: Vec::new(),
            max_entries: max_entries.max(2),
        }
    }

    /// Millimeter-grid key: exact for any two points that aren't within
    /// 1 mm of a shared grid line, i.e. all real origins/destinations.
    pub(crate) fn key(point: &Point) -> (i64, i64) {
        ((point.x * 1000.0).round() as i64, (point.y * 1000.0).round() as i64)
    }

    /// Call once per query, before its lookups: second-chance-evicts until
    /// the query's (up to two) inserts fit the budget, so ranges returned
    /// within a single query always stay valid.
    pub fn begin_query(&mut self) {
        let mut evicted = 0u64;
        while self.map.len() + 2 > self.max_entries {
            let Some(key) = self.order.pop_front() else { break };
            let entry = self.map.get_mut(&key).expect("queued key must be mapped");
            if entry.referenced {
                entry.referenced = false;
                self.order.push_back(key);
            } else {
                self.map.remove(&key);
                evicted += 1;
            }
        }
        if evicted > 0 {
            ACCESS_CACHE_EVICTIONS.add(evicted);
            // Compact the arena so evicted isochrones release their bytes;
            // survivors keep their relative (insertion) order.
            let mut arena = Vec::with_capacity(self.arena.len());
            for key in &self.order {
                let entry = self.map.get_mut(key).expect("queued key must be mapped");
                let (start, len) = entry.range;
                let new_start = arena.len() as u32;
                arena.extend_from_slice(&self.arena[start as usize..(start + len) as usize]);
                entry.range = (new_start, len);
            }
            self.arena = arena;
        }
    }

    /// Cached range for `point`, if present; marks the entry referenced.
    fn get(&mut self, point: &Point) -> Option<AccessRange> {
        self.map.get_mut(&Self::key(point)).map(|e| {
            e.referenced = true;
            e.range
        })
    }

    /// Memoizes `stops` as the isochrone of `point`.
    fn insert(&mut self, point: &Point, stops: &[(StopId, u32)]) -> AccessRange {
        let start = self.arena.len() as u32;
        self.arena.extend_from_slice(stops);
        let range = (start, stops.len() as u32);
        let key = Self::key(point);
        if self.map.insert(key, CacheEntry { range, referenced: false }).is_none() {
            self.order.push_back(key);
        }
        range
    }

    /// Resolves a range returned by [`TransitNetwork::access_stops_cached`].
    pub fn slice(&self, (start, len): AccessRange) -> &[(StopId, u32)] {
        &self.arena[start as usize..(start + len) as usize]
    }

    /// Number of memoized isochrones.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Summary counts of a prepared network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkStats {
    pub n_stops: usize,
    pub n_patterns: usize,
    pub n_trips: usize,
    pub n_transfers: usize,
    pub mean_pattern_length: f64,
}

impl std::fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} stops, {} patterns ({} trips, mean length {:.1}), {} foot transfers",
            self.n_stops, self.n_patterns, self.n_trips, self.mean_pattern_length, self.n_transfers
        )
    }
}

/// Groups trips into patterns by (route, exact stop sequence), then splits
/// each group into **non-overtaking chains**: trips sorted by first-stop
/// departure are assigned first-fit to the first chain whose last trip they
/// dominate pointwise (arrival *and* departure no earlier at every
/// position), opening a new chain otherwise. On a feed with no overtaking
/// — every schedule `staq-synth` generates — each group stays one chain and
/// the output is identical to the unsplit grouping; a delayed trip that
/// passes its successor lands in its own chain instead of corrupting the
/// sorted departure columns the boarding search depends on.
///
/// Errors only on genuinely malformed input: a trip whose own call times
/// run backwards (departure before arrival, or time travel between
/// consecutive stops).
fn build_patterns(feed: &FeedIndex) -> Result<Vec<Pattern>, String> {
    let mut keyed: HashMap<(RouteId, Vec<StopId>), Vec<TripId>> = HashMap::new();
    for trip in &feed.feed().trips {
        let calls = feed.trip_calls(trip.id);
        if calls.len() < 2 {
            continue;
        }
        for (i, c) in calls.iter().enumerate() {
            let ok = c.departure >= c.arrival && (i == 0 || c.arrival >= calls[i - 1].departure);
            if !ok {
                return Err(format!(
                    "trip #{} has non-monotonic call times at stop position {i}",
                    trip.id.0
                ));
            }
        }
        let stops: Vec<StopId> = calls.iter().map(|c| c.stop).collect();
        keyed.entry((trip.route, stops)).or_default().push(trip.id);
    }
    let mut keys: Vec<(RouteId, Vec<StopId>)> = keyed.keys().cloned().collect();
    keys.sort(); // deterministic pattern order
    let mut patterns = Vec::with_capacity(keys.len());
    for key in keys {
        let mut trips = keyed.remove(&key).unwrap();
        // Stable sort: ties keep feed (trip-id) order, deterministically.
        trips.sort_by_key(|&t| feed.trip_calls(t)[0].departure);
        let (route, stops) = key;
        let mut chains: Vec<Vec<TripId>> = Vec::new();
        for &t in &trips {
            let calls = feed.trip_calls(t);
            let slot = chains.iter().position(|chain| {
                let last = feed.trip_calls(*chain.last().unwrap());
                last.iter()
                    .zip(calls)
                    .all(|(a, b)| b.arrival >= a.arrival && b.departure >= a.departure)
            });
            match slot {
                Some(ci) => chains[ci].push(t),
                None => chains.push(vec![t]),
            }
        }
        for chain in chains {
            let mut arrivals = Vec::with_capacity(chain.len() * stops.len());
            let mut departures = Vec::with_capacity(chain.len() * stops.len());
            let mut trip_days = Vec::with_capacity(chain.len());
            for &t in &chain {
                for c in feed.trip_calls(t) {
                    arrivals.push(c.arrival);
                    departures.push(c.departure);
                }
                let mut days = 0u8;
                for day in DayOfWeek::ALL {
                    if feed.trip_runs_on(t, day) {
                        days |= 1u8 << day.index();
                    }
                }
                trip_days.push(days);
            }
            patterns.push(Pattern::from_trip_major(
                route,
                stops.clone(),
                chain,
                arrivals,
                departures,
                trip_days,
            ));
        }
    }
    Ok(patterns)
}

/// Errors when a later trip overtakes an earlier one at any stop position,
/// in arrivals **or** departures — the departure columns are what
/// `earliest_trip` binary-searches, so their sortedness is the invariant
/// that actually matters. A post-condition of `build_patterns`' chain
/// splitting; kept as an independent check so a future construction path
/// cannot silently regress it.
fn check_no_overtaking(p: &Pattern) -> Result<(), String> {
    let ns = p.stops.len();
    for t in 1..p.trips.len() {
        for i in 0..ns {
            if p.arrival(t, i) < p.arrival(t - 1, i) || p.departure(t, i) < p.departure(t - 1, i) {
                return Err(format!(
                    "pattern on route {:?} has overtaking trips at stop position {i}",
                    p.route
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use staq_synth::{City, CityConfig};

    fn city() -> City {
        City::generate(&CityConfig::small(42))
    }

    #[test]
    fn patterns_cover_all_multi_call_trips() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let total_trips: usize = net.patterns().iter().map(|p| p.trips.len()).sum();
        assert_eq!(total_trips, city.feed.feed().trips.len());
        for p in net.patterns() {
            assert!(p.stops.len() >= 2);
            assert!(!p.trips.is_empty());
        }
    }

    #[test]
    fn pattern_timetable_matches_feed() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let p = &net.patterns()[0];
        let calls = city.feed.trip_calls(p.trips[0]);
        for (i, c) in calls.iter().enumerate() {
            assert_eq!(p.arrival(0, i), c.arrival);
            assert_eq!(p.departure(0, i), c.departure);
        }
    }

    #[test]
    fn earliest_trip_binary_search_agrees_with_scan() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let day = DayOfWeek::Tuesday;
        for p in net.patterns().iter().take(5) {
            for &probe in &[Stime::hours(6), Stime::hms(7, 43, 0), Stime::hours(22)] {
                for i in [0usize, p.stops.len() / 2] {
                    let got = p.earliest_trip(i, probe, day);
                    let want = (0..p.trips.len()).find(|&k| {
                        p.departure(k, i) >= probe && city.feed.trip_runs_on(p.trips[k], day)
                    });
                    assert_eq!(got, want);
                }
            }
        }
    }

    /// A feed whose trips have per-trip start times, per-hop run times, and
    /// per-stop dwells — deliberately non-uniform so departure columns are
    /// not simple shifts of each other. Trips alternate between a weekday
    /// service and a Saturday-only one to exercise the day filter.
    fn irregular_feed(
        starts: &[u32],
        hops: &[Vec<u32>],
        dwells: &[Vec<u32>],
    ) -> staq_gtfs::model::Feed {
        use staq_gtfs::model::*;
        let n_stops = hops[0].len() + 1;
        let stops = (0..n_stops)
            .map(|k| Stop {
                id: StopId(k as u32),
                gtfs_id: format!("S{k}"),
                name: format!("Stop {k}"),
                pos: staq_geom::Point { x: 500.0 * k as f64, y: 0.0 },
            })
            .collect();
        let services = vec![
            Service {
                id: ServiceId(0),
                gtfs_id: "WK".into(),
                days: [true, true, true, true, true, false, false],
            },
            Service {
                id: ServiceId(1),
                gtfs_id: "SAT".into(),
                days: [false, false, false, false, false, true, false],
            },
        ];
        let mut stop_times = Vec::new();
        for (t, &start) in starts.iter().enumerate() {
            let mut arr = start;
            for seq in 0..n_stops {
                if seq > 0 {
                    arr += hops[t][seq - 1];
                }
                let dep = if seq + 1 < n_stops { arr + dwells[t][seq] } else { arr };
                stop_times.push(StopTime {
                    trip: TripId(t as u32),
                    stop: StopId(seq as u32),
                    arrival: Stime(arr),
                    departure: Stime(dep),
                    seq: seq as u32,
                });
                arr = dep;
            }
        }
        Feed {
            agencies: vec![Agency { id: AgencyId(0), gtfs_id: "A".into(), name: "T".into() }],
            stops,
            routes: vec![Route {
                id: RouteId(0),
                gtfs_id: "R0".into(),
                agency: AgencyId(0),
                short_name: "P".into(),
                route_type: RouteType::Bus,
            }],
            services,
            trips: (0..starts.len() as u32)
                .map(|t| Trip {
                    id: TripId(t),
                    gtfs_id: format!("T{t}"),
                    route: RouteId(0),
                    service: ServiceId(t % 2),
                })
                .collect(),
            stop_times,
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(96))]

        /// On feeds with non-uniform dwells and run times — including ones
        /// that force dominance-chain splits — every built pattern is
        /// overtaking-free, no trip is lost, and the cursor-friendly
        /// `earliest_trip` agrees with a brute-force linear scan at every
        /// stop position for arbitrary probe times on both service days.
        #[test]
        fn built_patterns_are_sorted_and_earliest_trip_matches_linear_scan(
            nt in 1usize..6,
            ns in 2usize..6,
            starts in proptest::collection::vec(6 * 3600u32..10 * 3600, 5),
            all_hops in proptest::collection::vec(
                proptest::collection::vec(60u32..1200, 4), 5),
            all_dwells in proptest::collection::vec(
                proptest::collection::vec(0u32..180, 5), 5),
            probes in proptest::collection::vec(5 * 3600u32..12 * 3600, 4),
        ) {
            let starts = &starts[..nt];
            let hops: Vec<Vec<u32>> =
                all_hops[..nt].iter().map(|h| h[..ns - 1].to_vec()).collect();
            let dwells: Vec<Vec<u32>> =
                all_dwells[..nt].iter().map(|d| d[..ns].to_vec()).collect();
            let ix = FeedIndex::build(irregular_feed(starts, &hops, &dwells));
            let patterns = build_patterns(&ix).expect("monotone trips must build");
            let total: usize = patterns.iter().map(|p| p.trips.len()).sum();
            prop_assert_eq!(total, starts.len(), "splitting must not lose trips");
            for p in &patterns {
                check_no_overtaking(p).expect("built patterns are overtaking-free");
                for day in [DayOfWeek::Tuesday, DayOfWeek::Saturday] {
                    for i in 0..p.stops.len() {
                        for &probe in &probes {
                            let got = p.earliest_trip(i, Stime(probe), day);
                            let want = (0..p.trips.len()).find(|&k| {
                                p.departure(k, i) >= Stime(probe) && p.trip_runs_on(k, day)
                            });
                            prop_assert_eq!(got, want, "i={} probe={} day={:?}", i, probe, day);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn access_stops_respects_budget() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let origin = city.cores[0];
        let stops = net.access_stops(&origin);
        assert!(!stops.is_empty(), "city center must reach some stop on foot");
        for &(s, secs) in &stops {
            assert!(secs as f64 <= net.cfg.access_budget_secs + 1.0);
            // The stop really is near the walking range.
            let crow = city.feed.stop_pos(s).dist(&origin);
            assert!(crow <= net.cfg.access_budget_secs * net.cfg.omega_mps * 1.05);
        }
    }

    #[test]
    fn transfers_are_symmetricish_and_bounded() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        for s in 0..city.feed.n_stops() {
            for tr in net.transfers_from(StopId(s as u32)) {
                assert!(tr.walk_secs as f64 <= net.cfg.transfer_walk_secs + 1.0);
                assert_ne!(tr.to, StopId(s as u32));
                // Reverse transfer exists (same radius, symmetric metric).
                assert!(net.transfers_from(tr.to).iter().any(|r| r.to == StopId(s as u32)));
            }
        }
    }

    #[test]
    fn stats_summarize_the_network() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let s = net.stats();
        assert_eq!(s.n_stops, city.feed.n_stops());
        assert_eq!(s.n_trips, city.feed.feed().trips.len());
        assert!(s.mean_pattern_length >= 2.0);
        assert!(s.to_string().contains("patterns"));
    }

    #[test]
    fn access_cache_returns_identical_stop_lists() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let mut cache = AccessCache::new();
        let mut walk = dijkstra::WalkScratch::new();
        let (mut nodes, mut tmp) = (Vec::new(), Vec::new());
        for p in [city.cores[0], city.zones[3].centroid, city.zones[7].centroid] {
            cache.begin_query();
            let miss = net.access_stops_cached(&p, &mut cache, &mut walk, &mut nodes, &mut tmp);
            let first: Vec<_> = cache.slice(miss).to_vec();
            let hit = net.access_stops_cached(&p, &mut cache, &mut walk, &mut nodes, &mut tmp);
            assert_eq!(cache.slice(hit), &first[..]);
            assert_eq!(first, net.access_stops(&p), "cached list diverged from direct compute");
        }
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn access_cache_evicts_in_second_chance_order_at_budget() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let mut cache = AccessCache::with_max_entries(5);
        let mut walk = dijkstra::WalkScratch::new();
        let (mut nodes, mut tmp) = (Vec::new(), Vec::new());
        let evictions_before = ACCESS_CACHE_EVICTIONS.get();
        let pts: Vec<Point> = (0..5).map(|z| city.zones[z].centroid).collect();
        let mut lookup = |cache: &mut AccessCache, p: &Point| {
            cache.begin_query();
            net.access_stops_cached(p, cache, &mut walk, &mut nodes, &mut tmp)
        };
        // Warm three entries, then re-touch pts[0] so its referenced bit
        // is set, then fill to the budget.
        for p in &pts[..3] {
            lookup(&mut cache, p);
        }
        lookup(&mut cache, &pts[0]);
        lookup(&mut cache, &pts[3]);
        // The next query overflows the budget: the clock hand reaches the
        // referenced pts[0] first, grants it a second chance, and evicts
        // the cold pts[1] instead — never the whole arena.
        let r = lookup(&mut cache, &pts[4]);
        assert_eq!(cache.slice(r), &net.access_stops(&pts[4])[..]);
        assert!(cache.get(&pts[0]).is_some(), "referenced entry must get a second chance");
        assert!(cache.get(&pts[1]).is_none(), "oldest cold entry is evicted first");
        // A range surviving arena compaction still resolves correctly.
        let r0 = cache.get(&pts[0]).expect("still cached");
        assert_eq!(cache.slice(r0), &net.access_stops(&pts[0])[..]);
        assert!(
            ACCESS_CACHE_EVICTIONS.get() > evictions_before,
            "selective eviction must be counted"
        );
        assert!(cache.len() <= 5 && !cache.is_empty());
    }

    /// Earliest arrivals over a grid of probe queries — the overlay
    /// equivalence tests compare these rather than leg sequences, because
    /// transfer-row relaxation *order* (which differs between an overlay
    /// and a rebuilt network) can tie-break label chains differently while
    /// RAPTOR's arrival times stay relaxation-order independent.
    fn probe_arrivals(net: &TransitNetwork<'_>, city: &City) -> Vec<u32> {
        let r = crate::Raptor::new(net);
        let day = DayOfWeek::Tuesday;
        let mut out = Vec::new();
        for o in [city.cores[0], city.zones[2].centroid, city.zones[9].centroid] {
            for d in [city.zones[5].centroid, city.zones[11].centroid, city.cores[0]] {
                for t in [Stime::hours(8), Stime::hms(17, 30, 0)] {
                    out.push(r.query(&o, &d, t, day).arrive.0);
                }
            }
        }
        out
    }

    #[test]
    fn overlay_empty_scenario_is_identity() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let (ov, stats) = net.overlay(&[], 8.0).expect("empty overlay");
        assert!(ov.is_overlay());
        assert_eq!(stats, OverlayStats::default());
        assert_eq!(ov.n_stops(), net.n_stops());
        for (a, b) in ov.patterns().iter().zip(net.patterns()) {
            assert!(Arc::ptr_eq(a, b), "empty scenario must share every pattern");
        }
        assert_eq!(probe_arrivals(&ov, &city), probe_arrivals(&net, &city));
    }

    #[test]
    fn overlay_add_route_is_bit_identical_to_incremental_feed() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let stops = vec![city.zones[2].centroid, city.cores[0], city.zones[9].centroid];
        let speed = 8.0;

        let mut mutated = city.feed.clone();
        mutated.append_route(&stops, 600, speed).expect("incremental append");
        let rebuilt = TransitNetwork::with_defaults(&city.road, &mutated);

        let delta = Delta::AddRoute { stops, headway_s: 600 };
        let (ov, stats) = net.overlay(std::slice::from_ref(&delta), speed).expect("overlay");

        // Same ids, same schedules, same pattern order: field-for-field.
        assert_eq!(ov.n_stops(), rebuilt.n_stops());
        assert_eq!(ov.patterns().len(), rebuilt.patterns().len());
        for (a, b) in ov.patterns().iter().zip(rebuilt.patterns()) {
            assert_eq!(**a, **b, "overlay pattern diverged from rebuilt pattern");
        }
        for s in 0..ov.n_stops() {
            let sid = StopId(s as u32);
            assert_eq!(ov.patterns_at(sid), rebuilt.patterns_at(sid));
            let mut x: Vec<_> = ov.transfers_from(sid).to_vec();
            let mut y: Vec<_> = rebuilt.transfers_from(sid).to_vec();
            x.sort_by_key(|t| (t.to, t.walk_secs));
            y.sort_by_key(|t| (t.to, t.walk_secs));
            assert_eq!(x, y, "transfers at stop {s} diverged");
            assert_eq!(ov.stop_node(sid), rebuilt.stop_node(sid));
        }
        assert_eq!(stats.patterns_added, 2);
        assert_eq!(stats.stops_added, 3);
        assert!(stats.overlay_bytes > 0);
        assert_eq!(probe_arrivals(&ov, &city), probe_arrivals(&rebuilt, &city));
    }

    #[test]
    fn overlay_delay_cancel_remove_match_rebuilt_feeds() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let victim = net.patterns()[0].trips[0];
        let route = net.patterns()[net.patterns().len() / 2].route;
        let scenarios: Vec<Vec<Delta>> = vec![
            vec![Delta::TripDelay { trip: victim, delay_secs: 900 }],
            vec![Delta::TripCancel { trip: victim }],
            vec![Delta::RouteRemove { route }],
            vec![
                Delta::TripDelay { trip: victim, delay_secs: 300 },
                Delta::ServiceAlert { route, message: "advisory".into() },
                Delta::RouteRemove { route },
            ],
        ];
        for deltas in &scenarios {
            let mut mutated = city.feed.clone();
            for d in deltas {
                mutated.apply_delta(d, 8.0).expect("incremental apply");
            }
            let rebuilt = TransitNetwork::with_defaults(&city.road, &mutated);
            let (ov, _) = net.overlay(deltas, 8.0).expect("overlay");
            assert_eq!(
                probe_arrivals(&ov, &city),
                probe_arrivals(&rebuilt, &city),
                "scenario {deltas:?} diverged from the rebuilt feed"
            );
        }
        // The base network is untouched by all of the above.
        let fresh = TransitNetwork::with_defaults(&city.road, &city.feed);
        assert_eq!(probe_arrivals(&net, &city), probe_arrivals(&fresh, &city));
    }

    #[test]
    fn overlay_rejects_bad_scenarios() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let n_trips = city.feed.feed().trips.len() as u32;
        let err = net
            .overlay(&[Delta::TripCancel { trip: TripId(n_trips + 7) }], 8.0)
            .expect_err("unknown trip must be rejected");
        assert!(err.contains("unknown trip"), "{err}");
        let err = net
            .overlay(&[Delta::AddRoute { stops: vec![Point::new(0.0, 0.0)], headway_s: 600 }], 8.0)
            .expect_err("one-stop route must be rejected");
        assert!(err.contains("two stops"), "{err}");
        let (ov, _) = net.overlay(&[], 8.0).unwrap();
        let err = ov.overlay(&[], 8.0).expect_err("overlays must not compose");
        assert!(err.contains("compose"), "{err}");
    }

    #[test]
    fn direct_walk_scales_with_distance() {
        let city = city();
        let net = TransitNetwork::with_defaults(&city.road, &city.feed);
        let a = Point::new(0.0, 0.0);
        let near = net.direct_walk_secs(&a, &Point::new(100.0, 0.0));
        let far = net.direct_walk_secs(&a, &Point::new(1000.0, 0.0));
        assert!(far > near * 9);
        assert_eq!(net.direct_walk_secs(&a, &a), 0);
    }
}

//! Uniform hash-grid spatial index.
//!
//! Complements the kd-tree for *bulk* radius queries with a fixed radius —
//! e.g. "which bus stops are within the walking budget of each of 3000 zone
//! centroids". With cell size ≈ query radius, each query touches at most 9
//! cells.

use crate::point::Point;

/// A uniform grid over the plane bucketing `u32` payloads by cell.
#[derive(Debug, Clone)]
pub struct GridIndex {
    cell: f64,
    /// (cell_x, cell_y, item, point) tuples sorted by cell key.
    entries: Vec<(i64, i64, u32, Point)>,
    /// Sorted cell keys with start offsets into `entries`.
    offsets: Vec<(i64, usize)>,
    /// Occupied cell bounds (min_cx, max_cx, min_cy, max_cy); queries are
    /// clamped to this range so an oversized radius cannot scan empty space.
    cell_bounds: (i64, i64, i64, i64),
}

#[inline]
fn key(cx: i64, cy: i64) -> i64 {
    // Interleave-free packing: cities span far fewer than 2^31 cells.
    (cx << 32) ^ (cy & 0xffff_ffff)
}

impl GridIndex {
    /// Builds an index with the given `cell_size` in meters. Panics if the
    /// cell size is not strictly positive.
    pub fn build(items: &[(Point, u32)], cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        let inv = 1.0 / cell_size;
        let mut entries: Vec<(i64, i64, u32, Point)> = items
            .iter()
            .map(|&(p, it)| {
                let cx = (p.x * inv).floor() as i64;
                let cy = (p.y * inv).floor() as i64;
                (cx, cy, it, p)
            })
            .collect();
        entries.sort_by_key(|&(cx, cy, _, _)| key(cx, cy));
        let mut offsets = Vec::new();
        let mut last = None;
        for (i, &(cx, cy, _, _)) in entries.iter().enumerate() {
            let k = key(cx, cy);
            if last != Some(k) {
                offsets.push((k, i));
                last = Some(k);
            }
        }
        let cell_bounds = entries
            .iter()
            .fold((i64::MAX, i64::MIN, i64::MAX, i64::MIN), |(x0, x1, y0, y1), &(cx, cy, _, _)| {
                (x0.min(cx), x1.max(cx), y0.min(cy), y1.max(cy))
            });
        GridIndex { cell: cell_size, entries, offsets, cell_bounds }
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn cell_range(&self, k: i64) -> &[(i64, i64, u32, Point)] {
        match self.offsets.binary_search_by_key(&k, |&(k, _)| k) {
            Ok(i) => {
                let start = self.offsets[i].1;
                let end = self.offsets.get(i + 1).map_or(self.entries.len(), |&(_, off)| off);
                &self.entries[start..end]
            }
            Err(_) => &[],
        }
    }

    /// All items within `radius` meters of `query` (inclusive).
    pub fn within_radius(&self, query: &Point, radius: f64) -> Vec<(u32, f64)> {
        let mut out = Vec::new();
        self.for_each_within(query, radius, |item, d2| out.push((item, d2.sqrt())));
        out
    }

    /// Visits every item within `radius` meters of `query`, passing the
    /// payload and *squared* distance. Avoids allocation on hot paths.
    pub fn for_each_within<F: FnMut(u32, f64)>(&self, query: &Point, radius: f64, mut f: F) {
        if radius < 0.0 || self.entries.is_empty() {
            return;
        }
        let inv = 1.0 / self.cell;
        let r2 = radius * radius;
        let (bx0, bx1, by0, by1) = self.cell_bounds;
        let cx0 = (((query.x - radius) * inv).floor() as i64).max(bx0);
        let cx1 = (((query.x + radius) * inv).floor() as i64).min(bx1);
        let cy0 = (((query.y - radius) * inv).floor() as i64).max(by0);
        let cy1 = (((query.y + radius) * inv).floor() as i64).min(by1);
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                for &(_, _, item, p) in self.cell_range(key(cx, cy)) {
                    let d2 = p.dist2(query);
                    if d2 <= r2 {
                        f(item, d2);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Vec<(Point, u32)> {
        vec![
            (Point::new(0.0, 0.0), 0),
            (Point::new(5.0, 0.0), 1),
            (Point::new(0.0, 5.0), 2),
            (Point::new(100.0, 100.0), 3),
            (Point::new(-50.0, 20.0), 4),
        ]
    }

    #[test]
    fn radius_query_finds_near_items_only() {
        let g = GridIndex::build(&cluster(), 10.0);
        let mut hits: Vec<u32> =
            g.within_radius(&Point::new(0.0, 0.0), 6.0).into_iter().map(|(i, _)| i).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1, 2]);
    }

    #[test]
    fn radius_boundary_inclusive() {
        let g = GridIndex::build(&cluster(), 10.0);
        let hits = g.within_radius(&Point::new(0.0, 0.0), 5.0);
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn matches_brute_force_on_many_points() {
        // Deterministic pseudo-random scatter (no RNG dependency needed).
        let mut items = Vec::new();
        let mut s: u64 = 42;
        for i in 0..500u32 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let x = ((s >> 16) & 0xffff) as f64 / 65536.0 * 1000.0;
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let y = ((s >> 16) & 0xffff) as f64 / 65536.0 * 1000.0;
            items.push((Point::new(x, y), i));
        }
        let g = GridIndex::build(&items, 50.0);
        let q = Point::new(500.0, 500.0);
        let r = 120.0;
        let mut grid_hits: Vec<u32> = g.within_radius(&q, r).into_iter().map(|(i, _)| i).collect();
        let mut brute: Vec<u32> =
            items.iter().filter(|(p, _)| p.dist(&q) <= r).map(|&(_, i)| i).collect();
        grid_hits.sort_unstable();
        brute.sort_unstable();
        assert_eq!(grid_hits, brute);
        assert!(!brute.is_empty());
    }

    #[test]
    fn negative_coordinates_handled() {
        let g = GridIndex::build(&[(Point::new(-100.0, -100.0), 7)], 30.0);
        let hits = g.within_radius(&Point::new(-101.0, -99.0), 5.0);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 7);
    }

    #[test]
    fn empty_index() {
        let g = GridIndex::build(&[], 10.0);
        assert!(g.is_empty());
        assert!(g.within_radius(&Point::new(0.0, 0.0), 1e9).is_empty());
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn rejects_zero_cell() {
        GridIndex::build(&[], 0.0);
    }
}

//! The staq-shard router daemon.
//!
//! ```text
//! shard [--addr 127.0.0.1:7900] [--shards N] [--mode process|thread]
//!       [--workers N] [--city birmingham|coventry|test] [--scale f]
//!       [--seed u64] [--serve-bin path] [--metrics-addr host:port]
//! ```
//!
//! Boots `--shards` backend engines — each one a spawned `serve` daemon
//! in `process` mode (the default), or an in-process server per shard in
//! `thread` mode — waits until every one answers its readiness probe,
//! then serves the v2 wire protocol on `--addr` until SIGINT/EOF on
//! stdin. Backends that crash are respawned automatically; their
//! categories answer `Unavailable` in the meantime.

use staq_serve::presets::CityPreset;
use staq_shard::{
    route, Backend, ProcessBackend, RouterConfig, ShardSupervisor, SupervisorConfig, ThreadBackend,
};
use std::sync::Arc;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Process,
    Thread,
}

struct Args {
    addr: String,
    shards: usize,
    mode: Mode,
    workers: usize,
    city: CityPreset,
    scale: f64,
    seed: u64,
    serve_bin: Option<String>,
    metrics_addr: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7900".into(),
        shards: 4,
        mode: Mode::Process,
        workers: 4,
        city: CityPreset::Test,
        scale: 0.05,
        seed: 42,
        serve_bin: None,
        metrics_addr: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => args.addr = need(&mut it, "--addr"),
            "--shards" => args.shards = parse(&mut it, "--shards"),
            "--mode" => {
                args.mode = match need(&mut it, "--mode").as_str() {
                    "process" => Mode::Process,
                    "thread" => Mode::Thread,
                    other => usage(&format!("unknown mode {other:?}")),
                }
            }
            "--workers" => args.workers = parse(&mut it, "--workers"),
            "--city" => {
                let v = need(&mut it, "--city");
                args.city =
                    CityPreset::parse(&v).unwrap_or_else(|| usage(&format!("unknown city {v:?}")));
            }
            "--scale" => args.scale = parse(&mut it, "--scale"),
            "--seed" => args.seed = parse(&mut it, "--seed"),
            "--serve-bin" => args.serve_bin = Some(need(&mut it, "--serve-bin")),
            "--metrics-addr" => args.metrics_addr = Some(need(&mut it, "--metrics-addr")),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if args.shards == 0 {
        usage("--shards must be at least 1");
    }
    if args.workers == 0 {
        usage("--workers must be at least 1");
    }
    args
}

fn need(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")))
}

fn parse<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
    need(it, flag).parse().unwrap_or_else(|_| usage(&format!("{flag} needs a valid value")))
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: shard [--addr host:port] [--shards N] [--mode process|thread] \
         [--workers N] [--city birmingham|coventry|test] [--scale f] [--seed u64] \
         [--serve-bin path] [--metrics-addr host:port]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

fn main() {
    let args = parse_args();
    let backends: Vec<Box<dyn Backend>> = match args.mode {
        Mode::Process => {
            let bin = match &args.serve_bin {
                Some(p) => std::path::PathBuf::from(p),
                None => ProcessBackend::sibling_serve_bin().unwrap_or_else(|e| {
                    eprintln!("error: cannot locate the serve binary: {e}");
                    std::process::exit(1);
                }),
            };
            if !bin.is_file() {
                eprintln!(
                    "error: serve binary not found at {} (build it, or pass --serve-bin)",
                    bin.display()
                );
                std::process::exit(1);
            }
            let daemon_args = vec![
                "--city".into(),
                args.city.to_string(),
                "--scale".into(),
                args.scale.to_string(),
                "--seed".into(),
                args.seed.to_string(),
                "--workers".into(),
                args.workers.to_string(),
            ];
            (0..args.shards)
                .map(|_| {
                    Box::new(ProcessBackend::new(bin.clone(), daemon_args.clone()))
                        as Box<dyn Backend>
                })
                .collect()
        }
        Mode::Thread => (0..args.shards)
            .map(|_| {
                let (city, scale, seed) = (args.city, args.scale, args.seed);
                Box::new(ThreadBackend::new(args.workers, move || {
                    Arc::new(city.engine(scale, seed))
                })) as Box<dyn Backend>
            })
            .collect(),
    };

    eprintln!(
        "starting {} {} backend(s) ({} city, scale {}, seed {})...",
        args.shards,
        if args.mode == Mode::Process { "process" } else { "thread" },
        args.city,
        args.scale,
        args.seed
    );
    let t0 = std::time::Instant::now();
    let sup = ShardSupervisor::start(backends, SupervisorConfig::default()).unwrap_or_else(|e| {
        eprintln!("error: fleet failed to start: {e}");
        std::process::exit(1);
    });
    eprintln!("fleet ready in {:.1}s", t0.elapsed().as_secs_f64());

    let router_cfg = RouterConfig { addr: args.addr.clone(), ..RouterConfig::default() };
    let mut handle = route(sup, &router_cfg).unwrap_or_else(|e| {
        eprintln!("error: cannot bind {}: {e}", args.addr);
        std::process::exit(1);
    });
    eprintln!("routing on {} across {} shards; close stdin to stop", handle.addr(), args.shards);
    // Router-side registry: shard.* counters, backend latency banks, and
    // (in thread mode) the in-process backends' own metrics too.
    let _scrape = args.metrics_addr.as_ref().map(|addr| {
        let h = staq_obs::serve_prometheus(addr).unwrap_or_else(|e| {
            eprintln!("error: cannot bind metrics listener {addr}: {e}");
            std::process::exit(1);
        });
        eprintln!("metrics on http://{}/metrics", h.addr());
        h
    });

    let mut sink = String::new();
    while std::io::stdin().read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
        sink.clear();
    }
    eprintln!("shutting down...");
    handle.shutdown();
}

//! Multiplexing correctness over real TCP: N concurrent callers sharing
//! one [`MuxClient`] connection must observe responses *bit-identical*
//! to N callers with private connections — success and error frames
//! alike — and a connection dying mid-stream must fail every in-flight
//! caller and leave the client poisoned, matching the plain client's
//! contract.

use bytes::BytesMut;
use staq_repro::prelude::*;
use staq_serve::codec::encode_response;
use staq_serve::presets::CityPreset;
use staq_serve::{Client, ClientError, MuxClient, Request, Response, ServerConfig};
use std::io::Read;
use std::net::TcpListener;

const CALLERS: usize = 8;

/// The request script every caller runs, in order. Read-only (so the
/// answers cannot depend on caller interleaving) except the one-stop
/// bus route, which the server rejects with an error *frame* before
/// touching any state — that is the error-path equivalence case.
fn script() -> Vec<Request> {
    vec![
        Request::Query {
            category: PoiCategory::School,
            query: AccessQuery::MeanAccess,
            approx: false,
        },
        Request::Query {
            category: PoiCategory::School,
            query: AccessQuery::Classification,
            approx: false,
        },
        Request::Query {
            category: PoiCategory::School,
            query: AccessQuery::WorstZones { k: 5 },
            approx: false,
        },
        Request::Query {
            category: PoiCategory::School,
            query: AccessQuery::PointAccess { x: 2000.0, y: 2000.0 },
            approx: false,
        },
        Request::Measures { category: PoiCategory::School, approx: false },
        Request::AddBusRoute {
            stops: vec![staq_repro::geom::Point::new(0.0, 0.0)],
            headway_s: 600,
        },
        Request::Query {
            category: PoiCategory::School,
            query: AccessQuery::AtRisk { threshold_factor: 1.0 },
            approx: false,
        },
    ]
}

/// Canonical wire form of an outcome: the encoded response frame for
/// answers (error frames included), the error variant for client-side
/// failures. Two outcomes are equivalent iff these bytes are equal.
fn canon(outcome: &Result<Response, ClientError>) -> Vec<u8> {
    match outcome {
        Ok(resp) => {
            let mut buf = BytesMut::new();
            encode_response(resp, &mut buf);
            buf.to_vec()
        }
        Err(e) => format!("client error: {e:?}").into_bytes(),
    }
}

#[test]
fn mux_callers_match_private_connection_callers_bit_for_bit() {
    let engine = CityPreset::Test.engine(0.05, 42);
    let mut server = staq_serve::serve(
        engine,
        &ServerConfig { addr: "127.0.0.1:0".into(), workers: 4, ..Default::default() },
    )
    .expect("bind server");
    let addr = server.addr();

    // Path A: every caller shares ONE multiplexed connection.
    let mux = MuxClient::connect(addr).expect("connect mux");
    let shared: Vec<Vec<Vec<u8>>> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..CALLERS)
            .map(|_| {
                let mux = mux.clone();
                scope.spawn(move |_| {
                    script().iter().map(|req| canon(&mux.call(req))).collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .unwrap();

    // Path B: every caller dials its own private connection.
    let private: Vec<Vec<Vec<u8>>> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..CALLERS)
            .map(|_| {
                scope.spawn(move |_| {
                    let mut c = Client::connect(addr).expect("connect");
                    script().iter().map(|req| canon(&c.call(req))).collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .unwrap();

    for (caller, (a, b)) in shared.iter().zip(&private).enumerate() {
        assert_eq!(a.len(), b.len());
        for (step, (bytes_a, bytes_b)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                bytes_a, bytes_b,
                "caller {caller} step {step}: mux and private answers diverge"
            );
        }
    }
    // Every caller saw the same bytes as every other caller, too.
    for a in &shared[1..] {
        assert_eq!(a, &shared[0]);
    }
    // The error-path step really was an error frame, not a success.
    let error_step = &shared[0][5];
    assert_eq!(error_step[5], 0xFF, "one-stop route must answer with an error frame");

    server.shutdown();
}

/// A backend that accepts, reads a little, then hangs up mid-stream.
fn abrupt_backend() -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut s) = stream else { return };
            std::thread::spawn(move || {
                let mut buf = [0u8; 64];
                let _ = s.read(&mut buf);
                // Drop: RST/FIN mid-conversation, before any response.
            });
        }
    });
    addr
}

#[test]
fn mid_stream_death_poisons_the_mux_like_a_serial_client() {
    let addr = abrupt_backend();
    let req = Request::Stats;

    // Plain client: the call fails, the connection is poisoned, and the
    // next call fails fast without touching the socket.
    let mut plain = Client::connect(addr).expect("connect");
    assert!(plain.call(&req).is_err());
    assert!(plain.is_poisoned());
    assert!(matches!(plain.call(&req), Err(ClientError::Poisoned)));

    // Mux client with concurrent in-flight callers: every waiter gets an
    // error (none hangs), the client reports poisoned, and later calls
    // fail fast with `Poisoned` — the same contract.
    let mux = MuxClient::connect(addr).expect("connect mux");
    let outcomes: Vec<Result<Response, ClientError>> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..4).map(|_| scope.spawn(|_| mux.call(&Request::Stats))).collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .unwrap();
    for outcome in &outcomes {
        assert!(outcome.is_err(), "an in-flight caller must not see a fabricated response");
    }
    assert!(mux.is_poisoned());
    assert!(matches!(mux.call(&req), Err(ClientError::Poisoned)));
}

//! The compressed gravity matrix `M_g`.
//!
//! Trips are stored zone-sorted with a CSR-style offset array, because every
//! consumer (labeling, aggregation) iterates per zone. Alongside the trips,
//! the per-zone sparse attractiveness vectors are retained: the SSR feature
//! aggregation re-uses the same `α_ij` weights (§IV-C).

use serde::{Deserialize, Serialize};
use staq_gtfs::time::Stime;
use staq_synth::{PoiId, ZoneId};

/// One sampled trip: an entry of `M_g`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Trip {
    pub zone: ZoneId,
    /// Index into the matrix's POI list (not the global POI id).
    pub poi_idx: u32,
    pub start: Stime,
}

/// The gravity TODAM for one (city, POI category, interval).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Todam {
    /// POI ids covered by this matrix (one category), in column order.
    pub pois: Vec<PoiId>,
    /// Trips sorted by zone.
    trips: Vec<Trip>,
    /// `zone_offsets[z]..zone_offsets[z+1]` indexes `trips` of zone `z`.
    zone_offsets: Vec<u32>,
    /// Sparse per-zone attractiveness: `(poi_idx, α_ij)` with `α_ij > 0`.
    alpha: Vec<Vec<(u32, f64)>>,
    /// Size of the *full* matrix `|Z| x |P| x |R|` this gravity matrix was
    /// thinned from (for Table I accounting).
    pub full_size: u64,
}

impl Todam {
    /// Assembles a matrix from per-zone trip lists (already zone-ordered).
    pub(crate) fn from_parts(
        pois: Vec<PoiId>,
        per_zone_trips: Vec<Vec<Trip>>,
        alpha: Vec<Vec<(u32, f64)>>,
        full_size: u64,
    ) -> Self {
        assert_eq!(per_zone_trips.len(), alpha.len());
        let mut trips = Vec::with_capacity(per_zone_trips.iter().map(Vec::len).sum());
        let mut zone_offsets = Vec::with_capacity(per_zone_trips.len() + 1);
        zone_offsets.push(0u32);
        for (z, zone_trips) in per_zone_trips.into_iter().enumerate() {
            for t in &zone_trips {
                debug_assert_eq!(t.zone.idx(), z);
            }
            trips.extend(zone_trips);
            zone_offsets.push(trips.len() as u32);
        }
        Todam { pois, trips, zone_offsets, alpha, full_size }
    }

    /// Number of zones.
    #[inline]
    pub fn n_zones(&self) -> usize {
        self.zone_offsets.len() - 1
    }

    /// Total sampled trips `|M_g|`.
    #[inline]
    pub fn n_trips(&self) -> usize {
        self.trips.len()
    }

    /// Trips of zone `z`.
    #[inline]
    pub fn zone_trips(&self, z: ZoneId) -> &[Trip] {
        let lo = self.zone_offsets[z.idx()] as usize;
        let hi = self.zone_offsets[z.idx() + 1] as usize;
        &self.trips[lo..hi]
    }

    /// All trips, zone-sorted.
    #[inline]
    pub fn trips(&self) -> &[Trip] {
        &self.trips
    }

    /// Sparse attractiveness vector of zone `z`: `(poi_idx, α_ij)` pairs.
    #[inline]
    pub fn zone_alpha(&self, z: ZoneId) -> &[(u32, f64)] {
        &self.alpha[z.idx()]
    }

    /// Percentage size reduction versus the full matrix (Table I's "% Red.").
    pub fn reduction_pct(&self) -> f64 {
        if self.full_size == 0 {
            return 0.0;
        }
        (1.0 - self.n_trips() as f64 / self.full_size as f64) * 100.0
    }

    /// Structural invariants (tests and debug assertions).
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.zone_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("zone offsets must be non-decreasing".into());
        }
        if *self.zone_offsets.last().unwrap() as usize != self.trips.len() {
            return Err("last offset must equal trip count".into());
        }
        for z in 0..self.n_zones() {
            for t in self.zone_trips(ZoneId(z as u32)) {
                if t.zone.idx() != z {
                    return Err(format!("trip filed under wrong zone {z}"));
                }
                if t.poi_idx as usize >= self.pois.len() {
                    return Err("trip references out-of-range poi".into());
                }
            }
            let sum: f64 = self.alpha[z].iter().map(|&(_, a)| a).sum();
            if !(0.0..=1.0 + 1e-9).contains(&sum) {
                return Err(format!("zone {z} alpha sums to {sum}"));
            }
        }
        if self.n_trips() as u64 > self.full_size {
            return Err("gravity matrix larger than full matrix".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Todam {
        Todam::from_parts(
            vec![PoiId(10), PoiId(20)],
            vec![
                vec![
                    Trip { zone: ZoneId(0), poi_idx: 0, start: Stime(100) },
                    Trip { zone: ZoneId(0), poi_idx: 1, start: Stime(200) },
                ],
                vec![],
                vec![Trip { zone: ZoneId(2), poi_idx: 0, start: Stime(50) }],
            ],
            vec![vec![(0, 0.7), (1, 0.3)], vec![], vec![(0, 1.0)]],
            60,
        )
    }

    #[test]
    fn csr_layout() {
        let m = tiny();
        m.check_invariants().unwrap();
        assert_eq!(m.n_zones(), 3);
        assert_eq!(m.n_trips(), 3);
        assert_eq!(m.zone_trips(ZoneId(0)).len(), 2);
        assert_eq!(m.zone_trips(ZoneId(1)).len(), 0);
        assert_eq!(m.zone_trips(ZoneId(2))[0].start, Stime(50));
    }

    #[test]
    fn reduction_accounting() {
        let m = tiny();
        assert!((m.reduction_pct() - 95.0).abs() < 1e-12, "3 of 60 kept");
    }

    #[test]
    fn alpha_is_sparse_per_zone() {
        let m = tiny();
        assert_eq!(m.zone_alpha(ZoneId(0)).len(), 2);
        assert!(m.zone_alpha(ZoneId(1)).is_empty());
    }

    #[test]
    fn invariant_checker_catches_bad_poi() {
        let mut m = tiny();
        // Reach in through the trips slice via from_parts misuse.
        m = Todam::from_parts(
            m.pois.clone(),
            vec![vec![Trip { zone: ZoneId(0), poi_idx: 9, start: Stime(0) }], vec![], vec![]],
            vec![vec![], vec![], vec![]],
            60,
        );
        assert!(m.check_invariants().is_err());
    }
}

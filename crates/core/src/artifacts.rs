//! The offline artifact bundle: built once per (city, interval), shared by
//! every pipeline run and by the engine.

use staq_gtfs::time::TimeInterval;
use staq_hoptree::HopTreeStore;
use staq_ml::SparseAdj;
use staq_obs::AtomicHistogram;
use staq_road::IsochroneParams;
use staq_synth::City;
use std::time::Instant;

/// Offline artifact builds (hop trees + isochrones + adjacency) — the
/// once-per-(city, interval) stage upstream of every pipeline run.
static STAGE_ARTIFACTS: AtomicHistogram = AtomicHistogram::new("pipeline.stage.artifacts");

/// Precomputed structures for one `(city, interval)`.
pub struct OfflineArtifacts {
    /// Hop trees + isochrones + zone index.
    pub store: HopTreeStore,
    /// Gaussian-thresholded zone adjacency, in zone-id order (the GNN
    /// permutes it into labeled-then-unlabeled order per run).
    pub adjacency: SparseAdj,
    /// Wall-clock seconds spent building (offline cost accounting).
    pub build_secs: f64,
}

impl OfflineArtifacts {
    /// Builds hop trees, isochrones and the zone adjacency.
    pub fn build(city: &City, interval: &TimeInterval, params: &IsochroneParams) -> Self {
        let t0 = Instant::now();
        let store = HopTreeStore::build(city, interval, params);
        let coords: Vec<(f64, f64)> =
            city.zones.iter().map(|z| (z.centroid.x, z.centroid.y)).collect();
        let adjacency = SparseAdj::gaussian_threshold(&coords, 12, 1e-4, None);
        STAGE_ARTIFACTS.record(t0.elapsed());
        OfflineArtifacts { store, adjacency, build_secs: t0.elapsed().as_secs_f64() }
    }

    /// Persists the expensive part (hop trees) to `path`; see
    /// [`staq_hoptree::persist`].
    pub fn save_trees(&self, path: &std::path::Path) -> Result<(), String> {
        staq_hoptree::persist::save(&self.store, path)
    }

    /// Loads previously saved trees instead of regenerating them; the
    /// adjacency and isochrones are rebuilt from the city (cheap).
    pub fn load_trees(city: &City, path: &std::path::Path) -> Result<Self, String> {
        let t0 = Instant::now();
        let store = staq_hoptree::persist::load(path, city)?;
        let coords: Vec<(f64, f64)> =
            city.zones.iter().map(|z| (z.centroid.x, z.centroid.y)).collect();
        let adjacency = SparseAdj::gaussian_threshold(&coords, 12, 1e-4, None);
        Ok(OfflineArtifacts { store, adjacency, build_secs: t0.elapsed().as_secs_f64() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staq_synth::CityConfig;

    #[test]
    fn trees_roundtrip_through_disk() {
        let city = City::generate(&CityConfig::tiny(8));
        let a =
            OfflineArtifacts::build(&city, &TimeInterval::am_peak(), &IsochroneParams::default());
        let path = std::env::temp_dir().join(format!("staq_art_{}.txt", std::process::id()));
        a.save_trees(&path).unwrap();
        let b = OfflineArtifacts::load_trees(&city, &path).unwrap();
        for z in 0..city.n_zones() as u32 {
            let zid = staq_synth::ZoneId(z);
            assert_eq!(a.store.outbound(zid), b.store.outbound(zid));
            assert_eq!(a.store.inbound(zid), b.store.inbound(zid));
        }
        assert_eq!(a.adjacency, b.adjacency);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn builds_for_small_city() {
        let city = City::generate(&CityConfig::small(42));
        let a =
            OfflineArtifacts::build(&city, &TimeInterval::am_peak(), &IsochroneParams::default());
        assert_eq!(a.store.n_zones(), city.n_zones());
        assert_eq!(a.adjacency.n(), city.n_zones());
        assert!(a.build_secs >= 0.0);
    }
}

//! Dynamic scenario: find an access desert, run a new bus route through it,
//! and re-answer the access query — the "introducing new bus stops to avoid
//! access deserts" policy test from the paper's introduction.
//!
//! Demonstrates the *incremental* recompute path: only zones whose walking
//! isochrone touches the new route get their transit-hop trees rebuilt.
//!
//! ```text
//! cargo run --release --example dynamic_bus_route
//! ```

use staq_repro::prelude::*;

fn main() {
    let city = City::generate(&CityConfig::small(42));
    let spec = TodamSpec::default();

    // Ground-truth hospital access before the intervention.
    let before = NaiveResult::compute(&city, &spec, PoiCategory::Hospital, CostKind::Jt);
    let worst = *before.measures.iter().max_by(|a, b| a.mac.partial_cmp(&b.mac).unwrap()).unwrap();
    println!(
        "access desert: zone {} with mean journey time {:.1} min (city mean {:.1})",
        worst.zone.0,
        worst.mac,
        mean(&before)
    );

    // A what-if route: desert -> midpoint -> city center (where the
    // hospitals cluster), every 10 minutes.
    let engine = AccessEngine::new(
        city,
        PipelineConfig {
            beta: 0.15,
            model: ModelKind::Mlp,
            cost: CostKind::Jt,
            todam: spec.clone(),
            ..Default::default()
        },
    );
    let a = engine.city().zone_centroid(worst.zone);
    let b = engine.city().cores[0];
    let stops = [a, a.lerp(&b, 0.25), a.midpoint(&b), a.lerp(&b, 0.75), b];
    let rebuilt = engine.add_bus_route(&stops, 600);
    println!(
        "added a 5-stop route to the center (10 min headway); {} zone hop-trees rebuilt incrementally",
        rebuilt
    );

    // Ground truth after: the desert zone must improve.
    let after = NaiveResult::compute(&engine.city(), &spec, PoiCategory::Hospital, CostKind::Jt);
    let worst_after = after.measures.iter().find(|m| m.zone == worst.zone).unwrap();
    println!(
        "zone {}: {:.1} -> {:.1} min ({:+.1})",
        worst.zone.0,
        worst.mac,
        worst_after.mac,
        worst_after.mac - worst.mac
    );
    println!("city mean: {:.1} -> {:.1} min", mean(&before), mean(&after));

    // And the SSR engine answers the updated query without a full recompute.
    match engine.query(&AccessQuery::MeanAccess, PoiCategory::Hospital) {
        QueryAnswer::MeanAccess { mean_mac, .. } => {
            println!("SSR-estimated city mean after the edit: {mean_mac:.1} min")
        }
        other => unreachable!("{other:?}"),
    }
}

fn mean(r: &NaiveResult) -> f64 {
    r.measures.iter().map(|m| m.mac).sum::<f64>() / r.measures.len() as f64
}

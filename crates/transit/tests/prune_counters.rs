//! Counter-level acceptance checks for the pruned SPQ path.
//!
//! Lives in its own integration-test binary (therefore its own process):
//! the staq-obs registry is global, and unit tests in other binaries bump
//! `raptor.*` counters concurrently. Everything here is a single `#[test]`
//! for the same reason — in-process tests run in parallel threads.

use staq_geom::Point;
use staq_gtfs::time::{DayOfWeek, Stime};
use staq_synth::{City, CityConfig};
use staq_transit::{Raptor, TransitNetwork};

fn od_pairs(city: &City, n: usize) -> Vec<(Point, Point)> {
    (0..n)
        .map(|i| {
            let o = city.zones[(i * 7) % city.zones.len()].centroid;
            let d = city.zones[(i * 13 + 5) % city.zones.len()].centroid;
            (o, d)
        })
        .collect()
}

fn counter(name: &str) -> u64 {
    staq_obs::snapshot().counter(name).unwrap_or(0)
}

#[test]
fn pruning_cuts_pattern_scans_and_cache_serves_warm_queries() {
    let city = City::generate(&CityConfig::small(42));
    let net = TransitNetwork::with_defaults(&city.road, &city.feed);
    let ods = od_pairs(&city, 40);
    let depart = Stime::hms(7, 30, 0);

    let reference = Raptor::reference(&net);
    let pruned = Raptor::new(&net);
    // Warm both routers so the measured passes hit only cached isochrones.
    for (o, d) in &ods {
        reference.query(o, d, depart, DayOfWeek::Tuesday);
        pruned.query(o, d, depart, DayOfWeek::Tuesday);
    }

    let scans_before = counter("raptor.patterns_scanned");
    for (o, d) in &ods {
        reference.query(o, d, depart, DayOfWeek::Tuesday);
    }
    let ref_scans = counter("raptor.patterns_scanned") - scans_before;

    let scans_before = counter("raptor.patterns_scanned");
    let hits_before = counter("transit.access_cache.hit");
    let misses_before = counter("transit.access_cache.miss");
    for (o, d) in &ods {
        pruned.query(o, d, depart, DayOfWeek::Tuesday);
    }
    let pruned_scans = counter("raptor.patterns_scanned") - scans_before;
    let hits = counter("transit.access_cache.hit") - hits_before;
    let misses = counter("transit.access_cache.miss") - misses_before;

    eprintln!(
        "patterns_scanned/query: reference {:.1}, pruned {:.1} ({:.0}% drop); \
         warm cache hits {hits}, misses {misses}",
        ref_scans as f64 / ods.len() as f64,
        pruned_scans as f64 / ods.len() as f64,
        100.0 * (1.0 - pruned_scans as f64 / ref_scans as f64),
    );

    // Acceptance criterion: ≥ 40% fewer pattern scans per warm query.
    assert!(
        (pruned_scans as f64) <= 0.6 * (ref_scans as f64),
        "pruning cut patterns_scanned only {ref_scans} -> {pruned_scans} \
         (need >= 40% drop)"
    );
    // Warm pass: every isochrone lookup (2 per query) must be a hit.
    assert_eq!(hits, 2 * ods.len() as u64, "warm pass should be all cache hits");
    assert_eq!(misses, 0, "warm pass should not miss the access cache");

    // The pruning-specific counters actually move on this workload.
    assert!(counter("raptor.patterns_pruned") > 0, "no patterns were ever pruned");
    assert!(counter("raptor.rounds_cut") > 0, "no rounds were ever cut early");

    // Day filter: the synth feed runs no Sunday service, so every pattern
    // a Sunday query touches is skipped before enqueueing — and a weekday
    // query skips none (all synth patterns run Mon–Sat).
    let day_before = counter("raptor.patterns_day_skipped");
    for (o, d) in ods.iter().take(10) {
        pruned.query(o, d, depart, DayOfWeek::Sunday);
    }
    assert!(
        counter("raptor.patterns_day_skipped") > day_before,
        "Sunday queries must skip serviceless patterns by day"
    );
    let day_before = counter("raptor.patterns_day_skipped");
    for (o, d) in ods.iter().take(10) {
        pruned.query(o, d, depart, DayOfWeek::Tuesday);
    }
    assert_eq!(
        counter("raptor.patterns_day_skipped"),
        day_before,
        "weekday queries must not skip any pattern by day"
    );
}

//! The front server: wire protocol in, shard calls out.
//!
//! Speaks the same wire protocol as a single `staq-serve` server, so
//! every existing client — including the load generator — works against
//! a sharded fleet unchanged. Per-request routing:
//!
//! * `Measures` / `Query` / `AddPoi` / `WhatIf` carry a category →
//!   routed to the one shard that [`shard_for`] assigns it (what-if
//!   overlays are read-only, so any replica answers them).
//! * `AddBusRoute` / `ApplyDelta` / `DeltaBatch` change the transit
//!   schedule for every category → the router is the fleet's sequencing
//!   authority: the supervisor appends the delta to its edit log under
//!   the next fleet sequence number (a client's `ApplyDelta` seq is
//!   advisory and ignored; `DeltaBatch` seqs are honored idempotently)
//!   and broadcasts it, gating OK on every shard acking. See
//!   `supervisor` module docs for catch-up and partial-failure behavior.
//! * `Stats` scatter-gathers: every live shard's [`StatsReply`] merges
//!   into one — engine fields sum, cached categories union, and metrics
//!   snapshots fold together via [`MetricsSnapshot::merge`] (or, when the
//!   backends share this process's registry, one snapshot stands for all
//!   to avoid double-counting).
//!
//! Threading mirrors `staq-serve`'s reactor model: one event-loop thread
//! owns every front socket, decodes frames and gates admission; a small
//! routing worker pool blocks on the backend round-trips (which the
//! per-shard mux pools coalesce onto shared streams) and answers through
//! per-connection [`OrderedOut`] sequencers — completion order for v4
//! clients, strict request order for pre-v4 ones.

use crate::hash::{shard_for, shard_for_key};
use crate::metrics;
use crate::supervisor::ShardSupervisor;
use bytes::BytesMut;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use staq_gtfs::Delta;
use staq_net::admission::{Admission, AdmissionConfig, ShedReason, ADMITTED};
use staq_net::reactor::{self, ConnHandler, ConnId, ReactorConfig, ReactorHandle, ReplySink};
use staq_net::{Backend, OrderedOut};
use staq_obs::{slo, trace, MetricsSnapshot, OpsReport, OwnedSpan, SpanContext};
use staq_serve::codec::{self, ErrorCode, Request, Response, StatsReply, MAX_FRAME_LEN};
use staq_serve::pool::slo_class;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Router front-end tunables.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Routing worker threads (each blocks on one backend round-trip at
    /// a time; shard-side concurrency is what they fan into).
    pub workers: usize,
    /// Bounded routing-queue depth (backpressure point).
    pub queue_depth: usize,
    /// Admission budget: requests whose estimated queue wait exceeds
    /// this are shed with `Overloaded` instead of queued.
    pub queue_budget: Duration,
    /// Poller backend for the reactor (tests force the portable one).
    pub backend: Backend,
    /// How long shutdown waits for outbound queues to flush.
    pub flush_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            workers: 8,
            queue_depth: 256,
            queue_budget: Duration::from_millis(500),
            backend: Backend::Auto,
            flush_timeout: Duration::from_secs(1),
        }
    }
}

/// One decoded front request on its way through the routing queue; the
/// reply callback encodes onto the connection's outbound sequencer.
struct RouterJob {
    request: Request,
    reply: Box<dyn FnOnce(Response) + Send>,
    ctx: SpanContext,
    enqueued: Instant,
    deadline: Option<Instant>,
}

/// The reactor handler's job sender, revocable from the handle: taking
/// it at shutdown is what lets the routing workers observe channel
/// disconnect and exit (the handler lives inside the reactor thread
/// until `finish`, so a plain `Sender` clone there would hold the
/// channel open and deadlock the worker join).
type SharedJobSender = Arc<Mutex<Option<Sender<RouterJob>>>>;

/// Handle to a running router; dropping it shuts down the front end and
/// the supervised backend fleet.
pub struct RouterHandle {
    addr: SocketAddr,
    sup: Arc<ShardSupervisor>,
    reactor: ReactorHandle,
    jobs: SharedJobSender,
    workers: Vec<JoinHandle<()>>,
    flush: Duration,
    done: bool,
}

impl RouterHandle {
    /// The bound front address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live front connections.
    pub fn conn_count(&self) -> usize {
        self.reactor.conn_count()
    }

    /// The supervised fleet behind this router (test hooks: kill a
    /// backend, check shard status).
    pub fn supervisor(&self) -> &ShardSupervisor {
        &self.sup
    }

    /// Graceful shutdown: stop accepting and reading, let queued
    /// requests finish routing, flush every outbound queue, then take
    /// the fleet down. Idempotent.
    pub fn shutdown(&mut self) {
        if std::mem::replace(&mut self.done, true) {
            return;
        }
        // Drain order mirrors `staq-serve`: stop intake, revoke the
        // handler's sender so the channel can disconnect, run the queue
        // dry (joining workers fires every reply callback), flush the
        // sockets, and only then stop the backends the replies needed.
        self.reactor.begin_drain();
        self.jobs.lock().take();
        for w in self.workers.drain(..) {
            w.join().expect("router worker panicked");
        }
        self.reactor.finish(self.flush);
        self.sup.shutdown();
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds the front end over an already-started fleet.
pub fn route(sup: ShardSupervisor, cfg: &RouterConfig) -> std::io::Result<RouterHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let sup = Arc::new(sup);
    let n_workers = cfg.workers.max(1);
    let admission = Arc::new(Admission::new(AdmissionConfig {
        queue_budget: cfg.queue_budget,
        workers: n_workers,
    }));
    let (tx, rx): (Sender<RouterJob>, Receiver<RouterJob>) = bounded(cfg.queue_depth);
    let workers = (0..n_workers)
        .map(|i| {
            let rx = rx.clone();
            let sup = Arc::clone(&sup);
            let admission = Arc::clone(&admission);
            std::thread::Builder::new()
                .name(format!("staq-shard-worker-{i}"))
                .spawn(move || worker_loop(rx, &sup, &admission))
                .expect("spawning router worker")
        })
        .collect();
    let jobs: SharedJobSender = Arc::new(Mutex::new(Some(tx)));
    let handler = RouterHandler { jobs: Arc::clone(&jobs), admission, conns: HashMap::new() };
    let reactor = reactor::spawn(
        listener,
        Box::new(handler),
        ReactorConfig { name: "staq-shard", max_frame: MAX_FRAME_LEN, backend: cfg.backend },
    )?;
    Ok(RouterHandle { addr, sup, reactor, jobs, workers, flush: cfg.flush_timeout, done: false })
}

/// Routing worker: pops jobs, sheds the ones whose deadline lapsed while
/// queued, and runs the rest through [`dispatch`].
fn worker_loop(rx: Receiver<RouterJob>, sup: &ShardSupervisor, admission: &Admission) {
    while let Ok(job) = rx.recv() {
        // The router is the fleet's edge: continue a traced client's
        // context, or mint the TraceId here.
        let _ctx = trace::attach(job.ctx);
        let span = if job.ctx.is_some() {
            trace::span_at("shard.request", job.enqueued)
        } else {
            trace::root_span_at("shard.request", job.enqueued)
        };
        drop(trace::span_at("shard.queue_wait", job.enqueued));
        if job.deadline.is_some_and(|d| Instant::now() > d) {
            ShedReason::Expired.count();
            if let Some(class) = slo_class(&job.request) {
                slo::shed(class);
            }
            drop(span);
            (job.reply)(Response::Error {
                code: ErrorCode::Overloaded,
                message: ShedReason::Expired.message().into(),
            });
            continue;
        }
        let t0 = Instant::now();
        let response = dispatch(sup, job.request);
        admission.observe_exec(t0.elapsed());
        drop(span);
        (job.reply)(response);
    }
}

/// The reactor's protocol handler: decodes frames, gates admission,
/// queues routing jobs whose reply callback encodes straight onto the
/// connection's outbound queue.
struct RouterHandler {
    jobs: SharedJobSender,
    admission: Arc<Admission>,
    /// Per-connection response sequencer, keyed by slot index (the
    /// reactor guarantees on_close before the index is reused).
    conns: HashMap<u32, Arc<OrderedOut>>,
}

impl RouterHandler {
    /// Emits an already-decided error frame through the connection's
    /// response ordering.
    fn emit_error(
        ordered: &OrderedOut,
        version: u8,
        req_id: u64,
        seq: Option<u64>,
        code: ErrorCode,
        message: &str,
    ) {
        let response = Response::Error { code, message: message.into() };
        let mut buf = BytesMut::with_capacity(64);
        codec::encode_response_to(&response, version, req_id, &mut buf);
        match seq {
            Some(s) => ordered.submit(s, buf.freeze()),
            None => ordered.submit_unordered(buf.freeze()),
        }
    }
}

impl ConnHandler for RouterHandler {
    fn on_data(&mut self, conn: ConnId, buf: &mut BytesMut, out: &ReplySink) -> bool {
        let ordered = Arc::clone(
            self.conns.entry(conn.index()).or_insert_with(|| OrderedOut::new(conn, out.clone())),
        );
        loop {
            match codec::decode_request_full(buf) {
                Ok(Some(decoded)) => {
                    reactor::FRAMES_IN.inc();
                    let now = Instant::now();
                    let version = decoded.version;
                    let req_id = decoded.req_id;
                    let deadline =
                        decoded.deadline_ms.map(|ms| now + Duration::from_millis(ms.into()));
                    // Pre-v4 clients match responses by order, so even a
                    // shed must occupy its slot in the sequence.
                    let seq = (version < codec::WIRE_VERSION).then(|| ordered.assign());
                    let remaining = deadline.map(|d| d.saturating_duration_since(now));
                    let queue_len = self.jobs.lock().as_ref().map_or(0, |tx| tx.len());
                    if let Err(reason) = self.admission.admit(queue_len, remaining) {
                        reason.count();
                        if let Some(class) = slo_class(&decoded.request) {
                            slo::shed(class);
                        }
                        Self::emit_error(
                            &ordered,
                            version,
                            req_id,
                            seq,
                            ErrorCode::Overloaded,
                            reason.message(),
                        );
                        continue;
                    }
                    let reply_ordered = Arc::clone(&ordered);
                    let reply = Box::new(move |response: Response| {
                        let mut buf = BytesMut::with_capacity(256);
                        codec::encode_response_to(&response, version, req_id, &mut buf);
                        match seq {
                            Some(s) => reply_ordered.submit(s, buf.freeze()),
                            None => reply_ordered.submit_unordered(buf.freeze()),
                        }
                    });
                    let job = RouterJob {
                        request: decoded.request,
                        reply,
                        ctx: decoded.ctx,
                        enqueued: now,
                        deadline,
                    };
                    let sent = match self.jobs.lock().as_ref() {
                        Some(tx) => tx.try_send(job),
                        None => Err(TrySendError::Disconnected(job)),
                    };
                    match sent {
                        Ok(()) => ADMITTED.inc(),
                        Err(TrySendError::Full(job)) => {
                            ShedReason::QueueFull.count();
                            if let Some(class) = slo_class(&job.request) {
                                slo::shed(class);
                            }
                            (job.reply)(Response::Error {
                                code: ErrorCode::Overloaded,
                                message: ShedReason::QueueFull.message().into(),
                            });
                        }
                        Err(TrySendError::Disconnected(job)) => {
                            (job.reply)(Response::Error {
                                code: ErrorCode::Unavailable,
                                message: "router is shutting down".into(),
                            });
                        }
                    }
                }
                Ok(None) => return true,
                Err(e) => {
                    // Framing is gone; tell the client why and hang up
                    // (the reactor flushes the queue before closing).
                    Self::emit_error(
                        &ordered,
                        codec::WIRE_VERSION,
                        0,
                        None,
                        ErrorCode::BadRequest,
                        &e.to_string(),
                    );
                    return false;
                }
            }
        }
    }

    fn on_close(&mut self, conn: ConnId) {
        self.conns.remove(&conn.index());
    }
}

/// Routes one decoded request to the fleet and produces its response.
pub fn dispatch(sup: &ShardSupervisor, request: Request) -> Response {
    metrics::route_counter(request.kind_label()).inc();
    match &request {
        Request::Measures { category, .. }
        | Request::Query { category, .. }
        | Request::AddPoi { category, .. }
        | Request::WhatIf { category, .. } => {
            let shard = shard_for(*category, sup.n_shards());
            let mut span = trace::span("shard.route");
            span.attr("shard", shard as u64);
            sup.call(shard, &request)
        }
        // Schedule edits: the supervisor sequences them into the fleet
        // log and broadcasts, replying OK only once every shard acked.
        Request::AddBusRoute { stops, headway_s } => {
            let delta = Delta::AddRoute { stops: stops.clone(), headway_s: *headway_s };
            match sup.broadcast_delta(delta) {
                Ok(ack) => Response::AddBusRoute { zones_rebuilt: ack.zones_rebuilt },
                Err(e) => e,
            }
        }
        // The router assigns fleet sequence numbers; a client's own seq
        // is advisory and ignored (0 already means "assign for me").
        Request::ApplyDelta { delta, .. } => match sup.broadcast_delta(delta.clone()) {
            Ok(ack) => Response::ApplyDelta(ack),
            Err(e) => e,
        },
        Request::DeltaBatch { first_seq, deltas } => sup.broadcast_batch(*first_seq, deltas),
        Request::Stats => gather_stats(sup),
        Request::OpsReport => gather_ops(sup),
        Request::TraceDump { min_dur_ns, set_capture_ns } => {
            gather_traces(sup, *min_dur_ns, *set_capture_ns)
        }
        // Journey planning has no category: every shard serves the same
        // replicated timetable, so spread queries by a rendezvous hash of
        // the OD pair (a repeated query sticks to one shard's warm caches).
        Request::Plan { origin, dest, .. } => {
            let key = origin.x.to_bits()
                ^ origin.y.to_bits().rotate_left(16)
                ^ dest.x.to_bits().rotate_left(32)
                ^ dest.y.to_bits().rotate_left(48);
            let shard = shard_for_key(key, sup.n_shards());
            let mut span = trace::span("shard.route");
            span.attr("shard", shard as u64);
            sup.call(shard, &request)
        }
    }
}

/// Scatter-gathers `Stats` from every live shard into one reply.
fn gather_stats(sup: &ShardSupervisor) -> Response {
    let n = sup.n_shards();
    let ctx = trace::current();
    let replies: Vec<Response> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                scope.spawn(move |_| {
                    let _ctx = trace::attach(ctx);
                    sup.call(i, &Request::Stats)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("stats thread panicked")).collect()
    })
    .expect("stats scope");

    let stats: Vec<StatsReply> = replies
        .into_iter()
        .filter_map(|r| match r {
            Response::Stats(s) => Some(s),
            _ => None,
        })
        .collect();
    if stats.is_empty() {
        return Response::Error {
            code: ErrorCode::Unavailable,
            message: "no shard answered stats".into(),
        };
    }
    Response::Stats(merge_stats(stats, sup.any_in_process()))
}

/// Scatter-gathers `OpsReport` from every live shard and folds the
/// replies (class windows and burn counts sum, slow traces re-rank) into
/// one fleet view that includes the router's own report. With in-process
/// backends the fleet shares one registry and trace ring, so the local
/// report already covers everyone — merging N copies would multiply
/// every rate by the fleet size, exactly like `Stats`.
fn gather_ops(sup: &ShardSupervisor) -> Response {
    if sup.any_in_process() {
        return Response::OpsReport(staq_obs::ops::report(staq_obs::slow::SLOW_KEEP));
    }
    let n = sup.n_shards();
    let ctx = trace::current();
    let replies: Vec<Response> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                scope.spawn(move |_| {
                    let _ctx = trace::attach(ctx);
                    sup.call(i, &Request::OpsReport)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("ops report thread panicked")).collect()
    })
    .expect("ops report scope");

    let mut merged: OpsReport = staq_obs::ops::report(staq_obs::slow::SLOW_KEEP);
    for r in replies {
        if let Response::OpsReport(report) = r {
            merged.merge(&report);
        }
    }
    Response::OpsReport(merged)
}

/// Scatter-gathers `TraceDump` from every shard and concatenates the
/// spans with the router's own ring. With in-process backends the fleet
/// shares one ring, so the local dump already covers everyone (fanning
/// out would return every span N+1 times). Shards that fail to answer
/// are skipped — a trace dump is diagnostic, not transactional.
fn gather_traces(sup: &ShardSupervisor, min_dur_ns: u64, set_capture_ns: Option<u64>) -> Response {
    if let Some(ns) = set_capture_ns {
        trace::set_capture_min_ns(ns);
    }
    if sup.any_in_process() {
        return Response::TraceDump(trace::dump(min_dur_ns));
    }
    let n = sup.n_shards();
    let request = Request::TraceDump { min_dur_ns, set_capture_ns };
    let ctx = trace::current();
    let replies: Vec<Response> = crossbeam::scope(|scope| {
        let request = &request;
        let handles: Vec<_> = (0..n)
            .map(|i| {
                scope.spawn(move |_| {
                    let _ctx = trace::attach(ctx);
                    sup.call(i, request)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("trace dump thread panicked")).collect()
    })
    .expect("trace dump scope");

    let mut spans: Vec<OwnedSpan> = trace::dump(min_dur_ns);
    for r in replies {
        if let Response::TraceDump(s) = r {
            spans.extend(s);
        }
    }
    Response::TraceDump(spans)
}

/// Merges per-shard stats. Engine-level fields (`pipeline_runs`,
/// `requests_served`, `workers`, `cached`) are per-engine state and
/// always sum/union. The metrics snapshot is registry state: with
/// out-of-process backends each reply carries a distinct registry and
/// they fold via [`MetricsSnapshot::merge`]; with in-process backends
/// every reply snapshot *is* this process's registry, so the local
/// snapshot stands alone (summing N copies would multiply every value
/// by the fleet size).
fn merge_stats(stats: Vec<StatsReply>, backends_share_registry: bool) -> StatsReply {
    let mut merged = StatsReply {
        pipeline_runs: 0,
        requests_served: 0,
        cached: Vec::new(),
        workers: 0,
        metrics: MetricsSnapshot::default(),
    };
    for s in &stats {
        merged.pipeline_runs += s.pipeline_runs;
        merged.requests_served += s.requests_served;
        merged.workers = merged.workers.saturating_add(s.workers);
        for &c in &s.cached {
            if !merged.cached.contains(&c) {
                merged.cached.push(c);
            }
        }
    }
    // Deterministic category order, independent of shard reply order.
    merged.cached.sort_by_key(|c| {
        staq_synth::PoiCategory::ALL.iter().position(|k| k == c).unwrap_or(usize::MAX)
    });
    if backends_share_registry {
        merged.metrics = staq_obs::snapshot();
    } else {
        for s in &stats {
            merged.metrics.merge(&s.metrics);
        }
        // The router's own registry (shard.* counters, per-backend
        // latency) rides along in the same reply.
        merged.metrics.merge(&staq_obs::snapshot());
    }
    merged
}

//! A static 2-d tree over points with attached payloads.
//!
//! Built once over a point set, then queried many times — the access pattern
//! of interchange identification (paper §IV-B1: a k-NN search from every leaf
//! of an outbound hop tree onto the leaves of an inbound hop tree) and of
//! stop/node snapping. Construction is O(n log n) via median partitioning;
//! queries prune with bounding boxes.

use crate::bbox::BBox;
use crate::point::Point;

/// Index of a node inside the tree's arena; `u32::MAX` encodes "no child".
const NONE: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    point: Point,
    /// Payload index supplied at construction (e.g. a `ZoneId`'s raw value).
    item: u32,
    left: u32,
    right: u32,
    /// Bounding box of the subtree rooted here, for pruning.
    bounds: BBox,
}

/// A static kd-tree mapping 2-d points to `u32` payloads.
///
/// Duplicated points are allowed; all duplicates are retrievable through
/// radius and k-NN queries.
#[derive(Debug, Clone, Default)]
pub struct KdTree {
    nodes: Vec<Node>,
    root: u32,
}

/// A single k-NN / nearest query hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Payload of the matched point.
    pub item: u32,
    /// The matched point itself.
    pub point: Point,
    /// Squared Euclidean distance from the query point.
    pub dist2: f64,
}

impl Neighbor {
    /// Euclidean distance from the query point in meters.
    #[inline]
    pub fn dist(&self) -> f64 {
        self.dist2.sqrt()
    }
}

impl KdTree {
    /// Builds a tree from `(point, payload)` pairs.
    ///
    /// Non-finite coordinates are rejected with a panic: they would poison
    /// every comparison made during construction.
    pub fn build(items: &[(Point, u32)]) -> Self {
        for (p, _) in items {
            assert!(p.is_finite(), "kd-tree input contains non-finite point {p:?}");
        }
        let mut scratch: Vec<(Point, u32)> = items.to_vec();
        let mut nodes = Vec::with_capacity(items.len());
        let n = scratch.len();
        let root = if n == 0 { NONE } else { Self::build_rec(&mut scratch[..], 0, &mut nodes) };
        KdTree { nodes, root }
    }

    fn build_rec(items: &mut [(Point, u32)], depth: usize, nodes: &mut Vec<Node>) -> u32 {
        let mid = items.len() / 2;
        let axis = depth % 2;
        items.select_nth_unstable_by(mid, |a, b| {
            let (ka, kb) = if axis == 0 { (a.0.x, b.0.x) } else { (a.0.y, b.0.y) };
            ka.partial_cmp(&kb).expect("finite keys")
        });
        let (point, item) = items[mid];
        let idx = nodes.len() as u32;
        nodes.push(Node {
            point,
            item,
            left: NONE,
            right: NONE,
            bounds: BBox::from_corners(point, point),
        });
        let (lo, rest) = items.split_at_mut(mid);
        let hi = &mut rest[1..];
        let left = if lo.is_empty() { NONE } else { Self::build_rec(lo, depth + 1, nodes) };
        let right = if hi.is_empty() { NONE } else { Self::build_rec(hi, depth + 1, nodes) };
        let mut bounds = nodes[idx as usize].bounds;
        if left != NONE {
            bounds.union(&nodes[left as usize].bounds);
        }
        if right != NONE {
            bounds.union(&nodes[right as usize].bounds);
        }
        let node = &mut nodes[idx as usize];
        node.left = left;
        node.right = right;
        node.bounds = bounds;
        idx
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree indexes no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Nearest indexed point to `query`, or `None` for an empty tree.
    pub fn nearest(&self, query: &Point) -> Option<Neighbor> {
        let mut best: Option<Neighbor> = None;
        if self.root != NONE {
            self.nearest_rec(self.root, query, &mut best);
        }
        best
    }

    fn nearest_rec(&self, idx: u32, query: &Point, best: &mut Option<Neighbor>) {
        let node = &self.nodes[idx as usize];
        if let Some(b) = best {
            if node.bounds.dist2_to(query) >= b.dist2 {
                return;
            }
        }
        let d2 = node.point.dist2(query);
        if best.is_none_or(|b| d2 < b.dist2) {
            *best = Some(Neighbor { item: node.item, point: node.point, dist2: d2 });
        }
        // Visit the child whose bounds are closer first: tightens `best`
        // sooner and prunes more of the other side.
        let (first, second) = self.ordered_children(node, query);
        if first != NONE {
            self.nearest_rec(first, query, best);
        }
        if second != NONE {
            self.nearest_rec(second, query, best);
        }
    }

    #[inline]
    fn ordered_children(&self, node: &Node, query: &Point) -> (u32, u32) {
        let dl = if node.left != NONE {
            self.nodes[node.left as usize].bounds.dist2_to(query)
        } else {
            f64::INFINITY
        };
        let dr = if node.right != NONE {
            self.nodes[node.right as usize].bounds.dist2_to(query)
        } else {
            f64::INFINITY
        };
        if dl <= dr {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        }
    }

    /// The `k` nearest indexed points to `query`, ascending by distance.
    /// Returns fewer than `k` when the tree is smaller than `k`.
    pub fn k_nearest(&self, query: &Point, k: usize) -> Vec<Neighbor> {
        if k == 0 || self.root == NONE {
            return Vec::new();
        }
        // A simple sorted vec outperforms a heap for the small `k` used in
        // practice (k = 1 for interchange identification).
        let mut best: Vec<Neighbor> = Vec::with_capacity(k + 1);
        self.k_nearest_rec(self.root, query, k, &mut best);
        best
    }

    fn k_nearest_rec(&self, idx: u32, query: &Point, k: usize, best: &mut Vec<Neighbor>) {
        let node = &self.nodes[idx as usize];
        let worst = if best.len() == k { best[k - 1].dist2 } else { f64::INFINITY };
        if node.bounds.dist2_to(query) >= worst {
            return;
        }
        let d2 = node.point.dist2(query);
        if d2 < worst || best.len() < k {
            let nb = Neighbor { item: node.item, point: node.point, dist2: d2 };
            let pos = best.partition_point(|b| b.dist2 <= d2);
            best.insert(pos, nb);
            if best.len() > k {
                best.pop();
            }
        }
        let (first, second) = self.ordered_children(node, query);
        if first != NONE {
            self.k_nearest_rec(first, query, k, best);
        }
        if second != NONE {
            self.k_nearest_rec(second, query, k, best);
        }
    }

    /// All indexed points within `radius` meters of `query` (inclusive),
    /// in arbitrary order.
    pub fn within_radius(&self, query: &Point, radius: f64) -> Vec<Neighbor> {
        let mut out = Vec::new();
        if self.root != NONE && radius >= 0.0 {
            self.radius_rec(self.root, query, radius * radius, &mut out);
        }
        out
    }

    fn radius_rec(&self, idx: u32, query: &Point, r2: f64, out: &mut Vec<Neighbor>) {
        let node = &self.nodes[idx as usize];
        if node.bounds.dist2_to(query) > r2 {
            return;
        }
        let d2 = node.point.dist2(query);
        if d2 <= r2 {
            out.push(Neighbor { item: node.item, point: node.point, dist2: d2 });
        }
        if node.left != NONE {
            self.radius_rec(node.left, query, r2, out);
        }
        if node.right != NONE {
            self.radius_rec(node.right, query, r2, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize) -> Vec<(Point, u32)> {
        let mut v = Vec::new();
        for i in 0..n {
            for j in 0..n {
                v.push((Point::new(i as f64 * 10.0, j as f64 * 10.0), (i * n + j) as u32));
            }
        }
        v
    }

    #[test]
    fn empty_tree_queries() {
        let t = KdTree::build(&[]);
        assert!(t.is_empty());
        assert!(t.nearest(&Point::new(0.0, 0.0)).is_none());
        assert!(t.k_nearest(&Point::new(0.0, 0.0), 3).is_empty());
        assert!(t.within_radius(&Point::new(0.0, 0.0), 100.0).is_empty());
    }

    #[test]
    fn nearest_exact_hit() {
        let t = KdTree::build(&grid_points(5));
        let n = t.nearest(&Point::new(20.0, 30.0)).unwrap();
        assert_eq!(n.point, Point::new(20.0, 30.0));
        assert_eq!(n.dist2, 0.0);
    }

    #[test]
    fn nearest_between_points() {
        let t = KdTree::build(&grid_points(5));
        let n = t.nearest(&Point::new(11.0, 12.0)).unwrap();
        assert_eq!(n.point, Point::new(10.0, 10.0));
    }

    #[test]
    fn k_nearest_sorted_and_correct_count() {
        let t = KdTree::build(&grid_points(4));
        let q = Point::new(0.0, 0.0);
        let ns = t.k_nearest(&q, 5);
        assert_eq!(ns.len(), 5);
        for w in ns.windows(2) {
            assert!(w[0].dist2 <= w[1].dist2);
        }
        assert_eq!(ns[0].point, q);
    }

    #[test]
    fn k_nearest_larger_than_tree() {
        let items = grid_points(2);
        let t = KdTree::build(&items);
        let ns = t.k_nearest(&Point::new(0.0, 0.0), 100);
        assert_eq!(ns.len(), items.len());
    }

    #[test]
    fn within_radius_inclusive_boundary() {
        let t = KdTree::build(&grid_points(3));
        let hits = t.within_radius(&Point::new(0.0, 0.0), 10.0);
        // (0,0), (10,0), (0,10) are within or on 10m.
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn duplicates_are_retrievable() {
        let p = Point::new(5.0, 5.0);
        let t = KdTree::build(&[(p, 1), (p, 2), (p, 3)]);
        let hits = t.within_radius(&p, 0.0);
        let mut items: Vec<u32> = hits.iter().map(|h| h.item).collect();
        items.sort_unstable();
        assert_eq!(items, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan_points() {
        KdTree::build(&[(Point::new(f64::NAN, 0.0), 0)]);
    }
}

//! City dataset export/import.
//!
//! A generated [`City`] can be persisted as a plain-text dataset directory —
//! the shape a transport analyst would actually exchange:
//!
//! ```text
//! <dir>/zones.csv      id,x,y,population,pct_unemployed,pct_vulnerable,pct_children
//! <dir>/pois.csv       id,category,x,y,zone
//! <dir>/nodes.csv      id,x,y
//! <dir>/edges.csv      from,to,secs
//! <dir>/cores.csv      x,y
//! <dir>/meta.csv       key,value            (the generating CityConfig)
//! <dir>/gtfs/…         standard GTFS text files
//! ```
//!
//! Import reverses it exactly; `export → import` is lossless (verified by
//! tests), so experiments can be re-run against archived datasets and
//! external GTFS/zone data can be swapped in by writing the same files.

use crate::city::{City, Demographics, Poi, PoiCategory, PoiId, Zone, ZoneId};
use crate::config::{CityConfig, PoiCounts};
use staq_geom::Point;
use staq_gtfs::csv;
use staq_gtfs::FeedIndex;
use staq_road::{NodeId, RoadGraphBuilder};
use std::path::Path;

/// Writes the full dataset under `dir` (created if missing).
pub fn export_city(city: &City, dir: &Path) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let write = |name: &str, body: String| {
        std::fs::write(dir.join(name), body).map_err(|e| format!("writing {name}: {e}"))
    };

    write(
        "zones.csv",
        csv::write(
            &["id", "x", "y", "population", "pct_unemployed", "pct_vulnerable", "pct_children"],
            &city
                .zones
                .iter()
                .map(|z| {
                    vec![
                        z.id.0.to_string(),
                        z.centroid.x.to_string(),
                        z.centroid.y.to_string(),
                        z.population.to_string(),
                        z.demographics.pct_unemployed.to_string(),
                        z.demographics.pct_vulnerable.to_string(),
                        z.demographics.pct_children.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        ),
    )?;

    write(
        "pois.csv",
        csv::write(
            &["id", "category", "x", "y", "zone"],
            &city
                .pois
                .iter()
                .map(|p| {
                    vec![
                        p.id.0.to_string(),
                        p.category.label().to_string(),
                        p.pos.x.to_string(),
                        p.pos.y.to_string(),
                        p.zone.0.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        ),
    )?;

    write(
        "nodes.csv",
        csv::write(
            &["id", "x", "y"],
            &(0..city.road.n_nodes())
                .map(|i| {
                    let p = city.road.pos(NodeId(i as u32));
                    vec![i.to_string(), p.x.to_string(), p.y.to_string()]
                })
                .collect::<Vec<_>>(),
        ),
    )?;

    let mut edge_rows = Vec::with_capacity(city.road.n_edges());
    for u in 0..city.road.n_nodes() {
        for (v, w) in city.road.out_edges(NodeId(u as u32)) {
            edge_rows.push(vec![u.to_string(), v.0.to_string(), w.to_string()]);
        }
    }
    write("edges.csv", csv::write(&["from", "to", "secs"], &edge_rows))?;

    write(
        "cores.csv",
        csv::write(
            &["x", "y"],
            &city.cores.iter().map(|c| vec![c.x.to_string(), c.y.to_string()]).collect::<Vec<_>>(),
        ),
    )?;

    let cfg = &city.config;
    let meta: Vec<(&str, String)> = vec![
        ("name", cfg.name.clone()),
        ("seed", cfg.seed.to_string()),
        ("side_m", cfg.side_m.to_string()),
        ("n_zones", cfg.n_zones.to_string()),
        ("schools", cfg.pois.schools.to_string()),
        ("hospitals", cfg.pois.hospitals.to_string()),
        ("vax_centers", cfg.pois.vax_centers.to_string()),
        ("job_centers", cfg.pois.job_centers.to_string()),
        ("n_cores", cfg.n_cores.to_string()),
        ("road_spacing_m", cfg.road_spacing_m.to_string()),
        ("road_dropout", cfg.road_dropout.to_string()),
        ("n_routes", cfg.n_routes.to_string()),
        ("stop_spacing_m", cfg.stop_spacing_m.to_string()),
        ("bus_speed_mps", cfg.bus_speed_mps.to_string()),
        ("peak_headway_s", cfg.peak_headway_s.to_string()),
        ("population", cfg.population.to_string()),
    ];
    write(
        "meta.csv",
        csv::write(
            &["key", "value"],
            &meta.iter().map(|(k, v)| vec![k.to_string(), v.clone()]).collect::<Vec<_>>(),
        ),
    )?;

    staq_gtfs::write::to_dir(city.feed.feed(), &dir.join("gtfs"))
}

/// Reads a dataset directory written by [`export_city`].
pub fn import_city(dir: &Path) -> Result<City, String> {
    let read = |name: &str| {
        std::fs::read_to_string(dir.join(name)).map_err(|e| format!("reading {name}: {e}"))
    };
    let parse_f = |s: &str, what: &str| -> Result<f64, String> {
        s.parse().map_err(|_| format!("bad float {s:?} in {what}"))
    };

    // meta.csv -> CityConfig.
    let t = csv::parse(&read("meta.csv")?)?;
    let (ck, cv) = (t.col("key")?, t.col("value")?);
    let get = |key: &str| -> Result<String, String> {
        t.rows
            .iter()
            .find(|r| r[ck] == key)
            .map(|r| r[cv].clone())
            .ok_or_else(|| format!("meta.csv missing key {key:?}"))
    };
    let config = CityConfig {
        name: get("name")?,
        seed: get("seed")?.parse().map_err(|_| "bad seed")?,
        side_m: parse_f(&get("side_m")?, "meta")?,
        n_zones: get("n_zones")?.parse().map_err(|_| "bad n_zones")?,
        pois: PoiCounts {
            schools: get("schools")?.parse().map_err(|_| "bad schools")?,
            hospitals: get("hospitals")?.parse().map_err(|_| "bad hospitals")?,
            vax_centers: get("vax_centers")?.parse().map_err(|_| "bad vax_centers")?,
            job_centers: get("job_centers")?.parse().map_err(|_| "bad job_centers")?,
        },
        n_cores: get("n_cores")?.parse().map_err(|_| "bad n_cores")?,
        road_spacing_m: parse_f(&get("road_spacing_m")?, "meta")?,
        road_dropout: parse_f(&get("road_dropout")?, "meta")?,
        n_routes: get("n_routes")?.parse().map_err(|_| "bad n_routes")?,
        stop_spacing_m: parse_f(&get("stop_spacing_m")?, "meta")?,
        bus_speed_mps: parse_f(&get("bus_speed_mps")?, "meta")?,
        peak_headway_s: get("peak_headway_s")?.parse().map_err(|_| "bad headway")?,
        population: get("population")?.parse().map_err(|_| "bad population")?,
    };

    // zones.csv.
    let t = csv::parse(&read("zones.csv")?)?;
    let cols = [
        t.col("id")?,
        t.col("x")?,
        t.col("y")?,
        t.col("population")?,
        t.col("pct_unemployed")?,
        t.col("pct_vulnerable")?,
        t.col("pct_children")?,
    ];
    let mut zones = Vec::with_capacity(t.rows.len());
    for (i, r) in t.rows.iter().enumerate() {
        let id: u32 = r[cols[0]].parse().map_err(|_| "bad zone id")?;
        if id as usize != i {
            return Err(format!("zones.csv ids must be dense and ordered, got {id} at row {i}"));
        }
        zones.push(Zone {
            id: ZoneId(id),
            centroid: Point::new(parse_f(&r[cols[1]], "zones")?, parse_f(&r[cols[2]], "zones")?),
            population: parse_f(&r[cols[3]], "zones")?,
            demographics: Demographics {
                pct_unemployed: parse_f(&r[cols[4]], "zones")?,
                pct_vulnerable: parse_f(&r[cols[5]], "zones")?,
                pct_children: parse_f(&r[cols[6]], "zones")?,
            },
        });
    }

    // pois.csv.
    let t = csv::parse(&read("pois.csv")?)?;
    let (ci, cc, cx, cy, cz) =
        (t.col("id")?, t.col("category")?, t.col("x")?, t.col("y")?, t.col("zone")?);
    let mut pois = Vec::with_capacity(t.rows.len());
    for r in &t.rows {
        let category = PoiCategory::ALL
            .iter()
            .copied()
            .find(|c| c.label() == r[cc])
            .ok_or_else(|| format!("unknown POI category {:?}", r[cc]))?;
        pois.push(Poi {
            id: PoiId(r[ci].parse().map_err(|_| "bad poi id")?),
            category,
            pos: Point::new(parse_f(&r[cx], "pois")?, parse_f(&r[cy], "pois")?),
            zone: ZoneId(r[cz].parse().map_err(|_| "bad poi zone")?),
        });
    }

    // Road graph.
    let t = csv::parse(&read("nodes.csv")?)?;
    let (cx, cy) = (t.col("x")?, t.col("y")?);
    let mut builder = RoadGraphBuilder::new();
    for r in &t.rows {
        builder.add_node(Point::new(parse_f(&r[cx], "nodes")?, parse_f(&r[cy], "nodes")?));
    }
    let t = csv::parse(&read("edges.csv")?)?;
    let (cf, ct, cs) = (t.col("from")?, t.col("to")?, t.col("secs")?);
    for r in &t.rows {
        let from: u32 = r[cf].parse().map_err(|_| "bad edge endpoint")?;
        let to: u32 = r[ct].parse().map_err(|_| "bad edge endpoint")?;
        builder.add_edge(NodeId(from), NodeId(to), parse_f(&r[cs], "edges")? as f32);
    }
    let road = builder.build();
    road.check_invariants()?;

    // cores.csv.
    let t = csv::parse(&read("cores.csv")?)?;
    let (cx, cy) = (t.col("x")?, t.col("y")?);
    let cores = t
        .rows
        .iter()
        .map(|r| Ok(Point::new(parse_f(&r[cx], "cores")?, parse_f(&r[cy], "cores")?)))
        .collect::<Result<Vec<_>, String>>()?;

    // GTFS.
    let feed = staq_gtfs::parse::FeedText::from_dir(&dir.join("gtfs"))?.parse()?;
    staq_gtfs::validate::assert_valid(&feed);

    Ok(City { config, zones, pois, road, feed: FeedIndex::build(feed), cores })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("staq_io_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn export_import_roundtrip_is_lossless() {
        let city = City::generate(&CityConfig::tiny(77));
        let dir = tmpdir("roundtrip");
        export_city(&city, &dir).unwrap();
        let back = import_city(&dir).unwrap();
        assert_eq!(city.config, back.config);
        assert_eq!(city.zones, back.zones);
        assert_eq!(city.pois, back.pois);
        assert_eq!(city.cores, back.cores);
        assert_eq!(city.feed.feed(), back.feed.feed());
        assert_eq!(city.road.n_nodes(), back.road.n_nodes());
        assert_eq!(city.road.n_edges(), back.road.n_edges());
        // Edge-by-edge equivalence.
        for u in 0..city.road.n_nodes() {
            let mut a: Vec<_> = city.road.out_edges(NodeId(u as u32)).collect();
            let mut b: Vec<_> = back.road.out_edges(NodeId(u as u32)).collect();
            a.sort_by_key(|e| e.0);
            b.sort_by_key(|e| e.0);
            assert_eq!(a, b);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn import_rejects_missing_files() {
        let dir = tmpdir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        let err = import_city(&dir).unwrap_err();
        assert!(err.contains("meta.csv"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn import_rejects_sparse_zone_ids() {
        let city = City::generate(&CityConfig::tiny(5));
        let dir = tmpdir("sparse");
        export_city(&city, &dir).unwrap();
        // Corrupt: bump one id.
        let z = std::fs::read_to_string(dir.join("zones.csv")).unwrap();
        let z = z.replacen("\n1,", "\n9,", 1);
        std::fs::write(dir.join("zones.csv"), z).unwrap();
        assert!(import_city(&dir).unwrap_err().contains("dense"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn imported_city_runs_the_pipeline_identically() {
        use staq_gtfs::time::TimeInterval;
        let city = City::generate(&CityConfig::tiny(31));
        let dir = tmpdir("pipeline");
        export_city(&city, &dir).unwrap();
        let back = import_city(&dir).unwrap();
        // Identical departures at every stop => identical routing behavior.
        let v = TimeInterval::am_peak();
        for s in 0..city.feed.n_stops() {
            let a: Vec<_> = city.feed.departures_at(staq_gtfs::StopId(s as u32), &v).collect();
            let b: Vec<_> = back.feed.departures_at(staq_gtfs::StopId(s as u32), &v).collect();
            assert_eq!(a, b);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

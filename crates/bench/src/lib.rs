//! # staq-bench
//!
//! Reproduction harness. One binary per paper table/figure:
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table I — full vs gravity matrix sizes and % reduction |
//! | `table2` | Table II — naïve label cost vs SSR solution cost & savings |
//! | `fig3`   | Fig. 3 — JT MAE vs β for every model × POI type × city |
//! | `fig4`   | Fig. 4 — GAC: MAC corr, ACSD corr, accuracy, FIE vs β |
//! | `fig5`   | Fig. 5 — predicted MAC choropleth (ASCII + CSV) |
//!
//! Every binary takes `--scale <f>` (fraction of the paper's city sizes;
//! default keeps a run in minutes on a laptop core), `--seed <u64>`, and
//! `--out <path>` (CSV dump). `--scale 1.0` reproduces the full
//! Birmingham/Coventry dimensions.
//!
//! Criterion micro-benchmarks (`cargo bench -p staq-bench`) cover the
//! component costs the paper discusses: SPQ latency (§IV's 0.018 s/query),
//! hop-tree construction, per-pair feature generation (§IV-E), labeling
//! throughput, model fit times, and the end-to-end pipeline.

/// Latency histogram machinery now lives in `staq-obs` (shared with the
/// serving metrics layer); re-exported here so bench-side callers keep
/// their import paths.
pub mod hist {
    pub use staq_obs::hist::{fmt_dur, LatencyHistogram};
}

pub use hist::{fmt_dur, LatencyHistogram};

use staq_synth::{City, CityConfig};
use std::path::PathBuf;

/// Shared CLI arguments for reproduction binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// City scale relative to the paper (1.0 = full Birmingham/Coventry).
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Optional CSV output path.
    pub out: Option<PathBuf>,
    /// Quick mode: fewer betas/models for smoke runs.
    pub quick: bool,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs { scale: 0.05, seed: 42, out: None, quick: false }
    }
}

impl BenchArgs {
    /// Parses `--scale`, `--seed`, `--out`, `--quick` from `std::env::args`,
    /// starting from `default`. Unknown flags abort with usage help.
    pub fn parse_with_default(default: BenchArgs) -> BenchArgs {
        let mut args = default;
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    args.scale = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--scale needs a float"));
                }
                "--seed" => {
                    args.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs a u64"));
                }
                "--out" => {
                    args.out = Some(PathBuf::from(
                        it.next().unwrap_or_else(|| usage("--out needs a path")),
                    ));
                }
                "--quick" => args.quick = true,
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        assert!(args.scale > 0.0 && args.scale <= 1.0, "scale must be in (0, 1]");
        args
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: <bin> [--scale f] [--seed u64] [--out path.csv] [--quick]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

/// Scaled Birmingham analogue.
pub fn birmingham(args: &BenchArgs) -> City {
    City::generate(&CityConfig::birmingham(args.seed).scaled(args.scale))
}

/// Scaled Coventry analogue.
pub fn coventry(args: &BenchArgs) -> City {
    City::generate(&CityConfig::coventry(args.seed).scaled(args.scale))
}

/// Minimal CSV writer for experiment outputs.
pub struct CsvOut {
    rows: Vec<Vec<String>>,
    header: Vec<String>,
}

impl CsvOut {
    /// New table with the given header.
    pub fn new(header: &[&str]) -> Self {
        CsvOut { rows: Vec::new(), header: header.iter().map(|s| s.to_string()).collect() }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "CSV row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Serializes to CSV text.
    pub fn to_text(&self) -> String {
        let mut s = self.header.join(",");
        s.push('\n');
        for r in &self.rows {
            s.push_str(&r.join(","));
            s.push('\n');
        }
        s
    }

    /// Writes to `path` if given.
    pub fn maybe_write(&self, path: &Option<PathBuf>) {
        if let Some(p) = path {
            std::fs::write(p, self.to_text()).expect("writing CSV output");
            eprintln!("wrote {}", p.display());
        }
    }
}

/// Renders zone values as a coarse ASCII choropleth (Fig. 5's medium):
/// space-binned quantile shading, darker = worse access.
pub fn ascii_choropleth(
    city: &City,
    values: &[(staq_synth::ZoneId, f64)],
    width: usize,
    height: usize,
) -> String {
    const SHADES: [char; 5] = ['░', '▒', '▓', '█', '@'];
    if values.is_empty() {
        return String::from("(no data)\n");
    }
    // Quantile thresholds.
    let mut sorted: Vec<f64> = values.iter().map(|v| v.1).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |f: f64| sorted[((sorted.len() - 1) as f64 * f) as usize];
    let cuts = [q(0.2), q(0.4), q(0.6), q(0.8)];
    let shade = |v: f64| {
        let mut k = 0;
        while k < 4 && v > cuts[k] {
            k += 1;
        }
        SHADES[k]
    };

    // Average value per cell.
    let side = city.config.side_m;
    let mut sums = vec![0.0f64; width * height];
    let mut counts = vec![0u32; width * height];
    for &(z, v) in values {
        let c = city.zone_centroid(z);
        let gx = ((c.x / side) * width as f64).clamp(0.0, width as f64 - 1.0) as usize;
        let gy = ((c.y / side) * height as f64).clamp(0.0, height as f64 - 1.0) as usize;
        sums[gy * width + gx] += v;
        counts[gy * width + gx] += 1;
    }
    let mut out = String::new();
    for gy in (0..height).rev() {
        for gx in 0..width {
            let i = gy * width + gx;
            if counts[i] == 0 {
                out.push(' ');
            } else {
                out.push(shade(sums[i] / counts[i] as f64));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use staq_synth::ZoneId;

    #[test]
    fn csv_roundtrip() {
        let mut c = CsvOut::new(&["a", "b"]);
        c.row(&["1".into(), "2".into()]);
        assert_eq!(c.to_text(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn csv_rejects_ragged() {
        let mut c = CsvOut::new(&["a"]);
        c.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn choropleth_renders() {
        let city = City::generate(&CityConfig::tiny(1));
        let vals: Vec<(ZoneId, f64)> = city.zones.iter().map(|z| (z.id, z.centroid.x)).collect();
        let map = ascii_choropleth(&city, &vals, 16, 8);
        assert_eq!(map.lines().count(), 8);
        assert!(map.contains('░') && map.contains('@'));
    }

    #[test]
    fn scaled_city_builders() {
        let args = BenchArgs { scale: 0.02, ..Default::default() };
        let b = birmingham(&args);
        assert!(b.n_zones() > 30 && b.n_zones() < 200);
    }
}

//! **Table I** — full vs gravity matrix sizes and % reduction, for both
//! cities and all four POI categories.
//!
//! ```text
//! cargo run --release -p staq-bench --bin table1 -- --scale 0.25
//! ```
//!
//! Matches the paper's pattern: larger POI sets thin more (Birmingham
//! schools ≈ 98%), tiny sets barely thin (Coventry's two job centers ≈ 0%).

use staq_bench::{birmingham, coventry, BenchArgs, CsvOut};
use staq_todam::{MatrixStats, TodamSpec};

fn main() {
    let args = BenchArgs::parse_with_default(BenchArgs { scale: 0.25, ..Default::default() });
    let spec = TodamSpec::default();

    println!("== Table I: TODAM composition (scale {}) ==", args.scale);
    println!(
        "{:<11} {:<12} {:>6} {:>14} {:>12} {:>8}",
        "City", "POI type", "|P|", "Full", "Gravity", "% Red."
    );
    let mut csv = CsvOut::new(&["city", "category", "n_pois", "full", "gravity", "reduction_pct"]);

    for city in [birmingham(&args), coventry(&args)] {
        let rows = MatrixStats::measure_all(&city, &spec);
        for r in &rows {
            println!(
                "{:<11} {:<12} {:>6} {:>14} {:>12} {:>7.1}%",
                r.city, r.category, r.n_pois, r.full, r.gravity, r.reduction_pct
            );
            csv.row(&[
                r.city.clone(),
                r.category.clone(),
                r.n_pois.to_string(),
                r.full.to_string(),
                r.gravity.to_string(),
                format!("{:.2}", r.reduction_pct),
            ]);
        }
        let mean_red: f64 = rows.iter().map(|r| r.reduction_pct).sum::<f64>() / rows.len() as f64;
        println!("{:<11} mean reduction {:.1}%", rows[0].city, mean_red);
    }
    csv.maybe_write(&args.out);
}

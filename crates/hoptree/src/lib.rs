//! # staq-hoptree
//!
//! **Transit-hop trees** — the paper's novel precomputed data type (§IV-A)
//! — and the dynamic feature extraction built on them (§IV-B).
//!
//! A *transit hop* from a zone is any journey composed of a short foot leg
//! and a single transit ride. The **outbound** tree `OB_z^v` of zone `z`
//! for interval `v` has `z` at its root and, as leaves, every zone reachable
//! in one hop, annotated with connectivity data (how many services make the
//! hop, their in-vehicle journey times). The **inbound** tree `IB_z^v`
//! mirrors this for hops *into* `z`.
//!
//! Retrieving `OB_{z_i}` and `IB_{z_j}` for an `(z_i, z_j)` query instantly
//! reveals the potential connectivity between the pair; *interchanges* —
//! leaves of the two trees within walking range of each other — show how
//! multi-ride routes could be assembled. From these, a fixed-width feature
//! vector describes the pair without running a single shortest-path query.
//!
//! * [`tree`] — the tree structure and leaf connectivity data.
//! * [`build`] — generation from isochrones + GTFS (paper's §IV-A
//!   procedure).
//! * [`store`] — all trees for one interval, plus isochrones and the zone
//!   index; supports h-hop chaining and incremental rebuilds after network
//!   edits.
//! * [`interchange`] — k-NN + isochrone-overlap interchange identification
//!   (§IV-B1).
//! * [`features`] — the OD feature vector (§IV-B2).
//! * [`aggregate`] — α-weighted aggregation of OD features to the origin
//!   level (§IV-C).

pub mod aggregate;
pub mod build;
pub mod features;
pub mod interchange;
pub mod persist;
pub mod store;
pub mod tree;

pub use features::{FeatureExtractor, FEATURE_DIM, FEATURE_NAMES};
pub use interchange::Interchange;
pub use store::HopTreeStore;
pub use tree::{Direction, HopTree, Leaf};

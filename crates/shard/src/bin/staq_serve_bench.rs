//! Open-loop load generator for a staq-serve daemon or a staq-shard
//! fleet.
//!
//! ```text
//! staq-serve-bench [--addr 127.0.0.1:7878 | --loopback] [--conns N]
//!                  [--duration secs] [--rate req/s] [--edit-every ms]
//!                  [--workers N] [--seed N] [--shards N] [--emit-json path]
//! ```
//!
//! Phase 1 (cold): with an empty server cache, one connection touches
//! every POI category once — these latencies include the SSR pipeline
//! run. Phase 2 (warm): `--conns` connections issue a rotating query mix
//! for `--duration` seconds; `--rate` (total requests/sec, spread across
//! connections) makes the loop open-loop — senders pace by wall clock
//! and do not slow down when the server does. `--rate 0` means closed
//! loop (send as fast as responses return). `--edit-every N` adds a
//! dedicated connection issuing `add_poi` every N ms, so the cache keeps
//! being invalidated under read load.
//!
//! `--loopback` skips the external daemon: the bench hosts its own
//! server (test-size city, `--seed`-fixed, `--workers` threads) on a
//! free loopback port — self-contained enough for CI.
//!
//! `--shards N` (loopback only) measures one-process-vs-N-process
//! serving: the same workload runs twice, first against a single server
//! with `--workers` threads, then against a staq-shard router fronting
//! `N` in-process backends of `--workers` threads each (scale-out, not
//! same-budget: the sharded fleet has N× the workers). The report prints
//! both and their throughput ratio; `--emit-json` (`BENCH_shard.json`)
//! carries a `single` and a `sharded` section. Both runs share this
//! process's metrics registry, so the sharded section's raw snapshot
//! includes the single run's samples — compare the client-side sections,
//! which are per-run.
//!
//! `--emit-json` without `--shards` writes the classic single-server
//! report (`BENCH_serve.json`): client-side throughput plus the server's
//! own [`MetricsSnapshot`] — per-kind latency quantiles as the workers
//! measured them, engine cache hit/miss/invalidation counts, pipeline
//! stage timings.
//!
//! `--trace-compare` (loopback only) prices the staq-trace span layer:
//! after a warm-up sweep, the same warm workload runs in interleaved
//! rounds with tracing disabled and enabled (`--duration` each, five
//! pairs), so drift affects both sides equally. The report and its JSON
//! (`BENCH_trace.json`) carry both median throughputs and their ratio —
//! the PR 2 contract holds when the ratio stays within the ±6% noise
//! floor. Run the same flag on an `obs-off` build for the third point
//! (metrics *and* spans compiled out); the JSON stamps `obs_enabled` so
//! the reports stay distinguishable.
//!
//! [`MetricsSnapshot`]: staq_obs::MetricsSnapshot

use staq_bench::{fmt_dur, LatencyHistogram};
use staq_serve::client::Client;
use staq_serve::presets::CityPreset;
use staq_serve::{ServerConfig, StatsReply};
use staq_shard::{route, RouterConfig, ShardSupervisor, SupervisorConfig, ThreadBackend};
use staq_synth::PoiCategory;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    conns: usize,
    duration: Duration,
    rate: f64,
    edit_every: Option<Duration>,
    loopback: bool,
    workers: usize,
    seed: u64,
    shards: usize,
    emit_json: Option<String>,
    trace_compare: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7878".into(),
        conns: 16,
        duration: Duration::from_secs(10),
        rate: 0.0,
        edit_every: None,
        loopback: false,
        workers: 4,
        seed: 42,
        shards: 0,
        emit_json: None,
        trace_compare: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => args.addr = need(&mut it, "--addr"),
            "--conns" => args.conns = parse(&mut it, "--conns"),
            "--duration" => args.duration = Duration::from_secs_f64(parse(&mut it, "--duration")),
            "--rate" => args.rate = parse(&mut it, "--rate"),
            "--edit-every" => {
                let ms: u64 = parse(&mut it, "--edit-every");
                args.edit_every = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--loopback" => args.loopback = true,
            "--workers" => args.workers = parse(&mut it, "--workers"),
            "--seed" => args.seed = parse(&mut it, "--seed"),
            "--shards" => args.shards = parse(&mut it, "--shards"),
            "--emit-json" => args.emit_json = Some(need(&mut it, "--emit-json")),
            "--trace-compare" => args.trace_compare = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if args.conns == 0 {
        usage("--conns must be at least 1");
    }
    if args.workers == 0 {
        usage("--workers must be at least 1");
    }
    if args.shards > 0 && !args.loopback {
        usage("--shards requires --loopback (the bench hosts the fleet itself)");
    }
    if args.trace_compare && !args.loopback {
        usage("--trace-compare requires --loopback (it toggles the in-process trace layer)");
    }
    if args.trace_compare && args.shards > 0 {
        usage("--trace-compare and --shards are mutually exclusive");
    }
    args
}

fn need(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")))
}

fn parse<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
    need(it, flag).parse().unwrap_or_else(|_| usage(&format!("{flag} needs a valid value")))
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: staq-serve-bench [--addr host:port | --loopback] [--conns N] \
         [--duration secs] [--rate req/s] [--edit-every ms] [--workers N] \
         [--seed N] [--shards N] [--emit-json path] [--trace-compare]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

/// Kinds tracked separately in the report, in print order.
const KINDS: [&str; 4] = ["measures", "mean_access", "worst_zones", "at_risk"];

struct WorkerReport {
    hists: Vec<LatencyHistogram>, // indexed like KINDS
    errors: u64,
}

/// One full cold+warm run against one address.
struct PhaseReport {
    cold: LatencyHistogram,
    hists: Vec<LatencyHistogram>,
    edit: Option<(LatencyHistogram, u64)>,
    errors: u64,
    elapsed: f64,
    total: u64,
    stats0: StatsReply,
    stats1: StatsReply,
}

impl PhaseReport {
    fn req_per_sec(&self) -> f64 {
        self.total as f64 / self.elapsed
    }
}

fn main() {
    let mut args = parse_args();

    if args.shards > 0 {
        run_comparison(&args);
        return;
    }
    if args.trace_compare {
        run_trace_compare(&args);
        return;
    }

    // Self-hosted mode: a test-size city on a free loopback port, so CI
    // can run the bench without a separately managed daemon.
    let mut loopback_server = args.loopback.then(|| {
        let engine = CityPreset::Test.engine(0.05, args.seed);
        let handle = staq_serve::serve(
            engine,
            &ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers: args.workers,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| {
            eprintln!("error: cannot start loopback server: {e}");
            std::process::exit(1);
        });
        args.addr = handle.addr().to_string();
        handle
    });

    let phase = run_workload(&args.addr, &args);
    print_phase(&phase, &args);

    if let Some(path) = &args.emit_json {
        let json = format!(
            "{{\"bench\":\"staq-serve-bench\",{}}}",
            phase_json(&phase, &args, args.workers as u64)
        );
        write_json(path, &json);
    }

    if let Some(mut server) = loopback_server.take() {
        server.shutdown();
    }
}

/// `--shards N`: the same workload against one process, then against a
/// sharded fleet, printed side by side.
fn run_comparison(args: &Args) {
    println!("== single process ({} workers) ==", args.workers);
    let mut server = {
        let engine = CityPreset::Test.engine(0.05, args.seed);
        staq_serve::serve(
            engine,
            &ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers: args.workers,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| {
            eprintln!("error: cannot start loopback server: {e}");
            std::process::exit(1);
        })
    };
    let single = run_workload(&server.addr().to_string(), args);
    print_phase(&single, args);
    server.shutdown();
    drop(server);

    println!("\n== sharded: {} backends x {} workers ==", args.shards, args.workers);
    let backends = (0..args.shards)
        .map(|_| {
            let (workers, seed) = (args.workers, args.seed);
            Box::new(ThreadBackend::new(workers, move || {
                Arc::new(CityPreset::Test.engine(0.05, seed))
            })) as Box<dyn staq_shard::Backend>
        })
        .collect();
    let sup = ShardSupervisor::start(backends, SupervisorConfig::default()).unwrap_or_else(|e| {
        eprintln!("error: fleet failed to start: {e}");
        std::process::exit(1);
    });
    let mut router = route(sup, &RouterConfig::default()).unwrap_or_else(|e| {
        eprintln!("error: cannot bind router: {e}");
        std::process::exit(1);
    });
    let sharded = run_workload(&router.addr().to_string(), args);
    print_phase(&sharded, args);
    router.shutdown();

    let speedup = sharded.req_per_sec() / single.req_per_sec();
    println!(
        "\nsharded/single throughput: {:.0}/{:.0} req/s = {speedup:.2}x ({} shards)",
        sharded.req_per_sec(),
        single.req_per_sec(),
        args.shards
    );

    if let Some(path) = &args.emit_json {
        let json = format!(
            "{{\"bench\":\"staq-serve-bench\",\"mode\":\"shard-compare\",\"shards\":{},\
             \"speedup\":{speedup:.4},\"single\":{{{}}},\"sharded\":{{{}}}}}",
            args.shards,
            phase_json(&single, args, args.workers as u64),
            phase_json(&sharded, args, (args.workers * args.shards) as u64),
        );
        write_json(path, &json);
    }
}

/// `--trace-compare`: interleaved warm rounds with tracing off and on
/// against one loopback server, so the span layer's cost is measured
/// against its own baseline under identical drift.
fn run_trace_compare(args: &Args) {
    let mut server = {
        let engine = CityPreset::Test.engine(0.05, args.seed);
        staq_serve::serve(
            engine,
            &ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers: args.workers,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| {
            eprintln!("error: cannot start loopback server: {e}");
            std::process::exit(1);
        })
    };
    let addr = server.addr().to_string();

    // Warm every category so no round pays a pipeline run.
    let mut control = Client::connect(&addr).unwrap_or_else(|e| {
        eprintln!("error: cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    for cat in PoiCategory::ALL {
        control.measures(cat).expect("warm-up measures");
    }

    const PAIRS: usize = 5;
    println!(
        "trace compare: {PAIRS} interleaved pairs of {:.1}s rounds, {} conns, obs_enabled={}",
        args.duration.as_secs_f64(),
        args.conns,
        staq_obs::obs_enabled()
    );
    let mut off = Vec::with_capacity(PAIRS);
    let mut on = Vec::with_capacity(PAIRS);
    for pair in 0..PAIRS {
        for enabled in [false, true] {
            staq_obs::trace::set_enabled(enabled);
            let rps = timed_round(&addr, args);
            println!(
                "  pair {pair} tracing {}: {rps:.0} req/s",
                if enabled { "on " } else { "off" }
            );
            if enabled { &mut on } else { &mut off }.push(rps);
        }
    }
    staq_obs::trace::set_enabled(true);

    let m_off = median(&mut off);
    let m_on = median(&mut on);
    let ratio = m_on / m_off;
    let snap = staq_obs::snapshot();
    let recorded = snap.counter("trace.spans_recorded").unwrap_or(0);
    let dropped = snap.counter("trace.spans_dropped").unwrap_or(0);
    println!(
        "median tracing-on/off: {m_on:.0}/{m_off:.0} req/s = {ratio:.4} \
         ({recorded} spans recorded, {dropped} dropped)"
    );

    if let Some(path) = &args.emit_json {
        let fmt_list =
            |v: &[f64]| v.iter().map(|x| format!("{x:.1}")).collect::<Vec<_>>().join(",");
        let json = format!(
            "{{\"bench\":\"staq-serve-bench\",\"mode\":\"trace-compare\",\
             \"obs_enabled\":{},\"seed\":{},\"workers\":{},\"conns\":{},\
             \"round_secs\":{:.3},\"pairs\":{PAIRS},\
             \"tracing_off_rps\":[{}],\"tracing_on_rps\":[{}],\
             \"median_off\":{m_off:.1},\"median_on\":{m_on:.1},\"on_off_ratio\":{ratio:.4},\
             \"spans_recorded\":{recorded},\"spans_dropped\":{dropped}}}",
            staq_obs::obs_enabled(),
            args.seed,
            args.workers,
            args.conns,
            args.duration.as_secs_f64(),
            fmt_list(&off),
            fmt_list(&on),
        );
        write_json(path, &json);
    }
    server.shutdown();
}

/// One warm round: the standard connection mix for `--duration`, returning
/// client-observed req/s.
fn timed_round(addr: &str, args: &Args) -> f64 {
    let stop = Arc::new(AtomicBool::new(false));
    let per_conn_interval =
        (args.rate > 0.0).then(|| Duration::from_secs_f64(args.conns as f64 / args.rate));
    let t0 = Instant::now();
    let handles: Vec<_> = (0..args.conns)
        .map(|c| {
            let addr = addr.to_string();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || run_conn(&addr, c, per_conn_interval, &stop))
        })
        .collect();
    std::thread::sleep(args.duration);
    stop.store(true, Ordering::SeqCst);
    let mut total = 0u64;
    for h in handles {
        let r = h.join().expect("round thread panicked");
        total += r.hists.iter().map(LatencyHistogram::count).sum::<u64>();
    }
    total as f64 / t0.elapsed().as_secs_f64()
}

fn median(v: &mut [f64]) -> f64 {
    v.sort_by(|a, b| a.total_cmp(b));
    v[v.len() / 2]
}

/// Runs the cold sweep plus the timed warm mix against `addr`.
fn run_workload(addr: &str, args: &Args) -> PhaseReport {
    let mut control = Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("error: cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    let stats0 = control.stats().expect("stats");
    println!(
        "server at {addr}: {} workers, {} pipeline runs so far",
        stats0.workers, stats0.pipeline_runs
    );

    // Cold phase: first touch per category pays the SSR pipeline.
    let mut cold = LatencyHistogram::new();
    for cat in PoiCategory::ALL {
        let t = Instant::now();
        control.measures(cat).expect("cold measures");
        cold.record(t.elapsed());
    }

    // Warm phase: rotating query mix over `conns` connections.
    let stop = Arc::new(AtomicBool::new(false));
    let per_conn_interval =
        (args.rate > 0.0).then(|| Duration::from_secs_f64(args.conns as f64 / args.rate));
    let t_start = Instant::now();
    let mut handles = Vec::new();
    for c in 0..args.conns {
        let addr = addr.to_string();
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || run_conn(&addr, c, per_conn_interval, &stop)));
    }
    let editor = args.edit_every.map(|every| {
        let addr = addr.to_string();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || run_editor(&addr, every, &stop))
    });

    std::thread::sleep(args.duration);
    stop.store(true, Ordering::SeqCst);

    let mut hists: Vec<LatencyHistogram> =
        (0..KINDS.len()).map(|_| LatencyHistogram::new()).collect();
    let mut errors = 0u64;
    for h in handles {
        let r = h.join().expect("worker thread panicked");
        for (acc, part) in hists.iter_mut().zip(&r.hists) {
            acc.merge(part);
        }
        errors += r.errors;
    }
    let edit = editor.map(|h| h.join().expect("editor thread panicked"));
    let elapsed = t_start.elapsed().as_secs_f64();
    let total: u64 = hists.iter().map(|h| h.count()).sum();
    let stats1 = control.stats().expect("stats");
    PhaseReport { cold, hists, edit, errors, elapsed, total, stats0, stats1 }
}

fn print_phase(p: &PhaseReport, args: &Args) {
    println!("cold (first touch per category): {}", p.cold.summary());
    println!(
        "warm: {} requests over {:.1}s from {} conns -> {:.0} req/s ({} errors)",
        p.total,
        p.elapsed,
        args.conns,
        p.req_per_sec(),
        p.errors
    );
    for (kind, h) in KINDS.iter().zip(&p.hists) {
        if h.count() > 0 {
            println!("  {kind:<12} {}", h.summary());
        }
    }
    if let Some((h, errs)) = &p.edit {
        println!("  {:<12} {} ({errs} errors)", "add_poi", h.summary());
    }
    println!(
        "pipeline runs {} -> {} (+{}); requests served {}",
        p.stats0.pipeline_runs,
        p.stats1.pipeline_runs,
        p.stats1.pipeline_runs - p.stats0.pipeline_runs,
        p.stats1.requests_served
    );
    println!(
        "warm vs cold p99: {} vs {}",
        fmt_dur(
            p.hists
                .iter()
                .fold(LatencyHistogram::new(), |mut a, h| {
                    a.merge(h);
                    a
                })
                .percentile(99.0)
        ),
        fmt_dur(p.cold.percentile(99.0)),
    );
}

fn write_json(path: &str, json: &str) {
    std::fs::write(path, json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {path}");
}

/// The body of one phase's machine-readable report (caller wraps it):
/// client-observed throughput plus the server's own view — per-kind
/// execution latency quantiles from the worker-side histograms, engine
/// cache counters, and the full metrics snapshot for anything else
/// (stage timings, RAPTOR counters, shard routing counters).
fn phase_json(p: &PhaseReport, args: &Args, workers: u64) -> String {
    let m = &p.stats1.metrics;
    let mut kinds = String::new();
    for (i, kind) in ["measures", "query", "add_poi", "add_bus_route", "stats"].iter().enumerate() {
        if i > 0 {
            kinds.push(',');
        }
        match m.histogram(&format!("serve.request.{kind}")) {
            Some(h) => kinds.push_str(&format!(
                "{{\"kind\":\"{kind}\",\"count\":{},\"p50_ns\":{},\"p95_ns\":{},\
                 \"p99_ns\":{},\"max_ns\":{}}}",
                h.count, h.p50_ns, h.p95_ns, h.p99_ns, h.max_ns
            )),
            None => kinds.push_str(&format!("{{\"kind\":\"{kind}\",\"count\":0}}")),
        }
    }
    let cache = |name: &str| m.counter(&format!("engine.cache.{name}")).unwrap_or(0);
    format!(
        "\"seed\":{},\"workers\":{workers},\"conns\":{},\
         \"duration_secs\":{:.3},\"total_requests\":{},\"requests_per_sec\":{:.1},\
         \"errors\":{},\"pipeline_runs\":{},\"engine_cache\":{{\"hits\":{},\"misses\":{},\
         \"joins\":{},\"invalidations\":{}}},\"server_kinds\":[{}],\"metrics\":{}",
        args.seed,
        args.conns,
        p.elapsed,
        p.total,
        p.req_per_sec(),
        p.errors,
        p.stats1.pipeline_runs,
        cache("hits"),
        cache("misses"),
        cache("joins"),
        cache("invalidations"),
        kinds,
        m.to_json(),
    )
}

fn run_conn(addr: &str, index: usize, pace: Option<Duration>, stop: &AtomicBool) -> WorkerReport {
    use staq_access::AccessQuery;

    let mut report = WorkerReport {
        hists: (0..KINDS.len()).map(|_| LatencyHistogram::new()).collect(),
        errors: 0,
    };
    let Ok(mut client) = Client::connect(addr) else {
        report.errors += 1;
        return report;
    };
    let mut i = index; // desynchronize the rotation across connections
    let mut next_send = Instant::now();
    while !stop.load(Ordering::SeqCst) {
        if let Some(p) = pace {
            // Open loop: stick to the schedule even if responses lag.
            let now = Instant::now();
            if now < next_send {
                std::thread::sleep(next_send - now);
            }
            next_send += p;
        }
        let cat = PoiCategory::ALL[i % 4];
        let t = Instant::now();
        let (slot, res) = match i % 8 {
            0 => (0, client.measures(cat).map(|_| ())),
            1..=3 => (1, client.query(&AccessQuery::MeanAccess, cat).map(|_| ())),
            4 | 5 => (2, client.query(&AccessQuery::WorstZones { k: 10 }, cat).map(|_| ())),
            _ => (3, client.query(&AccessQuery::AtRisk { threshold_factor: 1.5 }, cat).map(|_| ())),
        };
        let elapsed = t.elapsed();
        match res {
            Ok(()) => report.hists[slot].record(elapsed),
            Err(_) => report.errors += 1,
        }
        i += 1;
    }
    report
}

fn run_editor(addr: &str, every: Duration, stop: &AtomicBool) -> (LatencyHistogram, u64) {
    let mut hist = LatencyHistogram::new();
    let mut errors = 0u64;
    let Ok(mut client) = Client::connect(addr) else { return (hist, 1) };
    // Walk POIs along a diagonal so every edit is a distinct position.
    let mut k = 0u32;
    while !stop.load(Ordering::SeqCst) {
        let pos = staq_geom::Point::new(500.0 + 13.0 * k as f64, 500.0 + 7.0 * k as f64);
        let t = Instant::now();
        match client.add_poi(PoiCategory::ALL[k as usize % 4], pos) {
            Ok(_) => hist.record(t.elapsed()),
            Err(_) => errors += 1,
        }
        k += 1;
        std::thread::sleep(every);
    }
    (hist, errors)
}

//! # staq-synth
//!
//! Deterministic synthetic city generator — the substitute for the paper's
//! proprietary inputs (census-tract shapefiles, TfWM GTFS feed, scraped POI
//! locations; see DESIGN.md's substitution table).
//!
//! A [`city::City`] bundles everything the pipeline consumes:
//!
//! * a set of **zones** with centroids, population and demographic fields
//!   (the census tracts `Z` of §III-A),
//! * **POI sets** per category (schools, hospitals, vaccination centers, job
//!   centers — §V-A),
//! * a walkable **road graph** (`staq-road`),
//! * a **GTFS feed** for the bus network, generated as text and re-parsed
//!   through `staq-gtfs` so the ingestion path matches a real feed.
//!
//! Realism levers (all seeded, all deterministic):
//!
//! * zones are laid out on a jittered grid with population density decaying
//!   from one or more urban cores — giving the spatial autocorrelation the
//!   SSR models exploit;
//! * the road network is a perturbed grid with random edge dropout plus
//!   diagonal arterials — degree ≈ 3–4, like an urban street network;
//! * bus routes are radial, orbital and cross-town polylines with stops
//!   every ~350–450 m snapped to road nodes; headways vary by time of day
//!   (peak/off-peak/evening), giving the temporal variance that ACSD
//!   measures;
//! * POIs cluster toward density cores, with per-category counts taken from
//!   the paper's Table I.

pub mod city;
pub mod config;
pub mod io;
pub mod pois;
pub mod roads;
pub mod transit_gen;

pub use city::{City, Demographics, Poi, PoiCategory, PoiId, Zone, ZoneId};
pub use config::CityConfig;

//! **Ablations** — the design-choice studies DESIGN.md calls out, beyond
//! the paper's headline tables:
//!
//! 1. sampling strategy: random (paper) vs spatial-coverage k-center
//!    (paper's future-work suggestion);
//! 2. feature set: full vs no-interchange-features vs h = 1 hop chaining;
//! 3. fairness measures: Jain (paper) vs Gini vs Palma on the same truth.
//!
//! ```text
//! cargo run --release -p staq-bench --bin ablation -- --scale 0.06
//! ```

use staq_bench::{birmingham, BenchArgs, CsvOut};
use staq_core::{
    evaluate, NaiveResult, OfflineArtifacts, PipelineConfig, SamplingStrategy, SsrPipeline,
};
use staq_ml::ModelKind;
use staq_synth::PoiCategory;
use staq_todam::TodamSpec;
use staq_transit::CostKind;

fn main() {
    let args = BenchArgs::parse_with_default(BenchArgs { scale: 0.06, ..Default::default() });
    let spec = TodamSpec { per_hour: 5, ..Default::default() };
    let city = birmingham(&args);
    let artifacts =
        OfflineArtifacts::build(&city, &spec.interval, &staq_road::IsochroneParams::default());
    let category = PoiCategory::School;
    let truth = NaiveResult::compute(&city, &spec, category, CostKind::Jt);
    let mut csv = CsvOut::new(&["ablation", "variant", "beta", "mac_mae", "mac_corr"]);

    let base = |beta: f64| PipelineConfig {
        beta,
        model: ModelKind::Mlp,
        cost: CostKind::Jt,
        todam: spec.clone(),
        seed: args.seed,
        ..Default::default()
    };

    println!("== Ablations (Birmingham analogue, scale {}, schools) ==", args.scale);

    // 1. Sampling strategy across budgets.
    println!("\n-- sampling strategy (JT MAE / MAC corr) --");
    println!("{:>6} {:>18} {:>18}", "beta%", "random", "spatial-coverage");
    for beta in [0.03, 0.05, 0.10] {
        let mut cells = Vec::new();
        for (name, strat) in
            [("random", SamplingStrategy::Random), ("coverage", SamplingStrategy::SpatialCoverage)]
        {
            let cfg = PipelineConfig { sampling: strat, ..base(beta) };
            let r = evaluate(&truth, &SsrPipeline::new(&city, &artifacts, cfg).run(category));
            cells.push(format!("{:>8.2} / {:>5.3}", r.mac_mae, r.mac_corr));
            csv.row(&[
                "sampling".into(),
                name.into(),
                format!("{beta}"),
                format!("{:.4}", r.mac_mae),
                format!("{:.4}", r.mac_corr),
            ]);
        }
        println!("{:>6.0} {:>18} {:>18}", beta * 100.0, cells[0], cells[1]);
    }

    // 2. Feature-set ablation at a fixed budget.
    println!("\n-- feature set (beta = 10%) --");
    for (name, interchanges, hops) in [
        ("full (h=2 + interchanges)", true, 2usize),
        ("no interchange features", false, 2),
        ("h = 1 hop only", true, 1),
        ("minimal (h=1, no interchanges)", false, 1),
    ] {
        let cfg =
            PipelineConfig { use_interchange_features: interchanges, max_hops: hops, ..base(0.10) };
        let r = evaluate(&truth, &SsrPipeline::new(&city, &artifacts, cfg).run(category));
        println!("{:<32} MAE {:>6.2}  corr {:>6.3}", name, r.mac_mae, r.mac_corr);
        csv.row(&[
            "features".into(),
            name.into(),
            "0.1".into(),
            format!("{:.4}", r.mac_mae),
            format!("{:.4}", r.mac_corr),
        ]);
    }

    // 3. Fairness measures on the ground truth.
    println!("\n-- fairness measures over ground-truth MAC --");
    let macs: Vec<f64> = truth.measures.iter().map(|m| m.mac).collect();
    let jain = staq_access::jain_index(&macs);
    let gini = staq_access::gini(&macs);
    let palma = staq_access::palma_ratio(&macs);
    println!("Jain {jain:.4}   Gini {gini:.4}   Palma {palma:.3}");
    csv.row(&["fairness".into(), "jain".into(), "-".into(), format!("{jain:.5}"), "-".into()]);
    csv.row(&["fairness".into(), "gini".into(), "-".into(), format!("{gini:.5}"), "-".into()]);
    csv.row(&["fairness".into(), "palma".into(), "-".into(), format!("{palma:.5}"), "-".into()]);

    csv.maybe_write(&args.out);
}

//! End-to-end tests of the staq-serve subsystem over real loopback TCP:
//! many concurrent connections, single-flight cold-cache semantics
//! observable through `Stats.pipeline_runs`, scenario edits over the
//! wire, protocol error handling, and graceful shutdown.

use staq_repro::prelude::*;
use staq_serve::codec::ErrorCode;
use staq_serve::presets::CityPreset;
use staq_serve::{Client, ClientError, ServerConfig, ServerHandle};
use std::net::SocketAddr;

fn start_server(workers: usize) -> ServerHandle {
    let engine = CityPreset::Test.engine(0.05, 42);
    staq_serve::serve(
        engine,
        &ServerConfig { addr: "127.0.0.1:0".into(), workers, ..Default::default() },
    )
    .expect("bind loopback server")
}

#[test]
fn sixty_four_concurrent_connections_share_one_pipeline_run() {
    let mut server = start_server(8);
    let addr = server.addr();

    // 64 clients connect at once and all demand the same cold category.
    const CONNS: usize = 64;
    let answers: Vec<QueryAnswer> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..CONNS)
            .map(|_| {
                scope.spawn(move |_| {
                    let mut c = Client::connect(addr).expect("connect");
                    c.query(&AccessQuery::MeanAccess, PoiCategory::School).expect("query answered")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .unwrap();

    assert_eq!(answers.len(), CONNS);
    for a in &answers[1..] {
        assert_eq!(a, &answers[0], "all clients must see the same answer");
    }
    match &answers[0] {
        QueryAnswer::MeanAccess { mean_mac, n_zones, .. } => {
            assert!(*mean_mac > 0.0);
            assert!(*n_zones > 0);
        }
        other => panic!("{other:?}"),
    }

    // The single-flight guarantee, asserted over the wire: 64 concurrent
    // cold queries ran the SSR pipeline exactly once.
    let mut control = Client::connect(addr).expect("connect");
    let stats = control.stats().expect("stats");
    assert_eq!(
        stats.pipeline_runs, 1,
        "cold category under concurrent demand must run the pipeline once"
    );
    assert_eq!(stats.cached, vec![PoiCategory::School]);
    assert_eq!(stats.workers, 8);
    assert!(stats.requests_served >= CONNS as u64);

    // Warm queries never recompute.
    for _ in 0..10 {
        control.query(&AccessQuery::MeanAccess, PoiCategory::School).expect("warm");
        control.measures(PoiCategory::School).expect("warm measures");
    }
    assert_eq!(control.stats().expect("stats").pipeline_runs, 1);

    server.shutdown();
}

#[test]
fn edits_over_the_wire_invalidate_precisely() {
    let mut server = start_server(4);
    let mut c = Client::connect(server.addr()).expect("connect");

    // Warm two categories: two pipeline runs.
    let school = c.measures(PoiCategory::School).expect("school");
    c.measures(PoiCategory::Hospital).expect("hospital");
    assert_eq!(c.stats().unwrap().pipeline_runs, 2);

    // A POI edit invalidates only its own category.
    let pos = {
        // Any in-city position: reuse a zone centroid shipped in measures
        // is not possible (measures carry no coordinates), so probe via a
        // route-agnostic point near the origin corner of the synth grid.
        staq_repro::geom::Point::new(1000.0, 1000.0)
    };
    c.add_poi(PoiCategory::School, pos).expect("add_poi acked");
    let stats = c.stats().unwrap();
    assert_eq!(stats.cached, vec![PoiCategory::Hospital], "school dropped, hospital kept");

    // Hospital is still warm (no recompute)...
    c.query(&AccessQuery::MeanAccess, PoiCategory::Hospital).expect("warm hospital");
    assert_eq!(c.stats().unwrap().pipeline_runs, 2);
    // ...while School recomputes once, and differs from the pre-edit world.
    let school_after = c.measures(PoiCategory::School).expect("recomputed school");
    assert_eq!(c.stats().unwrap().pipeline_runs, 3);
    assert_ne!(school, school_after, "an added school must change the measures");

    // A bus-route edit invalidates everything.
    c.add_bus_route(
        &[
            staq_repro::geom::Point::new(1000.0, 1000.0),
            staq_repro::geom::Point::new(4000.0, 4000.0),
        ],
        600,
    )
    .expect("route acked");
    assert!(c.stats().unwrap().cached.is_empty(), "schedule edits drop all categories");

    server.shutdown();
}

#[test]
fn semantic_errors_keep_the_connection_usable() {
    let mut server = start_server(2);
    let mut c = Client::connect(server.addr()).expect("connect");

    // A one-stop route is rejected with an error frame, not a hangup.
    match c.add_bus_route(&[staq_repro::geom::Point::new(0.0, 0.0)], 600) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::Invalid);
            assert!(message.contains("two stops"), "{message}");
        }
        other => panic!("expected server error, got {other:?}"),
    }
    // Same connection still answers.
    let stats = c.stats().expect("stats after error");
    assert_eq!(stats.pipeline_runs, 0);

    server.shutdown();
}

#[test]
fn malformed_frames_get_an_error_and_a_hangup() {
    use std::io::{Read, Write};

    let mut server = start_server(2);
    let addr: SocketAddr = server.addr();

    let mut raw = std::net::TcpStream::connect(addr).expect("connect");
    // Valid length prefix, bogus version byte.
    raw.write_all(&[0, 0, 0, 2, 99, 0x01]).expect("write");
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).expect("read until server hangup");
    // An error frame came back before the close: kind byte 0xFF.
    assert!(reply.len() > 6, "server must reply before hanging up");
    assert_eq!(reply[5], 0xFF, "reply must be an error frame");

    // A fresh, well-behaved connection is unaffected.
    let mut c = Client::connect(addr).expect("connect");
    c.stats().expect("stats");

    server.shutdown();
}

#[test]
fn shutdown_disconnects_idle_clients_cleanly() {
    let mut server = start_server(2);
    let mut c = Client::connect(server.addr()).expect("connect");
    c.stats().expect("stats");
    assert!(!c.is_poisoned(), "a healthy request/response must not poison");
    server.shutdown();
    // After shutdown the connection is gone: the next call fails rather
    // than hanging, and the failure poisons the client so a pool can
    // detect the broken connection instead of reusing it.
    match c.stats() {
        Err(_) => {}
        Ok(_) => panic!("server answered after shutdown"),
    }
    assert!(c.is_poisoned(), "a mid-call failure must poison the connection");
    match c.stats() {
        Err(ClientError::Poisoned) => {}
        other => panic!("a poisoned client must fail fast, got {other:?}"),
    }
}

#[test]
fn semantic_error_frames_do_not_poison() {
    let mut server = start_server(2);
    let mut c = Client::connect(server.addr()).expect("connect");
    match c.add_bus_route(&[staq_repro::geom::Point::new(0.0, 0.0)], 600) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Invalid),
        other => panic!("expected server error, got {other:?}"),
    }
    assert!(!c.is_poisoned(), "error frames keep the protocol in sync");
    c.stats().expect("connection stays usable");
    server.shutdown();
}

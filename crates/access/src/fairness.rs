//! Fairness index over access costs (paper §III-D).
//!
//! Jain's index (Jain, Chiu & Hawe 1984, developed for computer-network
//! resource allocation): for allocations `x_i`,
//! `J = (Σx)² / (n·Σx²) ∈ [1/n, 1]` — 1 when everyone receives the same,
//! 1/n when one zone receives everything. Because MAC is a *cost* (lower is
//! better), the index is computed over costs directly: equal costs across
//! zones score 1 regardless of their level; a city where a few zones bear
//! wildly higher costs scores low.

use crate::measures::ZoneMeasures;

/// Jain's fairness index of a non-negative allocation. Returns 1.0 for an
/// empty or all-zero slice (nothing is unequally distributed).
pub fn jain_index(values: &[f64]) -> f64 {
    debug_assert!(values.iter().all(|v| *v >= 0.0), "Jain over negative values");
    let n = values.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sq: f64 = values.iter().map(|v| v * v).sum();
    if sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sq)
}

/// Demographic-weighted Jain index: zone `i` contributes with multiplicity
/// proportional to `weights[i]` (e.g. vulnerable population), asking "is
/// access fairly distributed over *people in this group*", not over zones.
///
/// Implemented as the weighted generalization
/// `J = (Σ wᵢxᵢ)² / (Σwᵢ · Σ wᵢxᵢ²)`.
pub fn weighted_jain_index(values: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(values.len(), weights.len(), "weighted Jain length mismatch");
    debug_assert!(weights.iter().all(|w| *w >= 0.0));
    let wsum: f64 = weights.iter().sum();
    if wsum <= 0.0 {
        return 1.0;
    }
    let s1: f64 = values.iter().zip(weights).map(|(x, w)| w * x).sum();
    let s2: f64 = values.iter().zip(weights).map(|(x, w)| w * x * x).sum();
    if s2 <= 0.0 {
        return 1.0;
    }
    (s1 * s1) / (wsum * s2)
}

/// Jain index over a measure set's MAC column — the paper's fairness
/// measure.
pub fn fairness_of(measures: &[ZoneMeasures]) -> f64 {
    let macs: Vec<f64> = measures.iter().map(|m| m.mac).collect();
    jain_index(&macs)
}

/// Gini coefficient of a non-negative allocation, in `[0, 1)`: 0 for
/// perfect equality. Included as an alternative inequality measure —
/// transport-equity studies report it alongside Jain — computed with the
/// standard mean-absolute-difference formula.
pub fn gini(values: &[f64]) -> f64 {
    debug_assert!(values.iter().all(|v| *v >= 0.0), "Gini over negative values");
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let mean: f64 = values.iter().sum::<f64>() / n as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // G = (2 Σ i·x_(i) / (n Σ x)) − (n + 1)/n, with 1-based ranks.
    let weighted: f64 = sorted.iter().enumerate().map(|(i, &x)| (i as f64 + 1.0) * x).sum();
    (2.0 * weighted) / (n as f64 * n as f64 * mean) - (n as f64 + 1.0) / n as f64
}

/// Palma ratio over access *costs*: mean cost borne by the worst-served 10%
/// of zones divided by the mean cost of the best-served 40%. Values near 1
/// mean the tails fare alike; large values flag a badly-served minority
/// (the job-access equity measure of Liu et al., cited by the paper).
pub fn palma_ratio(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 1.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let k40 = ((n as f64 * 0.4).round() as usize).max(1);
    let k10 = ((n as f64 * 0.1).round() as usize).max(1);
    let best40: f64 = sorted[..k40].iter().sum::<f64>() / k40 as f64;
    let worst10: f64 = sorted[n - k10..].iter().sum::<f64>() / k10 as f64;
    if best40 <= 0.0 {
        return 1.0;
    }
    worst10 / best40
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_allocation_scores_one() {
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn single_hog_scores_one_over_n() {
        let j = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((j - 0.25).abs() < 1e-12);
    }

    #[test]
    fn index_is_scale_invariant() {
        let a = jain_index(&[1.0, 2.0, 3.0]);
        let b = jain_index(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn bounds_hold() {
        let vals = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
        let j = jain_index(&vals);
        assert!(j > 1.0 / vals.len() as f64 && j <= 1.0);
    }

    #[test]
    fn weighted_reduces_to_unweighted_with_unit_weights() {
        let vals = [2.0, 7.0, 4.0];
        let w = [1.0, 1.0, 1.0];
        assert!((weighted_jain_index(&vals, &w) - jain_index(&vals)).abs() < 1e-12);
    }

    #[test]
    fn weights_focus_the_index() {
        // Unequal values, but all the weight sits on equal-valued zones:
        // perfectly fair for the weighted group.
        let vals = [5.0, 5.0, 50.0];
        let w = [1.0, 1.0, 0.0];
        assert!((weighted_jain_index(&vals, &w) - 1.0).abs() < 1e-12);
        // Weight on the unequal pair drops the index.
        let w2 = [1.0, 0.0, 1.0];
        assert!(weighted_jain_index(&vals, &w2) < 0.7);
    }

    #[test]
    fn zero_weights_return_one() {
        assert_eq!(weighted_jain_index(&[1.0, 2.0], &[0.0, 0.0]), 1.0);
    }

    #[test]
    fn gini_equality_and_extremes() {
        assert_eq!(gini(&[5.0, 5.0, 5.0]), 0.0);
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
        // One hog among many approaches (n-1)/n.
        let g = gini(&[0.0, 0.0, 0.0, 0.0, 100.0]);
        assert!((g - 0.8).abs() < 1e-12, "got {g}");
    }

    #[test]
    fn gini_scale_invariant_and_bounded() {
        let a = [3.0, 1.0, 4.0, 1.0, 5.0];
        let scaled: Vec<f64> = a.iter().map(|v| v * 7.0).collect();
        assert!((gini(&a) - gini(&scaled)).abs() < 1e-12);
        assert!(gini(&a) >= 0.0 && gini(&a) < 1.0);
    }

    #[test]
    fn gini_and_jain_agree_on_direction() {
        let fair = [10.0, 10.0, 10.0, 11.0];
        let unfair = [1.0, 1.0, 1.0, 50.0];
        assert!(gini(&fair) < gini(&unfair));
        assert!(jain_index(&fair) > jain_index(&unfair));
    }

    #[test]
    fn palma_equality_is_one() {
        assert!((palma_ratio(&[5.0; 10]) - 1.0).abs() < 1e-12);
        assert_eq!(palma_ratio(&[]), 1.0);
    }

    #[test]
    fn palma_flags_bad_tail() {
        // Nine zones at cost 10, one at cost 100: worst decile / best 40%.
        let mut v = vec![10.0; 9];
        v.push(100.0);
        assert!((palma_ratio(&v) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn fairness_of_measures() {
        use staq_synth::ZoneId;
        let ms = vec![
            ZoneMeasures { zone: ZoneId(0), mac: 10.0, acsd: 0.0 },
            ZoneMeasures { zone: ZoneId(1), mac: 10.0, acsd: 0.0 },
        ];
        assert!((fairness_of(&ms) - 1.0).abs() < 1e-12);
    }
}

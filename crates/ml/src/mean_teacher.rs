//! Mean Teacher (Tarvainen & Valpola, NeurIPS 2017) adapted to regression.
//!
//! A *student* MLP trains on the labeled loss plus a consistency term: its
//! predictions on noise-perturbed unlabeled inputs must match those of a
//! *teacher* whose weights are an exponential moving average of the
//! student's. The EMA teacher provides the final predictions.

use crate::linalg::Matrix;
use crate::mlp::Net;
use crate::scaler::StandardScaler;
use crate::ssr::{SsrModel, SsrTask};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Mean Teacher configuration.
#[derive(Debug, Clone, Copy)]
pub struct MeanTeacher {
    pub hidden: [usize; 2],
    pub epochs: usize,
    pub lr: f64,
    pub batch: usize,
    /// EMA decay for the teacher weights.
    pub ema_decay: f64,
    /// Weight of the consistency loss (ramped linearly over training).
    pub consistency: f64,
    /// Std-dev of the Gaussian-ish input perturbation (in standardized
    /// feature units).
    pub noise: f64,
}

impl Default for MeanTeacher {
    fn default() -> Self {
        MeanTeacher {
            hidden: [64, 32],
            epochs: 200,
            lr: 1e-2,
            batch: 32,
            ema_decay: 0.98,
            consistency: 0.3,
            noise: 0.1,
        }
    }
}

impl SsrModel for MeanTeacher {
    fn name(&self) -> &'static str {
        "MT"
    }

    fn fit_predict(&self, task: &SsrTask<'_>) -> Matrix {
        task.validate().expect("invalid SSR task");
        let all_x = task.x_labeled.vstack(task.x_unlabeled);
        let xs = StandardScaler::fit(&all_x);
        let ys = StandardScaler::fit(task.y_labeled);
        let xl = xs.transform(task.x_labeled);
        let yl = ys.transform(task.y_labeled);
        let xu = xs.transform(task.x_unlabeled);

        let sizes = [xl.cols(), self.hidden[0], self.hidden[1], yl.cols()];
        let mut rng = StdRng::seed_from_u64(task.seed ^ 0x7EAC);
        let mut student = Net::new(&sizes, &mut rng);
        let mut teacher = student.clone();

        let n_l = xl.rows();
        let n_u = xu.rows();
        let mut order_l: Vec<usize> = (0..n_l).collect();
        let mut order_u: Vec<usize> = (0..n_u).collect();

        for epoch in 0..self.epochs {
            let ramp = (epoch + 1) as f64 / self.epochs as f64;
            let cons_w = self.consistency * ramp;
            order_l.shuffle(&mut rng);
            order_u.shuffle(&mut rng);
            let batches = order_l.chunks(self.batch.max(1)).count().max(1);
            let u_per_batch = (n_u / batches).max(1);
            let mut u_cursor = 0usize;
            for chunk in order_l.chunks(self.batch.max(1)) {
                // Supervised step.
                let bx = xl.select_rows(chunk);
                let by = yl.select_rows(chunk);
                student.train_step(&bx, &by, self.lr, 1.0);

                // Consistency step on an unlabeled slice.
                if n_u > 0 && cons_w > 0.0 {
                    let uid: Vec<usize> =
                        (0..u_per_batch).map(|k| order_u[(u_cursor + k) % n_u]).collect();
                    u_cursor = (u_cursor + u_per_batch) % n_u;
                    let ux = xu.select_rows(&uid);
                    // Teacher targets on clean inputs; student sees noise.
                    let target = teacher.predict(&ux);
                    let mut noisy = ux.clone();
                    for v in noisy.data_mut() {
                        *v += rng.random_range(-self.noise..self.noise);
                    }
                    student.train_step(&noisy, &target, self.lr, cons_w);
                }
                teacher.ema_from(&student, self.ema_decay);
            }
        }
        ys.inverse_transform(&teacher.predict(&xu))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssr::fixtures;

    #[test]
    fn beats_mean_baseline() {
        let m = MeanTeacher::default();
        let err = fixtures::model_mae(&m, 80, 40, 3);
        let base = fixtures::mean_baseline_mae(80, 40, 3);
        assert!(err < base * 0.5, "MT {err} vs baseline {base}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (xl, yl, xu, _) = fixtures::synthetic(30, 20, 9);
        let task =
            SsrTask { x_labeled: &xl, y_labeled: &yl, x_unlabeled: &xu, adjacency: None, seed: 2 };
        let short = MeanTeacher { epochs: 20, ..Default::default() };
        assert_eq!(short.fit_predict(&task), short.fit_predict(&task));
    }

    #[test]
    fn consistency_uses_unlabeled_data() {
        // With vs without consistency: predictions must differ, proving the
        // unlabeled branch participates in training.
        let (xl, yl, xu, _) = fixtures::synthetic(25, 40, 14);
        let task =
            SsrTask { x_labeled: &xl, y_labeled: &yl, x_unlabeled: &xu, adjacency: None, seed: 4 };
        let with = MeanTeacher { epochs: 30, ..Default::default() }.fit_predict(&task);
        let without =
            MeanTeacher { epochs: 30, consistency: 0.0, ..Default::default() }.fit_predict(&task);
        assert_ne!(with, without);
    }

    #[test]
    fn output_shape() {
        let (xl, yl, xu, _) = fixtures::synthetic(15, 6, 0);
        let task =
            SsrTask { x_labeled: &xl, y_labeled: &yl, x_unlabeled: &xu, adjacency: None, seed: 0 };
        let p = MeanTeacher { epochs: 3, ..Default::default() }.fit_predict(&task);
        assert_eq!((p.rows(), p.cols()), (6, 2));
    }
}

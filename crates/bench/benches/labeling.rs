//! Labeling throughput: SPQ-labeling one zone's trips — the dominant cost
//! of the whole solution (§IV-E), and what β directly scales.

use criterion::{criterion_group, criterion_main, Criterion};
use staq_synth::{City, CityConfig, PoiCategory, ZoneId};
use staq_todam::{LabelEngine, TodamSpec};
use staq_transit::AccessCost;
use std::hint::black_box;

fn bench_labeling(c: &mut Criterion) {
    let city = City::generate(&CityConfig::small(42));
    let spec = TodamSpec { per_hour: 5, ..Default::default() };
    let m = spec.build(&city, PoiCategory::School);
    let engine = LabelEngine::new(&city, AccessCost::jt(), spec.interval.clone());
    // A zone with a healthy trip count.
    let zone =
        (0..city.n_zones() as u32).map(ZoneId).max_by_key(|&z| m.zone_trips(z).len()).unwrap();

    let mut g = c.benchmark_group("labeling");
    g.sample_size(10);
    g.bench_function(format!("label_zone_{}_trips", m.zone_trips(zone).len()), |b| {
        b.iter(|| black_box(engine.label_zone(&m, zone)))
    });
    g.finish();
}

/// Thread-scaling sweep for the full labeling pass: with per-worker output
/// slices the walltime should track 1/workers until memory bandwidth, where
/// the old per-zone `Mutex<Vec>` write serialized the pool.
fn bench_labeling_scaling(c: &mut Criterion) {
    let city = City::generate(&CityConfig::small(42));
    let spec = TodamSpec { per_hour: 5, ..Default::default() };
    let m = spec.build(&city, PoiCategory::School);
    let mut engine = LabelEngine::new(&city, AccessCost::jt(), spec.interval.clone());
    let zones: Vec<ZoneId> = (0..city.n_zones() as u32).map(ZoneId).collect();

    let mut g = c.benchmark_group("labeling_scaling");
    g.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        engine.n_workers = workers;
        g.bench_function(format!("label_all_{workers}w"), |b| {
            b.iter(|| black_box(engine.label_zones(&m, &zones)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_labeling, bench_labeling_scaling);
criterion_main!(benches);

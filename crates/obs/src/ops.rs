//! The fleet-health report: windows + SLO burn + slow traces, in one
//! wire-friendly value.
//!
//! [`report`] is what the serving layer answers an `OpsReport` request
//! with. It owns the process-global [`WindowRing`]: windows close
//! *lazily* — a report call first checks whether at least
//! [`set_interval`]'s worth of wall time has passed since the last
//! close and ticks if so. No background thread; the poller's cadence
//! (a `staq-top` refresh, a dashboard scrape) drives the ring, and each
//! window carries its real `span_ns` so uneven polling never skews
//! rates. The shard router scatter-gathers one report per backend and
//! folds them with [`OpsReport::merge`].
//!
//! Burn rates follow the fast/slow multi-window convention (see
//! [`slo`](crate::slo)): the fast window pages on sudden breakage, the
//! slow window catches budget leaks. Both are assembled from the same
//! ring by summing trailing deltas.
//!
//! Under `obs-off` everything here still compiles and runs — snapshots
//! are empty, so reports carry zeroed classes, zero burn and no traces.

use crate::slo::{self, SloClass};
use crate::slow::{self, SlowTrace};
use crate::snapshot::MetricsSnapshot;
use crate::window::WindowRing;
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime};

/// Default window width when nobody polls faster.
pub const DEFAULT_INTERVAL: Duration = Duration::from_secs(10);
/// Fast burn window: sudden-breakage alerting horizon.
pub const FAST_WINDOW: Duration = Duration::from_secs(5 * 60);
/// Slow burn window: budget-leak horizon.
pub const SLOW_WINDOW: Duration = Duration::from_secs(60 * 60);
/// Windows the ring retains — covers the slow window at the default
/// interval with headroom (6 h at 10 s ticks, less when polled faster).
pub const RING_WINDOWS: usize = 2048;

/// Per-class view of the most recently closed window. Carries the raw
/// delta buckets so fleet merges stay exact at bucket resolution;
/// quantiles are derived views.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassWindow {
    /// [`SloClass::name`] of the class.
    pub class: String,
    /// Wall time the window covers.
    pub span_ns: u64,
    /// Requests the class completed inside the window.
    pub count: u64,
    pub sum_ns: u64,
    pub max_ns: u64,
    /// Sparse `(bucket, count)` latency pairs, window-local.
    pub buckets: Vec<(u32, u64)>,
    /// Admission sheds / deadline misses attributed to the class.
    pub shed: u64,
}

impl ClassWindow {
    /// Completed requests per second over the window.
    pub fn rps(&self) -> f64 {
        if self.span_ns == 0 {
            return 0.0;
        }
        self.count as f64 / (self.span_ns as f64 / 1e9)
    }

    /// Window-local latency quantile in nanoseconds (0 when idle).
    pub fn quantile_ns(&self, q: f64) -> u64 {
        crate::hist::LatencyHistogram::from_sparse(&self.buckets, self.sum_ns as u128, self.max_ns)
            .percentile(q)
            .as_nanos() as u64
    }

    /// Folds another shard's view of the same class and window.
    pub fn merge(&mut self, other: &ClassWindow) {
        debug_assert_eq!(self.class, other.class);
        self.span_ns = self.span_ns.max(other.span_ns);
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for &(idx, n) in &other.buckets {
            match self.buckets.iter_mut().find(|(i, _)| *i == idx) {
                Some((_, mine)) => *mine += n,
                None => self.buckets.push((idx, n)),
            }
        }
        self.buckets.sort_by_key(|&(i, _)| i);
        self.shed += other.shed;
    }
}

/// Event counts for one burn-rate window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BurnWindow {
    /// Wall time actually covered (≤ the nominal window while the ring
    /// is still filling).
    pub span_ns: u64,
    /// All class events: completed requests + sheds.
    pub total: u64,
    /// Budget-consuming events: threshold violations + sheds.
    pub bad: u64,
}

impl BurnWindow {
    fn merge(&mut self, other: &BurnWindow) {
        self.span_ns = self.span_ns.max(other.span_ns);
        self.total += other.total;
        self.bad += other.bad;
    }
}

/// One class's objective and its current burn state.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    pub class: String,
    /// Good-fraction objective in thousandths (999 = 99.9%).
    pub objective_milli: u32,
    /// Latency threshold a good request finishes under.
    pub threshold_ns: u64,
    pub fast: BurnWindow,
    pub slow: BurnWindow,
    /// Cumulative sheds for the class since boot.
    pub shed_total: u64,
}

impl SloStatus {
    fn budget_fraction(&self) -> f64 {
        1.0 - (self.objective_milli.min(1000) as f64 / 1000.0)
    }

    /// Fast-window burn rate (1.0 = spending the budget exactly at the
    /// sustainable pace).
    pub fn burn_fast(&self) -> f64 {
        slo::burn_rate(self.fast.total, self.fast.bad, self.budget_fraction())
    }

    /// Slow-window burn rate.
    pub fn burn_slow(&self) -> f64 {
        slo::burn_rate(self.slow.total, self.slow.bad, self.budget_fraction())
    }

    /// Fraction of the slow-window error budget still unspent, in
    /// `[0, 1]`. An idle class has its whole budget.
    pub fn budget_remaining(&self) -> f64 {
        if self.slow.total == 0 {
            return 1.0;
        }
        let allowed = self.slow.total as f64 * self.budget_fraction();
        if allowed <= 0.0 {
            return if self.slow.bad == 0 { 1.0 } else { 0.0 };
        }
        (1.0 - self.slow.bad as f64 / allowed).clamp(0.0, 1.0)
    }

    fn merge(&mut self, other: &SloStatus) {
        debug_assert_eq!(self.class, other.class);
        self.fast.merge(&other.fast);
        self.slow.merge(&other.slow);
        self.shed_total += other.shed_total;
    }
}

/// The whole fleet-health answer, as one mergeable value.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OpsReport {
    /// Nominal tick interval of the reporting process.
    pub interval_ns: u64,
    /// Closed windows the ring currently holds.
    pub windows: u32,
    /// Unix time the report was assembled.
    pub generated_unix_ns: u64,
    /// Per-class view of the most recently closed window.
    pub classes: Vec<ClassWindow>,
    pub slo: Vec<SloStatus>,
    /// Slowest retained traces, duration-descending.
    pub slow: Vec<SlowTrace>,
}

impl OpsReport {
    /// Folds another backend's report in: class windows and burn counts
    /// sum, slow traces re-rank into one top-K. Reports from backends
    /// sharing a process (and therefore a registry) must not be merged —
    /// take one of them instead, exactly like `MetricsSnapshot::merge`.
    pub fn merge(&mut self, other: &OpsReport) {
        self.interval_ns = self.interval_ns.max(other.interval_ns);
        self.windows = self.windows.max(other.windows);
        self.generated_unix_ns = self.generated_unix_ns.max(other.generated_unix_ns);
        for cw in &other.classes {
            match self.classes.iter_mut().find(|m| m.class == cw.class) {
                Some(mine) => mine.merge(cw),
                None => self.classes.push(cw.clone()),
            }
        }
        for st in &other.slo {
            match self.slo.iter_mut().find(|m| m.class == st.class) {
                Some(mine) => mine.merge(st),
                None => self.slo.push(st.clone()),
            }
        }
        for t in &other.slow {
            slow::insert_top_k(&mut self.slow, t.clone(), slow::SLOW_KEEP);
        }
    }

    /// The class window by name.
    pub fn class(&self, name: &str) -> Option<&ClassWindow> {
        self.classes.iter().find(|c| c.class == name)
    }

    /// The SLO status by class name.
    pub fn slo_for(&self, name: &str) -> Option<&SloStatus> {
        self.slo.iter().find(|s| s.class == name)
    }
}

struct OpsState {
    interval: Duration,
    ring: WindowRing,
    last_tick: Instant,
}

static OPS: Mutex<Option<OpsState>> = Mutex::new(None);

fn unix_now_ns() -> u64 {
    SystemTime::now().duration_since(SystemTime::UNIX_EPOCH).unwrap_or_default().as_nanos() as u64
}

fn with_state<R>(f: impl FnOnce(&mut OpsState) -> R) -> R {
    let mut guard = OPS.lock().expect("ops state poisoned");
    let state = guard.get_or_insert_with(|| OpsState {
        interval: DEFAULT_INTERVAL,
        // Baseline at first touch: pre-ops history stays out of window 1.
        ring: WindowRing::new(RING_WINDOWS, crate::registry::snapshot()),
        last_tick: Instant::now(),
    });
    f(state)
}

/// Sets the nominal window width (process-global; 10 s default). Tests
/// and dashboards polling faster than the interval see one window per
/// interval; polling slower yields wider windows with honest `span_ns`.
pub fn set_interval(interval: Duration) {
    with_state(|s| s.interval = interval.max(Duration::from_millis(1)));
}

fn tick_locked(state: &mut OpsState) {
    let span_ns = state.last_tick.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    state.ring.tick(crate::registry::snapshot(), span_ns, unix_now_ns());
    state.last_tick = Instant::now();
}

/// Closes the current window unconditionally. Reports tick lazily;
/// tests tick explicitly to make window boundaries deterministic.
pub fn force_tick() {
    with_state(tick_locked);
}

/// Assembles the process-local report, lazily closing a window first if
/// the interval has elapsed. `slow_limit` caps the traces included.
pub fn report(slow_limit: usize) -> OpsReport {
    let (interval_ns, windows, classes, slo_status) = with_state(|state| {
        if state.last_tick.elapsed() >= state.interval {
            tick_locked(state);
        }
        let last = state.ring.last();
        let specs = slo::specs();
        let classes: Vec<ClassWindow> = specs
            .iter()
            .map(|spec| {
                let (span_ns, delta) = match last {
                    Some(w) => (w.span_ns, &w.delta),
                    None => (0, &EMPTY_SNAPSHOT),
                };
                class_window(spec.class, span_ns, delta)
            })
            .collect();
        let fast = state.ring.trailing(FAST_WINDOW.as_nanos() as u64);
        let slow_w = state.ring.trailing(SLOW_WINDOW.as_nanos() as u64);
        let slo_status: Vec<SloStatus> = specs
            .iter()
            .map(|spec| {
                let (fast_total, fast_bad) = slo::window_events(spec, &fast.1);
                let (slow_total, slow_bad) = slo::window_events(spec, &slow_w.1);
                SloStatus {
                    class: spec.class.name().to_string(),
                    objective_milli: spec.objective_milli,
                    threshold_ns: spec.threshold_ns,
                    fast: BurnWindow { span_ns: fast.0, total: fast_total, bad: fast_bad },
                    slow: BurnWindow { span_ns: slow_w.0, total: slow_total, bad: slow_bad },
                    shed_total: shed_total(spec.class),
                }
            })
            .collect();
        (state.interval.as_nanos() as u64, state.ring.len() as u32, classes, slo_status)
    });
    publish_gauges(&slo_status);
    let mut slow_traces = slow::dump();
    slow_traces.truncate(slow_limit);
    OpsReport {
        interval_ns,
        windows,
        generated_unix_ns: unix_now_ns(),
        classes,
        slo: slo_status,
        slow: slow_traces,
    }
}

static EMPTY_SNAPSHOT: MetricsSnapshot =
    MetricsSnapshot { counters: Vec::new(), gauges: Vec::new(), histograms: Vec::new() };

fn class_window(class: SloClass, span_ns: u64, delta: &MetricsSnapshot) -> ClassWindow {
    let mut out = ClassWindow {
        class: class.name().to_string(),
        span_ns,
        count: 0,
        sum_ns: 0,
        max_ns: 0,
        buckets: Vec::new(),
        shed: delta.counter(class.shed_counter()).unwrap_or(0),
    };
    for hist in class.hist_names() {
        if let Some(h) = delta.histogram(hist) {
            out.count += h.count;
            out.sum_ns = out.sum_ns.saturating_add(h.sum_ns);
            out.max_ns = out.max_ns.max(h.max_ns);
            for &(idx, n) in &h.buckets {
                match out.buckets.iter_mut().find(|(i, _)| *i == idx) {
                    Some((_, mine)) => *mine += n,
                    None => out.buckets.push((idx, n)),
                }
            }
        }
    }
    out.buckets.sort_by_key(|&(i, _)| i);
    out
}

fn shed_total(class: SloClass) -> u64 {
    slo::shed_count(class)
}

// The `obs.slo.*` gauge family: burn rates and remaining budget in
// thousandths, refreshed whenever a report is assembled. A fixed bank,
// like every other metric family in the workspace.
static G_QUERY_FAST: crate::registry::Gauge =
    crate::registry::Gauge::new("obs.slo.query.burn_fast_milli");
static G_QUERY_SLOW: crate::registry::Gauge =
    crate::registry::Gauge::new("obs.slo.query.burn_slow_milli");
static G_QUERY_BUDGET: crate::registry::Gauge =
    crate::registry::Gauge::new("obs.slo.query.budget_remaining_milli");
static G_PLAN_FAST: crate::registry::Gauge =
    crate::registry::Gauge::new("obs.slo.plan.burn_fast_milli");
static G_PLAN_SLOW: crate::registry::Gauge =
    crate::registry::Gauge::new("obs.slo.plan.burn_slow_milli");
static G_PLAN_BUDGET: crate::registry::Gauge =
    crate::registry::Gauge::new("obs.slo.plan.budget_remaining_milli");
static G_MEASURES_FAST: crate::registry::Gauge =
    crate::registry::Gauge::new("obs.slo.measures.burn_fast_milli");
static G_MEASURES_SLOW: crate::registry::Gauge =
    crate::registry::Gauge::new("obs.slo.measures.burn_slow_milli");
static G_MEASURES_BUDGET: crate::registry::Gauge =
    crate::registry::Gauge::new("obs.slo.measures.budget_remaining_milli");
static G_EDITS_FAST: crate::registry::Gauge =
    crate::registry::Gauge::new("obs.slo.edits.burn_fast_milli");
static G_EDITS_SLOW: crate::registry::Gauge =
    crate::registry::Gauge::new("obs.slo.edits.burn_slow_milli");
static G_EDITS_BUDGET: crate::registry::Gauge =
    crate::registry::Gauge::new("obs.slo.edits.budget_remaining_milli");

fn gauges_for(class: &str) -> Option<[&'static crate::registry::Gauge; 3]> {
    match class {
        "query" => Some([&G_QUERY_FAST, &G_QUERY_SLOW, &G_QUERY_BUDGET]),
        "plan" => Some([&G_PLAN_FAST, &G_PLAN_SLOW, &G_PLAN_BUDGET]),
        "measures" => Some([&G_MEASURES_FAST, &G_MEASURES_SLOW, &G_MEASURES_BUDGET]),
        "edits" => Some([&G_EDITS_FAST, &G_EDITS_SLOW, &G_EDITS_BUDGET]),
        _ => None,
    }
}

fn publish_gauges(statuses: &[SloStatus]) {
    for st in statuses {
        if let Some([fast, slow_g, budget]) = gauges_for(&st.class) {
            fast.set((st.burn_fast() * 1000.0).min(u64::MAX as f64) as u64);
            slow_g.set((st.burn_slow() * 1000.0).min(u64::MAX as f64) as u64);
            budget.set((st.budget_remaining() * 1000.0) as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cw(class: &str, count: u64, shed: u64, buckets: Vec<(u32, u64)>) -> ClassWindow {
        ClassWindow {
            class: class.into(),
            span_ns: 1_000_000_000,
            count,
            sum_ns: count * 1000,
            max_ns: 1000,
            buckets,
            shed,
        }
    }

    #[test]
    fn merge_sums_classes_and_reranks_slow_traces() {
        let t = |trace, dur| SlowTrace {
            trace,
            class: "query".into(),
            root_dur_ns: dur,
            is_error: false,
            captured_unix_ns: 0,
            spans: vec![],
        };
        let mut a = OpsReport {
            interval_ns: 10,
            windows: 2,
            generated_unix_ns: 5,
            classes: vec![cw("query", 10, 1, vec![(100, 10)])],
            slo: vec![SloStatus {
                class: "query".into(),
                objective_milli: 999,
                threshold_ns: 1000,
                fast: BurnWindow { span_ns: 60, total: 10, bad: 1 },
                slow: BurnWindow { span_ns: 600, total: 100, bad: 2 },
                shed_total: 1,
            }],
            slow: vec![t(1, 500)],
        };
        let b = OpsReport {
            interval_ns: 20,
            windows: 1,
            generated_unix_ns: 9,
            classes: vec![cw("query", 5, 2, vec![(100, 3), (200, 2)]), cw("plan", 7, 0, vec![])],
            slo: vec![SloStatus {
                class: "query".into(),
                objective_milli: 999,
                threshold_ns: 1000,
                fast: BurnWindow { span_ns: 55, total: 5, bad: 0 },
                slow: BurnWindow { span_ns: 590, total: 50, bad: 1 },
                shed_total: 2,
            }],
            slow: vec![t(2, 900), t(1, 100)],
        };
        a.merge(&b);
        let q = a.class("query").unwrap();
        assert_eq!(q.count, 15);
        assert_eq!(q.shed, 3);
        assert_eq!(q.buckets, vec![(100, 13), (200, 2)]);
        assert!(a.class("plan").is_some(), "new classes union in");
        let s = a.slo_for("query").unwrap();
        assert_eq!((s.fast.total, s.fast.bad), (15, 1));
        assert_eq!((s.slow.total, s.slow.bad), (150, 3));
        assert_eq!(s.shed_total, 3);
        // Slow traces re-rank; trace 1 keeps its longer incarnation.
        assert_eq!(a.slow[0].trace, 2);
        assert_eq!(a.slow[1].root_dur_ns, 500);
    }

    #[test]
    fn burn_and_budget_math() {
        let st = SloStatus {
            class: "query".into(),
            objective_milli: 990, // 1% budget
            threshold_ns: 0,
            fast: BurnWindow { span_ns: 1, total: 100, bad: 2 },
            slow: BurnWindow { span_ns: 1, total: 1000, bad: 5 },
            shed_total: 0,
        };
        assert!((st.burn_fast() - 2.0).abs() < 1e-9);
        assert!((st.burn_slow() - 0.5).abs() < 1e-9);
        // 5 bad of 10 allowed: half the budget left.
        assert!((st.budget_remaining() - 0.5).abs() < 1e-9);
        let idle = SloStatus { fast: BurnWindow::default(), slow: BurnWindow::default(), ..st };
        assert_eq!(idle.burn_fast(), 0.0);
        assert_eq!(idle.budget_remaining(), 1.0);
    }

    #[test]
    fn class_window_quantiles_come_from_buckets() {
        let mut h = crate::hist::LatencyHistogram::new();
        for _ in 0..99 {
            h.record_ns(1_000);
        }
        h.record_ns(8_000_000);
        let w = ClassWindow {
            class: "query".into(),
            span_ns: 2_000_000_000,
            count: h.count(),
            sum_ns: h.sum_ns() as u64,
            max_ns: 8_000_000,
            buckets: h.nonzero_buckets(),
            shed: 0,
        };
        assert!((w.rps() - 50.0).abs() < 1e-9);
        assert!(w.quantile_ns(50.0) <= 1_100);
        assert!(w.quantile_ns(99.9) >= 7_000_000);
    }

    // The global report path is exercised end-to-end (with real traffic
    // and a fleet) by the root `tests/ops.rs`; here just pin the lazy
    // tick + shape contract.
    #[test]
    fn report_shape_is_stable() {
        set_interval(Duration::from_secs(3600)); // no lazy tick mid-test
        let r = report(4);
        assert_eq!(r.classes.len(), 4);
        assert_eq!(r.slo.len(), 4);
        for class in ["query", "plan", "measures", "edits"] {
            assert!(r.class(class).is_some());
            assert!(r.slo_for(class).is_some());
        }
        assert!(r.slow.len() <= 4);
        assert!(r.generated_unix_ns > 0);
    }
}

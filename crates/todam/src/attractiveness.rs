//! Attractiveness scores `α_ij` (paper §III-C).
//!
//! "The attractiveness score can be given by domain knowledge, learned from
//! real data, or calculated on-the-fly (e.g., by using a distance decay
//! function). The score is then normalized over all P for each z_i ∈ Z."
//! The experiments use "a negative exponential distance decay function"
//! (§V-A) — implemented here, with a relative cutoff that zeroes the long
//! tail (those pairs generate no trips, `M_b^{i,j,:} = 0`).

use serde::{Deserialize, Serialize};
use staq_geom::Point;

/// Negative-exponential distance-decay attractiveness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Attractiveness {
    /// Decay length in meters: `α'_ij = exp(-d_ij / decay_m)`.
    pub decay_m: f64,
    /// Post-normalization relative cutoff: scores below
    /// `cutoff_rel * max_j(α_ij)` are zeroed (no trips sampled).
    pub cutoff_rel: f64,
}

impl Default for Attractiveness {
    /// 2 km decay — roughly the catchment of urban service POIs — and a 2%
    /// relative cutoff.
    fn default() -> Self {
        Attractiveness { decay_m: 2000.0, cutoff_rel: 0.02 }
    }
}

impl Attractiveness {
    /// Normalized scores of `pois` for a zone centered at `origin`.
    ///
    /// Guarantees: entries are in `[0, 1]`, sum to 1 unless every POI was
    /// cut off (then the nearest POI gets weight 1 — a zone always has
    /// *some* demand for the category).
    pub fn scores(&self, origin: &Point, pois: &[Point]) -> Vec<f64> {
        assert!(!pois.is_empty(), "attractiveness over an empty POI set");
        let mut raw: Vec<f64> =
            pois.iter().map(|p| (-origin.dist(p) / self.decay_m).exp()).collect();
        let max = raw.iter().copied().fold(f64::MIN, f64::max);
        let cut = max * self.cutoff_rel;
        for v in &mut raw {
            if *v < cut {
                *v = 0.0;
            }
        }
        let sum: f64 = raw.iter().sum();
        if sum <= 0.0 {
            // Degenerate: everything cut off (can't happen with cutoff_rel
            // < 1, kept for robustness against exotic configs).
            let nearest = pois
                .iter()
                .enumerate()
                .min_by(|a, b| origin.dist(a.1).partial_cmp(&origin.dist(b.1)).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            let mut out = vec![0.0; pois.len()];
            out[nearest] = 1.0;
            return out;
        }
        for v in &mut raw {
            *v /= sum;
        }
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_sum_to_one() {
        let a = Attractiveness::default();
        let origin = Point::new(0.0, 0.0);
        let pois = vec![Point::new(500.0, 0.0), Point::new(3000.0, 0.0), Point::new(0.0, 8000.0)];
        let s = a.scores(&origin, &pois);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn nearer_pois_score_higher() {
        let a = Attractiveness::default();
        let origin = Point::new(0.0, 0.0);
        let pois = vec![Point::new(400.0, 0.0), Point::new(4000.0, 0.0)];
        let s = a.scores(&origin, &pois);
        assert!(s[0] > s[1] * 3.0);
    }

    #[test]
    fn cutoff_zeroes_distant_pois() {
        let a = Attractiveness { decay_m: 1000.0, cutoff_rel: 0.05 };
        let origin = Point::new(0.0, 0.0);
        let pois = vec![Point::new(100.0, 0.0), Point::new(20_000.0, 0.0)];
        let s = a.scores(&origin, &pois);
        assert_eq!(s[1], 0.0, "20km POI is far past the cutoff");
        assert!((s[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_poi_gets_full_weight() {
        let a = Attractiveness::default();
        let s = a.scores(&Point::new(0.0, 0.0), &[Point::new(9000.0, 9000.0)]);
        assert_eq!(s, vec![1.0]);
    }

    #[test]
    fn equidistant_pois_share_equally() {
        let a = Attractiveness::default();
        let origin = Point::new(0.0, 0.0);
        let pois = vec![Point::new(1000.0, 0.0), Point::new(0.0, 1000.0)];
        let s = a.scores(&origin, &pois);
        assert!((s[0] - s[1]).abs() < 1e-12);
        assert!((s[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty POI set")]
    fn empty_pois_rejected() {
        Attractiveness::default().scores(&Point::new(0.0, 0.0), &[]);
    }
}

//! Per-backend connection pool: reuse, bounded in-flight, generations.
//!
//! One [`BackendPool`] fronts one shard. It hands out [`Lease`]s —
//! checked-out client connections — reusing idle ones and dialing new
//! ones (with retry + linear backoff) when the idle list is dry. The
//! in-flight count is capped: past the cap, checkout blocks briefly and
//! then fails, turning a wedged backend into backpressure instead of an
//! unbounded thread pile-up.
//!
//! Respawn safety is generation-based. Every `bring_up` bumps the pool's
//! generation and every lease carries the generation it was minted under;
//! idle returns and down-markings from stale generations are ignored.
//! Without this, a slow request that started before a crash could — on
//! failing — mark the *respawned* backend down, or park a connection to
//! the dead process in the idle list of the new one.
//!
//! The pool never unpoisons: a [`Client`] that failed mid-frame
//! ([`Client::is_poisoned`]) is dropped on return, never reused (the
//! poison-and-report contract added to `staq-serve` for exactly this
//! caller).

use parking_lot::{Condvar, Mutex};
use staq_serve::Client;
use std::net::SocketAddr;
use std::time::Duration;

/// Pool tunables.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Idle connections kept per backend.
    pub max_idle: usize,
    /// Checked-out connections per backend; past this, checkout waits.
    pub max_inflight: usize,
    /// Connect attempts before declaring the backend unreachable.
    pub connect_retries: u32,
    /// Backoff between connect attempts (linear: 1×, 2×, ...).
    pub connect_backoff: Duration,
    /// How long checkout waits for an in-flight permit before failing.
    pub acquire_timeout: Duration,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            max_idle: 8,
            max_inflight: 64,
            connect_retries: 3,
            connect_backoff: Duration::from_millis(20),
            acquire_timeout: Duration::from_secs(2),
        }
    }
}

/// Why a checkout failed. Both map to `ErrorCode::Unavailable` frames at
/// the router; the distinction feeds the error message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// The backend is marked down (crashed, or connects are failing).
    Down,
    /// The in-flight cap held for the whole acquire timeout.
    Overloaded,
}

/// A checked-out connection. Return it with [`BackendPool::give_back`] —
/// dropping it without returning would leak an in-flight permit.
pub struct Lease {
    pub client: Client,
    /// Pool generation this lease was minted under.
    pub gen: u64,
}

impl std::fmt::Debug for Lease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lease")
            .field("gen", &self.gen)
            .field("poisoned", &self.client.is_poisoned())
            .finish()
    }
}

struct PoolState {
    /// `None` while the backend is down.
    addr: Option<SocketAddr>,
    /// Bumped on every `bring_up`; stale-generation events are ignored.
    gen: u64,
    /// Idle connections with the generation they were dialed under.
    idle: Vec<(u64, Client)>,
    inflight: usize,
}

/// The pool for one backend.
pub struct BackendPool {
    cfg: PoolConfig,
    state: Mutex<PoolState>,
    permit_freed: Condvar,
}

impl BackendPool {
    /// A pool starting in the *down* state; the supervisor calls
    /// [`bring_up`](Self::bring_up) after the readiness probe passes.
    pub fn new(cfg: PoolConfig) -> Self {
        BackendPool {
            cfg,
            state: Mutex::new(PoolState { addr: None, gen: 0, idle: Vec::new(), inflight: 0 }),
            permit_freed: Condvar::new(),
        }
    }

    /// Whether the backend is currently accepting traffic.
    pub fn is_up(&self) -> bool {
        self.state.lock().addr.is_some()
    }

    /// Current generation (for stale-event filtering by callers).
    pub fn generation(&self) -> u64 {
        self.state.lock().gen
    }

    /// Admits traffic to `addr` under a fresh generation, discarding any
    /// idle connections to the previous incarnation.
    pub fn bring_up(&self, addr: SocketAddr) {
        let mut s = self.state.lock();
        s.addr = Some(addr);
        s.gen += 1;
        s.idle.clear();
        drop(s);
        self.permit_freed.notify_all();
    }

    /// Marks the backend down if `gen` is still current; returns whether
    /// this call performed the up→down transition (the caller counts
    /// failovers on `true`). A stale generation is a no-op: the failure
    /// belongs to an incarnation that has already been replaced.
    pub fn mark_down_if(&self, gen: u64) -> bool {
        let mut s = self.state.lock();
        if s.gen != gen || s.addr.is_none() {
            return false;
        }
        s.addr = None;
        s.idle.clear();
        drop(s);
        // Waiters should fail fast with Down rather than ride out the
        // acquire timeout.
        self.permit_freed.notify_all();
        true
    }

    /// Marks the backend down unconditionally (supervisor-observed death,
    /// explicit kill); same transition reporting as [`mark_down_if`](Self::mark_down_if).
    pub fn mark_down(&self) -> bool {
        let gen = self.state.lock().gen;
        self.mark_down_if(gen)
    }

    /// Checks out a connection: an idle one when available, otherwise a
    /// fresh dial with `connect_retries` × `connect_backoff`. Fails fast
    /// with [`PoolError::Down`] while the backend is down — no dialing,
    /// no waiting.
    pub fn checkout(&self) -> Result<Lease, PoolError> {
        let (addr, gen) = {
            let mut s = self.state.lock();
            loop {
                let Some(addr) = s.addr else { return Err(PoolError::Down) };
                if s.inflight < self.cfg.max_inflight {
                    s.inflight += 1;
                    // Reuse the freshest idle connection of this
                    // generation; drop stale or poisoned ones.
                    while let Some((g, client)) = s.idle.pop() {
                        if g == s.gen && !client.is_poisoned() {
                            return Ok(Lease { client, gen: g });
                        }
                    }
                    break (addr, s.gen);
                }
                if self.permit_freed.wait_for(&mut s, self.cfg.acquire_timeout).timed_out() {
                    return Err(PoolError::Overloaded);
                }
            }
        };

        // Dial outside the lock; connects can take milliseconds.
        let mut attempt = 0;
        loop {
            match Client::connect(addr) {
                Ok(client) => return Ok(Lease { client, gen }),
                Err(_) if attempt + 1 < self.cfg.connect_retries => {
                    attempt += 1;
                    crate::metrics::RETRIES.inc();
                    std::thread::sleep(self.cfg.connect_backoff * attempt);
                }
                Err(_) => {
                    self.release_permit();
                    if self.mark_down_if(gen) {
                        crate::metrics::FAILOVERS.inc();
                    }
                    return Err(PoolError::Down);
                }
            }
        }
    }

    /// Returns a lease. The connection is parked for reuse only when it
    /// is healthy, current-generation, and the idle list has room; it is
    /// dropped otherwise. Always frees the in-flight permit.
    pub fn give_back(&self, lease: Lease) {
        let mut s = self.state.lock();
        s.inflight = s.inflight.saturating_sub(1);
        if !lease.client.is_poisoned() && lease.gen == s.gen && s.idle.len() < self.cfg.max_idle {
            s.idle.push((lease.gen, lease.client));
        }
        drop(s);
        self.permit_freed.notify_one();
    }

    /// Frees a permit for a lease that never materialized (dial failure).
    fn release_permit(&self) {
        let mut s = self.state.lock();
        s.inflight = s.inflight.saturating_sub(1);
        drop(s);
        self.permit_freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pool_at(listener: &TcpListener, cfg: PoolConfig) -> BackendPool {
        let pool = BackendPool::new(cfg);
        pool.bring_up(listener.local_addr().unwrap());
        pool
    }

    #[test]
    fn down_pool_fails_fast_without_dialing() {
        let pool = BackendPool::new(PoolConfig::default());
        assert!(!pool.is_up());
        assert_eq!(pool.checkout().unwrap_err(), PoolError::Down);
    }

    #[test]
    fn connections_are_reused_within_a_generation() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let pool = pool_at(&listener, PoolConfig::default());
        let a = pool.checkout().unwrap();
        let gen = a.gen;
        pool.give_back(a);
        // Only one accept happened: the second checkout reused the idle
        // connection instead of dialing again.
        let b = pool.checkout().unwrap();
        assert_eq!(b.gen, gen);
        listener.set_nonblocking(true).unwrap();
        let _first = listener.accept().expect("exactly one dial");
        assert!(listener.accept().is_err(), "second checkout must not dial");
        pool.give_back(b);
    }

    #[test]
    fn respawn_generation_discards_stale_idle_connections() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let pool = pool_at(&listener, PoolConfig::default());
        let old = pool.checkout().unwrap();
        let old_gen = old.gen;
        pool.give_back(old);

        // Backend "crashes" and comes back (same addr, new incarnation).
        assert!(pool.mark_down());
        assert!(!pool.mark_down(), "transition reported once");
        assert_eq!(pool.checkout().unwrap_err(), PoolError::Down);
        pool.bring_up(listener.local_addr().unwrap());

        let fresh = pool.checkout().unwrap();
        assert_eq!(fresh.gen, old_gen + 1, "bring_up bumps the generation");
        // A stale-generation down-marking must not take the new pool down.
        assert!(!pool.mark_down_if(old_gen));
        assert!(pool.is_up());
        pool.give_back(fresh);
    }

    #[test]
    fn inflight_cap_turns_into_overloaded() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let cfg = PoolConfig {
            max_inflight: 1,
            acquire_timeout: Duration::from_millis(50),
            ..Default::default()
        };
        let pool = pool_at(&listener, cfg);
        let held = pool.checkout().unwrap();
        assert_eq!(pool.checkout().unwrap_err(), PoolError::Overloaded);
        pool.give_back(held);
        let again = pool.checkout().unwrap();
        pool.give_back(again);
    }

    #[test]
    fn unreachable_backend_marks_itself_down() {
        // Bind a port, then drop the listener so connects are refused.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let cfg = PoolConfig {
            connect_retries: 2,
            connect_backoff: Duration::from_millis(1),
            ..Default::default()
        };
        let pool = BackendPool::new(cfg);
        pool.bring_up(addr);
        assert_eq!(pool.checkout().unwrap_err(), PoolError::Down);
        assert!(!pool.is_up(), "failed dialing must mark the backend down");
    }
}

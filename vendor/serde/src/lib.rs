//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never drives an actual serializer (persistence is a hand-rolled text
//! format, the wire protocol a hand-rolled binary codec). With no registry
//! access in the build environment, this crate supplies just enough for
//! those derives to compile: the two trait names, blanket-implemented, and
//! no-op derive macros. Swapping the real serde back in later is a
//! one-line Cargo.toml change — call sites are already spelled identically.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`. Blanket-implemented: every
/// type is trivially "serializable" until a real backend exists.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

#[cfg(test)]
mod tests {
    #[derive(super::Serialize, super::Deserialize, Debug, PartialEq)]
    struct Demo {
        a: u32,
        b: String,
    }

    fn takes_serialize<T: super::Serialize>(_: &T) {}

    #[test]
    fn derives_compile_and_traits_blanket() {
        let d = Demo { a: 1, b: "x".into() };
        takes_serialize(&d);
        assert_eq!(d, Demo { a: 1, b: "x".into() });
    }
}

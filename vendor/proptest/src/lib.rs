//! Offline stand-in for `proptest`.
//!
//! Runs each property over `cases` deterministic pseudo-random inputs —
//! the call-site syntax (`proptest! { #[test] fn p(x in strat) {..} }`,
//! range/tuple strategies, `prop_map`, `collection::vec`, `string_regex`)
//! matches upstream so the real crate can be swapped back in. Differences,
//! by design: no shrinking (a failing case panics with its inputs via the
//! normal assert message), no persistence files, and `prop_assert*` panics
//! instead of returning `Err`.

pub mod collection;
pub mod string;

pub mod strategy {
    use rand::{RngCore, RngExt, SampleRange};

    /// Deterministic per-case generator.
    pub struct TestRng(pub(crate) rand::StdRng);

    impl TestRng {
        /// Case `i` of a named test gets an independent, reproducible
        /// stream: runs are stable across processes and machines.
        pub fn for_case(name: &str, case: u32) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(rand::SeedableRng::seed_from_u64(h ^ ((case as u64) << 32 | 0xA5)))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Value generator. Upstream's trait, minus shrinking.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `pred` (bounded retries).
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, pred, whence }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        pred: F,
        whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter {:?} rejected 1000 candidates", self.whence);
        }
    }

    /// Constant strategy.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t>
            where
                std::ops::RangeInclusive<$t>: SampleRange<$t>,
            {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.random_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.random_range(self.clone())
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod test_runner {
    /// Runner configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Like `assert!`, inside a property (panics; upstream returns `Err`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Like `assert_eq!`, inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Like `assert_ne!`, inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Binds `name in strategy` argument lists inside [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $arg:pat in $strat:expr) => {
        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $arg:pat in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}

/// Expands property functions into case-looping `#[test]`s.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($cfg:expr;) => {};
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng =
                    $crate::strategy::TestRng::for_case(stringify!($name), __case);
                $crate::__proptest_bind!(__rng, $($args)*);
                // Upstream bodies may `return Ok(())` early (TestCaseResult);
                // asserts panic in this stand-in, so Err never materializes.
                #[allow(clippy::redundant_closure_call)]
                let __result: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body Ok(()) })();
                if let Err(__e) = __result {
                    panic!("property {} rejected case {}: {}",
                        stringify!($name), __case, __e);
                }
            }
        }
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
}

/// Upstream-compatible entry macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..10, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_map(
            v in crate::collection::vec((0u32..5, 0.0f64..1.0), 1..8).prop_map(|v| v.len()),
        ) {
            prop_assert!((1..8).contains(&v));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn string_regex_generates_matching() {
        use crate::strategy::{Strategy, TestRng};
        let s = crate::string::string_regex("[ab c]{2,5}").unwrap();
        let mut rng = TestRng::for_case("strtest", 0);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((2..=5).contains(&v.chars().count()), "{v:?}");
            assert!(v.chars().all(|c| "ab c".contains(c)), "{v:?}");
        }
    }

    #[test]
    fn exact_size_vec() {
        use crate::strategy::{Strategy, TestRng};
        let s = crate::collection::vec(0u32..3, 4);
        let mut rng = TestRng::for_case("vec4", 0);
        assert_eq!(s.generate(&mut rng).len(), 4);
    }
}

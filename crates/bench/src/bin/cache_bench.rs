//! Fleet-cache bench: prices the shared access cache and the approximate
//! query path against their exact/private baselines.
//!
//! ```text
//! cache-bench [--seed N] [--scale F] [--queries N] [--quick]
//!             [--emit-json path] [--baseline path]
//! ```
//!
//! Three measurements, one report (`BENCH_cache.json`):
//!
//! 1. **Warm-up work.** A fleet of 1/4/8 labeling workers runs repeated
//!    passes over the same city, once with per-router private access
//!    caches and once with one [`SharedAccessCache`]. Reported per fleet
//!    size: access-cache misses per pass, the steady-state hit rate, and
//!    the total misses paid before a pass clears the target hit rate
//!    (private caches are rebuilt per pass, so they pay their warm-up on
//!    *every* pass; the shared cache pays once).
//! 2. **Approximate queries.** A Zipf-distributed `PointAccess` workload
//!    against a larger city: hit rate, |interpolated − exact| residual
//!    percentiles against the configured error bound, and the amortized
//!    latency of the interpolation path vs the exact warm-cache path.
//! 3. **Equivalence.** Shared-cache and private-cache engines answer
//!    Measures bit-identically (the cache is a pure perf substrate).
//!
//! `--baseline` compares fresh ratios against a committed report and
//! *warns* on regression — it never fails the run (CI stays green; the
//! numbers are for humans and trend tooling).

use staq_access::AccessQuery;
use staq_core::{AccessEngine, EngineOptions, PipelineConfig};
use staq_gtfs::time::TimeInterval;
use staq_obs::snapshot;
use staq_synth::{City, CityConfig, PoiCategory, ZoneId};
use staq_todam::{LabelEngine, TodamSpec};
use staq_transit::{AccessCost, SharedAccessCache};
use std::sync::Arc;
use std::time::Instant;

/// A pass counts as warmed up once its access-cache hit rate clears this.
const TARGET_HIT_RATE: f64 = 0.995;
/// Fleet passes per configuration in the warm-up measurement.
const PASSES: usize = 4;

struct Args {
    seed: u64,
    scale: f64,
    queries: usize,
    quick: bool,
    emit_json: Option<String>,
    baseline: Option<String>,
}

fn parse_args() -> Args {
    let mut args =
        Args { seed: 42, scale: 0.4, queries: 4000, quick: false, emit_json: None, baseline: None };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => args.seed = parse(&mut it, "--seed"),
            "--scale" => args.scale = parse(&mut it, "--scale"),
            "--queries" => args.queries = parse(&mut it, "--queries"),
            "--quick" => args.quick = true,
            "--emit-json" => args.emit_json = Some(need(&mut it, "--emit-json")),
            "--baseline" => args.baseline = Some(need(&mut it, "--baseline")),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if args.quick {
        args.scale = args.scale.min(0.15);
        args.queries = args.queries.min(800);
    }
    args
}

fn need(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")))
}

fn parse<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
    need(it, flag).parse().unwrap_or_else(|_| usage(&format!("{flag} needs a valid value")))
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: cache-bench [--seed N] [--scale F] [--queries N] [--quick] \
         [--emit-json path] [--baseline path]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

fn counter(name: &str) -> u64 {
    snapshot().counter(name).unwrap_or(0)
}

/// Deterministic splitmix64 stream — the bench must not depend on rand.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One fleet configuration's warm-up accounting.
struct Warmup {
    /// Access-cache misses on the first (cold) pass.
    cold_misses: u64,
    /// Hit rate of the final pass — the fleet's steady state.
    steady_hit_rate: f64,
    /// Misses accumulated until a pass cleared [`TARGET_HIT_RATE`]
    /// (all passes when it never did).
    misses_to_target: u64,
    reached_target: bool,
}

fn run_fleet(engine: &LabelEngine, m: &staq_todam::Todam, zones: &[ZoneId]) -> Warmup {
    let mut cold_misses = 0;
    let mut steady_hit_rate = 0.0;
    let mut misses_to_target = 0;
    let mut reached_target = false;
    for pass in 0..PASSES {
        let (h0, m0) = (counter("transit.access_cache.hit"), counter("transit.access_cache.miss"));
        engine.label_zones(m, zones);
        let hits = counter("transit.access_cache.hit") - h0;
        let misses = counter("transit.access_cache.miss") - m0;
        let rate = hits as f64 / ((hits + misses) as f64).max(1.0);
        if pass == 0 {
            cold_misses = misses;
        }
        if !reached_target {
            misses_to_target += misses;
            reached_target = rate >= TARGET_HIT_RATE;
        }
        steady_hit_rate = rate;
    }
    Warmup { cold_misses, steady_hit_rate, misses_to_target, reached_target }
}

/// Median of per-batch amortized costs: per-call `Instant` pairs cost more
/// than the approximate path itself, so latency is timed in batches.
fn batch_ns<F: FnMut()>(mut f: F, batches: usize, per: usize) -> f64 {
    let mut ns = Vec::with_capacity(batches);
    for _ in 0..batches {
        let t = Instant::now();
        for _ in 0..per {
            f();
        }
        ns.push(t.elapsed().as_nanos() as f64 / per as f64);
    }
    ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    ns[batches / 2]
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let i = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[i]
}

fn main() {
    let args = parse_args();

    // ---- Part 1: fleet warm-up, private vs shared caches -------------
    let city = City::generate(&CityConfig::small(args.seed));
    let m = TodamSpec { per_hour: 3, ..Default::default() }.build(&city, PoiCategory::School);
    let zones: Vec<ZoneId> = (0..city.n_zones() as u32).map(ZoneId).collect();
    println!(
        "warm-up city: {} zones, {} trips; target hit rate {TARGET_HIT_RATE}, {PASSES} passes",
        city.n_zones(),
        m.n_trips()
    );

    let fleet_sizes = [1usize, 4, 8];
    let mut rows = Vec::new();
    for &w in &fleet_sizes {
        let mut private = LabelEngine::new(&city, AccessCost::jt(), TimeInterval::am_peak());
        private.n_workers = w;
        let private_report = run_fleet(&private, &m, &zones);

        let cache = Arc::new(SharedAccessCache::new());
        let mut shared = LabelEngine::new(&city, AccessCost::jt(), TimeInterval::am_peak())
            .with_shared_cache(Arc::clone(&cache));
        shared.n_workers = w;
        let shared_report = run_fleet(&shared, &m, &zones);

        let ratio = private_report.misses_to_target as f64
            / (shared_report.misses_to_target as f64).max(1.0);
        println!(
            "fleet of {w}: private {} misses/pass (rate {:.3}, {} to target), \
             shared {} cold misses (rate {:.3}, {} to target) -> {ratio:.1}x less warm-up work",
            private_report.cold_misses,
            private_report.steady_hit_rate,
            private_report.misses_to_target,
            shared_report.cold_misses,
            shared_report.steady_hit_rate,
            shared_report.misses_to_target,
        );
        rows.push((w, private_report, shared_report, ratio));
    }

    // ---- Part 2: shared vs private engines answer bit-identically ----
    let cfg = PipelineConfig {
        beta: 0.25,
        todam: TodamSpec { per_hour: 3, ..Default::default() },
        ..Default::default()
    };
    let shared_engine = AccessEngine::new(city.clone(), cfg.clone());
    let private_engine = AccessEngine::with_options(
        city,
        cfg,
        EngineOptions { private_access_caches: true, ..Default::default() },
    );
    let a = shared_engine.measures(PoiCategory::School);
    let b = private_engine.measures(PoiCategory::School);
    let bit_identical = a.predicted.len() == b.predicted.len()
        && a.predicted.iter().zip(b.predicted.iter()).all(|(x, y)| {
            x.zone == y.zone
                && x.mac.to_bits() == y.mac.to_bits()
                && x.acsd.to_bits() == y.acsd.to_bits()
        });
    println!("shared vs private measures bit-identical: {bit_identical}");

    // ---- Part 3: approximate PointAccess queries under Zipf ----------
    let big = City::generate(&CityConfig::birmingham(args.seed).scaled(args.scale));
    let side = big.config.side_m;
    let n_zones = big.n_zones();
    let approx_cfg = PipelineConfig {
        beta: 0.10,
        todam: TodamSpec { per_hour: 1, ..Default::default() },
        ..Default::default()
    };
    let engine = AccessEngine::new(big, approx_cfg);
    let cat = PoiCategory::School;
    let error_bound = engine.approx_config().error_bound;
    let t = Instant::now();
    let _ = engine.measures(cat);
    println!("approx city: {n_zones} zones, pipeline warm-up {:.1}s", t.elapsed().as_secs_f64());

    // Zipf(1.0) over a pool of query points: rank r drawn with
    // probability proportional to 1/(r+1).
    let pool = 200usize;
    let mut rng = Rng(args.seed ^ 0xCAC4E);
    let points: Vec<(f64, f64)> = (0..pool)
        .map(|_| (side * (0.05 + 0.9 * rng.f64()), side * (0.05 + 0.9 * rng.f64())))
        .collect();
    let mut cum: Vec<f64> = Vec::with_capacity(pool);
    let mut acc = 0.0;
    for r in 0..pool {
        acc += 1.0 / (r + 1) as f64;
        cum.push(acc);
    }
    let total = acc;
    let draw = |rng: &mut Rng| {
        let u = rng.f64() * total;
        let i = cum.partition_point(|&c| c < u);
        points[i.min(pool - 1)]
    };

    // Accuracy sweep: answer each query approximately, score it against
    // the exact answer, classify hit/fallback by counter delta.
    let mut hits = 0u64;
    let mut within = 0u64;
    let mut residuals: Vec<f64> = Vec::new();
    for _ in 0..args.queries {
        let (x, y) = draw(&mut rng);
        let q = AccessQuery::PointAccess { x, y };
        let h0 = counter("engine.approx.hit");
        let approx = engine.query_approx(&q, cat);
        let hit = counter("engine.approx.hit") > h0;
        let exact = engine.query(&q, cat);
        if let (
            staq_access::QueryAnswer::PointAccess { mac: am, .. },
            staq_access::QueryAnswer::PointAccess { mac: em, .. },
        ) = (&approx, &exact)
        {
            let residual = (am - em).abs();
            if hit {
                hits += 1;
                residuals.push(residual);
            }
            if residual <= error_bound {
                within += 1;
            }
        }
    }
    residuals.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let hit_rate = hits as f64 / args.queries as f64;
    let within_rate = within as f64 / args.queries as f64;
    println!(
        "zipf workload: {} queries over {pool} points -> {:.1}% interpolated, \
         {:.1}% within the {error_bound}s bound",
        args.queries,
        100.0 * hit_rate,
        100.0 * within_rate
    );
    println!(
        "residuals (s): p50 {:.2} p90 {:.2} p99 {:.2} max {:.2}",
        percentile(&residuals, 0.5),
        percentile(&residuals, 0.9),
        percentile(&residuals, 0.99),
        percentile(&residuals, 1.0)
    );

    // Latency: amortized cost of the interpolation path vs the exact
    // warm-cache path, on the workload's hottest point.
    let (hx, hy) = points[0];
    let hot = AccessQuery::PointAccess { x: hx, y: hy };
    let exact_ns = batch_ns(
        || {
            let _ = engine.query(&hot, cat);
        },
        60,
        200,
    );
    let approx_ns = batch_ns(
        || {
            let _ = engine.query_approx(&hot, cat);
        },
        60,
        200,
    );
    let latency_ratio = exact_ns / approx_ns;
    println!(
        "latency: exact warm path {exact_ns:.0} ns, approx hit path {approx_ns:.0} ns \
         ({latency_ratio:.1}x)"
    );

    if let Some(path) = &args.baseline {
        compare_baseline(path, args.scale, rows.last().map_or(0.0, |r| r.3), latency_ratio);
    }

    if let Some(path) = &args.emit_json {
        let fleet_json: Vec<String> = rows
            .iter()
            .map(|(w, p, s, ratio)| {
                format!(
                    "{{\"workers\":{w},\
                     \"private\":{{\"cold_misses\":{},\"steady_hit_rate\":{:.4},\
                     \"misses_to_target\":{},\"reached_target\":{}}},\
                     \"shared\":{{\"cold_misses\":{},\"steady_hit_rate\":{:.4},\
                     \"misses_to_target\":{},\"reached_target\":{}}},\
                     \"warmup_ratio\":{ratio:.2}}}",
                    p.cold_misses,
                    p.steady_hit_rate,
                    p.misses_to_target,
                    p.reached_target,
                    s.cold_misses,
                    s.steady_hit_rate,
                    s.misses_to_target,
                    s.reached_target,
                )
            })
            .collect();
        let json = format!(
            "{{\"bench\":\"cache-bench\",\"seed\":{},\"scale\":{},\"quick\":{},\
             \"warmup\":{{\"target_hit_rate\":{TARGET_HIT_RATE},\"passes\":{PASSES},\
             \"fleets\":[{}]}},\
             \"equivalence\":{{\"shared_vs_private_bit_identical\":{bit_identical}}},\
             \"approx\":{{\"zones\":{n_zones},\"pool\":{pool},\"queries\":{},\
             \"error_bound_s\":{error_bound},\
             \"hit_rate\":{hit_rate:.4},\"within_bound_rate\":{within_rate:.4},\
             \"residual_s\":{{\"p50\":{:.3},\"p90\":{:.3},\"p99\":{:.3},\"max\":{:.3}}},\
             \"exact_ns\":{exact_ns:.0},\"approx_ns\":{approx_ns:.0},\
             \"latency_ratio\":{latency_ratio:.2}}},\
             \"metrics\":{}}}",
            args.seed,
            args.scale,
            args.quick,
            fleet_json.join(","),
            args.queries,
            percentile(&residuals, 0.5),
            percentile(&residuals, 0.9),
            percentile(&residuals, 0.99),
            percentile(&residuals, 1.0),
            snapshot().to_json(),
        );
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }
}

/// Warn-only regression gate on the two headline ratios. Timing and
/// counter layouts shift with city scale, so this prints and never exits
/// non-zero — the committed JSON is the trend record.
fn compare_baseline(path: &str, scale: f64, warmup_ratio: f64, latency_ratio: f64) {
    let Ok(text) = std::fs::read_to_string(path) else {
        println!("baseline: cannot read {path}, skipping comparison");
        return;
    };
    // The exact path's cost grows with the city, so the latency ratio is
    // only comparable at the baseline's own scale (quick CI runs use a
    // smaller city than the committed full-mode baseline).
    let same_scale = last_json_f64(&text, "scale").is_some_and(|s| (s - scale).abs() < 1e-9);
    if !same_scale {
        println!("baseline: scale differs from {path}, comparing warm-up only");
    }
    for (key, fresh) in [("warmup_ratio", warmup_ratio), ("latency_ratio", latency_ratio)] {
        if key == "latency_ratio" && !same_scale {
            continue;
        }
        match last_json_f64(&text, key) {
            Some(old) if fresh < old * 0.75 => {
                println!("WARNING: {key} regressed: {old:.2} -> {fresh:.2} (baseline {path})")
            }
            Some(old) => {
                println!("baseline {key}: {old:.2} -> {fresh:.2} (within 25% tolerance)")
            }
            None => println!("baseline: no {key} in {path}"),
        }
    }
}

/// Extracts the *last* `"key":<number>` occurrence from a flat hand-rolled
/// report (the 8-worker fleet row and the approx section come last). Good
/// enough for our own JSON; not a parser.
fn last_json_f64(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.rfind(&needle)?;
    let val = &text[at + needle.len()..];
    let end = val.find([',', '}'])?;
    val[..end].trim().parse().ok()
}

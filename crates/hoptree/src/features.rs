//! The OD connectivity feature vector (paper §IV-B2).
//!
//! Each `(z_i, p_j)` pair is described by a fixed-width vector computed
//! purely from precomputed artifacts — no shortest-path queries:
//!
//! | # | feature |
//! |---|---------|
//! | 0 | Euclidean o→d distance (m) |
//! | 1 | walkable within τ·ω (binary) |
//! | 2 | d's zone reachable in 1 outbound hop (binary) |
//! | 3 | d's zone reachable within 2 hops (binary) |
//! | 4 | distance from the OB leaf closest to d, to d (m) |
//! | 5 | that leaf's average in-vehicle JT (s) |
//! | 6 | that leaf's hop frequency |
//! | 7 | distance from the IB leaf closest to o, to o (m) |
//! | 8 | that leaf's average in-vehicle JT (s) |
//! | 9 | that leaf's hop frequency |
//! | 10 | number of interchanges |
//! | 11 | distance from the interchange closest to o (m) |
//! | 12 | distance from the interchange closest to d (m) |
//! | 13 | closest approach to d via high-frequency OB leaves (m) |
//! | 14 | number of high-frequency interchanges |
//! | 15 | fraction of zones reachable in 1 hop |
//! | 16 | fraction of zones reachable within 2 hops |
//! | 17 | OB leaf count |
//! | 18 | IB leaf count |
//!
//! Distances that have no witness (empty trees) take the sentinel
//! `max_dist` (the city diagonal): "unreachably far" stays ordinal for the
//! models rather than NaN.

use crate::interchange::find_interchanges;
use crate::store::HopTreeStore;
use staq_geom::Point;
use staq_synth::{City, ZoneId};

/// Feature vector width.
pub const FEATURE_DIM: usize = 19;

/// Human-readable feature names, index-aligned.
pub const FEATURE_NAMES: [&str; FEATURE_DIM] = [
    "euclid_od_m",
    "walkable",
    "reach_1hop",
    "reach_2hop",
    "ob_closest_to_d_m",
    "ob_closest_jt_s",
    "ob_closest_freq",
    "ib_closest_to_o_m",
    "ib_closest_jt_s",
    "ib_closest_freq",
    "n_interchanges",
    "interchange_to_o_m",
    "interchange_to_d_m",
    "hf_closest_to_d_m",
    "n_hf_interchanges",
    "frac_reach_1hop",
    "frac_reach_2hop",
    "ob_n_leaves",
    "ib_n_leaves",
];

/// Computes OD feature vectors against one store.
pub struct FeatureExtractor<'a> {
    store: &'a HopTreeStore,
    centroids: Vec<Point>,
    /// Sentinel distance for "no witness" (city diagonal).
    max_dist: f64,
    /// Walkable threshold in meters (τ·ω).
    walk_m: f64,
    /// Frequency quantile defining "high-frequency" leaves.
    pub hf_quantile: f64,
    /// Maximum hop depth for reachability features (paper: h is 1 or 2).
    pub max_hops: usize,
    /// Compute interchange features (10–12, 14). Disabling them is the
    /// feature-set ablation from DESIGN.md: those indices take their
    /// missing-witness sentinels instead.
    pub use_interchanges: bool,
}

impl<'a> FeatureExtractor<'a> {
    /// Prepares an extractor for `city`'s store.
    pub fn new(city: &City, store: &'a HopTreeStore) -> Self {
        let centroids: Vec<Point> = city.zones.iter().map(|z| z.centroid).collect();
        let max_dist = city.config.side_m * std::f64::consts::SQRT_2;
        FeatureExtractor {
            store,
            centroids,
            max_dist,
            walk_m: store.params.max_radius_m(),
            hf_quantile: 0.8,
            max_hops: 2,
            use_interchanges: true,
        }
    }

    /// Features for origin zone `zi` to a destination point `d` associated
    /// with zone `zj`.
    pub fn features(&self, zi: ZoneId, d: &Point, zj: ZoneId) -> [f64; FEATURE_DIM] {
        let o = self.centroids[zi.idx()];
        let ob = self.store.outbound(zi);
        let ib = self.store.inbound(zj);
        let n_zones = self.store.n_zones() as f64;
        let mut f = [0.0; FEATURE_DIM];

        f[0] = o.dist(d);
        f[1] = if f[0] <= self.walk_m { 1.0 } else { 0.0 };
        f[2] = if ob.reaches(zj) { 1.0 } else { 0.0 };
        let reach2 = self.store.reachable_within(zi, self.max_hops);
        f[3] = if reach2.contains(&zj) { 1.0 } else { 0.0 };

        // Closest OB leaf to the destination point.
        let mut best: Option<(f64, f64, u32)> = None; // (dist, jt_avg, count)
        for leaf in ob.leaves() {
            let dist = self.centroids[leaf.zone.idx()].dist(d);
            if best.is_none_or(|(bd, _, _)| dist < bd) {
                best = Some((dist, leaf.jt_avg(), leaf.count));
            }
        }
        let (d4, d5, d6) = best.map_or((self.max_dist, 0.0, 0), |b| b);
        f[4] = d4;
        f[5] = d5;
        f[6] = d6 as f64;

        // Closest IB leaf to the origin point.
        let mut best: Option<(f64, f64, u32)> = None;
        for leaf in ib.leaves() {
            let dist = self.centroids[leaf.zone.idx()].dist(&o);
            if best.is_none_or(|(bd, _, _)| dist < bd) {
                best = Some((dist, leaf.jt_avg(), leaf.count));
            }
        }
        let (d7, d8, d9) = best.map_or((self.max_dist, 0.0, 0), |b| b);
        f[7] = d7;
        f[8] = d8;
        f[9] = d9 as f64;

        // Interchanges.
        let ints = if self.use_interchanges {
            find_interchanges(self.store, ob, ib, &self.centroids)
        } else {
            Vec::new()
        };
        f[10] = ints.len() as f64;
        f[11] = ints
            .iter()
            .map(|i| self.centroids[i.ob_zone.idx()].dist(&o))
            .fold(self.max_dist, f64::min);
        f[12] = ints
            .iter()
            .map(|i| self.centroids[i.ib_zone.idx()].dist(d))
            .fold(self.max_dist, f64::min);

        // High-frequency analysis.
        let hf = ob.high_frequency_leaves(self.hf_quantile);
        f[13] =
            hf.iter().map(|l| self.centroids[l.zone.idx()].dist(d)).fold(self.max_dist, f64::min);
        let hf_threshold = hf.iter().map(|l| l.count).min().unwrap_or(u32::MAX);
        f[14] = ints.iter().filter(|i| i.frequency >= hf_threshold).count() as f64;

        f[15] = ob.n_leaves() as f64 / n_zones;
        f[16] = (reach2.len() as f64 - 1.0).max(0.0) / n_zones;
        f[17] = ob.n_leaves() as f64;
        f[18] = ib.n_leaves() as f64;
        f
    }

    /// Sentinel distance used for missing witnesses.
    pub fn max_dist(&self) -> f64 {
        self.max_dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staq_gtfs::time::TimeInterval;
    use staq_road::IsochroneParams;
    use staq_synth::{CityConfig, PoiCategory};

    fn setup() -> (City, HopTreeStore) {
        let city = City::generate(&CityConfig::small(42));
        let store =
            HopTreeStore::build(&city, &TimeInterval::am_peak(), &IsochroneParams::default());
        (city, store)
    }

    #[test]
    fn feature_vector_is_finite_and_dimensioned() {
        let (city, store) = setup();
        let fx = FeatureExtractor::new(&city, &store);
        let poi = city.pois_of(PoiCategory::School)[0];
        for z in (0..city.n_zones()).step_by(11) {
            let f = fx.features(ZoneId(z as u32), &poi.pos, poi.zone);
            assert_eq!(f.len(), FEATURE_DIM);
            assert!(f.iter().all(|v| v.is_finite()), "{f:?}");
        }
    }

    #[test]
    fn names_align_with_dim() {
        assert_eq!(FEATURE_NAMES.len(), FEATURE_DIM);
        let unique: std::collections::HashSet<_> = FEATURE_NAMES.iter().collect();
        assert_eq!(unique.len(), FEATURE_DIM);
    }

    #[test]
    fn walkable_flag_matches_distance() {
        let (city, store) = setup();
        let fx = FeatureExtractor::new(&city, &store);
        let poi = city.pois_of(PoiCategory::School)[0];
        for z in 0..city.n_zones() {
            let f = fx.features(ZoneId(z as u32), &poi.pos, poi.zone);
            assert_eq!(f[1] == 1.0, f[0] <= store.params.max_radius_m());
        }
    }

    #[test]
    fn reach2_implies_at_least_reach1_superset() {
        let (city, store) = setup();
        let fx = FeatureExtractor::new(&city, &store);
        let poi = city.pois_of(PoiCategory::Hospital)[0];
        for z in 0..city.n_zones() {
            let f = fx.features(ZoneId(z as u32), &poi.pos, poi.zone);
            if f[2] == 1.0 {
                assert_eq!(f[3], 1.0, "1-hop reachable must be 2-hop reachable");
            }
            assert!(f[16] >= f[15] - 1e-12, "2-hop fraction below 1-hop fraction");
        }
    }

    #[test]
    fn connected_zone_has_informative_features() {
        let (city, store) = setup();
        let fx = FeatureExtractor::new(&city, &store);
        let core = ZoneId(store.zone_tree().nearest(&city.cores[0]).unwrap().item);
        let poi = city.pois_of(PoiCategory::School)[0];
        let f = fx.features(core, &poi.pos, poi.zone);
        assert!(f[17] > 0.0, "core zone has outbound leaves");
        assert!(f[4] < fx.max_dist(), "closest OB leaf distance is a real value");
    }

    #[test]
    fn interchange_ablation_zeroes_those_features() {
        let (city, store) = setup();
        let mut fx = FeatureExtractor::new(&city, &store);
        fx.use_interchanges = false;
        let poi = city.pois_of(PoiCategory::School)[0];
        let core = ZoneId(store.zone_tree().nearest(&city.cores[0]).unwrap().item);
        let f = fx.features(core, &poi.pos, poi.zone);
        assert_eq!(f[10], 0.0, "no interchanges counted");
        assert_eq!(f[11], fx.max_dist(), "sentinel distances");
        assert_eq!(f[12], fx.max_dist());
        assert_eq!(f[14], 0.0);
        // Non-interchange features still live.
        assert!(f[17] > 0.0);
    }

    #[test]
    fn near_destination_scores_closer_than_far() {
        let (city, store) = setup();
        let fx = FeatureExtractor::new(&city, &store);
        let core = ZoneId(store.zone_tree().nearest(&city.cores[0]).unwrap().item);
        let o = city.zone_centroid(core);
        // Nearest vs farthest school by crow-flies.
        let schools = city.pois_of(PoiCategory::School);
        let near = schools
            .iter()
            .min_by(|a, b| o.dist(&a.pos).partial_cmp(&o.dist(&b.pos)).unwrap())
            .unwrap();
        let far = schools
            .iter()
            .max_by(|a, b| o.dist(&a.pos).partial_cmp(&o.dist(&b.pos)).unwrap())
            .unwrap();
        let fn_ = fx.features(core, &near.pos, near.zone);
        let ff = fx.features(core, &far.pos, far.zone);
        assert!(fn_[0] < ff[0]);
        assert!(fn_[4] <= ff[4] + 1e-9, "OB closest approach should not worsen for near POI");
    }
}

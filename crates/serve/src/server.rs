//! TCP server: a readiness reactor feeding the shared worker pool.
//!
//! Default (reactor) model — one event-loop thread owns every socket:
//!
//! ```text
//! reactor thread ── decode frame ── admission gate ──► bounded job queue
//!      ▲                 │(shed: Overloaded frame)          │
//!      │                 ▼                                  ▼
//!      │        per-conn outbound queue ◄── encode ◄── worker 0..N
//!      └────────────── waker ◄──────────────────────── (callback)
//! ```
//!
//! Workers complete in any order. v4 connections carry request IDs, so
//! their responses are written in completion order and the client
//! matches by ID; pre-v4 connections get strict request-order responses
//! via [`OrderedOut`] (early completions park until the gap fills).
//!
//! Admission control happens at decode time, before a queue slot is
//! consumed: the gate estimates queue wait from an EWMA of execution
//! time and sheds with [`ErrorCode::Overloaded`] when the estimate
//! exceeds the server budget or the request's own deadline. Workers
//! shed once more at dequeue if the deadline lapsed while queued.
//!
//! The legacy thread-per-connection model ([`serve_threaded`]) is kept
//! as the benchmark baseline the reactor is measured against.

use crate::codec::{self, CodecError, ErrorCode, Request, Response, MAX_FRAME_LEN};
use crate::pool::{self, Job, Reply, WorkerPool};
use bytes::BytesMut;
use crossbeam::channel::{bounded, Sender, TrySendError};
use parking_lot::Mutex;
use staq_core::AccessEngine;
use staq_net::admission::{Admission, AdmissionConfig, ShedReason, ADMITTED};
use staq_net::reactor::{self, ConnHandler, ConnId, ReactorConfig, ReactorHandle, ReplySink};
use staq_net::{Backend, OrderedOut};
use staq_obs::SpanContext;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878`. Port 0 picks a free port.
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded job-queue depth (backpressure point).
    pub queue_depth: usize,
    /// Admission budget: requests whose estimated queue wait exceeds
    /// this are shed with `Overloaded` instead of queued.
    pub queue_budget: Duration,
    /// Poller backend for the reactor (tests force the portable one).
    pub backend: Backend,
    /// How long shutdown waits for outbound queues to flush.
    pub flush_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 256,
            queue_budget: Duration::from_millis(500),
            backend: Backend::Auto,
            flush_timeout: Duration::from_secs(1),
        }
    }
}

/// Handle to a running server; dropping it shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Inner,
}

/// The reactor handler's job sender, revocable from the handle: taking it
/// at shutdown is what lets the pool's workers observe channel disconnect
/// and exit (the handler itself lives inside the reactor thread until
/// `finish`, so a plain `Sender` clone there would hold the channel open
/// and deadlock the worker join).
type SharedJobSender = Arc<Mutex<Option<Sender<Job>>>>;

enum Inner {
    Reactor {
        reactor: ReactorHandle,
        pool: Option<WorkerPool>,
        jobs: SharedJobSender,
        flush: Duration,
        done: bool,
    },
    Threaded {
        shutdown: Arc<AtomicBool>,
        acceptor: Option<JoinHandle<()>>,
        pool: Option<WorkerPool>,
        conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    },
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live client connections (reactor model only; the threaded
    /// baseline reports 0).
    pub fn conn_count(&self) -> usize {
        match &self.inner {
            Inner::Reactor { reactor, .. } => reactor.conn_count(),
            Inner::Threaded { .. } => 0,
        }
    }

    /// Graceful shutdown: stop accepting and reading, let in-flight
    /// requests finish, flush every outbound queue, then join all
    /// threads. Idempotent.
    pub fn shutdown(&mut self) {
        match &mut self.inner {
            Inner::Reactor { reactor, pool, jobs, flush, done } => {
                if std::mem::replace(done, true) {
                    return;
                }
                // Drain order matters: stop intake first, revoke the
                // handler's sender so the channel can disconnect, then
                // run the queue dry (joining workers fires every reply
                // callback), and only then flush + close the sockets.
                reactor.begin_drain();
                jobs.lock().take();
                if let Some(mut p) = pool.take() {
                    p.shutdown();
                }
                reactor.finish(*flush);
            }
            Inner::Threaded { shutdown, acceptor, pool, conns } => {
                if shutdown.swap(true, Ordering::SeqCst) {
                    return;
                }
                // Nudge the blocking accept() awake.
                let _ = TcpStream::connect(self.addr);
                if let Some(h) = acceptor.take() {
                    h.join().expect("acceptor thread panicked");
                }
                let conns = std::mem::take(&mut *conns.lock());
                for c in conns {
                    c.join().expect("connection thread panicked");
                }
                if let Some(mut p) = pool.take() {
                    p.shutdown();
                }
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `cfg.addr` and serves `engine` until shutdown.
pub fn serve(engine: AccessEngine, cfg: &ServerConfig) -> std::io::Result<ServerHandle> {
    serve_shared(Arc::new(engine), cfg)
}

/// Like [`serve`], for an engine that is already shared. The server's
/// delta log starts empty; to serve an [`RtEngine`] whose log must
/// survive a server restart, use [`serve_rt`].
///
/// [`RtEngine`]: staq_rt::RtEngine
pub fn serve_shared(
    engine: Arc<AccessEngine>,
    cfg: &ServerConfig,
) -> std::io::Result<ServerHandle> {
    serve_rt(Arc::new(staq_rt::RtEngine::new(engine)), cfg)
}

/// Like [`serve_shared`], over an existing [`RtEngine`] — the sequenced
/// delta log is shared with (and survives) the server.
///
/// [`RtEngine`]: staq_rt::RtEngine
pub fn serve_rt(rt: Arc<staq_rt::RtEngine>, cfg: &ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let admission = Arc::new(Admission::new(AdmissionConfig {
        queue_budget: cfg.queue_budget,
        workers: cfg.workers,
    }));
    let pool = WorkerPool::spawn_rt_with(rt, cfg.workers, cfg.queue_depth, Arc::clone(&admission));
    let jobs: SharedJobSender = Arc::new(Mutex::new(Some(pool.sender())));
    let handler = ServeHandler { jobs: Arc::clone(&jobs), admission, conns: HashMap::new() };
    let reactor = reactor::spawn(
        listener,
        Box::new(handler),
        ReactorConfig { name: "staq-serve", max_frame: MAX_FRAME_LEN, backend: cfg.backend },
    )?;
    Ok(ServerHandle {
        addr,
        inner: Inner::Reactor {
            reactor,
            pool: Some(pool),
            jobs,
            flush: cfg.flush_timeout,
            done: false,
        },
    })
}

/// The reactor's protocol handler: decodes frames, gates admission,
/// dispatches jobs whose reply callback encodes straight onto the
/// connection's outbound queue.
struct ServeHandler {
    jobs: SharedJobSender,
    admission: Arc<Admission>,
    /// Per-connection response sequencer, keyed by slot index (the
    /// reactor guarantees on_close before the index is reused).
    conns: HashMap<u32, Arc<OrderedOut>>,
}

impl ServeHandler {
    /// Emits an already-decided error frame through the connection's
    /// response ordering.
    fn emit_error(
        ordered: &OrderedOut,
        version: u8,
        req_id: u64,
        seq: Option<u64>,
        code: ErrorCode,
        message: &str,
    ) {
        let response = Response::Error { code, message: message.into() };
        let mut buf = BytesMut::with_capacity(64);
        codec::encode_response_to(&response, version, req_id, &mut buf);
        match seq {
            Some(s) => ordered.submit(s, buf.freeze()),
            None => ordered.submit_unordered(buf.freeze()),
        }
    }
}

impl ConnHandler for ServeHandler {
    fn on_data(&mut self, conn: ConnId, buf: &mut BytesMut, out: &ReplySink) -> bool {
        let ordered = Arc::clone(
            self.conns.entry(conn.index()).or_insert_with(|| OrderedOut::new(conn, out.clone())),
        );
        loop {
            match codec::decode_request_full(buf) {
                Ok(Some(decoded)) => {
                    reactor::FRAMES_IN.inc();
                    let now = Instant::now();
                    let version = decoded.version;
                    let req_id = decoded.req_id;
                    let deadline =
                        decoded.deadline_ms.map(|ms| now + Duration::from_millis(ms.into()));
                    // Pre-v4 clients match responses by order, so even a
                    // shed must occupy its slot in the sequence.
                    let seq = (version < codec::WIRE_VERSION).then(|| ordered.assign());
                    let remaining = deadline.map(|d| d.saturating_duration_since(now));
                    let queue_len = self.jobs.lock().as_ref().map_or(0, |tx| tx.len());
                    if let Err(reason) = self.admission.admit(queue_len, remaining) {
                        reason.count();
                        if let Some(class) = pool::slo_class(&decoded.request) {
                            staq_obs::slo::shed(class);
                        }
                        Self::emit_error(
                            &ordered,
                            version,
                            req_id,
                            seq,
                            ErrorCode::Overloaded,
                            reason.message(),
                        );
                        continue;
                    }
                    let reply_ordered = Arc::clone(&ordered);
                    let reply = Reply::Callback(Box::new(move |response: Response| {
                        let mut buf = BytesMut::with_capacity(256);
                        codec::encode_response_to(&response, version, req_id, &mut buf);
                        match seq {
                            Some(s) => reply_ordered.submit(s, buf.freeze()),
                            None => reply_ordered.submit_unordered(buf.freeze()),
                        }
                    }));
                    let job = Job {
                        request: decoded.request,
                        reply,
                        ctx: decoded.ctx,
                        enqueued: now,
                        deadline,
                    };
                    let sent = match self.jobs.lock().as_ref() {
                        Some(tx) => tx.try_send(job),
                        None => Err(TrySendError::Disconnected(job)),
                    };
                    match sent {
                        Ok(()) => ADMITTED.inc(),
                        Err(TrySendError::Full(job)) => {
                            ShedReason::QueueFull.count();
                            if let Some(class) = pool::slo_class(&job.request) {
                                staq_obs::slo::shed(class);
                            }
                            job.reply.send(Response::Error {
                                code: ErrorCode::Overloaded,
                                message: ShedReason::QueueFull.message().into(),
                            });
                        }
                        Err(TrySendError::Disconnected(job)) => {
                            job.reply.send(Response::Error {
                                code: ErrorCode::Unavailable,
                                message: "server is shutting down".into(),
                            });
                        }
                    }
                }
                Ok(None) => return true,
                Err(e) => {
                    // Framing is gone; tell the client why and hang up
                    // (the reactor flushes the queue before closing).
                    Self::emit_error(
                        &ordered,
                        codec::WIRE_VERSION,
                        0,
                        None,
                        ErrorCode::BadRequest,
                        &e.to_string(),
                    );
                    return false;
                }
            }
        }
    }

    fn on_close(&mut self, conn: ConnId) {
        self.conns.remove(&conn.index());
    }
}

/// The pre-reactor serving model: one OS thread per client connection,
/// blocking reads, strictly sequential request handling per connection.
/// Kept as the baseline `net_bench` measures the reactor against (and
/// as a correctness cross-check — both models share codec and pool).
pub fn serve_threaded(
    rt: Arc<staq_rt::RtEngine>,
    cfg: &ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let pool = WorkerPool::spawn_rt(rt, cfg.workers, cfg.queue_depth);
    let shutdown = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let acceptor = {
        let shutdown = Arc::clone(&shutdown);
        let conns = Arc::clone(&conns);
        let jobs = pool.sender();
        std::thread::Builder::new()
            .name("staq-acceptor".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let shutdown = Arc::clone(&shutdown);
                    let jobs = jobs.clone();
                    let handle = std::thread::Builder::new()
                        .name("staq-conn".into())
                        .spawn(move || {
                            let _ = handle_connection(stream, jobs, shutdown);
                        })
                        .expect("spawning connection thread");
                    conns.lock().push(handle);
                }
            })
            .expect("spawning acceptor thread")
    };

    Ok(ServerHandle {
        addr,
        inner: Inner::Threaded { shutdown, acceptor: Some(acceptor), pool: Some(pool), conns },
    })
}

/// Serves one client until it disconnects, the protocol desyncs, or the
/// server shuts down. (Threaded baseline only.)
fn handle_connection(
    mut stream: TcpStream,
    jobs: Sender<Job>,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    // Periodic read timeouts let the thread notice shutdown while idle.
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut buf = BytesMut::with_capacity(4096);
    let mut scratch = [0u8; 16 * 1024];
    let mut out = BytesMut::with_capacity(4096);

    loop {
        // Drain every complete frame already buffered.
        loop {
            match codec::decode_request_full(&mut buf) {
                Ok(Some(decoded)) => {
                    let deadline = decoded
                        .deadline_ms
                        .map(|ms| Instant::now() + Duration::from_millis(ms.into()));
                    let response = match dispatch(&jobs, decoded.request, decoded.ctx, deadline) {
                        Some(r) => r,
                        None => Response::Error {
                            code: ErrorCode::Unavailable,
                            message: "server is shutting down".into(),
                        },
                    };
                    out.clear();
                    // Answer in whichever version the client spoke.
                    codec::encode_response_to(&response, decoded.version, decoded.req_id, &mut out);
                    stream.write_all(&out)?;
                }
                Ok(None) => break,
                Err(e) => {
                    // Framing is gone; tell the client why and hang up.
                    out.clear();
                    codec::encode_response(
                        &Response::Error { code: ErrorCode::BadRequest, message: e.to_string() },
                        &mut out,
                    );
                    let _ = stream.write_all(&out);
                    return Ok(());
                }
            }
        }
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        match stream.read(&mut scratch) {
            Ok(0) => return Ok(()), // client closed
            Ok(n) => {
                if buf.len() + n > MAX_FRAME_LEN + 4 {
                    return Err(std::io::Error::new(
                        ErrorKind::InvalidData,
                        CodecError::FrameTooLarge(buf.len() + n),
                    ));
                }
                buf.extend_from_slice(&scratch[..n]);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue; // idle tick: loop to re-check the shutdown flag
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Runs one request through the pool; `None` if the queue is closed.
/// `ctx` is the peer's propagated span context (the worker roots or
/// continues the trace).
fn dispatch(
    jobs: &Sender<Job>,
    request: Request,
    ctx: SpanContext,
    deadline: Option<Instant>,
) -> Option<Response> {
    let (reply_tx, reply_rx) = bounded(1);
    jobs.send(Job {
        request,
        reply: Reply::Channel(reply_tx),
        ctx,
        enqueued: Instant::now(),
        deadline,
    })
    .ok()?;
    reply_rx.recv().ok()
}

//! Length-prefixed binary wire protocol for access-query serving.
//!
//! Every frame, request or response, is:
//!
//! ```text
//! +----------------+-----------+--------+------------------+
//! | len: u32 (BE)  | ver: u8   | kind   | payload (len-2 B)|
//! +----------------+-----------+--------+------------------+
//! ```
//!
//! `len` counts everything after itself (version byte + kind byte +
//! payload). Integers and floats are big-endian. Strings are
//! `u16` length + UTF-8 bytes. The version byte is [`WIRE_VERSION`] or
//! any accepted older version (≥ [`MIN_WIRE_VERSION`]); a peer speaking
//! anything else gets an error frame and the connection is closed.
//!
//! Request kinds are `0x01..=0x0B`; response kinds mirror them with the
//! high bit set (`0x81..=0x8B`), and `0xFF` is the error frame — so a
//! response can never be confused for a request even if framing slips.
//!
//! ## Versions and trace context
//!
//! v3 inserts a 16-byte trace context — `trace id: u64, span id: u64`,
//! both zero when untraced — between the kind byte and the payload of
//! every **request** frame; responses are unchanged. [`encode_request`]
//! stamps the calling thread's current [`SpanContext`] automatically, so
//! a client running inside a span propagates it without any API change.
//! v2 frames (no context) still decode — [`decode_request`] reports
//! which version the peer spoke so servers can reply in kind via
//! [`encode_response_to`], keeping un-upgraded v2 clients working
//! against a newer server.
//!
//! ## v4: request IDs, deadlines, multiplexing
//!
//! v4 gives frames an identity. Requests become
//!
//! ```text
//! kind | req id: u64 | trace: u64 | span: u64 | flags: u8
//!      | [deadline ms: u32 when flags bit 0] | payload
//! ```
//!
//! and responses gain the echoed request ID right after the kind byte.
//! The ID makes true multiplexing possible: many requests in flight on
//! one connection, each response matched by ID rather than by arrival
//! order, so the server may answer out of order. The optional deadline
//! is the client's total time budget for the request — the server sheds
//! the request with [`ErrorCode::Overloaded`] instead of queueing it
//! past its useful life. Pre-v4 peers keep working: their responses
//! carry no ID and are answered strictly in request order (the server
//! re-sequences completions). A v4 client that pipelines MUST use
//! distinct request IDs; responses to v4 requests arrive in completion
//! order.
//!
//! v4 also adds the `OpsReport` pair: the fleet-health poll answering
//! windowed per-class rates, SLO burn status, and retained slow traces
//! in one frame. It does not exist in older versions — v2/v3 encoders
//! refuse it and the decoder rejects it on pre-v4 frames.
//!
//! ## Streaming frames (v3 only)
//!
//! `ApplyDelta` carries one [`Delta`] plus an explicit sequence number
//! (0 = "assign the next one"); `DeltaBatch` carries a contiguous run of
//! deltas starting at `first_seq` — the catch-up payload replicas replay
//! idempotently. `WhatIf` evaluates K counterfactual scenarios (each a
//! delta list) against the live engine and answers one [`AccessQuery`]
//! per scenario, side by side. A server whose delta log is behind a
//! claimed sequence number answers an [`ErrorCode::SeqGap`] error frame;
//! the sender recovers by resending from the gap. `Plan` (also v3-only)
//! asks for point-to-point journeys: the full Pareto (arrival, transfers)
//! frontier, or the single fastest journey within a transfer cap. None of
//! these frames exist in v2 — [`encode_request_v2`] refuses them.

use bytes::{Buf, BufMut, BytesMut};
use staq_access::measures::ZoneMeasures;
use staq_access::{AccessClass, AccessQuery, DemographicWeight, QueryAnswer};
use staq_geom::Point;
use staq_gtfs::model::{RouteId, StopId, TripId};
use staq_gtfs::time::{DayOfWeek, Stime};
use staq_gtfs::Delta;
use staq_obs::SpanContext;
use staq_obs::{trace, CounterSample, GaugeSample, HistogramSample, MetricsSnapshot, OwnedSpan};
use staq_obs::{BurnWindow, ClassWindow, OpsReport, SloStatus, SlowTrace};
use staq_synth::{PoiCategory, ZoneId};
use staq_transit::{Journey, Leg};

/// Protocol version this build emits. v2 extended the `Stats` response
/// with a full [`MetricsSnapshot`]; v3 added the request trace context,
/// the `TraceDump` request/response pair, and the streaming frames
/// (`ApplyDelta`, `DeltaBatch`, `WhatIf`); v4 added request IDs on both
/// request and response frames (multiplexing) plus the optional
/// per-request deadline field.
pub const WIRE_VERSION: u8 = 4;

/// Oldest version still accepted on decode. v2 peers round-trip every
/// pre-trace request kind; their requests simply carry no span context.
pub const MIN_WIRE_VERSION: u8 = 2;

/// Upper bound on `len`; larger frames indicate a desynced or hostile
/// peer and are rejected before any allocation.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// A request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Full SSR measure vector for one category. `approx` opts into the
    /// engine's approximate serving mode (v3 frames only: the flag rides
    /// the high bit of the category byte, which v2 never sets).
    Measures { category: PoiCategory, approx: bool },
    /// An analytical access query against one category; `approx` as on
    /// [`Request::Measures`] — `PointAccess` queries may then be answered
    /// by interpolation within the server's error bound.
    Query { category: PoiCategory, query: AccessQuery, approx: bool },
    /// Scenario edit: add a POI at a position.
    AddPoi { category: PoiCategory, pos: Point },
    /// Scenario edit: add a bus route through the given stops.
    AddBusRoute { stops: Vec<Point>, headway_s: u32 },
    /// Server counters (pipeline runs, cache state, requests served).
    Stats,
    /// Recent completed spans with duration ≥ `min_dur_ns`; optionally
    /// retunes the server's capture threshold first (v3+).
    TraceDump { min_dur_ns: u64, set_capture_ns: Option<u64> },
    /// Streaming edit: apply one delta at a sequence number (0 = assign
    /// the next one) to the server's delta log (v3+).
    ApplyDelta { seq: u64, delta: Delta },
    /// Streaming catch-up: a contiguous run of deltas starting at
    /// `first_seq`; already-seen prefixes are skipped idempotently (v3+).
    DeltaBatch { first_seq: u64, deltas: Vec<Delta> },
    /// Evaluate each counterfactual scenario (a delta list) against the
    /// live engine and answer `query` under each, side by side (v3+).
    WhatIf { category: PoiCategory, scenarios: Vec<Vec<Delta>>, query: AccessQuery },
    /// Point-to-point journey planning against the live timetable (v3+).
    /// `max_transfers: None` asks for the whole Pareto (arrival,
    /// transfers) frontier; `Some(k)` for the single fastest journey
    /// using at most `k` transfers.
    Plan { origin: Point, dest: Point, depart: Stime, day: DayOfWeek, max_transfers: Option<u8> },
    /// Fleet-health poll: windowed per-class rates and quantiles, SLO
    /// burn status, and retained slow traces, in one frame (v4 only).
    OpsReport,
}

impl Request {
    /// Short label for latency reporting, one per request kind.
    pub fn kind_label(&self) -> &'static str {
        match self {
            Request::Measures { .. } => "measures",
            Request::Query { .. } => "query",
            Request::AddPoi { .. } => "add_poi",
            Request::AddBusRoute { .. } => "add_bus_route",
            Request::Stats => "stats",
            Request::TraceDump { .. } => "trace_dump",
            Request::ApplyDelta { .. } => "apply_delta",
            Request::DeltaBatch { .. } => "delta_batch",
            Request::WhatIf { .. } => "what_if",
            Request::Plan { .. } => "plan",
            Request::OpsReport => "ops_report",
        }
    }
}

/// A decoded request plus the frame-header facts a server needs: which
/// protocol version the peer spoke (to answer in kind) and the trace
/// context it propagated (`SpanContext::NONE` for v2 or untraced v3).
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedRequest {
    pub request: Request,
    pub ctx: SpanContext,
    pub version: u8,
    /// The request ID to echo on the response (0 on pre-v4 frames, and
    /// for non-multiplexed v4 clients that always send 0).
    pub req_id: u64,
    /// The client's total time budget for this request, if it set one
    /// (v4 frames only). Measured from decode; the server sheds the
    /// request once the budget cannot be met.
    pub deadline_ms: Option<u32>,
}

/// A decoded response plus its frame-level identity — what a
/// multiplexing client needs to match it to a caller.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedResponse {
    pub response: Response,
    /// Echoed request ID (0 on pre-v4 frames).
    pub req_id: u64,
    pub version: u8,
}

/// Server counters exposed over the wire; `pipeline_runs` makes the
/// single-flight guarantee assertable by a remote client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsReply {
    /// SSR pipeline executions since startup.
    pub pipeline_runs: u64,
    /// Requests answered (all kinds) since startup.
    pub requests_served: u64,
    /// Categories with a warm cache entry.
    pub cached: Vec<PoiCategory>,
    /// Worker threads in the pool.
    pub workers: u16,
    /// Server-side metrics registry at reply time: per-kind request
    /// latency histograms, engine cache counters, pipeline stage timers.
    pub metrics: MetricsSnapshot,
}

/// Acknowledgement of one streamed delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaAck {
    /// The delta's position in the server's log (1-based).
    pub seq: u64,
    /// Zones whose access artifacts were incrementally rebuilt.
    pub zones_rebuilt: u32,
    /// True when the sequence number was already in the log and the delta
    /// was idempotently skipped (a retried broadcast, not a new edit).
    pub replayed: bool,
}

/// One scenario's answer inside a `WhatIf` response.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfAnswer {
    /// The request's query answered under this scenario's overlay.
    pub answer: QueryAnswer,
    /// Bytes the copy-on-write overlay materialized for this scenario.
    pub overlay_bytes: u64,
}

/// A response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Measures(Vec<ZoneMeasures>),
    Query(QueryAnswer),
    AddPoi {
        poi_id: u32,
    },
    AddBusRoute {
        zones_rebuilt: u32,
    },
    Stats(StatsReply),
    /// Spans matching a `TraceDump` request, oldest first.
    TraceDump(Vec<OwnedSpan>),
    /// One streamed delta accepted (or idempotently skipped).
    ApplyDelta(DeltaAck),
    /// A catch-up batch fully applied; `last_seq` is the highest sequence
    /// number now in the server's log from this batch.
    DeltaBatch {
        last_seq: u64,
    },
    /// Per-scenario answers, in request order.
    WhatIf(Vec<WhatIfAnswer>),
    /// Journeys answering a `Plan` request: the Pareto frontier sorted by
    /// transfers ascending, or a single journey under a transfer cap.
    Plan(Vec<Journey>),
    /// The server's ops report — mergeable across a fleet.
    OpsReport(OpsReport),
    /// Semantic failure; the connection stays usable.
    Error {
        code: ErrorCode,
        message: String,
    },
}

/// Error codes carried in error frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Malformed or unsupported frame.
    BadRequest = 1,
    /// Structurally valid but semantically rejected (e.g. a one-stop route).
    Invalid = 2,
    /// The server is shutting down or the queue is gone.
    Unavailable = 3,
    /// A streamed delta's sequence number is ahead of the server's log;
    /// the sender must resend the missing tail.
    SeqGap = 4,
    /// Load shed: admission control refused the request (queue budget
    /// exhausted, or its deadline could not be met). Retry later or
    /// against another replica — nothing was executed.
    Overloaded = 5,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<ErrorCode> {
        match v {
            1 => Some(ErrorCode::BadRequest),
            2 => Some(ErrorCode::Invalid),
            3 => Some(ErrorCode::Unavailable),
            4 => Some(ErrorCode::SeqGap),
            5 => Some(ErrorCode::Overloaded),
            _ => None,
        }
    }
}

/// Decode-side failure. `Incomplete` is not an error — the caller reads
/// more bytes; everything else means the stream is no longer trustworthy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    BadVersion(u8),
    BadKind(u8),
    BadPayload(&'static str),
    FrameTooLarge(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadVersion(v) => {
                write!(f, "unsupported wire version {v} (want {MIN_WIRE_VERSION}..={WIRE_VERSION})")
            }
            CodecError::BadKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            CodecError::BadPayload(why) => write!(f, "malformed payload: {why}"),
            CodecError::FrameTooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds {MAX_FRAME_LEN}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

const K_MEASURES: u8 = 0x01;
const K_QUERY: u8 = 0x02;
const K_ADD_POI: u8 = 0x03;
const K_ADD_BUS_ROUTE: u8 = 0x04;
const K_STATS: u8 = 0x05;
const K_TRACE_DUMP: u8 = 0x06;
const K_APPLY_DELTA: u8 = 0x07;
const K_DELTA_BATCH: u8 = 0x08;
const K_WHAT_IF: u8 = 0x09;
const K_PLAN: u8 = 0x0A;
const K_OPS_REPORT: u8 = 0x0B;
const K_R_MEASURES: u8 = 0x81;
const K_R_QUERY: u8 = 0x82;
const K_R_ADD_POI: u8 = 0x83;
const K_R_ADD_BUS_ROUTE: u8 = 0x84;
const K_R_STATS: u8 = 0x85;
const K_R_TRACE_DUMP: u8 = 0x86;
const K_R_APPLY_DELTA: u8 = 0x87;
const K_R_DELTA_BATCH: u8 = 0x88;
const K_R_WHAT_IF: u8 = 0x89;
const K_R_PLAN: u8 = 0x8A;
const K_R_OPS_REPORT: u8 = 0x8B;
const K_R_ERROR: u8 = 0xFF;

fn category_code(c: PoiCategory) -> u8 {
    PoiCategory::ALL.iter().position(|k| *k == c).expect("category in ALL") as u8
}

fn category_from(code: u8) -> Result<PoiCategory, CodecError> {
    PoiCategory::ALL
        .get(code as usize)
        .copied()
        .ok_or(CodecError::BadPayload("unknown POI category"))
}

/// High bit of the category byte on `Measures`/`Query` requests: the
/// approximate-mode opt-in. Category codes stay tiny, so the bit is free;
/// v2 encoders never set it, which is what makes the flag v3-only.
const APPROX_FLAG: u8 = 0x80;

fn category_byte(c: PoiCategory, approx: bool) -> u8 {
    category_code(c) | if approx { APPROX_FLAG } else { 0 }
}

fn category_and_approx(raw: u8) -> Result<(PoiCategory, bool), CodecError> {
    Ok((category_from(raw & !APPROX_FLAG)?, raw & APPROX_FLAG != 0))
}

fn class_code(c: AccessClass) -> u8 {
    match c {
        AccessClass::Best => 0,
        AccessClass::MostlyGood => 1,
        AccessClass::MostlyBad => 2,
        AccessClass::Worst => 3,
    }
}

fn class_from(code: u8) -> Result<AccessClass, CodecError> {
    Ok(match code {
        0 => AccessClass::Best,
        1 => AccessClass::MostlyGood,
        2 => AccessClass::MostlyBad,
        3 => AccessClass::Worst,
        _ => return Err(CodecError::BadPayload("unknown access class")),
    })
}

fn weight_code(w: DemographicWeight) -> u8 {
    match w {
        DemographicWeight::Uniform => 0,
        DemographicWeight::Population => 1,
        DemographicWeight::Unemployed => 2,
        DemographicWeight::Vulnerable => 3,
        DemographicWeight::Children => 4,
    }
}

fn weight_from(code: u8) -> Result<DemographicWeight, CodecError> {
    Ok(match code {
        0 => DemographicWeight::Uniform,
        1 => DemographicWeight::Population,
        2 => DemographicWeight::Unemployed,
        3 => DemographicWeight::Vulnerable,
        4 => DemographicWeight::Children,
        _ => return Err(CodecError::BadPayload("unknown demographic weight")),
    })
}

fn put_string(buf: &mut BytesMut, s: &str) {
    let bytes = s.as_bytes();
    let n = bytes.len().min(u16::MAX as usize);
    buf.put_u16(n as u16);
    buf.put_slice(&bytes[..n]);
}

fn take_string(buf: &mut &[u8]) -> Result<String, CodecError> {
    let n = take_u16(buf)? as usize;
    if buf.remaining() < n {
        return Err(CodecError::BadPayload("truncated string"));
    }
    let s = std::str::from_utf8(&buf.chunk()[..n])
        .map_err(|_| CodecError::BadPayload("non-UTF-8 string"))?
        .to_owned();
    buf.advance(n);
    Ok(s)
}

macro_rules! take_fixed {
    ($name:ident, $ty:ty, $get:ident, $width:expr) => {
        fn $name(buf: &mut &[u8]) -> Result<$ty, CodecError> {
            if buf.remaining() < $width {
                return Err(CodecError::BadPayload("truncated frame"));
            }
            Ok(buf.$get())
        }
    };
}

take_fixed!(take_u8, u8, get_u8, 1);
take_fixed!(take_u16, u16, get_u16, 2);
take_fixed!(take_u32, u32, get_u32, 4);
take_fixed!(take_u64, u64, get_u64, 8);
take_fixed!(take_f64, f64, get_f64, 8);

/// Capacity to pre-reserve for a counted list: trust the claimed count
/// only up to what the remaining bytes could actually hold. A frame that
/// lies about its count (arbitrary bytes from a desynced or hostile peer)
/// must fail on the per-element reads, not get a multi-gigabyte
/// allocation first.
fn capped(claimed: usize, remaining: usize, elem_bytes: usize) -> usize {
    claimed.min(remaining / elem_bytes.max(1))
}

fn encode_query(buf: &mut BytesMut, q: &AccessQuery) {
    match q {
        AccessQuery::MeanAccess => buf.put_u8(0),
        AccessQuery::Classification => buf.put_u8(1),
        AccessQuery::AtRisk { threshold_factor } => {
            buf.put_u8(2);
            buf.put_f64(*threshold_factor);
        }
        AccessQuery::Fairness { weight } => {
            buf.put_u8(3);
            buf.put_u8(weight_code(*weight));
        }
        AccessQuery::WorstZones { k } => {
            buf.put_u8(4);
            buf.put_u32(*k as u32);
        }
        AccessQuery::PointAccess { x, y } => {
            buf.put_u8(5);
            buf.put_f64(*x);
            buf.put_f64(*y);
        }
    }
}

fn decode_query(buf: &mut &[u8]) -> Result<AccessQuery, CodecError> {
    Ok(match take_u8(buf)? {
        0 => AccessQuery::MeanAccess,
        1 => AccessQuery::Classification,
        2 => AccessQuery::AtRisk { threshold_factor: take_f64(buf)? },
        3 => AccessQuery::Fairness { weight: weight_from(take_u8(buf)?)? },
        4 => AccessQuery::WorstZones { k: take_u32(buf)? as usize },
        5 => AccessQuery::PointAccess { x: take_f64(buf)?, y: take_f64(buf)? },
        _ => return Err(CodecError::BadPayload("unknown query tag")),
    })
}

fn encode_answer(buf: &mut BytesMut, a: &QueryAnswer) {
    match a {
        QueryAnswer::MeanAccess { mean_mac, mean_acsd, n_zones } => {
            buf.put_u8(0);
            buf.put_f64(*mean_mac);
            buf.put_f64(*mean_acsd);
            buf.put_u32(*n_zones as u32);
        }
        QueryAnswer::Classification(cs) => {
            buf.put_u8(1);
            buf.put_u32(cs.len() as u32);
            for (z, c) in cs {
                buf.put_u32(z.0);
                buf.put_u8(class_code(*c));
            }
        }
        QueryAnswer::AtRisk(zs) => {
            buf.put_u8(2);
            buf.put_u32(zs.len() as u32);
            for z in zs {
                buf.put_u32(z.0);
            }
        }
        QueryAnswer::Fairness(j) => {
            buf.put_u8(3);
            buf.put_f64(*j);
        }
        QueryAnswer::WorstZones(zs) => {
            buf.put_u8(4);
            buf.put_u32(zs.len() as u32);
            for (z, mac) in zs {
                buf.put_u32(z.0);
                buf.put_f64(*mac);
            }
        }
        QueryAnswer::PointAccess { zone, mac, acsd } => {
            buf.put_u8(5);
            buf.put_u32(zone.0);
            buf.put_f64(*mac);
            buf.put_f64(*acsd);
        }
    }
}

fn decode_answer(buf: &mut &[u8]) -> Result<QueryAnswer, CodecError> {
    Ok(match take_u8(buf)? {
        0 => QueryAnswer::MeanAccess {
            mean_mac: take_f64(buf)?,
            mean_acsd: take_f64(buf)?,
            n_zones: take_u32(buf)? as usize,
        },
        1 => {
            let n = take_u32(buf)? as usize;
            let mut cs = Vec::with_capacity(capped(n, buf.remaining(), 5));
            for _ in 0..n {
                cs.push((ZoneId(take_u32(buf)?), class_from(take_u8(buf)?)?));
            }
            QueryAnswer::Classification(cs)
        }
        2 => {
            let n = take_u32(buf)? as usize;
            let mut zs = Vec::with_capacity(capped(n, buf.remaining(), 4));
            for _ in 0..n {
                zs.push(ZoneId(take_u32(buf)?));
            }
            QueryAnswer::AtRisk(zs)
        }
        3 => QueryAnswer::Fairness(take_f64(buf)?),
        4 => {
            let n = take_u32(buf)? as usize;
            let mut zs = Vec::with_capacity(capped(n, buf.remaining(), 12));
            for _ in 0..n {
                zs.push((ZoneId(take_u32(buf)?), take_f64(buf)?));
            }
            QueryAnswer::WorstZones(zs)
        }
        5 => QueryAnswer::PointAccess {
            zone: ZoneId(take_u32(buf)?),
            mac: take_f64(buf)?,
            acsd: take_f64(buf)?,
        },
        _ => return Err(CodecError::BadPayload("unknown answer tag")),
    })
}

/// Wire form of one [`Delta`]: a tag byte then the variant's fields.
fn encode_delta(buf: &mut BytesMut, d: &Delta) {
    match d {
        Delta::TripDelay { trip, delay_secs } => {
            buf.put_u8(0);
            buf.put_u32(trip.0);
            buf.put_u32(*delay_secs);
        }
        Delta::TripCancel { trip } => {
            buf.put_u8(1);
            buf.put_u32(trip.0);
        }
        Delta::RouteRemove { route } => {
            buf.put_u8(2);
            buf.put_u32(route.0);
        }
        Delta::ServiceAlert { route, message } => {
            buf.put_u8(3);
            buf.put_u32(route.0);
            put_string(buf, message);
        }
        Delta::AddRoute { stops, headway_s } => {
            buf.put_u8(4);
            buf.put_u32(*headway_s);
            buf.put_u16(stops.len().min(u16::MAX as usize) as u16);
            for p in stops.iter().take(u16::MAX as usize) {
                buf.put_f64(p.x);
                buf.put_f64(p.y);
            }
        }
    }
}

fn decode_delta(buf: &mut &[u8]) -> Result<Delta, CodecError> {
    Ok(match take_u8(buf)? {
        0 => Delta::TripDelay { trip: TripId(take_u32(buf)?), delay_secs: take_u32(buf)? },
        1 => Delta::TripCancel { trip: TripId(take_u32(buf)?) },
        2 => Delta::RouteRemove { route: RouteId(take_u32(buf)?) },
        3 => Delta::ServiceAlert { route: RouteId(take_u32(buf)?), message: take_string(buf)? },
        4 => {
            let headway_s = take_u32(buf)?;
            let n = take_u16(buf)? as usize;
            let mut stops = Vec::with_capacity(capped(n, buf.remaining(), 16));
            for _ in 0..n {
                stops.push(Point::new(take_f64(buf)?, take_f64(buf)?));
            }
            Delta::AddRoute { stops, headway_s }
        }
        _ => return Err(CodecError::BadPayload("unknown delta tag")),
    })
}

/// Wire form of a [`MetricsSnapshot`]: three `u16`-counted sample lists.
/// Binary rather than the snapshot's JSON text — a busy server's registry
/// serializes to tens of KiB of JSON, and the stats frame should stay a
/// cheap request to poll.
fn encode_snapshot(buf: &mut BytesMut, m: &MetricsSnapshot) {
    buf.put_u16(m.counters.len().min(u16::MAX as usize) as u16);
    for c in m.counters.iter().take(u16::MAX as usize) {
        put_string(buf, &c.name);
        buf.put_u64(c.value);
    }
    buf.put_u16(m.gauges.len().min(u16::MAX as usize) as u16);
    for g in m.gauges.iter().take(u16::MAX as usize) {
        put_string(buf, &g.name);
        buf.put_u64(g.value);
    }
    buf.put_u16(m.histograms.len().min(u16::MAX as usize) as u16);
    for h in m.histograms.iter().take(u16::MAX as usize) {
        put_string(buf, &h.name);
        buf.put_u64(h.count);
        buf.put_u64(h.sum_ns);
        buf.put_u64(h.max_ns);
        buf.put_u64(h.p50_ns);
        buf.put_u64(h.p95_ns);
        buf.put_u64(h.p99_ns);
        buf.put_u16(h.buckets.len().min(u16::MAX as usize) as u16);
        for &(idx, n) in h.buckets.iter().take(u16::MAX as usize) {
            buf.put_u32(idx);
            buf.put_u64(n);
        }
    }
}

fn decode_snapshot(buf: &mut &[u8]) -> Result<MetricsSnapshot, CodecError> {
    let mut m = MetricsSnapshot::default();
    let n = take_u16(buf)? as usize;
    m.counters.reserve(capped(n, buf.remaining(), 10));
    for _ in 0..n {
        m.counters.push(CounterSample { name: take_string(buf)?, value: take_u64(buf)? });
    }
    let n = take_u16(buf)? as usize;
    m.gauges.reserve(capped(n, buf.remaining(), 10));
    for _ in 0..n {
        m.gauges.push(GaugeSample { name: take_string(buf)?, value: take_u64(buf)? });
    }
    let n = take_u16(buf)? as usize;
    m.histograms.reserve(capped(n, buf.remaining(), 52));
    for _ in 0..n {
        let name = take_string(buf)?;
        let count = take_u64(buf)?;
        let sum_ns = take_u64(buf)?;
        let max_ns = take_u64(buf)?;
        let p50_ns = take_u64(buf)?;
        let p95_ns = take_u64(buf)?;
        let p99_ns = take_u64(buf)?;
        let n_buckets = take_u16(buf)? as usize;
        let mut buckets = Vec::with_capacity(capped(n_buckets, buf.remaining(), 12));
        for _ in 0..n_buckets {
            buckets.push((take_u32(buf)?, take_u64(buf)?));
        }
        m.histograms.push(HistogramSample {
            name,
            count,
            sum_ns,
            max_ns,
            p50_ns,
            p95_ns,
            p99_ns,
            buckets,
        });
    }
    Ok(m)
}

/// Wire form of one completed span inside a `TraceDump` response.
fn encode_span(buf: &mut BytesMut, s: &OwnedSpan) {
    buf.put_u64(s.trace);
    buf.put_u64(s.span);
    buf.put_u64(s.parent);
    put_string(buf, &s.name);
    buf.put_u64(s.start_unix_ns);
    buf.put_u64(s.dur_ns);
    buf.put_u8(s.attrs.len().min(u8::MAX as usize) as u8);
    for (k, v) in s.attrs.iter().take(u8::MAX as usize) {
        put_string(buf, k);
        buf.put_u64(*v);
    }
}

fn decode_span(buf: &mut &[u8]) -> Result<OwnedSpan, CodecError> {
    let trace = take_u64(buf)?;
    let span = take_u64(buf)?;
    let parent = take_u64(buf)?;
    let name = take_string(buf)?;
    let start_unix_ns = take_u64(buf)?;
    let dur_ns = take_u64(buf)?;
    let n = take_u8(buf)? as usize;
    let mut attrs = Vec::with_capacity(capped(n, buf.remaining(), 10));
    for _ in 0..n {
        attrs.push((take_string(buf)?, take_u64(buf)?));
    }
    Ok(OwnedSpan { trace, span, parent, name, start_unix_ns, dur_ns, attrs })
}

/// Wire form of one journey leg: a tag byte then the variant's fields.
fn encode_leg(buf: &mut BytesMut, leg: &Leg) {
    match *leg {
        Leg::Walk { secs, to_stop } => {
            buf.put_u8(0);
            buf.put_u32(secs);
            match to_stop {
                Some(s) => {
                    buf.put_u8(1);
                    buf.put_u32(s.0);
                }
                None => buf.put_u8(0),
            }
        }
        Leg::Wait { secs, at_stop } => {
            buf.put_u8(1);
            buf.put_u32(secs);
            buf.put_u32(at_stop.0);
        }
        Leg::Ride { trip, route, from_stop, to_stop, board, alight } => {
            buf.put_u8(2);
            buf.put_u32(trip.0);
            buf.put_u32(route.0);
            buf.put_u32(from_stop.0);
            buf.put_u32(to_stop.0);
            buf.put_u32(board.0);
            buf.put_u32(alight.0);
        }
    }
}

fn decode_leg(buf: &mut &[u8]) -> Result<Leg, CodecError> {
    Ok(match take_u8(buf)? {
        0 => {
            let secs = take_u32(buf)?;
            let to_stop = match take_u8(buf)? {
                0 => None,
                1 => Some(StopId(take_u32(buf)?)),
                _ => return Err(CodecError::BadPayload("bad walk-stop flag")),
            };
            Leg::Walk { secs, to_stop }
        }
        1 => Leg::Wait { secs: take_u32(buf)?, at_stop: StopId(take_u32(buf)?) },
        2 => Leg::Ride {
            trip: TripId(take_u32(buf)?),
            route: RouteId(take_u32(buf)?),
            from_stop: StopId(take_u32(buf)?),
            to_stop: StopId(take_u32(buf)?),
            board: Stime(take_u32(buf)?),
            alight: Stime(take_u32(buf)?),
        },
        _ => return Err(CodecError::BadPayload("unknown leg tag")),
    })
}

/// Wire form of one journey inside a `Plan` response.
fn encode_journey(buf: &mut BytesMut, j: &Journey) {
    buf.put_u32(j.depart.0);
    buf.put_u32(j.arrive.0);
    buf.put_u16(j.legs.len().min(u16::MAX as usize) as u16);
    for leg in j.legs.iter().take(u16::MAX as usize) {
        encode_leg(buf, leg);
    }
}

fn decode_journey(buf: &mut &[u8]) -> Result<Journey, CodecError> {
    let depart = Stime(take_u32(buf)?);
    let arrive = Stime(take_u32(buf)?);
    let n = take_u16(buf)? as usize;
    let mut legs = Vec::with_capacity(capped(n, buf.remaining(), 6));
    for _ in 0..n {
        legs.push(decode_leg(buf)?);
    }
    Ok(Journey { depart, arrive, legs })
}

/// Wire form of an [`OpsReport`]: fixed header, then three `u16`-counted
/// lists — per-class windows (sparse buckets like the stats snapshot),
/// SLO statuses (two raw burn windows each, so the poller recomputes
/// rates from exact integers), and retained slow traces (each a span
/// list reusing the `TraceDump` span codec).
fn encode_ops_report(buf: &mut BytesMut, r: &OpsReport) {
    buf.put_u64(r.interval_ns);
    buf.put_u32(r.windows);
    buf.put_u64(r.generated_unix_ns);
    buf.put_u16(r.classes.len().min(u16::MAX as usize) as u16);
    for c in r.classes.iter().take(u16::MAX as usize) {
        put_string(buf, &c.class);
        buf.put_u64(c.span_ns);
        buf.put_u64(c.count);
        buf.put_u64(c.sum_ns);
        buf.put_u64(c.max_ns);
        buf.put_u64(c.shed);
        buf.put_u16(c.buckets.len().min(u16::MAX as usize) as u16);
        for &(idx, n) in c.buckets.iter().take(u16::MAX as usize) {
            buf.put_u32(idx);
            buf.put_u64(n);
        }
    }
    buf.put_u16(r.slo.len().min(u16::MAX as usize) as u16);
    for s in r.slo.iter().take(u16::MAX as usize) {
        put_string(buf, &s.class);
        buf.put_u32(s.objective_milli);
        buf.put_u64(s.threshold_ns);
        for w in [&s.fast, &s.slow] {
            buf.put_u64(w.span_ns);
            buf.put_u64(w.total);
            buf.put_u64(w.bad);
        }
        buf.put_u64(s.shed_total);
    }
    buf.put_u16(r.slow.len().min(u16::MAX as usize) as u16);
    for t in r.slow.iter().take(u16::MAX as usize) {
        buf.put_u64(t.trace);
        put_string(buf, &t.class);
        buf.put_u64(t.root_dur_ns);
        buf.put_u8(t.is_error as u8);
        buf.put_u64(t.captured_unix_ns);
        buf.put_u16(t.spans.len().min(u16::MAX as usize) as u16);
        for s in t.spans.iter().take(u16::MAX as usize) {
            encode_span(buf, s);
        }
    }
}

fn decode_ops_report(buf: &mut &[u8]) -> Result<OpsReport, CodecError> {
    let interval_ns = take_u64(buf)?;
    let windows = take_u32(buf)?;
    let generated_unix_ns = take_u64(buf)?;
    let n = take_u16(buf)? as usize;
    let mut classes = Vec::with_capacity(capped(n, buf.remaining(), 44));
    for _ in 0..n {
        let class = take_string(buf)?;
        let span_ns = take_u64(buf)?;
        let count = take_u64(buf)?;
        let sum_ns = take_u64(buf)?;
        let max_ns = take_u64(buf)?;
        let shed = take_u64(buf)?;
        let nb = take_u16(buf)? as usize;
        let mut buckets = Vec::with_capacity(capped(nb, buf.remaining(), 12));
        for _ in 0..nb {
            buckets.push((take_u32(buf)?, take_u64(buf)?));
        }
        classes.push(ClassWindow { class, span_ns, count, sum_ns, max_ns, buckets, shed });
    }
    let n = take_u16(buf)? as usize;
    let mut slo = Vec::with_capacity(capped(n, buf.remaining(), 70));
    for _ in 0..n {
        let class = take_string(buf)?;
        let objective_milli = take_u32(buf)?;
        let threshold_ns = take_u64(buf)?;
        let mut burns = [BurnWindow::default(); 2];
        for w in burns.iter_mut() {
            w.span_ns = take_u64(buf)?;
            w.total = take_u64(buf)?;
            w.bad = take_u64(buf)?;
        }
        let shed_total = take_u64(buf)?;
        slo.push(SloStatus {
            class,
            objective_milli,
            threshold_ns,
            fast: burns[0],
            slow: burns[1],
            shed_total,
        });
    }
    let n = take_u16(buf)? as usize;
    let mut slow = Vec::with_capacity(capped(n, buf.remaining(), 37));
    for _ in 0..n {
        let trace = take_u64(buf)?;
        let class = take_string(buf)?;
        let root_dur_ns = take_u64(buf)?;
        let is_error = match take_u8(buf)? {
            0 => false,
            1 => true,
            _ => return Err(CodecError::BadPayload("bad is-error flag")),
        };
        let captured_unix_ns = take_u64(buf)?;
        let ns = take_u16(buf)? as usize;
        let mut spans = Vec::with_capacity(capped(ns, buf.remaining(), 43));
        for _ in 0..ns {
            spans.push(decode_span(buf)?);
        }
        slow.push(SlowTrace { trace, class, root_dur_ns, is_error, captured_unix_ns, spans });
    }
    Ok(OpsReport { interval_ns, windows, generated_unix_ns, classes, slo, slow })
}

/// Appends one encoded request frame (header included) to `buf`, at
/// [`WIRE_VERSION`], carrying the calling thread's current span context
/// — propagation is automatic for any client running inside a span.
/// Request ID 0 and no deadline: the sequential-client form.
pub fn encode_request(req: &Request, buf: &mut BytesMut) {
    encode_request_v(req, WIRE_VERSION, trace::current(), 0, None, buf)
}

/// [`encode_request`] with an explicit request ID and optional deadline
/// budget — the multiplexed-client form. IDs on one connection must be
/// distinct while their requests are in flight.
pub fn encode_request_mux(
    req: &Request,
    req_id: u64,
    deadline_ms: Option<u32>,
    buf: &mut BytesMut,
) {
    encode_request_v(req, WIRE_VERSION, trace::current(), req_id, deadline_ms, buf)
}

/// Encodes a v3 (pre-request-ID) frame — what a one-version-old client
/// sends. Kept callable for compatibility tests. `OpsReport` does not
/// exist before v4 and panics here.
pub fn encode_request_v3(req: &Request, buf: &mut BytesMut) {
    assert!(!matches!(req, Request::OpsReport), "ops_report is a v4 request; v3 cannot encode it");
    encode_request_v(req, 3, trace::current(), 0, None, buf)
}

/// Encodes a v2 (pre-trace) request frame — what an un-upgraded client
/// sends. Kept callable for compatibility tests; `TraceDump` and the
/// streaming frames do not exist in v2 and panic here.
pub fn encode_request_v2(req: &Request, buf: &mut BytesMut) {
    assert!(
        !matches!(
            req,
            Request::TraceDump { .. }
                | Request::ApplyDelta { .. }
                | Request::DeltaBatch { .. }
                | Request::WhatIf { .. }
                | Request::Plan { .. }
                | Request::OpsReport
        ),
        "{} is a v3+ request; v2 cannot encode it",
        req.kind_label()
    );
    assert!(
        !matches!(
            req,
            Request::Measures { approx: true, .. } | Request::Query { approx: true, .. }
        ),
        "approximate mode is a v3 flag; v2 cannot encode it"
    );
    encode_request_v(req, 2, SpanContext::NONE, 0, None, buf)
}

/// Bit 0 of the v4 request flags byte: a `deadline ms: u32` field
/// follows. Remaining bits are reserved (must be zero).
const FLAG_DEADLINE: u8 = 0x01;

fn encode_request_v(
    req: &Request,
    version: u8,
    ctx: SpanContext,
    req_id: u64,
    deadline_ms: Option<u32>,
    buf: &mut BytesMut,
) {
    let body_start = begin_frame(buf, version);
    let put_ctx = |buf: &mut BytesMut| {
        if version >= 4 {
            buf.put_u64(req_id);
        }
        if version >= 3 {
            buf.put_u64(ctx.trace);
            buf.put_u64(ctx.span);
        }
        if version >= 4 {
            match deadline_ms {
                Some(ms) => {
                    buf.put_u8(FLAG_DEADLINE);
                    buf.put_u32(ms);
                }
                None => buf.put_u8(0),
            }
        }
    };
    match req {
        Request::Measures { category, approx } => {
            buf.put_u8(K_MEASURES);
            put_ctx(buf);
            buf.put_u8(category_byte(*category, *approx));
        }
        Request::Query { category, query, approx } => {
            buf.put_u8(K_QUERY);
            put_ctx(buf);
            buf.put_u8(category_byte(*category, *approx));
            encode_query(buf, query);
        }
        Request::AddPoi { category, pos } => {
            buf.put_u8(K_ADD_POI);
            put_ctx(buf);
            buf.put_u8(category_code(*category));
            buf.put_f64(pos.x);
            buf.put_f64(pos.y);
        }
        Request::AddBusRoute { stops, headway_s } => {
            buf.put_u8(K_ADD_BUS_ROUTE);
            put_ctx(buf);
            buf.put_u32(*headway_s);
            buf.put_u16(stops.len() as u16);
            for p in stops {
                buf.put_f64(p.x);
                buf.put_f64(p.y);
            }
        }
        Request::Stats => {
            buf.put_u8(K_STATS);
            put_ctx(buf);
        }
        Request::TraceDump { min_dur_ns, set_capture_ns } => {
            buf.put_u8(K_TRACE_DUMP);
            put_ctx(buf);
            buf.put_u64(*min_dur_ns);
            match set_capture_ns {
                Some(ns) => {
                    buf.put_u8(1);
                    buf.put_u64(*ns);
                }
                None => buf.put_u8(0),
            }
        }
        Request::ApplyDelta { seq, delta } => {
            buf.put_u8(K_APPLY_DELTA);
            put_ctx(buf);
            buf.put_u64(*seq);
            encode_delta(buf, delta);
        }
        Request::DeltaBatch { first_seq, deltas } => {
            buf.put_u8(K_DELTA_BATCH);
            put_ctx(buf);
            buf.put_u64(*first_seq);
            buf.put_u16(deltas.len().min(u16::MAX as usize) as u16);
            for d in deltas.iter().take(u16::MAX as usize) {
                encode_delta(buf, d);
            }
        }
        Request::WhatIf { category, scenarios, query } => {
            buf.put_u8(K_WHAT_IF);
            put_ctx(buf);
            buf.put_u8(category_code(*category));
            encode_query(buf, query);
            buf.put_u16(scenarios.len().min(u16::MAX as usize) as u16);
            for scenario in scenarios.iter().take(u16::MAX as usize) {
                buf.put_u16(scenario.len().min(u16::MAX as usize) as u16);
                for d in scenario.iter().take(u16::MAX as usize) {
                    encode_delta(buf, d);
                }
            }
        }
        Request::Plan { origin, dest, depart, day, max_transfers } => {
            buf.put_u8(K_PLAN);
            put_ctx(buf);
            buf.put_f64(origin.x);
            buf.put_f64(origin.y);
            buf.put_f64(dest.x);
            buf.put_f64(dest.y);
            buf.put_u32(depart.0);
            buf.put_u8(day.index() as u8);
            match max_transfers {
                Some(k) => {
                    buf.put_u8(1);
                    buf.put_u8(*k);
                }
                None => buf.put_u8(0),
            }
        }
        Request::OpsReport => {
            buf.put_u8(K_OPS_REPORT);
            put_ctx(buf);
        }
    }
    end_frame(buf, body_start);
}

/// Appends one encoded response frame (header included) to `buf`, at
/// [`WIRE_VERSION`], echoing request ID 0.
pub fn encode_response(resp: &Response, buf: &mut BytesMut) {
    encode_response_to(resp, WIRE_VERSION, 0, buf)
}

/// Encodes a response stamped with the version the requester spoke — a
/// v2 client's `split_frame` hard-rejects any other version byte, so
/// answering v2 requests at v4 would break exactly the peers the
/// [`MIN_WIRE_VERSION`] floor is meant to keep alive. The response body
/// layout is identical across versions; v4 frames additionally echo the
/// request's ID right after the kind byte (`req_id` is ignored for
/// older versions).
pub fn encode_response_to(resp: &Response, version: u8, req_id: u64, buf: &mut BytesMut) {
    let body_start = begin_frame(buf, version);
    let put_req_id = |buf: &mut BytesMut| {
        if version >= 4 {
            buf.put_u64(req_id);
        }
    };
    match resp {
        Response::Measures(ms) => {
            buf.put_u8(K_R_MEASURES);
            put_req_id(buf);
            buf.put_u32(ms.len() as u32);
            for m in ms {
                buf.put_u32(m.zone.0);
                buf.put_f64(m.mac);
                buf.put_f64(m.acsd);
            }
        }
        Response::Query(a) => {
            buf.put_u8(K_R_QUERY);
            put_req_id(buf);
            encode_answer(buf, a);
        }
        Response::AddPoi { poi_id } => {
            buf.put_u8(K_R_ADD_POI);
            put_req_id(buf);
            buf.put_u32(*poi_id);
        }
        Response::AddBusRoute { zones_rebuilt } => {
            buf.put_u8(K_R_ADD_BUS_ROUTE);
            put_req_id(buf);
            buf.put_u32(*zones_rebuilt);
        }
        Response::Stats(s) => {
            buf.put_u8(K_R_STATS);
            put_req_id(buf);
            buf.put_u64(s.pipeline_runs);
            buf.put_u64(s.requests_served);
            buf.put_u16(s.workers);
            buf.put_u8(s.cached.len() as u8);
            for c in &s.cached {
                buf.put_u8(category_code(*c));
            }
            encode_snapshot(buf, &s.metrics);
        }
        Response::TraceDump(spans) => {
            buf.put_u8(K_R_TRACE_DUMP);
            put_req_id(buf);
            buf.put_u32(spans.len() as u32);
            for s in spans {
                encode_span(buf, s);
            }
        }
        Response::ApplyDelta(ack) => {
            buf.put_u8(K_R_APPLY_DELTA);
            put_req_id(buf);
            buf.put_u64(ack.seq);
            buf.put_u32(ack.zones_rebuilt);
            buf.put_u8(ack.replayed as u8);
        }
        Response::DeltaBatch { last_seq } => {
            buf.put_u8(K_R_DELTA_BATCH);
            put_req_id(buf);
            buf.put_u64(*last_seq);
        }
        Response::WhatIf(answers) => {
            buf.put_u8(K_R_WHAT_IF);
            put_req_id(buf);
            buf.put_u16(answers.len().min(u16::MAX as usize) as u16);
            for a in answers.iter().take(u16::MAX as usize) {
                encode_answer(buf, &a.answer);
                buf.put_u64(a.overlay_bytes);
            }
        }
        Response::Plan(journeys) => {
            buf.put_u8(K_R_PLAN);
            put_req_id(buf);
            buf.put_u16(journeys.len().min(u16::MAX as usize) as u16);
            for j in journeys.iter().take(u16::MAX as usize) {
                encode_journey(buf, j);
            }
        }
        Response::OpsReport(report) => {
            buf.put_u8(K_R_OPS_REPORT);
            put_req_id(buf);
            encode_ops_report(buf, report);
        }
        Response::Error { code, message } => {
            buf.put_u8(K_R_ERROR);
            put_req_id(buf);
            buf.put_u8(*code as u8);
            put_string(buf, message);
        }
    }
    end_frame(buf, body_start);
}

/// Reserves the length prefix; returns the body offset for [`end_frame`].
fn begin_frame(buf: &mut BytesMut, version: u8) -> usize {
    buf.put_u32(0);
    let body_start = buf.len();
    buf.put_u8(version);
    body_start
}

/// Backpatches the length prefix once the body is written.
fn end_frame(buf: &mut BytesMut, body_start: usize) {
    let len = (buf.len() - body_start) as u32;
    buf[body_start - 4..body_start].copy_from_slice(&len.to_be_bytes());
}

/// Pulls one complete frame body (kind + payload) out of `buf` along
/// with its version byte, or `None` if more bytes are needed. Versions
/// in `MIN_WIRE_VERSION..=WIRE_VERSION` are accepted.
fn split_frame(buf: &mut BytesMut) -> Result<Option<(u8, BytesMut)>, CodecError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_LEN {
        return Err(CodecError::FrameTooLarge(len));
    }
    if len < 2 {
        return Err(CodecError::BadPayload("frame shorter than header"));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    buf.advance(4);
    let mut frame = buf.split_to(len);
    let version = frame[0];
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
        return Err(CodecError::BadVersion(version));
    }
    frame.advance(1);
    Ok(Some((version, frame)))
}

/// Decodes one request from `buf` if a complete frame is buffered,
/// discarding version and trace context — the form tests and simple
/// tools want. Servers use [`decode_request_full`].
pub fn decode_request(buf: &mut BytesMut) -> Result<Option<Request>, CodecError> {
    Ok(decode_request_full(buf)?.map(|d| d.request))
}

/// Decodes one request plus its frame version and propagated trace
/// context (`SpanContext::NONE` for v2 frames or untraced v3 ones).
pub fn decode_request_full(buf: &mut BytesMut) -> Result<Option<DecodedRequest>, CodecError> {
    let Some((version, frame)) = split_frame(buf)? else { return Ok(None) };
    let mut p: &[u8] = &frame;
    let kind = take_u8(&mut p)?;
    let req_id = if version >= 4 { take_u64(&mut p)? } else { 0 };
    let ctx = if version >= 3 {
        SpanContext { trace: take_u64(&mut p)?, span: take_u64(&mut p)? }
    } else {
        SpanContext::NONE
    };
    let deadline_ms = if version >= 4 {
        let flags = take_u8(&mut p)?;
        if flags & !FLAG_DEADLINE != 0 {
            return Err(CodecError::BadPayload("unknown request flags"));
        }
        if flags & FLAG_DEADLINE != 0 {
            Some(take_u32(&mut p)?)
        } else {
            None
        }
    } else {
        None
    };
    let req = match kind {
        K_MEASURES => {
            let (category, approx) = category_and_approx(take_u8(&mut p)?)?;
            Request::Measures { category, approx }
        }
        K_QUERY => {
            let (category, approx) = category_and_approx(take_u8(&mut p)?)?;
            Request::Query { category, query: decode_query(&mut p)?, approx }
        }
        K_ADD_POI => Request::AddPoi {
            category: category_from(take_u8(&mut p)?)?,
            pos: Point::new(take_f64(&mut p)?, take_f64(&mut p)?),
        },
        K_ADD_BUS_ROUTE => {
            let headway_s = take_u32(&mut p)?;
            let n = take_u16(&mut p)? as usize;
            let mut stops = Vec::with_capacity(capped(n, p.remaining(), 16));
            for _ in 0..n {
                stops.push(Point::new(take_f64(&mut p)?, take_f64(&mut p)?));
            }
            Request::AddBusRoute { stops, headway_s }
        }
        K_STATS => Request::Stats,
        K_TRACE_DUMP => {
            let min_dur_ns = take_u64(&mut p)?;
            let set_capture_ns = match take_u8(&mut p)? {
                0 => None,
                1 => Some(take_u64(&mut p)?),
                _ => return Err(CodecError::BadPayload("bad set-capture flag")),
            };
            Request::TraceDump { min_dur_ns, set_capture_ns }
        }
        K_APPLY_DELTA => {
            let seq = take_u64(&mut p)?;
            let delta = decode_delta(&mut p)?;
            Request::ApplyDelta { seq, delta }
        }
        K_DELTA_BATCH => {
            let first_seq = take_u64(&mut p)?;
            let n = take_u16(&mut p)? as usize;
            let mut deltas = Vec::with_capacity(capped(n, p.remaining(), 5));
            for _ in 0..n {
                deltas.push(decode_delta(&mut p)?);
            }
            Request::DeltaBatch { first_seq, deltas }
        }
        K_WHAT_IF => {
            let category = category_from(take_u8(&mut p)?)?;
            let query = decode_query(&mut p)?;
            let k = take_u16(&mut p)? as usize;
            let mut scenarios = Vec::with_capacity(capped(k, p.remaining(), 2));
            for _ in 0..k {
                let n = take_u16(&mut p)? as usize;
                let mut deltas = Vec::with_capacity(capped(n, p.remaining(), 5));
                for _ in 0..n {
                    deltas.push(decode_delta(&mut p)?);
                }
                scenarios.push(deltas);
            }
            Request::WhatIf { category, scenarios, query }
        }
        K_PLAN => {
            let origin = Point::new(take_f64(&mut p)?, take_f64(&mut p)?);
            let dest = Point::new(take_f64(&mut p)?, take_f64(&mut p)?);
            let depart = Stime(take_u32(&mut p)?);
            let day = *DayOfWeek::ALL
                .get(take_u8(&mut p)? as usize)
                .ok_or(CodecError::BadPayload("unknown day of week"))?;
            let max_transfers = match take_u8(&mut p)? {
                0 => None,
                1 => Some(take_u8(&mut p)?),
                _ => return Err(CodecError::BadPayload("bad max-transfers flag")),
            };
            Request::Plan { origin, dest, depart, day, max_transfers }
        }
        K_OPS_REPORT => {
            if version < 4 {
                return Err(CodecError::BadPayload("ops_report requires wire v4"));
            }
            Request::OpsReport
        }
        other => return Err(CodecError::BadKind(other)),
    };
    if p.remaining() != 0 {
        return Err(CodecError::BadPayload("trailing bytes in frame"));
    }
    Ok(Some(DecodedRequest { request: req, ctx, version, req_id, deadline_ms }))
}

/// Decodes one response from `buf` if a complete frame is buffered,
/// discarding the frame identity — the sequential-client form.
/// Multiplexing clients use [`decode_response_full`].
pub fn decode_response(buf: &mut BytesMut) -> Result<Option<Response>, CodecError> {
    Ok(decode_response_full(buf)?.map(|d| d.response))
}

/// Decodes one response plus its echoed request ID and frame version.
pub fn decode_response_full(buf: &mut BytesMut) -> Result<Option<DecodedResponse>, CodecError> {
    let Some((version, frame)) = split_frame(buf)? else { return Ok(None) };
    let mut p: &[u8] = &frame;
    let kind = take_u8(&mut p)?;
    let req_id = if version >= 4 { take_u64(&mut p)? } else { 0 };
    let resp = match kind {
        K_R_MEASURES => {
            let n = take_u32(&mut p)? as usize;
            let mut ms = Vec::with_capacity(capped(n, p.remaining(), 20));
            for _ in 0..n {
                ms.push(ZoneMeasures {
                    zone: ZoneId(take_u32(&mut p)?),
                    mac: take_f64(&mut p)?,
                    acsd: take_f64(&mut p)?,
                });
            }
            Response::Measures(ms)
        }
        K_R_QUERY => Response::Query(decode_answer(&mut p)?),
        K_R_ADD_POI => Response::AddPoi { poi_id: take_u32(&mut p)? },
        K_R_ADD_BUS_ROUTE => Response::AddBusRoute { zones_rebuilt: take_u32(&mut p)? },
        K_R_STATS => {
            let pipeline_runs = take_u64(&mut p)?;
            let requests_served = take_u64(&mut p)?;
            let workers = take_u16(&mut p)?;
            let n = take_u8(&mut p)? as usize;
            let mut cached = Vec::with_capacity(n);
            for _ in 0..n {
                cached.push(category_from(take_u8(&mut p)?)?);
            }
            let metrics = decode_snapshot(&mut p)?;
            Response::Stats(StatsReply { pipeline_runs, requests_served, cached, workers, metrics })
        }
        K_R_TRACE_DUMP => {
            let n = take_u32(&mut p)? as usize;
            let mut spans = Vec::with_capacity(capped(n, p.remaining(), 43));
            for _ in 0..n {
                spans.push(decode_span(&mut p)?);
            }
            Response::TraceDump(spans)
        }
        K_R_APPLY_DELTA => {
            let seq = take_u64(&mut p)?;
            let zones_rebuilt = take_u32(&mut p)?;
            let replayed = match take_u8(&mut p)? {
                0 => false,
                1 => true,
                _ => return Err(CodecError::BadPayload("bad replayed flag")),
            };
            Response::ApplyDelta(DeltaAck { seq, zones_rebuilt, replayed })
        }
        K_R_DELTA_BATCH => Response::DeltaBatch { last_seq: take_u64(&mut p)? },
        K_R_WHAT_IF => {
            let n = take_u16(&mut p)? as usize;
            let mut answers = Vec::with_capacity(capped(n, p.remaining(), 9));
            for _ in 0..n {
                let answer = decode_answer(&mut p)?;
                let overlay_bytes = take_u64(&mut p)?;
                answers.push(WhatIfAnswer { answer, overlay_bytes });
            }
            Response::WhatIf(answers)
        }
        K_R_PLAN => {
            let n = take_u16(&mut p)? as usize;
            let mut journeys = Vec::with_capacity(capped(n, p.remaining(), 10));
            for _ in 0..n {
                journeys.push(decode_journey(&mut p)?);
            }
            Response::Plan(journeys)
        }
        K_R_OPS_REPORT => Response::OpsReport(decode_ops_report(&mut p)?),
        K_R_ERROR => {
            let code = ErrorCode::from_u8(take_u8(&mut p)?)
                .ok_or(CodecError::BadPayload("unknown error code"))?;
            let message = take_string(&mut p)?;
            Response::Error { code, message }
        }
        other => return Err(CodecError::BadKind(other)),
    };
    if p.remaining() != 0 {
        return Err(CodecError::BadPayload("trailing bytes in frame"));
    }
    Ok(Some(DecodedResponse { response: resp, req_id, version }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip_request(req: &Request) -> Request {
        let mut buf = BytesMut::new();
        encode_request(req, &mut buf);
        let got = decode_request(&mut buf).unwrap().expect("complete frame");
        assert!(buf.is_empty(), "decoder must consume the whole frame");
        got
    }

    fn roundtrip_response(resp: &Response) -> Response {
        let mut buf = BytesMut::new();
        encode_response(resp, &mut buf);
        let got = decode_response(&mut buf).unwrap().expect("complete frame");
        assert!(buf.is_empty());
        got
    }

    /// A snapshot touching every sample kind, including a histogram with
    /// sparse buckets, so the stats roundtrip exercises the whole wire
    /// shape.
    fn sample_metrics() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![
                CounterSample { name: "engine.cache.hits".into(), value: 42 },
                CounterSample { name: "serve.requests".into(), value: u64::MAX },
            ],
            gauges: vec![GaugeSample { name: "serve.workers".into(), value: 8 }],
            histograms: vec![HistogramSample {
                name: "serve.request.query".into(),
                count: 1000,
                sum_ns: 14_000_000,
                max_ns: 90_000,
                p50_ns: 13_000,
                p95_ns: 40_000,
                p99_ns: 88_000,
                buckets: vec![(120, 900), (121, 80), (200, 20)],
            }],
        }
    }

    #[test]
    fn request_kinds_roundtrip() {
        let reqs = [
            Request::Measures { category: PoiCategory::School, approx: false },
            Request::Measures { category: PoiCategory::Hospital, approx: true },
            Request::Query {
                category: PoiCategory::Hospital,
                query: AccessQuery::AtRisk { threshold_factor: 1.5 },
                approx: false,
            },
            Request::Query {
                category: PoiCategory::JobCenter,
                query: AccessQuery::Fairness { weight: DemographicWeight::Unemployed },
                approx: false,
            },
            Request::Query {
                category: PoiCategory::VaxCenter,
                query: AccessQuery::WorstZones { k: 7 },
                approx: false,
            },
            Request::Query {
                category: PoiCategory::School,
                query: AccessQuery::PointAccess { x: 1312.5, y: -40.0 },
                approx: true,
            },
            Request::AddPoi { category: PoiCategory::VaxCenter, pos: Point::new(1234.5, -6.25) },
            Request::AddBusRoute {
                stops: vec![Point::new(0.0, 0.0), Point::new(10.0, 20.0)],
                headway_s: 600,
            },
            Request::Stats,
        ];
        for r in &reqs {
            assert_eq!(&roundtrip_request(r), r);
        }
    }

    #[test]
    fn response_kinds_roundtrip() {
        let resps = [
            Response::Measures(vec![
                ZoneMeasures { zone: ZoneId(0), mac: 10.0, acsd: 0.5 },
                ZoneMeasures { zone: ZoneId(7), mac: 22.25, acsd: 1.75 },
            ]),
            Response::Query(QueryAnswer::MeanAccess {
                mean_mac: 31.5,
                mean_acsd: 2.0,
                n_zones: 120,
            }),
            Response::Query(QueryAnswer::Classification(vec![
                (ZoneId(1), AccessClass::Best),
                (ZoneId(2), AccessClass::Worst),
            ])),
            Response::Query(QueryAnswer::AtRisk(vec![ZoneId(3), ZoneId(9)])),
            Response::Query(QueryAnswer::Fairness(0.83)),
            Response::Query(QueryAnswer::WorstZones(vec![(ZoneId(5), 99.5)])),
            Response::Query(QueryAnswer::PointAccess { zone: ZoneId(12), mac: 840.5, acsd: 2.5 }),
            Response::AddPoi { poi_id: 41 },
            Response::AddBusRoute { zones_rebuilt: 17 },
            Response::Stats(StatsReply {
                pipeline_runs: 3,
                requests_served: 1000,
                cached: vec![PoiCategory::School, PoiCategory::JobCenter],
                workers: 8,
                metrics: sample_metrics(),
            }),
            Response::Error {
                code: ErrorCode::Invalid,
                message: "a route needs at least two stops".into(),
            },
        ];
        for r in &resps {
            assert_eq!(&roundtrip_response(r), r);
        }
    }

    #[test]
    fn stats_with_empty_metrics_roundtrips() {
        let resp = Response::Stats(StatsReply {
            pipeline_runs: 0,
            requests_served: 0,
            cached: Vec::new(),
            workers: 1,
            metrics: MetricsSnapshot::default(),
        });
        assert_eq!(roundtrip_response(&resp), resp);
    }

    /// Chopping bytes out of the embedded snapshot must surface as a
    /// payload error, never a panic or a silently-shorter snapshot.
    #[test]
    fn truncated_stats_metrics_is_rejected() {
        let resp = Response::Stats(StatsReply {
            pipeline_runs: 1,
            requests_served: 2,
            cached: Vec::new(),
            workers: 4,
            metrics: sample_metrics(),
        });
        let mut full = BytesMut::new();
        encode_response(&resp, &mut full);
        // Drop the last 8 bytes of the frame body and fix the prefix.
        let mut raw = full.to_vec();
        raw.truncate(raw.len() - 8);
        let len = (raw.len() - 4) as u32;
        raw[..4].copy_from_slice(&len.to_be_bytes());
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&raw);
        assert!(matches!(decode_response(&mut buf), Err(CodecError::BadPayload(_))));
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let mut full = BytesMut::new();
        encode_request(&Request::Stats, &mut full);
        for cut in 0..full.len() {
            let mut partial = BytesMut::new();
            partial.extend_from_slice(&full[..cut]);
            assert_eq!(decode_request(&mut partial), Ok(None), "cut at {cut}");
        }
    }

    #[test]
    fn pipelined_frames_decode_in_order() {
        let mut buf = BytesMut::new();
        encode_request(&Request::Stats, &mut buf);
        encode_request(
            &Request::Measures { category: PoiCategory::School, approx: false },
            &mut buf,
        );
        assert_eq!(decode_request(&mut buf).unwrap(), Some(Request::Stats));
        assert_eq!(
            decode_request(&mut buf).unwrap(),
            Some(Request::Measures { category: PoiCategory::School, approx: false })
        );
        assert_eq!(decode_request(&mut buf).unwrap(), None);
    }

    #[test]
    fn version_outside_accepted_range_is_rejected() {
        for bad in [0u8, 1, WIRE_VERSION + 1, 0xFF] {
            let mut buf = BytesMut::new();
            encode_request(&Request::Stats, &mut buf);
            buf[4] = bad;
            assert_eq!(decode_request(&mut buf), Err(CodecError::BadVersion(bad)), "v{bad}");
        }
    }

    #[test]
    fn trace_dump_request_roundtrips() {
        for req in [
            Request::TraceDump { min_dur_ns: 0, set_capture_ns: None },
            Request::TraceDump { min_dur_ns: 50_000, set_capture_ns: Some(25_000) },
            Request::TraceDump { min_dur_ns: u64::MAX, set_capture_ns: Some(0) },
        ] {
            assert_eq!(roundtrip_request(&req), req);
        }
    }

    #[test]
    fn trace_dump_response_roundtrips() {
        let spans = vec![
            OwnedSpan {
                trace: 0xDEAD_BEEF,
                span: 2,
                parent: 0,
                name: "shard.request".into(),
                start_unix_ns: 1_700_000_000_000_000_000,
                dur_ns: 1_234_567,
                attrs: vec![("shard".into(), 3)],
            },
            OwnedSpan {
                trace: 0xDEAD_BEEF,
                span: 3,
                parent: 2,
                name: "raptor.query".into(),
                start_unix_ns: 1_700_000_000_000_100_000,
                dur_ns: 890,
                attrs: vec![("rounds".into(), 4), ("patterns_scanned".into(), 128)],
            },
        ];
        let resp = Response::TraceDump(spans);
        assert_eq!(roundtrip_response(&resp), resp);
        assert_eq!(roundtrip_response(&Response::TraceDump(vec![])), Response::TraceDump(vec![]));
    }

    fn sample_deltas() -> Vec<Delta> {
        vec![
            Delta::TripDelay { trip: TripId(7), delay_secs: 300 },
            Delta::TripCancel { trip: TripId(0) },
            Delta::RouteRemove { route: RouteId(3) },
            Delta::ServiceAlert { route: RouteId(1), message: "snow detour".into() },
            Delta::AddRoute {
                stops: vec![Point::new(0.5, -1.25), Point::new(900.0, 42.0)],
                headway_s: 480,
            },
        ]
    }

    #[test]
    fn streaming_request_kinds_roundtrip() {
        for d in sample_deltas() {
            let req = Request::ApplyDelta { seq: 17, delta: d };
            assert_eq!(roundtrip_request(&req), req);
        }
        let reqs = [
            Request::ApplyDelta {
                seq: 0,
                delta: Delta::TripDelay { trip: TripId(1), delay_secs: 1 },
            },
            Request::DeltaBatch { first_seq: 1, deltas: sample_deltas() },
            Request::DeltaBatch { first_seq: u64::MAX, deltas: vec![] },
            Request::WhatIf {
                category: PoiCategory::Hospital,
                scenarios: vec![
                    vec![],
                    sample_deltas(),
                    vec![Delta::TripCancel { trip: TripId(9) }],
                ],
                query: AccessQuery::WorstZones { k: 5 },
            },
            Request::WhatIf {
                category: PoiCategory::School,
                scenarios: vec![],
                query: AccessQuery::MeanAccess,
            },
        ];
        for r in &reqs {
            assert_eq!(&roundtrip_request(r), r);
        }
    }

    #[test]
    fn streaming_response_kinds_roundtrip() {
        let resps = [
            Response::ApplyDelta(DeltaAck { seq: 1, zones_rebuilt: 42, replayed: false }),
            Response::ApplyDelta(DeltaAck { seq: u64::MAX, zones_rebuilt: 0, replayed: true }),
            Response::DeltaBatch { last_seq: 12 },
            Response::WhatIf(vec![]),
            Response::WhatIf(vec![
                WhatIfAnswer {
                    answer: QueryAnswer::MeanAccess { mean_mac: 9.5, mean_acsd: 1.5, n_zones: 3 },
                    overlay_bytes: 4096,
                },
                WhatIfAnswer { answer: QueryAnswer::Fairness(0.7), overlay_bytes: 0 },
            ]),
            Response::Error { code: ErrorCode::SeqGap, message: "have 2, got 5".into() },
        ];
        for r in &resps {
            assert_eq!(&roundtrip_response(r), r);
        }
    }

    fn sample_journey() -> Journey {
        Journey {
            depart: Stime(27000),
            arrive: Stime(29512),
            legs: vec![
                Leg::Walk { secs: 120, to_stop: Some(StopId(4)) },
                Leg::Wait { secs: 80, at_stop: StopId(4) },
                Leg::Ride {
                    trip: TripId(9),
                    route: RouteId(2),
                    from_stop: StopId(4),
                    to_stop: StopId(11),
                    board: Stime(27200),
                    alight: Stime(29400),
                },
                Leg::Walk { secs: 112, to_stop: None },
            ],
        }
    }

    #[test]
    fn plan_request_kinds_roundtrip() {
        let reqs = [
            Request::Plan {
                origin: Point::new(100.0, 250.5),
                dest: Point::new(-3.0, 9000.0),
                depart: Stime(7 * 3600 + 1800),
                day: DayOfWeek::Tuesday,
                max_transfers: Some(1),
            },
            Request::Plan {
                origin: Point::new(0.0, 0.0),
                dest: Point::new(1.0, 1.0),
                depart: Stime(0),
                day: DayOfWeek::Sunday,
                max_transfers: None,
            },
        ];
        for r in &reqs {
            assert_eq!(&roundtrip_request(r), r);
        }
    }

    #[test]
    fn plan_response_kinds_roundtrip() {
        let resps = [
            Response::Plan(vec![]),
            Response::Plan(vec![Journey::walk_only(Stime(100), 340)]),
            Response::Plan(vec![sample_journey(), Journey::walk_only(Stime(27000), 3000)]),
        ];
        for r in &resps {
            assert_eq!(&roundtrip_response(r), r);
        }
    }

    fn sample_ops_report() -> OpsReport {
        OpsReport {
            interval_ns: 10_000_000_000,
            windows: 12,
            generated_unix_ns: 1_700_000_000_000_000_000,
            classes: vec![
                ClassWindow {
                    class: "query".into(),
                    span_ns: 10_000_000_000,
                    count: 900,
                    sum_ns: 45_000_000,
                    max_ns: 2_000_000,
                    buckets: vec![(100, 880), (150, 20)],
                    shed: 3,
                },
                ClassWindow {
                    class: "edits".into(),
                    span_ns: 10_000_000_000,
                    count: 0,
                    sum_ns: 0,
                    max_ns: 0,
                    buckets: vec![],
                    shed: 0,
                },
            ],
            slo: vec![SloStatus {
                class: "query".into(),
                objective_milli: 999,
                threshold_ns: 50_000_000,
                fast: BurnWindow { span_ns: 300_000_000_000, total: 900, bad: 23 },
                slow: BurnWindow { span_ns: 3_600_000_000_000, total: 12_000, bad: 23 },
                shed_total: 3,
            }],
            slow: vec![SlowTrace {
                trace: 0xFEED_F00D,
                class: "query".into(),
                root_dur_ns: 77_000_000,
                is_error: true,
                captured_unix_ns: 1_700_000_000_000_000_111,
                spans: vec![OwnedSpan {
                    trace: 0xFEED_F00D,
                    span: 1,
                    parent: 0,
                    name: "serve.request".into(),
                    start_unix_ns: 1_700_000_000_000_000_000,
                    dur_ns: 77_000_000,
                    attrs: vec![("queue_wait_ns".into(), 12)],
                }],
            }],
        }
    }

    #[test]
    fn ops_report_request_roundtrips() {
        assert_eq!(roundtrip_request(&Request::OpsReport), Request::OpsReport);
    }

    #[test]
    fn ops_report_response_roundtrips() {
        let resp = Response::OpsReport(sample_ops_report());
        assert_eq!(roundtrip_response(&resp), resp);
        let empty = Response::OpsReport(OpsReport::default());
        assert_eq!(roundtrip_response(&empty), empty);
    }

    #[test]
    #[should_panic(expected = "v3+ request")]
    fn v2_cannot_encode_ops_report() {
        let mut buf = BytesMut::new();
        encode_request_v2(&Request::OpsReport, &mut buf);
    }

    #[test]
    #[should_panic(expected = "v4 request")]
    fn v3_cannot_encode_ops_report() {
        let mut buf = BytesMut::new();
        encode_request_v3(&Request::OpsReport, &mut buf);
    }

    /// A forged pre-v4 frame claiming the ops-report kind must be
    /// rejected — the kind does not exist in those versions.
    #[test]
    fn pre_v4_ops_report_frame_is_rejected() {
        let mut buf = BytesMut::new();
        let body_start = begin_frame(&mut buf, 3);
        buf.put_u8(K_OPS_REPORT);
        buf.put_u64(0); // trace
        buf.put_u64(0); // span
        end_frame(&mut buf, body_start);
        assert_eq!(
            decode_request(&mut buf),
            Err(CodecError::BadPayload("ops_report requires wire v4"))
        );
    }

    #[test]
    #[should_panic(expected = "v3+ request")]
    fn v2_cannot_encode_plan() {
        let mut buf = BytesMut::new();
        encode_request_v2(
            &Request::Plan {
                origin: Point::new(0.0, 0.0),
                dest: Point::new(1.0, 1.0),
                depart: Stime(0),
                day: DayOfWeek::Monday,
                max_transfers: None,
            },
            &mut buf,
        );
    }

    /// Truncating a delta frame mid-payload must be a payload error (or a
    /// wait-for-more on a clean length cut), never a panic.
    #[test]
    fn truncated_delta_batch_is_rejected() {
        let req = Request::DeltaBatch { first_seq: 1, deltas: sample_deltas() };
        let mut full = BytesMut::new();
        encode_request(&req, &mut full);
        let mut raw = full.to_vec();
        raw.truncate(raw.len() - 6);
        let len = (raw.len() - 4) as u32;
        raw[..4].copy_from_slice(&len.to_be_bytes());
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&raw);
        assert!(matches!(decode_request(&mut buf), Err(CodecError::BadPayload(_))));
    }

    #[test]
    #[should_panic(expected = "v3+ request")]
    fn v2_cannot_encode_apply_delta() {
        let mut buf = BytesMut::new();
        encode_request_v2(
            &Request::ApplyDelta { seq: 0, delta: Delta::TripCancel { trip: TripId(0) } },
            &mut buf,
        );
    }

    #[test]
    #[should_panic(expected = "approximate mode is a v3 flag")]
    fn v2_cannot_encode_approx_requests() {
        let mut buf = BytesMut::new();
        encode_request_v2(
            &Request::Measures { category: PoiCategory::School, approx: true },
            &mut buf,
        );
    }

    #[test]
    #[should_panic(expected = "v3+ request")]
    fn v2_cannot_encode_what_if() {
        let mut buf = BytesMut::new();
        encode_request_v2(
            &Request::WhatIf {
                category: PoiCategory::School,
                scenarios: vec![],
                query: AccessQuery::MeanAccess,
            },
            &mut buf,
        );
    }

    /// The v2↔v3 compatibility contract: a pre-trace v2 client's frames
    /// decode on a v3 server (with an empty context), and the server's
    /// v2-stamped replies carry the version byte that client insists on.
    #[test]
    fn v2_request_frames_decode_with_empty_context() {
        let reqs = [
            Request::Measures { category: PoiCategory::School, approx: false },
            Request::Query {
                category: PoiCategory::Hospital,
                query: AccessQuery::MeanAccess,
                approx: false,
            },
            Request::AddPoi { category: PoiCategory::VaxCenter, pos: Point::new(3.0, 4.0) },
            Request::AddBusRoute {
                stops: vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)],
                headway_s: 300,
            },
            Request::Stats,
        ];
        for r in &reqs {
            let mut buf = BytesMut::new();
            encode_request_v2(r, &mut buf);
            assert_eq!(buf[4], 2, "v2 frames carry version byte 2");
            let d = decode_request_full(&mut buf).unwrap().expect("complete frame");
            assert!(buf.is_empty());
            assert_eq!(&d.request, r);
            assert_eq!(d.version, 2);
            assert_eq!(d.ctx, SpanContext::NONE);
        }
    }

    #[test]
    fn responses_stamped_v2_roundtrip_and_carry_v2_byte() {
        let resp = Response::AddPoi { poi_id: 9 };
        let mut buf = BytesMut::new();
        encode_response_to(&resp, 2, 0, &mut buf);
        assert_eq!(buf[4], 2);
        assert_eq!(decode_response(&mut buf).unwrap(), Some(resp));
    }

    #[test]
    fn v4_requests_roundtrip_request_id_and_deadline() {
        let mut buf = BytesMut::new();
        encode_request_mux(&Request::Stats, 0xABCD_EF01_2345_6789, Some(1500), &mut buf);
        let d = decode_request_full(&mut buf).unwrap().expect("complete frame");
        assert!(buf.is_empty());
        assert_eq!(d.version, WIRE_VERSION);
        assert_eq!(d.req_id, 0xABCD_EF01_2345_6789);
        assert_eq!(d.deadline_ms, Some(1500));

        encode_request_mux(&Request::Stats, 7, None, &mut buf);
        let d = decode_request_full(&mut buf).unwrap().expect("complete frame");
        assert_eq!(d.req_id, 7);
        assert_eq!(d.deadline_ms, None);
    }

    #[test]
    fn v4_responses_echo_the_request_id() {
        let resp = Response::AddPoi { poi_id: 9 };
        let mut buf = BytesMut::new();
        encode_response_to(&resp, WIRE_VERSION, 42, &mut buf);
        let d = decode_response_full(&mut buf).unwrap().expect("complete frame");
        assert_eq!(d.req_id, 42);
        assert_eq!(d.version, WIRE_VERSION);
        assert_eq!(d.response, resp);

        // Pre-v4 responses have no ID on the wire and report 0.
        encode_response_to(&resp, 3, 42, &mut buf);
        let d = decode_response_full(&mut buf).unwrap().expect("complete frame");
        assert_eq!(d.req_id, 0);
        assert_eq!(d.version, 3);
    }

    #[test]
    fn v3_request_frames_still_decode_with_zero_request_id() {
        let req = Request::Query {
            category: PoiCategory::Hospital,
            query: AccessQuery::MeanAccess,
            approx: true,
        };
        let mut buf = BytesMut::new();
        encode_request_v3(&req, &mut buf);
        assert_eq!(buf[4], 3);
        let d = decode_request_full(&mut buf).unwrap().expect("complete frame");
        assert_eq!(d.request, req);
        assert_eq!(d.version, 3);
        assert_eq!(d.req_id, 0);
        assert_eq!(d.deadline_ms, None);
    }

    #[test]
    fn unknown_request_flags_are_rejected() {
        let mut buf = BytesMut::new();
        encode_request_mux(&Request::Stats, 1, None, &mut buf);
        // The flags byte sits after len(4) + ver(1) + kind(1) + req id(8)
        // + trace ctx(16).
        let flags_at = 4 + 1 + 1 + 8 + 16;
        buf[flags_at] = 0x80;
        assert_eq!(
            decode_request_full(&mut buf).map(|d| d.map(|d| d.request)),
            Err(CodecError::BadPayload("unknown request flags"))
        );
    }

    #[test]
    fn overloaded_error_code_roundtrips() {
        let resp = Response::Error {
            code: ErrorCode::Overloaded,
            message: "estimated queue wait exceeds server budget".into(),
        };
        assert_eq!(roundtrip_response(&resp), resp);
    }

    #[test]
    fn current_requests_carry_the_current_span_context() {
        let ctx = SpanContext { trace: 0x1234_5678_9ABC_DEF0, span: 42 };
        let _g = trace::attach(ctx);
        let mut buf = BytesMut::new();
        encode_request(&Request::Stats, &mut buf);
        let d = decode_request_full(&mut buf).unwrap().expect("complete frame");
        assert_eq!(d.version, WIRE_VERSION);
        // Under obs-off the attach above is a no-op and the frame
        // carries the empty context; the layout is identical either way.
        let want = if staq_obs::obs_enabled() { ctx } else { SpanContext::NONE };
        assert_eq!(d.ctx, want);
    }

    #[test]
    fn oversized_frame_is_rejected_before_buffering() {
        let mut buf = BytesMut::new();
        buf.put_u32((MAX_FRAME_LEN + 1) as u32);
        assert_eq!(decode_request(&mut buf), Err(CodecError::FrameTooLarge(MAX_FRAME_LEN + 1)));
    }

    #[test]
    fn trailing_garbage_in_frame_is_rejected() {
        let mut buf = BytesMut::new();
        encode_request(&Request::Stats, &mut buf);
        // Extend payload by one byte and fix up the length prefix.
        let mut raw = buf.to_vec();
        raw.push(0xAB);
        let len = (raw.len() - 4) as u32;
        raw[..4].copy_from_slice(&len.to_be_bytes());
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&raw);
        assert_eq!(
            decode_request(&mut buf),
            Err(CodecError::BadPayload("trailing bytes in frame"))
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn arbitrary_query_requests_roundtrip(
            cat in 0usize..4,
            tag in 0u8..6,
            x in -1e6f64..1e6,
            k in 0u32..1000,
            approx_bit in 0u8..2,
        ) {
            let approx = approx_bit == 1;
            let category = PoiCategory::ALL[cat];
            let query = match tag {
                0 => AccessQuery::MeanAccess,
                1 => AccessQuery::Classification,
                2 => AccessQuery::AtRisk { threshold_factor: x },
                3 => AccessQuery::Fairness { weight: DemographicWeight::Children },
                4 => AccessQuery::WorstZones { k: k as usize },
                _ => AccessQuery::PointAccess { x, y: x * 0.5 - 12.0 },
            };
            let req = Request::Query { category, query, approx };
            prop_assert_eq!(roundtrip_request(&req), req);
        }

        #[test]
        fn arbitrary_measure_responses_roundtrip(
            n in 0usize..64,
            seed in 0u64..1000,
        ) {
            let ms: Vec<ZoneMeasures> = (0..n)
                .map(|i| ZoneMeasures {
                    zone: ZoneId(i as u32),
                    mac: (seed as f64) * 0.25 + i as f64,
                    acsd: i as f64 * 0.125,
                })
                .collect();
            let resp = Response::Measures(ms);
            prop_assert_eq!(roundtrip_response(&resp), resp);
        }
    }
}

//! Simple polygons: containment, area, centroid.
//!
//! Walking isochrones (paper §IV-A, Fig. 2C) are represented as simple
//! polygons; interchange identification tests whether a candidate point lies
//! inside another zone's isochrone polygon.

use crate::bbox::BBox;
use crate::point::Point;
use serde::{Deserialize, Serialize};

/// A simple (non-self-intersecting) polygon given by its vertex ring.
///
/// The ring is stored *open* (the closing edge from last vertex back to the
/// first is implicit). Orientation may be either winding; area and centroid
/// normalize sign internally.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    ring: Vec<Point>,
    bounds: BBox,
}

impl Polygon {
    /// Creates a polygon from a vertex ring. Panics if fewer than 3 vertices
    /// are supplied — a degenerate ring cannot bound any area and upstream
    /// callers (isochrone construction) always produce at least a triangle.
    pub fn new(ring: Vec<Point>) -> Self {
        assert!(ring.len() >= 3, "polygon needs >= 3 vertices, got {}", ring.len());
        let bounds = BBox::of_points(&ring);
        Polygon { ring, bounds }
    }

    /// The vertex ring (open; closing edge implicit).
    #[inline]
    pub fn ring(&self) -> &[Point] {
        &self.ring
    }

    /// Precomputed bounding box.
    #[inline]
    pub fn bounds(&self) -> &BBox {
        &self.bounds
    }

    /// Ray-casting point-in-polygon test (even-odd rule). Points exactly on
    /// an edge may report either side; isochrone membership at sub-meter
    /// precision is not meaningful for accessibility analysis.
    pub fn contains(&self, p: &Point) -> bool {
        if !self.bounds.contains(p) {
            return false;
        }
        let mut inside = false;
        let n = self.ring.len();
        let mut j = n - 1;
        for i in 0..n {
            let a = self.ring[i];
            let b = self.ring[j];
            if (a.y > p.y) != (b.y > p.y) {
                let x_cross = (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x;
                if p.x < x_cross {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Unsigned area (shoelace formula), in square meters.
    pub fn area(&self) -> f64 {
        let n = self.ring.len();
        let mut acc = 0.0;
        let mut j = n - 1;
        for i in 0..n {
            let a = self.ring[j];
            let b = self.ring[i];
            acc += (a.x * b.y) - (b.x * a.y);
            j = i;
        }
        acc.abs() * 0.5
    }

    /// Area centroid. Falls back to the vertex mean for (near-)zero-area
    /// rings, where the area-weighted formula is numerically undefined.
    pub fn centroid(&self) -> Point {
        let n = self.ring.len();
        let mut cx = 0.0;
        let mut cy = 0.0;
        let mut a2 = 0.0;
        let mut j = n - 1;
        for i in 0..n {
            let p = self.ring[j];
            let q = self.ring[i];
            let cross = p.x * q.y - q.x * p.y;
            cx += (p.x + q.x) * cross;
            cy += (p.y + q.y) * cross;
            a2 += cross;
            j = i;
        }
        if a2.abs() < 1e-12 {
            let inv = 1.0 / n as f64;
            let (sx, sy) = self.ring.iter().fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
            return Point::new(sx * inv, sy * inv);
        }
        let inv = 1.0 / (3.0 * a2);
        Point::new(cx * inv, cy * inv)
    }

    /// True when any vertex of `other` lies inside `self` or vice versa, or
    /// their bounding boxes overlap and either centroid is contained.
    ///
    /// This is the cheap intersection predicate used for isochrone overlap
    /// (paper §IV-B1): isochrones are convex-ish blobs around a centroid, so
    /// vertex/centroid containment detects every practically relevant
    /// overlap without a full segment-intersection sweep.
    pub fn intersects_approx(&self, other: &Polygon) -> bool {
        if !self.bounds.intersects(&other.bounds) {
            return false;
        }
        if other.ring.iter().any(|p| self.contains(p)) {
            return true;
        }
        if self.ring.iter().any(|p| other.contains(p)) {
            return true;
        }
        self.contains(&other.centroid()) || other.contains(&self.centroid())
    }

    /// Axis-aligned square of half-width `r` centered at `c` — the fallback
    /// isochrone shape when the road network is locally disconnected.
    pub fn square(c: Point, r: f64) -> Polygon {
        Polygon::new(vec![
            Point::new(c.x - r, c.y - r),
            Point::new(c.x + r, c.y - r),
            Point::new(c.x + r, c.y + r),
            Point::new(c.x - r, c.y + r),
        ])
    }

    /// Regular `n`-gon of radius `r` centered at `c` (approximates a disc).
    pub fn regular(c: Point, r: f64, n: usize) -> Polygon {
        assert!(n >= 3);
        let ring = (0..n)
            .map(|i| {
                let th = i as f64 / n as f64 * std::f64::consts::TAU;
                Point::new(c.x + r * th.cos(), c.y + r * th.sin())
            })
            .collect();
        Polygon::new(ring)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ])
    }

    #[test]
    fn contains_interior_and_excludes_exterior() {
        let sq = unit_square();
        assert!(sq.contains(&Point::new(0.5, 0.5)));
        assert!(!sq.contains(&Point::new(1.5, 0.5)));
        assert!(!sq.contains(&Point::new(-0.1, 0.5)));
        assert!(!sq.contains(&Point::new(0.5, 2.0)));
    }

    #[test]
    fn area_of_unit_square() {
        assert!((unit_square().area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn area_is_orientation_independent() {
        let mut ring = unit_square().ring().to_vec();
        ring.reverse();
        let rev = Polygon::new(ring);
        assert!((rev.area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn centroid_of_square() {
        let c = unit_square().centroid();
        assert!((c.x - 0.5).abs() < 1e-12);
        assert!((c.y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn centroid_degenerate_ring_falls_back_to_mean() {
        // Collinear: zero area.
        let p =
            Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(2.0, 0.0)]);
        let c = p.centroid();
        assert!((c.x - 1.0).abs() < 1e-12);
        assert_eq!(c.y, 0.0);
    }

    #[test]
    fn concave_polygon_containment() {
        // An L-shape; the notch must be outside.
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 2.0),
            Point::new(0.0, 2.0),
        ]);
        assert!(l.contains(&Point::new(0.5, 1.5)));
        assert!(l.contains(&Point::new(1.5, 0.5)));
        assert!(!l.contains(&Point::new(1.5, 1.5)));
    }

    #[test]
    fn intersects_overlapping_squares() {
        let a = unit_square();
        let b = Polygon::square(Point::new(0.9, 0.9), 0.5);
        let c = Polygon::square(Point::new(5.0, 5.0), 0.5);
        assert!(a.intersects_approx(&b));
        assert!(b.intersects_approx(&a));
        assert!(!a.intersects_approx(&c));
    }

    #[test]
    fn intersects_containment_case() {
        let big = Polygon::square(Point::new(0.0, 0.0), 10.0);
        let small = Polygon::square(Point::new(1.0, 1.0), 0.5);
        assert!(big.intersects_approx(&small));
        assert!(small.intersects_approx(&big));
    }

    #[test]
    fn regular_polygon_approximates_disc_area() {
        let p = Polygon::regular(Point::new(0.0, 0.0), 1.0, 256);
        assert!((p.area() - std::f64::consts::PI).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = ">= 3 vertices")]
    fn rejects_degenerate_rings() {
        Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]);
    }
}

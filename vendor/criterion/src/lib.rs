//! Offline stand-in for `criterion`.
//!
//! Keeps the macro and method surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `benchmark_group`,
//! `bench_function`, `Bencher::iter`/`iter_batched`, `black_box`) with two
//! modes, selected the same way upstream does:
//!
//! * `cargo bench` passes `--bench`: each target runs an adaptive timing
//!   loop (~200 ms per benchmark) and prints mean ns/iter.
//! * `cargo test` (no `--bench` flag): each closure runs once as a smoke
//!   test, so benches stay compile- and panic-checked in CI.
//!
//! No statistics, plots, or baselines — numbers are indicative only.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch sizing hint for [`Bencher::iter_batched`]; the stand-in always
/// materializes one input per routine call, so this is advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level bench driver.
#[derive(Default)]
pub struct Criterion {
    bench_mode: bool,
}

impl Criterion {
    /// Upstream reads CLI flags here; we only need the `--bench` marker
    /// cargo appends when invoked via `cargo bench`.
    pub fn configure_from_args(mut self) -> Self {
        self.bench_mode = std::env::args().any(|a| a == "--bench");
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.bench_mode, &id.into(), f);
        self
    }
}

/// A named group; the stand-in flattens groups to a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sample-count hint; accepted for API compatibility, unused.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measurement-time hint; accepted for API compatibility, unused.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(self.criterion.bench_mode, &full, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(bench_mode: bool, name: &str, mut f: F) {
    let mut b = Bencher { bench_mode, total: Duration::ZERO, iters: 0 };
    f(&mut b);
    if bench_mode {
        let per_iter = if b.iters == 0 { Duration::ZERO } else { b.total / b.iters.max(1) as u32 };
        println!(
            "bench {name:<50} {:>12.0} ns/iter ({} iters)",
            per_iter.as_nanos() as f64,
            b.iters
        );
    } else {
        println!("bench {name}: ok (test mode, 1 iter)");
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    bench_mode: bool,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`. Test mode: one call. Bench mode: calibrates, then
    /// measures enough iterations to fill ~200 ms.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.bench_mode {
            black_box(routine());
            self.iters = 1;
            return;
        }
        // Calibration: one timed call decides the measured iteration count.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let target = Duration::from_millis(200);
        let n = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let t1 = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.total = t1.elapsed();
        self.iters = n;
    }

    /// Times `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if !self.bench_mode {
            black_box(routine(setup()));
            self.iters = 1;
            return;
        }
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let target = Duration::from_millis(200);
        let n = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..n {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
        }
        self.total = total;
        self.iters = n;
    }
}

/// Declares a bench entry point running each listed function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` calling each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion::default();
        let mut count = 0;
        c.bench_function("demo", |b| b.iter(|| count += 1));
        assert_eq!(count, 1);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        let mut hits = 0;
        g.bench_function("one", |b| b.iter_batched(|| 3, |x| hits += x, BatchSize::SmallInput));
        g.finish();
        assert_eq!(hits, 3);
    }
}

//! Hop-tree persistence.
//!
//! The paper's offline step ends with "the tree is saved such that it can
//! be retrieved efficiently" — this module provides that: the full tree
//! family of a store round-trips through a compact line-oriented text
//! format, so a city's offline artifacts can be computed once and reloaded
//! across sessions (isochrones and spatial indexes are rebuilt from the
//! city, which is cheaper than tree generation and keeps the file format
//! independent of geometry internals).
//!
//! Format (one file per store):
//!
//! ```text
//! staq-hoptree v1
//! interval <start_secs> <end_secs> <day_index> <label>
//! params <tau_secs> <omega_mps>
//! zones <n>
//! tree <OB|IB> <zone> <n_leaves>
//! <leaf_zone> <count> <jt_sum> <jt_min>
//! ...
//! ```

use crate::store::HopTreeStore;
use crate::tree::{Direction, HopTree};
use staq_gtfs::time::{DayOfWeek, Stime, TimeInterval};
use staq_road::IsochroneParams;
use staq_synth::{City, ZoneId};
use std::fmt::Write as _;
use std::path::Path;

/// Serializes both tree families plus the interval/parameters header.
pub fn to_text(store: &HopTreeStore) -> String {
    let mut s = String::new();
    s.push_str("staq-hoptree v1\n");
    let v = &store.interval;
    writeln!(s, "interval {} {} {} {}", v.start.0, v.end.0, v.day.index(), v.label).unwrap();
    writeln!(s, "params {} {}", store.params.tau_secs, store.params.omega_mps).unwrap();
    writeln!(s, "zones {}", store.n_zones()).unwrap();
    for z in 0..store.n_zones() as u32 {
        for (tag, tree) in [("OB", store.outbound(ZoneId(z))), ("IB", store.inbound(ZoneId(z)))] {
            writeln!(s, "tree {tag} {z} {}", tree.n_leaves()).unwrap();
            for leaf in tree.leaves() {
                writeln!(s, "{} {} {} {}", leaf.zone.0, leaf.count, leaf.jt_sum(), leaf.jt_min)
                    .unwrap();
            }
        }
    }
    s
}

/// Writes the store to `path`.
pub fn save(store: &HopTreeStore, path: &Path) -> Result<(), String> {
    std::fs::write(path, to_text(store)).map_err(|e| format!("writing {}: {e}", path.display()))
}

/// Parses a store back. `city` supplies geometry (isochrones and the zone
/// index are rebuilt); the trees themselves come from the file. Errors on
/// any mismatch between the file and the city (zone counts) or a malformed
/// line — a stale artifact must never silently corrupt an experiment.
pub fn from_text(text: &str, city: &City) -> Result<HopTreeStore, String> {
    let mut lines = text.lines().enumerate();
    let mut next = |what: &str| -> Result<(usize, &str), String> {
        lines.next().ok_or_else(|| format!("unexpected EOF expecting {what}"))
    };

    let (_, magic) = next("magic header")?;
    if magic != "staq-hoptree v1" {
        return Err(format!("bad magic {magic:?}"));
    }

    let (ln, interval_line) = next("interval")?;
    let parts: Vec<&str> = interval_line.splitn(5, ' ').collect();
    if parts.len() != 5 || parts[0] != "interval" {
        return Err(format!("line {}: bad interval header", ln + 1));
    }
    let start: u32 = parts[1].parse().map_err(|_| "bad interval start")?;
    let end: u32 = parts[2].parse().map_err(|_| "bad interval end")?;
    let day_idx: usize = parts[3].parse().map_err(|_| "bad interval day")?;
    let day = *DayOfWeek::ALL.get(day_idx).ok_or("day index out of range")?;
    let interval = TimeInterval::new(Stime(start), Stime(end), day, parts[4]);

    let (ln, params_line) = next("params")?;
    let parts: Vec<&str> = params_line.split(' ').collect();
    if parts.len() != 3 || parts[0] != "params" {
        return Err(format!("line {}: bad params header", ln + 1));
    }
    let params = IsochroneParams {
        tau_secs: parts[1].parse().map_err(|_| "bad tau")?,
        omega_mps: parts[2].parse().map_err(|_| "bad omega")?,
    };

    let (ln, zones_line) = next("zones")?;
    let n_zones: usize = zones_line
        .strip_prefix("zones ")
        .ok_or_else(|| format!("line {}: bad zones header", ln + 1))?
        .parse()
        .map_err(|_| "bad zone count")?;
    if n_zones != city.n_zones() {
        return Err(format!(
            "artifact has {n_zones} zones but the city has {} — stale file?",
            city.n_zones()
        ));
    }

    let mut outbound: Vec<Option<HopTree>> = vec![None; n_zones];
    let mut inbound: Vec<Option<HopTree>> = vec![None; n_zones];
    while let Some((ln, header)) = lines.next() {
        if header.is_empty() {
            continue;
        }
        let parts: Vec<&str> = header.split(' ').collect();
        if parts.len() != 4 || parts[0] != "tree" {
            return Err(format!("line {}: expected tree header, got {header:?}", ln + 1));
        }
        let direction = match parts[1] {
            "OB" => Direction::Outbound,
            "IB" => Direction::Inbound,
            other => return Err(format!("line {}: bad direction {other:?}", ln + 1)),
        };
        let zone: u32 = parts[2].parse().map_err(|_| "bad tree zone")?;
        if zone as usize >= n_zones {
            return Err(format!("line {}: zone {zone} out of range", ln + 1));
        }
        let n_leaves: usize = parts[3].parse().map_err(|_| "bad leaf count")?;
        let mut accum = Vec::with_capacity(n_leaves);
        for _ in 0..n_leaves {
            let (lln, leaf_line) =
                lines.next().ok_or_else(|| "unexpected EOF in leaf list".to_string())?;
            let p: Vec<&str> = leaf_line.split(' ').collect();
            if p.len() != 4 {
                return Err(format!("line {}: bad leaf line", lln + 1));
            }
            let lz: u32 = p[0].parse().map_err(|_| "bad leaf zone")?;
            let count: u32 = p[1].parse().map_err(|_| "bad leaf count")?;
            let jt_sum: f64 = p[2].parse().map_err(|_| "bad jt_sum")?;
            let jt_min: f64 = p[3].parse().map_err(|_| "bad jt_min")?;
            accum.push((ZoneId(lz), count, jt_sum, jt_min));
        }
        let tree = HopTree::from_accum(ZoneId(zone), direction, accum);
        match direction {
            Direction::Outbound => outbound[zone as usize] = Some(tree),
            Direction::Inbound => inbound[zone as usize] = Some(tree),
        }
    }
    let outbound: Vec<HopTree> = outbound
        .into_iter()
        .enumerate()
        .map(|(z, t)| t.ok_or(format!("missing outbound tree for zone {z}")))
        .collect::<Result<_, _>>()?;
    let inbound: Vec<HopTree> = inbound
        .into_iter()
        .enumerate()
        .map(|(z, t)| t.ok_or(format!("missing inbound tree for zone {z}")))
        .collect::<Result<_, _>>()?;

    Ok(HopTreeStore::from_parts(city, interval, params, outbound, inbound))
}

/// Reads a store from `path`.
pub fn load(path: &Path, city: &City) -> Result<HopTreeStore, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    from_text(&text, city)
}

#[cfg(test)]
mod tests {
    use super::*;
    use staq_synth::CityConfig;

    fn setup() -> (City, HopTreeStore) {
        let city = City::generate(&CityConfig::tiny(42));
        let store =
            HopTreeStore::build(&city, &TimeInterval::am_peak(), &IsochroneParams::default());
        (city, store)
    }

    #[test]
    fn text_roundtrip_preserves_trees() {
        let (city, store) = setup();
        let text = to_text(&store);
        let back = from_text(&text, &city).unwrap();
        assert_eq!(back.n_zones(), store.n_zones());
        assert_eq!(back.interval, store.interval);
        assert_eq!(back.params, store.params);
        for z in 0..store.n_zones() as u32 {
            assert_eq!(back.outbound(ZoneId(z)), store.outbound(ZoneId(z)), "OB zone {z}");
            assert_eq!(back.inbound(ZoneId(z)), store.inbound(ZoneId(z)), "IB zone {z}");
        }
    }

    #[test]
    fn file_roundtrip() {
        let (city, store) = setup();
        let path = std::env::temp_dir().join(format!("staq_trees_{}.txt", std::process::id()));
        save(&store, &path).unwrap();
        let back = load(&path, &city).unwrap();
        assert_eq!(back.outbound(ZoneId(0)), store.outbound(ZoneId(0)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_zone_count_mismatch() {
        let (_, store) = setup();
        let other_city = City::generate(&CityConfig::small(1));
        let err = from_text(&to_text(&store), &other_city).unwrap_err();
        assert!(err.contains("stale"), "{err}");
    }

    #[test]
    fn rejects_corrupt_lines() {
        let (city, store) = setup();
        let text = to_text(&store);
        // Break the magic.
        assert!(from_text(&text.replace("v1", "v9"), &city).is_err());
        // Truncate mid-leaf-list.
        let cut = text.len() - text.len() / 10;
        let truncated = &text[..cut];
        assert!(from_text(truncated, &city).is_err());
    }

    #[test]
    fn loaded_store_supports_chaining() {
        let (city, store) = setup();
        let back = from_text(&to_text(&store), &city).unwrap();
        for z in 0..city.n_zones() as u32 {
            assert_eq!(back.reachable_within(ZoneId(z), 2), store.reachable_within(ZoneId(z), 2));
        }
    }
}

//! Quickstart: generate a synthetic city, run the SSR access-query engine,
//! and ask the paper's four analytical questions about school access.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use staq_repro::prelude::*;

fn main() {
    // 1. A deterministic synthetic city: zones, demographics, road network,
    //    GTFS bus timetable, POI sets.
    let city = City::generate(&CityConfig::small(42));
    println!(
        "city: {} zones, {} road nodes, {} stops, {} scheduled calls, {} POIs",
        city.n_zones(),
        city.road.n_nodes(),
        city.feed.n_stops(),
        city.feed.feed().n_stop_times(),
        city.pois.len()
    );

    // 2. The engine precomputes the offline artifacts (walking isochrones +
    //    transit-hop trees) once, then answers queries via semi-supervised
    //    regression: only a β-fraction of zones pay for real shortest-path
    //    queries.
    let config = PipelineConfig {
        beta: 0.10,
        model: ModelKind::Mlp,
        cost: CostKind::Jt,
        ..Default::default()
    };
    let engine = AccessEngine::new(city, config);

    // Q1: average travel time to schools, and its spatial spread.
    match engine.query(&AccessQuery::MeanAccess, PoiCategory::School) {
        QueryAnswer::MeanAccess { mean_mac, mean_acsd, n_zones } => println!(
            "\nQ1  mean journey time to school: {mean_mac:.1} min \
             (temporal spread {mean_acsd:.1} min, {n_zones} zones)"
        ),
        other => unreachable!("{other:?}"),
    }

    // Q2: the same with generalized cost is one config switch away
    // (CostKind::Gac) — see the vaccination_siting example.

    // Q3: which zones are most at risk? (> 1.5x the mean cost)
    match engine.query(&AccessQuery::AtRisk { threshold_factor: 1.5 }, PoiCategory::School) {
        QueryAnswer::AtRisk(zones) => {
            println!("Q3  {} zones exceed 1.5x the city mean:", zones.len());
            for z in zones.iter().take(5) {
                let c = engine.city().zone_centroid(*z);
                println!("      zone {:>4} at ({:.0} m, {:.0} m)", z.0, c.x, c.y);
            }
        }
        other => unreachable!("{other:?}"),
    }

    // Q4: is access fairly distributed — overall, and for children
    // specifically?
    for weight in [DemographicWeight::Uniform, DemographicWeight::Children] {
        match engine.query(&AccessQuery::Fairness { weight }, PoiCategory::School) {
            QueryAnswer::Fairness(j) => println!("Q4  Jain fairness ({weight:?}): {j:.4}"),
            other => unreachable!("{other:?}"),
        }
    }
}

//! Fleet-shared access cache vs private per-router caches: the shared
//! cache is a pure performance substrate, so a shared-cache engine and a
//! private-cache engine fed the same city, config, and edit sequence must
//! answer every Measures request bit-identically — including while many
//! worker threads hammer both engines concurrently and structural deltas
//! invalidate the shared generations mid-stream.

use staq_gtfs::model::TripId;
use staq_gtfs::Delta;
use staq_repro::prelude::*;
use std::sync::Arc;

fn config() -> PipelineConfig {
    PipelineConfig {
        beta: 0.25,
        model: ModelKind::Ols,
        todam: TodamSpec { per_hour: 3, ..Default::default() },
        ..Default::default()
    }
}

fn assert_bit_identical(shared: &AccessEngine, private: &AccessEngine, when: &str) {
    for cat in PoiCategory::ALL {
        let a = shared.measures(cat);
        let b = private.measures(cat);
        assert_eq!(a.predicted.len(), b.predicted.len(), "{when}: {cat:?} zone count");
        for (s, p) in a.predicted.iter().zip(b.predicted.iter()) {
            assert_eq!(s.zone, p.zone, "{when}: {cat:?}");
            assert_eq!(
                s.mac.to_bits(),
                p.mac.to_bits(),
                "{when}: {cat:?} zone {:?}: mac {} vs {}",
                s.zone,
                s.mac,
                p.mac
            );
            assert_eq!(
                s.acsd.to_bits(),
                p.acsd.to_bits(),
                "{when}: {cat:?} zone {:?}: acsd {} vs {}",
                s.zone,
                s.acsd,
                p.acsd
            );
        }
    }
}

#[test]
fn shared_cache_measures_match_private_caches_under_concurrent_invalidation() {
    let city = City::generate(&CityConfig::small(21));
    let side = city.config.side_m;
    let shared = Arc::new(AccessEngine::new(city.clone(), config()));
    let private = Arc::new(AccessEngine::with_options(
        city,
        config(),
        EngineOptions { private_access_caches: true, ..Default::default() },
    ));
    assert!(shared.shared_access_cache().is_some(), "default engine shares its access cache");
    assert!(private.shared_access_cache().is_none(), "opted-out engine keeps private caches");

    // Three rounds: 8 reader threads (4 per engine) race Measures and
    // point queries while one editor thread applies the *same* delta to
    // both engines mid-round (epoch-bumping the shared generations).
    // Readers may observe pre- or post-delta answers — that's fine; the
    // equivalence claim is about the quiesced state after each round.
    let deltas = [
        Delta::TripDelay { trip: TripId(0), delay_secs: 300 },
        Delta::TripCancel { trip: TripId(1) },
        Delta::AddRoute {
            stops: vec![
                Point::new(side * 0.2, side * 0.3),
                Point::new(side * 0.5, side * 0.55),
                Point::new(side * 0.8, side * 0.7),
            ],
            headway_s: 600,
        },
    ];
    for (round, delta) in deltas.iter().enumerate() {
        crossbeam::scope(|scope| {
            for engine in [&shared, &private] {
                for r in 0..4 {
                    let e = Arc::clone(engine);
                    scope.spawn(move |_| {
                        let cat = PoiCategory::ALL[r % 4];
                        for _ in 0..3 {
                            let m = e.measures(cat);
                            assert!(!m.predicted.is_empty());
                            let _ = e.query(&AccessQuery::MeanAccess, cat);
                        }
                    });
                }
            }
            let (s, p) = (Arc::clone(&shared), Arc::clone(&private));
            scope.spawn(move |_| {
                s.apply_delta(delta).expect("delta applies to shared-cache engine");
                p.apply_delta(delta).expect("delta applies to private-cache engine");
            });
        })
        .unwrap();
        assert_bit_identical(&shared, &private, &format!("after round {round}"));
    }

    // The shared substrate actually took the traffic: labeling warmed it,
    // and the structural deltas bumped its epoch once each.
    let cache = shared.shared_access_cache().expect("shared cache");
    assert!(!cache.is_empty(), "labeling warmed the shared access cache");
    assert_eq!(cache.epoch(), deltas.len() as u64, "one epoch bump per structural delta");
}

#[test]
fn scenario_edits_keep_shared_and_private_engines_in_lockstep() {
    let city = City::generate(&CityConfig::small(33));
    let side = city.config.side_m;
    let shared = AccessEngine::new(city.clone(), config());
    let private = AccessEngine::with_options(
        city,
        config(),
        EngineOptions { private_access_caches: true, ..Default::default() },
    );

    assert_bit_identical(&shared, &private, "cold");

    let pos = Point::new(side * 0.4, side * 0.6);
    shared.add_poi(PoiCategory::School, pos);
    private.add_poi(PoiCategory::School, pos);
    assert_bit_identical(&shared, &private, "after add_poi");

    let stops = [Point::new(side * 0.1, side * 0.1), Point::new(side * 0.9, side * 0.9)];
    shared.add_bus_route(&stops, 900);
    private.add_bus_route(&stops, 900);
    assert_bit_identical(&shared, &private, "after add_bus_route");
}

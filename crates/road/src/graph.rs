//! Compact CSR road graph.
//!
//! Nodes carry planar positions; edges carry traversal time in seconds
//! (walking time for the pedestrian layer). Storage is compressed sparse
//! row: `adj_offsets[n]..adj_offsets[n+1]` indexes the out-edges of node
//! `n` in `adj_targets`/`adj_costs`. This keeps Dijkstra's inner loop on two
//! contiguous arrays — the dominant cost of labeling (paper §IV-E).

use serde::{Deserialize, Serialize};
use staq_geom::Point;

/// Dense id of a road node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Raw dense index.
    #[inline]
    pub const fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Dense id of a directed edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

/// An immutable CSR road graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoadGraph {
    positions: Vec<Point>,
    adj_offsets: Vec<u32>,
    adj_targets: Vec<u32>,
    /// Traversal time in seconds.
    adj_costs: Vec<f32>,
}

impl RoadGraph {
    /// Number of nodes.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.positions.len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.adj_targets.len()
    }

    /// Position of `n`.
    #[inline]
    pub fn pos(&self, n: NodeId) -> Point {
        self.positions[n.idx()]
    }

    /// All node positions, indexable by `NodeId`.
    #[inline]
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Out-edges of `n` as `(target, cost_secs)` pairs.
    #[inline]
    pub fn out_edges(&self, n: NodeId) -> impl Iterator<Item = (NodeId, f32)> + '_ {
        let lo = self.adj_offsets[n.idx()] as usize;
        let hi = self.adj_offsets[n.idx() + 1] as usize;
        self.adj_targets[lo..hi].iter().zip(&self.adj_costs[lo..hi]).map(|(&t, &c)| (NodeId(t), c))
    }

    /// Out-degree of `n`.
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        (self.adj_offsets[n.idx() + 1] - self.adj_offsets[n.idx()]) as usize
    }

    /// `(position, raw node id)` pairs for building spatial indexes.
    pub fn node_points(&self) -> Vec<(Point, u32)> {
        self.positions.iter().enumerate().map(|(i, &p)| (p, i as u32)).collect()
    }

    /// Checks structural invariants; used by tests and the synthetic
    /// generator's post-conditions.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.adj_offsets.len() != self.positions.len() + 1 {
            return Err("offsets length must be n_nodes + 1".into());
        }
        if *self.adj_offsets.last().unwrap() as usize != self.adj_targets.len() {
            return Err("last offset must equal edge count".into());
        }
        if self.adj_targets.len() != self.adj_costs.len() {
            return Err("targets/costs length mismatch".into());
        }
        if self.adj_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets must be non-decreasing".into());
        }
        let n = self.positions.len() as u32;
        if self.adj_targets.iter().any(|&t| t >= n) {
            return Err("edge target out of range".into());
        }
        if self.adj_costs.iter().any(|&c| !c.is_finite() || c < 0.0) {
            return Err("edge costs must be finite and non-negative".into());
        }
        if self.positions.iter().any(|p| !p.is_finite()) {
            return Err("node positions must be finite".into());
        }
        Ok(())
    }
}

/// Incremental builder; finalize with [`RoadGraphBuilder::build`].
#[derive(Debug, Clone, Default)]
pub struct RoadGraphBuilder {
    positions: Vec<Point>,
    edges: Vec<(u32, u32, f32)>,
}

impl RoadGraphBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node at `pos`, returning its id.
    pub fn add_node(&mut self, pos: Point) -> NodeId {
        assert!(pos.is_finite(), "node position must be finite");
        let id = NodeId(self.positions.len() as u32);
        self.positions.push(pos);
        id
    }

    /// Adds a directed edge with traversal time `cost_secs`.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, cost_secs: f32) {
        assert!(cost_secs.is_finite() && cost_secs >= 0.0, "bad edge cost {cost_secs}");
        assert!((from.idx()) < self.positions.len(), "from node out of range");
        assert!((to.idx()) < self.positions.len(), "to node out of range");
        self.edges.push((from.0, to.0, cost_secs));
    }

    /// Adds edges in both directions (roads and footpaths are two-way).
    pub fn add_bidirectional(&mut self, a: NodeId, b: NodeId, cost_secs: f32) {
        self.add_edge(a, b, cost_secs);
        self.add_edge(b, a, cost_secs);
    }

    /// Adds a bidirectional edge whose cost is the walking time for the
    /// Euclidean distance between the endpoints at `omega_mps`.
    pub fn add_walk_edge(&mut self, a: NodeId, b: NodeId, omega_mps: f64) {
        let d = self.positions[a.idx()].dist(&self.positions[b.idx()]);
        self.add_bidirectional(a, b, (d / omega_mps) as f32);
    }

    /// Number of nodes added so far.
    pub fn n_nodes(&self) -> usize {
        self.positions.len()
    }

    /// Finalizes into CSR form.
    pub fn build(self) -> RoadGraph {
        let n = self.positions.len();
        let mut counts = vec![0u32; n + 1];
        for &(from, _, _) in &self.edges {
            counts[from as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut targets = vec![0u32; self.edges.len()];
        let mut costs = vec![0f32; self.edges.len()];
        let mut cursor = counts.clone();
        for &(from, to, cost) in &self.edges {
            let slot = cursor[from as usize] as usize;
            targets[slot] = to;
            costs[slot] = cost;
            cursor[from as usize] += 1;
        }
        let g = RoadGraph {
            positions: self.positions,
            adj_offsets: counts,
            adj_targets: targets,
            adj_costs: costs,
        };
        debug_assert!(g.check_invariants().is_ok());
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 -- 1 -- 2 path plus a 0->2 shortcut.
    pub(crate) fn small_graph() -> RoadGraph {
        let mut b = RoadGraphBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(100.0, 0.0));
        let n2 = b.add_node(Point::new(200.0, 0.0));
        b.add_bidirectional(n0, n1, 80.0);
        b.add_bidirectional(n1, n2, 80.0);
        b.add_edge(n0, n2, 300.0);
        b.build()
    }

    #[test]
    fn csr_structure() {
        let g = small_graph();
        assert_eq!(g.n_nodes(), 3);
        assert_eq!(g.n_edges(), 5);
        g.check_invariants().unwrap();
        let out: Vec<_> = g.out_edges(NodeId(0)).collect();
        assert_eq!(out.len(), 2);
        assert!(out.contains(&(NodeId(1), 80.0)));
        assert!(out.contains(&(NodeId(2), 300.0)));
        assert_eq!(g.degree(NodeId(2)), 1);
    }

    #[test]
    fn walk_edge_uses_distance_over_speed() {
        let mut b = RoadGraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(125.0, 0.0));
        b.add_walk_edge(a, c, 1.25);
        let g = b.build();
        let (_, cost) = g.out_edges(a).next().unwrap();
        assert!((cost - 100.0).abs() < 1e-4);
    }

    #[test]
    fn node_points_align_with_ids() {
        let g = small_graph();
        let pts = g.node_points();
        assert_eq!(pts[1].1, 1);
        assert_eq!(pts[1].0, Point::new(100.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_dangling_edges() {
        let mut b = RoadGraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        b.add_edge(a, NodeId(7), 1.0);
    }

    #[test]
    #[should_panic(expected = "bad edge cost")]
    fn builder_rejects_negative_costs() {
        let mut b = RoadGraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(1.0, 0.0));
        b.add_edge(a, c, -1.0);
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = RoadGraphBuilder::new().build();
        assert_eq!(g.n_nodes(), 0);
        g.check_invariants().unwrap();
    }
}

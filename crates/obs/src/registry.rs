//! The metric registry: statics that record lock-free and a global list
//! that snapshots on demand.
//!
//! Metrics are declared as `static` items with `const` constructors:
//!
//! ```
//! use staq_obs::{Counter, AtomicHistogram};
//! static QUERIES: Counter = Counter::new("raptor.queries");
//! static LATENCY: AtomicHistogram = AtomicHistogram::new("serve.request.query");
//! QUERIES.inc();
//! LATENCY.record(std::time::Duration::from_micros(14));
//! ```
//!
//! The hot path is a relaxed atomic RMW plus one relaxed load (the
//! registration flag) — no locks, no allocation. A metric adds itself to
//! the global registry on first touch (the only mutex in the crate, taken
//! once per metric per process). [`snapshot`] walks the registry and
//! assembles a [`MetricsSnapshot`] without disturbing writers.
//!
//! With the `obs-off` feature every recording operation compiles to a
//! no-op and snapshots are empty, so benches can price the
//! instrumentation itself.
//!
//! ## The registry is process-global
//!
//! There is exactly one registry per process and no way to reset it:
//! counters only ever go up, for as long as the process lives. Anything
//! that shares a process shares every metric — most notably the test
//! harness, which runs many `#[test]` functions concurrently in one
//! binary. A test must therefore never assert an absolute counter value
//! ("`serve.requests` == 3"); it must take a [`snapshot`] before the
//! work, another after, and assert on the *delta* — other tests may bump
//! the same metric at any moment. The same aliasing shows up in
//! production topologies: a shard router whose backends run in-process
//! sees one registry for the whole fleet (see the router's stats-merge
//! logic), while out-of-process backends each own one.

#[cfg(not(feature = "obs-off"))]
use crate::hist::bucket;
use crate::hist::{LatencyHistogram, N_BUCKETS};
use crate::snapshot::{CounterSample, GaugeSample, HistogramSample, MetricsSnapshot};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// A registered metric, by reference to its static.
#[cfg_attr(feature = "obs-off", allow(dead_code))]
enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static AtomicHistogram),
}

static REGISTRY: Mutex<Vec<Metric>> = Mutex::new(Vec::new());

/// First-touch registration: one relaxed load on the hot path; the mutex
/// is only ever taken before the flag flips.
macro_rules! ensure_registered {
    ($self:ident, $variant:ident) => {
        #[cfg(not(feature = "obs-off"))]
        if !$self.registered.load(Ordering::Relaxed) {
            let mut reg = REGISTRY.lock().expect("metric registry poisoned");
            if !$self.registered.load(Ordering::Relaxed) {
                reg.push(Metric::$variant($self));
                $self.registered.store(true, Ordering::Release);
            }
        }
    };
}

/// Monotone event counter. Increments are relaxed atomics; reads are
/// advisory (a snapshot is not a linearization point).
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    #[cfg_attr(feature = "obs-off", allow(dead_code))]
    registered: AtomicBool,
}

impl Counter {
    /// Declares a counter; use in a `static`.
    pub const fn new(name: &'static str) -> Self {
        Counter { name, value: AtomicU64::new(0), registered: AtomicBool::new(false) }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&'static self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&'static self, n: u64) {
        ensure_registered!(self, Counter);
        #[cfg(not(feature = "obs-off"))]
        self.value.fetch_add(n, Ordering::Relaxed);
        #[cfg(feature = "obs-off")]
        let _ = n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Last-write-wins level (queue depths, pool sizes, cache entries).
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
    #[cfg_attr(feature = "obs-off", allow(dead_code))]
    registered: AtomicBool,
}

impl Gauge {
    /// Declares a gauge; use in a `static`.
    pub const fn new(name: &'static str) -> Self {
        Gauge { name, value: AtomicU64::new(0), registered: AtomicBool::new(false) }
    }

    /// Sets the level.
    #[inline]
    pub fn set(&'static self, v: u64) {
        ensure_registered!(self, Gauge);
        #[cfg(not(feature = "obs-off"))]
        self.value.store(v, Ordering::Relaxed);
        #[cfg(feature = "obs-off")]
        let _ = v;
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Concurrent log-bucketed histogram: the multi-writer counterpart of
/// [`LatencyHistogram`], sharing its bucket math so the two merge.
///
/// ~5 KiB of atomics per declared histogram; recording is two relaxed
/// RMWs plus a relaxed `fetch_max`.
pub struct AtomicHistogram {
    name: &'static str,
    counts: [AtomicU64; N_BUCKETS],
    total: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    #[cfg_attr(feature = "obs-off", allow(dead_code))]
    registered: AtomicBool,
}

impl AtomicHistogram {
    /// Declares a histogram; use in a `static`.
    pub const fn new(name: &'static str) -> Self {
        AtomicHistogram {
            name,
            counts: [const { AtomicU64::new(0) }; N_BUCKETS],
            total: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Records one duration sample.
    #[inline]
    pub fn record(&'static self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one nanosecond sample.
    #[inline]
    pub fn record_ns(&'static self, ns: u64) {
        ensure_registered!(self, Histogram);
        #[cfg(not(feature = "obs-off"))]
        {
            self.counts[bucket(ns)].fetch_add(1, Ordering::Relaxed);
            self.total.fetch_add(1, Ordering::Relaxed);
            self.sum_ns.fetch_add(ns, Ordering::Relaxed);
            self.max_ns.fetch_max(ns, Ordering::Relaxed);
        }
        #[cfg(feature = "obs-off")]
        let _ = ns;
    }

    /// Number of samples so far.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Metric name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Copies the current state into a single-writer histogram. Readers
    /// race benignly with writers: a concurrent `record` may be partially
    /// visible, so the copy's `total` can differ from its bucket sum by
    /// in-flight samples — acceptable for monitoring, which is the point
    /// of a snapshot.
    pub fn to_histogram(&self) -> LatencyHistogram {
        let buckets: Vec<(u32, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then_some((i as u32, n))
            })
            .collect();
        LatencyHistogram::from_sparse(
            &buckets,
            self.sum_ns.load(Ordering::Relaxed) as u128,
            self.max_ns.load(Ordering::Relaxed),
        )
    }
}

/// Wall-clock scoped timer recording into a histogram when dropped (or
/// explicitly [`stop`](ScopedTimer::stop)ped, which also returns the
/// elapsed time).
pub struct ScopedTimer {
    hist: &'static AtomicHistogram,
    start: std::time::Instant,
    armed: bool,
}

impl ScopedTimer {
    /// Starts timing into `hist`.
    pub fn new(hist: &'static AtomicHistogram) -> Self {
        ScopedTimer { hist, start: std::time::Instant::now(), armed: true }
    }

    /// Stops now, records, and returns the elapsed time.
    pub fn stop(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        self.armed = false;
        self.hist.record(elapsed);
        elapsed
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        if self.armed {
            self.hist.record(self.start.elapsed());
        }
    }
}

/// Assembles a snapshot of every metric touched so far, sorted by name
/// for deterministic output. Writers are never blocked; values are
/// relaxed reads.
pub fn snapshot() -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    let reg = REGISTRY.lock().expect("metric registry poisoned");
    for m in reg.iter() {
        match m {
            Metric::Counter(c) => {
                snap.counters.push(CounterSample { name: c.name().to_string(), value: c.get() })
            }
            Metric::Gauge(g) => {
                snap.gauges.push(GaugeSample { name: g.name().to_string(), value: g.get() })
            }
            Metric::Histogram(h) => {
                snap.histograms.push(HistogramSample::from_histogram(h.name(), &h.to_histogram()))
            }
        }
    }
    drop(reg);
    snap.counters.sort_by(|a, b| a.name.cmp(&b.name));
    snap.gauges.sort_by(|a, b| a.name.cmp(&b.name));
    snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    static T_COUNTER: Counter = Counter::new("test.registry.counter");
    #[cfg_attr(feature = "obs-off", allow(dead_code))]
    static T_GAUGE: Gauge = Gauge::new("test.registry.gauge");
    static T_HIST: AtomicHistogram = AtomicHistogram::new("test.registry.hist");

    #[test]
    #[cfg(not(feature = "obs-off"))]
    fn metrics_register_on_first_touch_and_snapshot() {
        T_COUNTER.add(3);
        T_GAUGE.set(7);
        T_HIST.record(Duration::from_micros(50));
        let snap = snapshot();
        assert!(snap.counter("test.registry.counter").unwrap() >= 3);
        assert_eq!(snap.gauge("test.registry.gauge"), Some(7));
        let h = snap.histogram("test.registry.hist").unwrap();
        assert!(h.count >= 1);
        assert!(h.p50_ns > 0);
    }

    #[test]
    #[cfg(feature = "obs-off")]
    fn obs_off_records_nothing() {
        T_COUNTER.add(3);
        T_HIST.record(Duration::from_micros(50));
        assert_eq!(T_COUNTER.get(), 0);
        assert_eq!(T_HIST.count(), 0);
        assert!(snapshot().counters.is_empty());
    }

    #[test]
    fn scoped_timer_records_once() {
        static H: AtomicHistogram = AtomicHistogram::new("test.registry.timer");
        let before = H.count();
        {
            let _t = ScopedTimer::new(&H);
        }
        let elapsed = ScopedTimer::new(&H).stop();
        #[cfg(not(feature = "obs-off"))]
        {
            assert_eq!(H.count(), before + 2);
            assert!(elapsed >= Duration::ZERO);
        }
        #[cfg(feature = "obs-off")]
        {
            assert_eq!(H.count(), before);
            let _ = elapsed;
        }
    }

    #[test]
    fn atomic_histogram_matches_sequential() {
        static H: AtomicHistogram = AtomicHistogram::new("test.registry.hist2");
        let mut reference = LatencyHistogram::new();
        for i in 1..=200u64 {
            H.record_ns(i * 1001);
            reference.record_ns(i * 1001);
        }
        #[cfg(not(feature = "obs-off"))]
        {
            let got = H.to_histogram();
            assert_eq!(got.count(), reference.count());
            for p in [10.0, 50.0, 90.0, 99.0] {
                assert_eq!(got.percentile(p), reference.percentile(p));
            }
            assert_eq!(got.max(), reference.max());
        }
    }
}

//! End-to-end trace propagation across a sharded fleet: the test thread
//! opens a root span, issues one cold `measures` through the router, and
//! asserts the dumped trace is a single connected tree under that
//! TraceId — router-side spans (`shard.request`/`shard.route`/
//! `shard.backend.call`), backend serving spans (`serve.request`/
//! `serve.execute`), and the engine's pipeline-stage and labeling-worker
//! child spans, all with non-zero durations.
//!
//! A cold pipeline run emits thousands of micro-spans (per RAPTOR query,
//! per labeling chunk); the test first raises the runtime capture
//! threshold over the wire so the 8192-slot ring keeps the structural
//! millisecond-scale spans instead of drowning them.
#![cfg(not(feature = "obs-off"))]

use staq_obs::trace;
use staq_obs::OwnedSpan;
use staq_repro::prelude::*;
use staq_serve::presets::CityPreset;
use staq_serve::Client;
use staq_shard::{route, Backend, RouterConfig, ShardSupervisor, SupervisorConfig, ThreadBackend};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

const SHARDS: usize = 4;
const SEED: u64 = 42;

/// Only spans at least this long are captured during the traced query.
/// Everything the tree assertions need (request/route/execute/pipeline
/// stages/labeling workers) runs for milliseconds on a cold engine;
/// per-query and per-chunk micro-spans fall below it.
const CAPTURE_MIN_NS: u64 = 50_000;

#[test]
fn traced_query_dumps_one_connected_tree_across_router_and_backends() {
    let backends: Vec<Box<dyn Backend>> = (0..SHARDS)
        .map(|_| {
            Box::new(ThreadBackend::new(2, || Arc::new(CityPreset::Test.engine(0.05, SEED))))
                as Box<dyn Backend>
        })
        .collect();
    let cfg = SupervisorConfig {
        respawn_backoff: Duration::from_millis(100),
        poll_interval: Duration::from_millis(10),
        ..Default::default()
    };
    let sup = ShardSupervisor::start(backends, cfg).expect("fleet start");
    let mut router = route(sup, &RouterConfig::default()).expect("router bind");
    let mut c = Client::connect(router.addr()).expect("connect");

    // Raise the capture threshold fleet-wide before sending the traced
    // query (the dump itself is discarded — only the knob matters here).
    c.trace_dump(0, Some(CAPTURE_MIN_NS)).expect("set capture threshold");

    // Open a root span on the test thread; the client embeds the current
    // context in every v3 request frame, so the router and (via the
    // supervisor's backend call) the serving shard all join this trace.
    let root = trace::root_span("test.measures");
    let trace_id = root.context().trace;
    assert_ne!(trace_id, 0, "root span must mint a trace id");
    c.measures(PoiCategory::School).expect("traced cold measures");
    drop(root);

    let dump = c.trace_dump(0, None).expect("trace dump");
    c.trace_dump(0, Some(0)).expect("restore capture threshold");
    let ours: Vec<OwnedSpan> = dump.into_iter().filter(|s| s.trace == trace_id).collect();
    assert!(!ours.is_empty(), "traced query must have left spans in the ring");

    // Every span carries a non-zero duration and a distinct span id.
    let mut by_id: HashMap<u64, &OwnedSpan> = HashMap::new();
    for s in &ours {
        assert!(s.dur_ns > 0, "{}: span duration must be non-zero", s.name);
        assert!(by_id.insert(s.span, s).is_none(), "{}: duplicate span id {}", s.name, s.span);
    }

    // The trace crosses both layers: router spans and backend spans —
    // including the pipeline stages and labeling workers the cold run
    // fanned out to — share the one TraceId.
    let names: HashSet<&str> = ours.iter().map(|s| s.name.as_str()).collect();
    for required in [
        "test.measures",
        "shard.request",
        "shard.route",
        "shard.backend.call",
        "serve.request",
        "serve.execute",
        "engine.measures",
        "pipeline.run",
        "pipeline.stage.labeling",
        "label.worker",
    ] {
        assert!(names.contains(required), "trace must contain a {required} span, got {names:?}");
    }

    // One connected tree: exactly one root, every other span's parent is
    // in the dump (a captured child implies its longer-lived parent also
    // cleared the threshold), and everything is reachable from the root.
    let roots: Vec<&OwnedSpan> = ours.iter().filter(|s| s.parent == 0).collect();
    assert_eq!(roots.len(), 1, "expected exactly one root span, got {roots:?}");
    assert_eq!(roots[0].name, "test.measures");

    let mut children: HashMap<u64, Vec<u64>> = HashMap::new();
    for s in &ours {
        if s.parent != 0 {
            assert!(
                by_id.contains_key(&s.parent),
                "{}: parent span {} missing from dump",
                s.name,
                s.parent
            );
            children.entry(s.parent).or_default().push(s.span);
        }
    }
    let mut reachable = HashSet::new();
    let mut stack = vec![roots[0].span];
    while let Some(id) = stack.pop() {
        if reachable.insert(id) {
            if let Some(kids) = children.get(&id) {
                stack.extend(kids);
            }
        }
    }
    assert_eq!(
        reachable.len(),
        ours.len(),
        "every span must be reachable from the root — the trace is one tree"
    );

    // Child spans nest inside their parents on the wall-clock axis
    // (same process here, so the shared clock makes this exact).
    for s in &ours {
        if let Some(parent) = by_id.get(&s.parent) {
            assert!(
                s.start_unix_ns >= parent.start_unix_ns,
                "{} starts before its parent {}",
                s.name,
                parent.name
            );
        }
    }

    router.shutdown();
}

//! Property tests for the ML crate: linear-algebra identities, metric
//! bounds, scaler round-trips, and fairness-free invariants of the models.

use proptest::prelude::*;
use staq_ml::linalg::Matrix;
use staq_ml::metrics::{mae, pearson, rmse};
use staq_ml::scaler::StandardScaler;

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-100.0f64..100.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_associates(a in small_matrix(3, 4), b in small_matrix(4, 2), c in small_matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-6 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn transpose_of_product_swaps(a in small_matrix(3, 4), b in small_matrix(4, 2)) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn solve_inverts_well_conditioned_systems(mut a in small_matrix(4, 4), b in small_matrix(4, 2)) {
        // Diagonal dominance guarantees solvability.
        for i in 0..4 {
            let row_sum: f64 = a.row(i).iter().map(|v| v.abs()).sum();
            a[(i, i)] += row_sum + 1.0;
        }
        let x = a.solve(&b).expect("diagonally dominant");
        let residual = a.matmul(&x).add_scaled(&b, -1.0);
        prop_assert!(residual.frobenius() < 1e-6, "residual {}", residual.frobenius());
    }

    #[test]
    fn scaler_roundtrips(x in small_matrix(6, 3)) {
        let s = StandardScaler::fit(&x);
        let back = s.inverse_transform(&s.transform(&x));
        for (a, b) in x.data().iter().zip(back.data()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn pearson_bounded(a in proptest::collection::vec(-100.0f64..100.0, 2..40)) {
        let b: Vec<f64> = a.iter().map(|v| v * 0.7 + 3.0).collect();
        let r = pearson(&a, &b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
    }

    #[test]
    fn mae_rmse_relations(pairs in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..30)) {
        let t: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let p: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let m = mae(&t, &p);
        let r = rmse(&t, &p);
        prop_assert!(m >= 0.0);
        prop_assert!(r + 1e-12 >= m, "rmse {r} < mae {m}");
        // Identity: zero error on identical inputs.
        prop_assert_eq!(mae(&t, &t), 0.0);
    }

    #[test]
    fn ols_is_translation_equivariant(seed in 0u64..1000) {
        // Shifting all targets by c shifts all predictions by c.
        use staq_ml::ols::Ols;
        use staq_ml::ssr::{SsrModel, SsrTask};
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut rnd = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (s >> 33) as f64 / u32::MAX as f64
        };
        let n = 20;
        let mut xl = Matrix::zeros(n, 2);
        let mut yl = Matrix::zeros(n, 1);
        for i in 0..n {
            let (a, b) = (rnd(), rnd());
            xl[(i, 0)] = a;
            xl[(i, 1)] = b;
            yl[(i, 0)] = 2.0 * a - b + rnd() * 0.01;
        }
        let xu = Matrix::from_rows(&[vec![rnd(), rnd()], vec![rnd(), rnd()]]);
        let shift = 17.5;
        let y_shifted = yl.map(|v| v + shift);
        let t1 = SsrTask { x_labeled: &xl, y_labeled: &yl, x_unlabeled: &xu, adjacency: None, seed };
        let t2 = SsrTask { x_labeled: &xl, y_labeled: &y_shifted, x_unlabeled: &xu, adjacency: None, seed };
        let p1 = Ols::default().fit_predict(&t1);
        let p2 = Ols::default().fit_predict(&t2);
        for (a, b) in p1.data().iter().zip(p2.data()) {
            // Exact OLS is translation-equivariant; the tiny ridge also
            // shrinks the intercept, leaving an O(ridge/n · shift) residual.
            prop_assert!((b - a - shift).abs() < 1e-4, "{b} vs {a} + {shift}");
        }
    }
}

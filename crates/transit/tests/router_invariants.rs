//! Router invariants that must hold on any city, checked over a seeded
//! sweep of OD pairs.

use staq_gtfs::time::{DayOfWeek, Stime};
use staq_synth::{City, CityConfig};
use staq_transit::{Raptor, RouterConfig, TransitNetwork};

fn city() -> City {
    City::generate(&CityConfig::small(1234))
}

fn od_pairs(city: &City, n: usize) -> Vec<(staq_geom::Point, staq_geom::Point)> {
    (0..n)
        .map(|i| {
            (
                city.zones[(i * 31 + 2) % city.n_zones()].centroid,
                city.zones[(i * 17 + 9) % city.n_zones()].centroid,
            )
        })
        .collect()
}

#[test]
fn more_boardings_never_hurt() {
    let city = city();
    let nets: Vec<TransitNetwork> = [1usize, 2, 4]
        .iter()
        .map(|&k| {
            TransitNetwork::new(
                &city.road,
                &city.feed,
                RouterConfig { max_boardings: k, ..RouterConfig::default() },
            )
        })
        .collect();
    let depart = Stime::hms(7, 45, 0);
    for (o, d) in od_pairs(&city, 20) {
        let arrivals: Vec<Stime> = nets
            .iter()
            .map(|n| Raptor::new(n).earliest_arrival(&o, &d, depart, DayOfWeek::Tuesday))
            .collect();
        for w in arrivals.windows(2) {
            assert!(w[1] <= w[0], "extra boarding budget worsened arrival: {:?}", arrivals);
        }
    }
}

#[test]
fn wider_access_budget_never_hurts() {
    let city = city();
    let tight = TransitNetwork::new(
        &city.road,
        &city.feed,
        RouterConfig { access_budget_secs: 300.0, ..RouterConfig::default() },
    );
    let wide = TransitNetwork::new(
        &city.road,
        &city.feed,
        RouterConfig { access_budget_secs: 900.0, ..RouterConfig::default() },
    );
    let depart = Stime::hms(8, 0, 0);
    for (o, d) in od_pairs(&city, 20) {
        let a_tight = Raptor::new(&tight).earliest_arrival(&o, &d, depart, DayOfWeek::Tuesday);
        let a_wide = Raptor::new(&wide).earliest_arrival(&o, &d, depart, DayOfWeek::Tuesday);
        assert!(a_wide <= a_tight, "more walk budget worsened {a_wide} > {a_tight}");
    }
}

#[test]
fn journey_components_always_reconcile() {
    let city = city();
    let net = TransitNetwork::with_defaults(&city.road, &city.feed);
    let router = Raptor::new(&net);
    for (i, (o, d)) in od_pairs(&city, 30).into_iter().enumerate() {
        let depart = Stime::hms(7, (i as u32 * 7) % 60, 0);
        let j = router.query(&o, &d, depart, DayOfWeek::Tuesday);
        j.check_consistency().unwrap();
        let parts = j.access_walk_secs()
            + j.egress_walk_secs()
            + j.transfer_walk_secs()
            + j.wait_secs()
            + j.in_vehicle_secs();
        if j.is_walk_only() {
            assert_eq!(j.n_rides(), 0);
        } else {
            assert_eq!(parts, j.jt_secs(), "component decomposition must cover the journey");
        }
    }
}

#[test]
fn self_journeys_are_instant() {
    let city = city();
    let net = TransitNetwork::with_defaults(&city.road, &city.feed);
    let router = Raptor::new(&net);
    let o = city.zones[5].centroid;
    let j = router.query(&o, &o, Stime::hms(9, 0, 0), DayOfWeek::Tuesday);
    assert_eq!(j.jt_secs(), 0);
    assert!(j.is_walk_only());
}

#[test]
fn describe_renders_transit_itineraries() {
    let city = city();
    let net = TransitNetwork::with_defaults(&city.road, &city.feed);
    let router = Raptor::new(&net);
    // Find a transit journey and verify its rendering mentions a ride.
    for (o, d) in od_pairs(&city, 40) {
        let j = router.query(&o, &d, Stime::hms(7, 30, 0), DayOfWeek::Tuesday);
        if !j.is_walk_only() {
            let s = j.describe();
            assert!(s.contains("ride route"), "{s}");
            assert!(s.contains("depart"));
            return;
        }
    }
    panic!("no transit journey found in sweep");
}

//! Vaccination-site selection — the use case that motivated the paper (the
//! authors supported Transport for the West Midlands in siting the first
//! COVID-19 vaccination centers, focusing on the clinically vulnerable).
//!
//! Three candidate locations for a new vaccination center are compared on
//! (a) the vulnerable-weighted fairness of access and (b) mean generalized
//! access cost, each evaluated with a *ground-truth* labeling pass so the
//! decision is exact. The SSR engine then shows the same ranking can be
//! recovered at a fraction of the cost.
//!
//! ```text
//! cargo run --release --example vaccination_siting
//! ```

use staq_repro::prelude::*;

fn main() {
    let base_city = City::generate(&CityConfig::small(42));
    let spec = TodamSpec::default();

    // Candidates: near the center, mid-ring, and the periphery's worst zone.
    let truth = NaiveResult::compute(&base_city, &spec, PoiCategory::VaxCenter, CostKind::Gac);
    let worst_zone =
        truth.measures.iter().max_by(|a, b| a.mac.partial_cmp(&b.mac).unwrap()).unwrap().zone;
    let side = base_city.config.side_m;
    let candidates = [
        ("city center", base_city.cores[0]),
        ("mid ring", base_city.cores[0].offset(side * 0.22, side * 0.18)),
        ("worst-served zone", base_city.zone_centroid(worst_zone)),
    ];

    println!("baseline: mean GAC {:.1} gmin, fairness {:.4}", mean_mac(&truth), fairness(&truth));
    println!("\nevaluating {} candidate sites (exact labeling):", candidates.len());

    let mut best: Option<(&str, f64, f64)> = None;
    for (name, pos) in candidates {
        let mut city = base_city.clone();
        let zone_tree = staq_repro::geom::KdTree::build(&city.zone_points());
        let zone = ZoneId(zone_tree.nearest(&pos).unwrap().item);
        let id = staq_repro::synth::PoiId(city.pois.len() as u32);
        city.pois.push(staq_repro::synth::Poi { id, category: PoiCategory::VaxCenter, pos, zone });
        let r = NaiveResult::compute(&city, &spec, PoiCategory::VaxCenter, CostKind::Gac);
        let (m, j) = (mean_mac(&r), fairness_vulnerable(&city, &r));
        println!("  {name:<18} mean GAC {m:>6.1} gmin   vulnerable-weighted fairness {j:.4}");
        if best.is_none_or(|(_, _, bj)| j > bj) {
            best = Some((name, m, j));
        }
    }
    let (name, _, j) = best.unwrap();
    println!("\nrecommended site: {name} (fairness {j:.4})");

    // The same comparison through the SSR engine at beta = 10%: the relative
    // ordering of sites is recoverable from a tenth of the SPQs.
    println!("\ncross-check via SSR (beta = 10%, MLP):");
    for (name, pos) in candidates {
        let engine = AccessEngine::new(
            base_city.clone(),
            PipelineConfig {
                beta: 0.10,
                model: ModelKind::Mlp,
                cost: CostKind::Gac,
                todam: spec.clone(),
                ..Default::default()
            },
        );
        engine.add_poi(PoiCategory::VaxCenter, pos);
        match engine.query(
            &AccessQuery::Fairness { weight: DemographicWeight::Vulnerable },
            PoiCategory::VaxCenter,
        ) {
            QueryAnswer::Fairness(j) => println!("  {name:<18} predicted fairness {j:.4}"),
            other => unreachable!("{other:?}"),
        }
    }
}

fn mean_mac(r: &NaiveResult) -> f64 {
    r.measures.iter().map(|m| m.mac).sum::<f64>() / r.measures.len() as f64
}

fn fairness(r: &NaiveResult) -> f64 {
    staq_repro::access::fairness::fairness_of(&r.measures)
}

fn fairness_vulnerable(city: &City, r: &NaiveResult) -> f64 {
    let vals: Vec<f64> = r.measures.iter().map(|m| m.mac).collect();
    let w: Vec<f64> = r
        .measures
        .iter()
        .map(|m| {
            let z = &city.zones[m.zone.idx()];
            z.population * z.demographics.pct_vulnerable
        })
        .collect();
    staq_repro::access::fairness::weighted_jain_index(&vals, &w)
}

//! Planar points and distance helpers.

use serde::{Deserialize, Serialize};

/// A point in a local planar coordinate system, in meters.
///
/// `x` grows eastwards, `y` grows northwards. All of the synthetic city
/// machinery works in this frame, which keeps distance computations cheap and
/// exact (no geodesy needed at city scale).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Easting in meters.
    pub x: f64,
    /// Northing in meters.
    pub y: f64,
}

impl Point {
    /// Creates a point from easting/northing meters.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other` in meters.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (cheaper when only comparing).
    #[inline]
    pub fn dist2(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Manhattan (L1) distance to `other` in meters.
    #[inline]
    pub fn manhattan(&self, other: &Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Linear interpolation: `t = 0` gives `self`, `t = 1` gives `other`.
    #[inline]
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)
    }

    /// Bearing from `self` to `other` in radians, measured counter-clockwise
    /// from the positive x axis. Returns 0 for coincident points.
    #[inline]
    pub fn bearing(&self, other: &Point) -> f64 {
        let dy = other.y - self.y;
        let dx = other.x - self.x;
        if dx == 0.0 && dy == 0.0 {
            0.0
        } else {
            dy.atan2(dx)
        }
    }

    /// Returns the point displaced by `(dx, dy)` meters.
    #[inline]
    pub fn offset(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// True when both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

/// Mean radius of the Earth in meters (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// Great-circle (haversine) distance between two WGS-84 coordinates, in
/// meters. `lat`/`lon` are in decimal degrees.
///
/// Provided so the same pipeline can ingest real GTFS feeds, whose stop
/// coordinates are geographic. The synthetic pipeline never calls this on the
/// hot path.
pub fn haversine_m(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    let (la1, lo1, la2, lo2) =
        (lat1.to_radians(), lon1.to_radians(), lat2.to_radians(), lon2.to_radians());
    let dlat = la2 - la1;
    let dlon = lo2 - lo1;
    let a = (dlat * 0.5).sin().powi(2) + la1.cos() * la2.cos() * (dlon * 0.5).sin().powi(2);
    2.0 * EARTH_RADIUS_M * a.sqrt().asin()
}

/// Projects a WGS-84 coordinate into a local planar frame centered on
/// (`lat0`, `lon0`) using an equirectangular approximation, returning meters.
///
/// Accurate to well under 0.5% at city scale (< 50 km), which is ample for
/// accessibility analysis.
pub fn project_local(lat: f64, lon: f64, lat0: f64, lon0: f64) -> Point {
    let x = (lon - lon0).to_radians() * lat0.to_radians().cos() * EARTH_RADIUS_M;
    let y = (lat - lat0).to_radians() * EARTH_RADIUS_M;
    Point::new(x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist2(&b), 25.0);
    }

    #[test]
    fn dist_is_symmetric() {
        let a = Point::new(-12.5, 88.0);
        let b = Point::new(101.0, -7.25);
        assert_eq!(a.dist(&b), b.dist(&a));
    }

    #[test]
    fn manhattan_upper_bounds_euclidean() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-4.0, 9.0);
        assert!(a.manhattan(&b) >= a.dist(&b));
    }

    #[test]
    fn midpoint_is_equidistant() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 6.0);
        let m = a.midpoint(&b);
        assert!((m.dist(&a) - m.dist(&b)).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point::new(2.0, 3.0);
        let b = Point::new(-1.0, 7.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert_eq!(mid, a.midpoint(&b));
    }

    #[test]
    fn bearing_cardinal_directions() {
        let o = Point::new(0.0, 0.0);
        assert!((o.bearing(&Point::new(1.0, 0.0)) - 0.0).abs() < 1e-12);
        let north = o.bearing(&Point::new(0.0, 1.0));
        assert!((north - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        // Coincident points define bearing 0 rather than NaN.
        assert_eq!(o.bearing(&o), 0.0);
    }

    #[test]
    fn haversine_known_value() {
        // London (51.5074, -0.1278) to Birmingham (52.4862, -1.8904) is about
        // 163 km.
        let d = haversine_m(51.5074, -0.1278, 52.4862, -1.8904);
        assert!((d - 163_000.0).abs() < 3_000.0, "got {d}");
    }

    #[test]
    fn haversine_zero_for_same_point() {
        assert_eq!(haversine_m(52.0, -1.5, 52.0, -1.5), 0.0);
    }

    #[test]
    fn local_projection_roundtrip_distance() {
        // Two points ~1.1km apart near Birmingham; projected planar distance
        // should closely match the haversine distance.
        let (lat0, lon0) = (52.48, -1.89);
        let a = project_local(52.4862, -1.8904, lat0, lon0);
        let b = project_local(52.4950, -1.8800, lat0, lon0);
        let planar = a.dist(&b);
        let sphere = haversine_m(52.4862, -1.8904, 52.4950, -1.8800);
        assert!((planar - sphere).abs() / sphere < 0.005, "{planar} vs {sphere}");
    }

    #[test]
    fn offset_moves_point() {
        let p = Point::new(1.0, 1.0).offset(2.0, -3.0);
        assert_eq!(p, Point::new(3.0, -2.0));
    }
}

//! Hop-tree generation (paper §IV-A, "Transit-Hop Tree Generation").
//!
//! For a zone `z` and interval `v`:
//!
//! 1. retrieve the precomputed walking isochrone `W_z`;
//! 2. intersect `F_stops` with `W_z` → the stops walkable from `z`;
//! 3. for each such stop, retrieve all services through it during `v`
//!    (`F_trips`);
//! 4. outbound: visit each *subsequent* stop of each service; inbound: each
//!    *preceding* stop;
//! 5. map the visited stop to its zone and add/update a leaf: record the
//!    in-vehicle journey time and bump the frequency counter.

use crate::tree::{Direction, HopTree};
use staq_geom::{GridIndex, KdTree};
use staq_gtfs::time::TimeInterval;
use staq_gtfs::{FeedIndex, StopId};
use staq_road::Isochrone;
use staq_synth::ZoneId;
use std::collections::HashMap;

/// Context shared by all per-zone builds: stop spatial index and
/// stop→zone mapping.
pub struct BuildContext<'a> {
    pub feed: &'a FeedIndex,
    /// Grid over stop positions (cell ≈ walking radius).
    pub stop_grid: GridIndex,
    /// Zone of each stop (nearest centroid).
    pub stop_zone: Vec<ZoneId>,
}

impl<'a> BuildContext<'a> {
    /// Prepares the context from the feed and the zone centroid index.
    pub fn new(feed: &'a FeedIndex, zone_tree: &KdTree, walk_radius_m: f64) -> Self {
        let stop_points = feed.stop_points();
        let stop_grid = GridIndex::build(&stop_points, walk_radius_m.max(50.0));
        let stop_zone = stop_points
            .iter()
            .map(|(p, _)| ZoneId(zone_tree.nearest(p).expect("at least one zone").item))
            .collect();
        BuildContext { feed, stop_grid, stop_zone }
    }

    /// Stops inside the walking isochrone `w` (grid pre-filter by radius,
    /// exact polygon test after).
    pub fn stops_in_isochrone(&self, w: &Isochrone, max_radius_m: f64) -> Vec<StopId> {
        let mut out = Vec::new();
        self.stop_grid.for_each_within(&w.origin, max_radius_m, |stop, _| {
            let pos = self.feed.stop_pos(StopId(stop));
            if w.contains(&pos) {
                out.push(StopId(stop));
            }
        });
        out
    }
}

/// Builds one hop tree for `zone` over interval `v`.
pub fn build_tree(
    ctx: &BuildContext<'_>,
    zone: ZoneId,
    w: &Isochrone,
    max_radius_m: f64,
    v: &TimeInterval,
    direction: Direction,
) -> HopTree {
    let stops = ctx.stops_in_isochrone(w, max_radius_m);
    // zone -> (count, jt_sum, jt_min)
    let mut accum: HashMap<ZoneId, (u32, f64, f64)> = HashMap::new();
    for &stop in &stops {
        for dep in ctx.feed.departures_at(stop, v) {
            let calls = ctx.feed.trip_calls(dep.trip);
            // Position of this call within the trip.
            let Some(pos) = calls.iter().position(|c| c.stop == stop && c.seq == dep.seq) else {
                continue;
            };
            match direction {
                Direction::Outbound => {
                    let board = calls[pos].departure;
                    for call in &calls[pos + 1..] {
                        let jt = board.until(call.arrival) as f64;
                        update(&mut accum, ctx.stop_zone[call.stop.idx()], jt);
                    }
                }
                Direction::Inbound => {
                    let arrive = calls[pos].arrival;
                    for call in &calls[..pos] {
                        let jt = call.departure.until(arrive) as f64;
                        update(&mut accum, ctx.stop_zone[call.stop.idx()], jt);
                    }
                }
            }
        }
    }
    let accum: Vec<(ZoneId, u32, f64, f64)> =
        accum.into_iter().map(|(z, (c, sum, min))| (z, c, sum, min)).collect();
    HopTree::from_accum(zone, direction, accum)
}

#[inline]
fn update(accum: &mut HashMap<ZoneId, (u32, f64, f64)>, zone: ZoneId, jt: f64) {
    let e = accum.entry(zone).or_insert((0, 0.0, f64::INFINITY));
    e.0 += 1;
    e.1 += jt;
    e.2 = e.2.min(jt);
}

#[cfg(test)]
mod tests {
    use super::*;
    use staq_road::{IsochroneParams, NodeSnapper};
    use staq_synth::{City, CityConfig};

    fn setup() -> (City, KdTree) {
        let city = City::generate(&CityConfig::small(42));
        let tree = KdTree::build(&city.zone_points());
        (city, tree)
    }

    fn iso(city: &City, z: ZoneId, params: &IsochroneParams) -> Isochrone {
        let snapper = NodeSnapper::new(&city.road);
        let c = city.zone_centroid(z);
        Isochrone::grow(&city.road, c, snapper.snap_unchecked(&c), params)
    }

    #[test]
    fn outbound_tree_has_leaves_for_connected_zone() {
        let (city, ztree) = setup();
        let params = IsochroneParams::default();
        let ctx = BuildContext::new(&city.feed, &ztree, params.max_radius_m());
        // Use the densest zone (closest to the core) — certain to have
        // service.
        let core_zone = ZoneId(ztree.nearest(&city.cores[0]).unwrap().item);
        let w = iso(&city, core_zone, &params);
        let t = build_tree(
            &ctx,
            core_zone,
            &w,
            params.max_radius_m(),
            &TimeInterval::am_peak(),
            Direction::Outbound,
        );
        assert!(t.n_leaves() > 3, "core zone reaches {} zones", t.n_leaves());
        for l in t.leaves() {
            assert!(l.count >= 1);
            assert!(l.jt_min >= 0.0 && l.jt_avg() >= l.jt_min);
        }
    }

    #[test]
    fn inbound_and_outbound_differ_but_overlap() {
        let (city, ztree) = setup();
        let params = IsochroneParams::default();
        let ctx = BuildContext::new(&city.feed, &ztree, params.max_radius_m());
        let core_zone = ZoneId(ztree.nearest(&city.cores[0]).unwrap().item);
        let w = iso(&city, core_zone, &params);
        let v = TimeInterval::am_peak();
        let ob = build_tree(&ctx, core_zone, &w, params.max_radius_m(), &v, Direction::Outbound);
        let ib = build_tree(&ctx, core_zone, &w, params.max_radius_m(), &v, Direction::Inbound);
        assert!(ob.n_leaves() > 0 && ib.n_leaves() > 0);
        // Bidirectional routes make most zones appear in both.
        let shared = ob.leaves().iter().filter(|l| ib.reaches(l.zone)).count();
        assert!(shared > 0, "no shared leaves between OB and IB");
    }

    #[test]
    fn no_service_interval_gives_empty_tree() {
        let (city, ztree) = setup();
        let params = IsochroneParams::default();
        let ctx = BuildContext::new(&city.feed, &ztree, params.max_radius_m());
        let z = ZoneId(0);
        let w = iso(&city, z, &params);
        let sunday = TimeInterval::new(
            staq_gtfs::Stime::hours(7),
            staq_gtfs::Stime::hours(9),
            staq_gtfs::DayOfWeek::Sunday,
            "sun",
        );
        let t = build_tree(&ctx, z, &w, params.max_radius_m(), &sunday, Direction::Outbound);
        assert_eq!(t.n_leaves(), 0);
    }

    #[test]
    fn stops_in_isochrone_subset_of_radius() {
        let (city, ztree) = setup();
        let params = IsochroneParams::default();
        let ctx = BuildContext::new(&city.feed, &ztree, params.max_radius_m());
        let core_zone = ZoneId(ztree.nearest(&city.cores[0]).unwrap().item);
        let w = iso(&city, core_zone, &params);
        let stops = ctx.stops_in_isochrone(&w, params.max_radius_m());
        for s in &stops {
            let d = city.feed.stop_pos(*s).dist(&w.origin);
            assert!(d <= params.max_radius_m() * 1.01);
        }
    }

    #[test]
    fn tighter_walk_budget_never_adds_leaves() {
        let (city, ztree) = setup();
        let v = TimeInterval::am_peak();
        let core_zone = ZoneId(ztree.nearest(&city.cores[0]).unwrap().item);
        let loose = IsochroneParams::default();
        let tight = IsochroneParams { tau_secs: 200.0, ..loose };
        let ctx = BuildContext::new(&city.feed, &ztree, loose.max_radius_m());
        let wl = iso(&city, core_zone, &loose);
        let wt = iso(&city, core_zone, &tight);
        let tl = build_tree(&ctx, core_zone, &wl, loose.max_radius_m(), &v, Direction::Outbound);
        let tt = build_tree(&ctx, core_zone, &wt, tight.max_radius_m(), &v, Direction::Outbound);
        assert!(tt.n_leaves() <= tl.n_leaves());
    }
}

//! staq-top: live fleet health dashboard.
//!
//! ```text
//! staq-top [--addr 127.0.0.1:7900] [--interval SECS] [--count N] [--no-clear]
//! ```
//!
//! Polls the endpoint (a `staq-serve` server or a `staq-shard` router —
//! routers answer with the fleet-merged report) with an `OpsReport`
//! request every `--interval` seconds and redraws a per-class table:
//! request rate, window p50/p99, sheds, fast/slow burn rates and
//! remaining error budget, followed by the worst retained slow traces.
//!
//! `--count N` exits after N polls (0 = run until interrupted), which is
//! what scripts and smoke tests want; `--no-clear` appends frames
//! instead of redrawing in place, which is what logs want.

use staq_obs::{fmt_dur, OpsReport, SlowTrace};
use staq_serve::Client;
use std::time::Duration;

struct Args {
    addr: String,
    interval: Duration,
    count: u64,
    no_clear: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7900".into(),
        interval: Duration::from_secs(2),
        count: 0,
        no_clear: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => args.addr = need(&mut it, "--addr"),
            "--interval" => args.interval = Duration::from_secs(parse(&mut it, "--interval")),
            "--count" => args.count = parse(&mut it, "--count"),
            "--no-clear" => args.no_clear = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    args
}

fn need(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")))
}

fn parse<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
    need(it, flag).parse().unwrap_or_else(|_| usage(&format!("{flag} needs a valid value")))
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: staq-top [--addr host:port] [--interval SECS] [--count N] [--no-clear]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

fn main() {
    let args = parse_args();
    let mut client = Client::connect(&args.addr).unwrap_or_else(|e| {
        eprintln!("error: cannot connect to {}: {e}", args.addr);
        std::process::exit(1);
    });
    let mut polls = 0u64;
    loop {
        let report = client.ops_report().unwrap_or_else(|e| {
            eprintln!("error: ops report failed: {e}");
            std::process::exit(1);
        });
        if !args.no_clear {
            // Clear screen + home, like top(1); frames redraw in place.
            print!("\x1b[2J\x1b[H");
        }
        render(&args.addr, &report);
        polls += 1;
        if args.count != 0 && polls >= args.count {
            return;
        }
        std::thread::sleep(args.interval);
    }
}

fn render(addr: &str, r: &OpsReport) {
    println!(
        "staq-top  {addr}  interval={} windows={}",
        fmt_dur(Duration::from_nanos(r.interval_ns)),
        r.windows
    );
    println!(
        "{:<10} {:>9} {:>10} {:>10} {:>7} {:>8} {:>8} {:>7}",
        "CLASS", "RPS", "P50", "P99", "SHED", "BURN-5M", "BURN-1H", "BUDGET"
    );
    for c in &r.classes {
        let slo = r.slo_for(&c.class);
        println!(
            "{:<10} {:>9.1} {:>10} {:>10} {:>7} {:>8} {:>8} {:>6.1}%",
            c.class,
            c.rps(),
            fmt_dur(Duration::from_nanos(c.quantile_ns(50.0))),
            fmt_dur(Duration::from_nanos(c.quantile_ns(99.0))),
            c.shed,
            slo.map_or_else(|| "-".into(), |s| fmt_burn(s.burn_fast())),
            slo.map_or_else(|| "-".into(), |s| fmt_burn(s.burn_slow())),
            slo.map_or(100.0, |s| s.budget_remaining() * 100.0),
        );
    }
    if r.slow.is_empty() {
        println!("no slow traces retained");
        return;
    }
    println!("worst traces:");
    for t in &r.slow {
        println!("  {}", trace_line(t));
    }
}

/// Burn rates saturate at a 1e9 sentinel when the budget is zero-width;
/// render that honestly instead of printing nonsense digits.
fn fmt_burn(burn: f64) -> String {
    if burn >= 1e6 {
        "inf".into()
    } else {
        format!("{burn:.2}")
    }
}

fn trace_line(t: &SlowTrace) -> String {
    format!(
        "{:016x}  {:<9} {:>10}  {} span(s){}",
        t.trace,
        t.class,
        fmt_dur(Duration::from_nanos(t.root_dur_ns)),
        t.spans.len(),
        if t.is_error { "  ERROR" } else { "" }
    )
}

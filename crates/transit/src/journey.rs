//! Journeys and legs: the router's output, the cost models' input.

use serde::{Deserialize, Serialize};
use staq_gtfs::model::{RouteId, StopId, TripId};
use staq_gtfs::time::Stime;

/// One leg of a multimodal journey.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Leg {
    /// Walking: from the origin, between stops, or to the destination.
    Walk {
        /// Duration in seconds.
        secs: u32,
        /// Stop walked *to* (`None` for the final egress walk).
        to_stop: Option<StopId>,
    },
    /// Waiting at a stop for a vehicle.
    Wait { secs: u32, at_stop: StopId },
    /// Riding a vehicle between two stops.
    Ride {
        trip: TripId,
        route: RouteId,
        from_stop: StopId,
        to_stop: StopId,
        board: Stime,
        alight: Stime,
    },
}

impl Leg {
    /// Leg duration in seconds.
    pub fn secs(&self) -> u32 {
        match *self {
            Leg::Walk { secs, .. } | Leg::Wait { secs, .. } => secs,
            Leg::Ride { board, alight, .. } => board.until(alight),
        }
    }
}

/// A complete journey from an `(o, d, t)` query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Journey {
    /// Requested departure time `t`.
    pub depart: Stime,
    /// Arrival time at the destination, `AT(d)`.
    pub arrive: Stime,
    /// Ordered legs. A pure walking journey has a single `Walk` leg.
    pub legs: Vec<Leg>,
}

impl Journey {
    /// A walk-only journey.
    pub fn walk_only(depart: Stime, walk_secs: u32) -> Journey {
        Journey {
            depart,
            arrive: depart.plus(walk_secs),
            legs: vec![Leg::Walk { secs: walk_secs, to_stop: None }],
        }
    }

    /// Total journey time in seconds: `AT(d) − t`, the paper's JT cost.
    #[inline]
    pub fn jt_secs(&self) -> u32 {
        self.depart.until(self.arrive)
    }

    /// True when no vehicle is boarded (paper §V-B2's "walking only trips",
    /// which have ACSD 0 because they don't depend on the schedule).
    pub fn is_walk_only(&self) -> bool {
        !self.legs.iter().any(|l| matches!(l, Leg::Ride { .. }))
    }

    /// Number of vehicle boardings.
    pub fn n_rides(&self) -> usize {
        self.legs.iter().filter(|l| matches!(l, Leg::Ride { .. })).count()
    }

    /// Number of interchanges (boardings beyond the first).
    pub fn n_transfers(&self) -> usize {
        self.n_rides().saturating_sub(1)
    }

    /// Access walk time TAN: walking before the first ride (0 for walk-only
    /// journeys, where all walking is the journey itself — reported under
    /// `jt` instead so GAC's walk weighting applies once).
    pub fn access_walk_secs(&self) -> u32 {
        let mut acc = 0;
        for leg in &self.legs {
            match leg {
                Leg::Walk { secs, .. } => acc += secs,
                Leg::Wait { .. } => {}
                Leg::Ride { .. } => return acc,
            }
        }
        0 // never rode: walk-only journey
    }

    /// Egress walk time ET: walking after the last ride.
    pub fn egress_walk_secs(&self) -> u32 {
        let mut acc = 0;
        for leg in self.legs.iter().rev() {
            match leg {
                Leg::Walk { secs, .. } => acc += secs,
                Leg::Wait { .. } => {}
                Leg::Ride { .. } => return acc,
            }
        }
        0
    }

    /// Walking between rides (interchange walks).
    pub fn transfer_walk_secs(&self) -> u32 {
        let total: u32 = self
            .legs
            .iter()
            .filter_map(|l| match l {
                Leg::Walk { secs, .. } => Some(*secs),
                _ => None,
            })
            .sum();
        if self.is_walk_only() {
            0
        } else {
            total - self.access_walk_secs() - self.egress_walk_secs()
        }
    }

    /// Total waiting time WT.
    pub fn wait_secs(&self) -> u32 {
        self.legs
            .iter()
            .filter_map(|l| match l {
                Leg::Wait { secs, .. } => Some(*secs),
                _ => None,
            })
            .sum()
    }

    /// Total in-vehicle time IVT.
    pub fn in_vehicle_secs(&self) -> u32 {
        self.legs
            .iter()
            .filter_map(|l| match l {
                Leg::Ride { board, alight, .. } => Some(board.until(*alight)),
                _ => None,
            })
            .sum()
    }

    /// Human-readable itinerary, one line per leg — the user-facing output
    /// of the journey planner (used by examples and debugging).
    pub fn describe(&self) -> String {
        let mut out = format!(
            "depart {} → arrive {} ({} min)\n",
            self.depart,
            self.arrive,
            self.jt_secs() / 60
        );
        for leg in &self.legs {
            match leg {
                Leg::Walk { secs, to_stop: Some(s) } => {
                    out.push_str(&format!("  walk {:>3} min to stop {}\n", secs / 60, s.0));
                }
                Leg::Walk { secs, to_stop: None } => {
                    out.push_str(&format!("  walk {:>3} min to destination\n", secs / 60));
                }
                Leg::Wait { secs, at_stop } => {
                    out.push_str(&format!("  wait {:>3} min at stop {}\n", secs / 60, at_stop.0));
                }
                Leg::Ride { route, from_stop, to_stop, board, alight, .. } => {
                    out.push_str(&format!(
                        "  ride route {} from stop {} ({board}) to stop {} ({alight})\n",
                        route.0, from_stop.0, to_stop.0
                    ));
                }
            }
        }
        out
    }

    /// Internal consistency: leg durations must sum to the journey time.
    pub fn check_consistency(&self) -> Result<(), String> {
        let legs_total: u32 = self.legs.iter().map(|l| l.secs()).sum();
        if legs_total != self.jt_secs() {
            return Err(format!("legs sum to {legs_total}s but journey spans {}s", self.jt_secs()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_ride_journey() -> Journey {
        // walk 120 -> wait 60 -> ride 600 -> walk 90 -> wait 30 -> ride 300 -> walk 60
        let depart = Stime::hms(8, 0, 0);
        let mut t = depart;
        let mut legs = Vec::new();
        legs.push(Leg::Walk { secs: 120, to_stop: Some(StopId(1)) });
        t = t.plus(120);
        legs.push(Leg::Wait { secs: 60, at_stop: StopId(1) });
        t = t.plus(60);
        legs.push(Leg::Ride {
            trip: TripId(0),
            route: RouteId(0),
            from_stop: StopId(1),
            to_stop: StopId(2),
            board: t,
            alight: t.plus(600),
        });
        t = t.plus(600);
        legs.push(Leg::Walk { secs: 90, to_stop: Some(StopId(3)) });
        t = t.plus(90);
        legs.push(Leg::Wait { secs: 30, at_stop: StopId(3) });
        t = t.plus(30);
        legs.push(Leg::Ride {
            trip: TripId(1),
            route: RouteId(1),
            from_stop: StopId(3),
            to_stop: StopId(4),
            board: t,
            alight: t.plus(300),
        });
        t = t.plus(300);
        legs.push(Leg::Walk { secs: 60, to_stop: None });
        t = t.plus(60);
        Journey { depart, arrive: t, legs }
    }

    #[test]
    fn jt_is_arrival_minus_departure() {
        let j = two_ride_journey();
        assert_eq!(j.jt_secs(), 120 + 60 + 600 + 90 + 30 + 300 + 60);
        j.check_consistency().unwrap();
    }

    #[test]
    fn component_decomposition() {
        let j = two_ride_journey();
        assert_eq!(j.access_walk_secs(), 120);
        assert_eq!(j.egress_walk_secs(), 60);
        assert_eq!(j.transfer_walk_secs(), 90);
        assert_eq!(j.wait_secs(), 90);
        assert_eq!(j.in_vehicle_secs(), 900);
        assert_eq!(j.n_rides(), 2);
        assert_eq!(j.n_transfers(), 1);
        assert!(!j.is_walk_only());
    }

    #[test]
    fn walk_only_journey() {
        let j = Journey::walk_only(Stime::hms(7, 30, 0), 480);
        assert!(j.is_walk_only());
        assert_eq!(j.jt_secs(), 480);
        assert_eq!(j.n_transfers(), 0);
        assert_eq!(j.access_walk_secs(), 0, "walk-only walking counts as the journey");
        assert_eq!(j.egress_walk_secs(), 0);
        assert_eq!(j.wait_secs(), 0);
        j.check_consistency().unwrap();
    }

    #[test]
    fn describe_mentions_every_leg() {
        let j = two_ride_journey();
        let s = j.describe();
        assert_eq!(s.lines().count(), 1 + j.legs.len());
        assert!(s.contains("ride route 0"));
        assert!(s.contains("ride route 1"));
        assert!(s.contains("to destination"));
    }

    #[test]
    fn consistency_detects_gaps() {
        let mut j = two_ride_journey();
        j.arrive = j.arrive.plus(10);
        assert!(j.check_consistency().is_err());
    }
}

//! End-to-end test of the ops surface: a shard fleet behind a router
//! behind the HTTP gateway, driven through a warm phase and then a
//! burst of deliberately slow queries plus admission sheds. Asserts the
//! acceptance contract of the ops layer:
//!
//! - `/v1/ops/slo` reports non-zero burn for the battered `query` class
//!   while the untouched `plan` class stays at exactly zero;
//! - `/v1/ops/slow` returns the slow trace's span tree under the same
//!   TraceId the wire-level report carries;
//! - the burst window's p99 exceeds the all-time cumulative p50 (the
//!   cumulative registry is dominated by the warm phase, the window is
//!   not);
//! - under `obs-off` the whole surface still answers 200 with zeroed
//!   shapes (assertions on counts are gated on `obs_enabled`).
//!
//! Everything lives in ONE `#[test]`: the window ring, the SLO specs
//! and the slow store are process-global, and a second test in a
//! parallel harness thread would corrupt the accounting.

use staq_net::json::Json;
use staq_obs::{LatencyHistogram, SloClass, SloSpec};
use staq_repro::prelude::*;
use staq_serve::gateway::{gateway, GatewayConfig};
use staq_serve::presets::CityPreset;
use staq_serve::{MuxClient, Request, Response};
use staq_shard::{route, Backend, RouterConfig, ShardSupervisor, SupervisorConfig, ThreadBackend};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const SHARDS: usize = 2;
const SEED: u64 = 42;
/// Anything over this is a "bad" request for the query class in this
/// test — far below a cold pipeline run, far above a warm cache hit.
const SLOW_NS: u64 = 5_000_000;

fn query(category: PoiCategory) -> Request {
    Request::Query { category, query: AccessQuery::MeanAccess, approx: false }
}

fn add_poi(category: PoiCategory, x: f64) -> Request {
    Request::AddPoi { category, pos: staq_repro::geom::Point::new(x, x) }
}

fn is_overloaded(resp: &Response) -> bool {
    matches!(resp, Response::Error { code: staq_serve::codec::ErrorCode::Overloaded, .. })
}

/// Minimal HTTP/1.1 client: one fresh connection per request.
fn http(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect gateway");
    let req = format!(
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: 0\r\n\r\n"
    );
    s.write_all(req.as_bytes()).expect("send request");
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("UTF-8 response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn get_json(addr: SocketAddr, path: &str) -> Json {
    let (status, body) = http(addr, path);
    assert_eq!(status, 200, "{path} failed: {body}");
    Json::parse(&body).unwrap_or_else(|e| panic!("{path} returned invalid JSON ({e}): {body}"))
}

/// The object in `arr` whose `"class"` field equals `name`.
fn class_entry<'a>(arr: &'a [Json], name: &str) -> &'a Json {
    arr.iter()
        .find(|c| c.get("class").and_then(Json::as_str) == Some(name))
        .unwrap_or_else(|| panic!("no class {name} in {arr:?}"))
}

fn f64_field(obj: &Json, key: &str) -> f64 {
    obj.get(key).and_then(Json::as_f64).unwrap_or_else(|| panic!("no {key} in {obj:?}"))
}

fn ops_report(mux: &MuxClient) -> staq_obs::OpsReport {
    match mux.call(&Request::OpsReport).expect("ops report") {
        Response::OpsReport(r) => r,
        other => panic!("{other:?}"),
    }
}

#[test]
fn burst_with_slow_queries_and_sheds_shows_up_on_the_ops_surface() {
    let obs = staq_obs::obs_enabled();

    // Deterministic windows: no lazy ticks mid-test, boundaries are ours.
    staq_obs::ops::set_interval(Duration::from_secs(3600));
    // A 5 ms query SLO so a cold pipeline run is a threshold violation
    // and a slow-trace promotion; plan keeps its default and stays idle.
    staq_obs::slo::configure(&[SloSpec {
        class: SloClass::Query,
        objective_milli: 999,
        threshold_ns: SLOW_NS,
    }]);
    staq_obs::slow::set_threshold_ns(SloClass::Query, SLOW_NS);

    // Fleet: two in-process shards, a deliberately narrow router (one
    // routing worker, queue depth one — the shed point), a gateway.
    let backends: Vec<Box<dyn Backend>> = (0..SHARDS)
        .map(|_| {
            Box::new(ThreadBackend::new(2, || Arc::new(CityPreset::Test.engine(0.05, SEED))))
                as Box<dyn Backend>
        })
        .collect();
    let sup = ShardSupervisor::start(backends, SupervisorConfig::default()).expect("fleet start");
    let mut router = route(sup, &RouterConfig { workers: 1, queue_depth: 1, ..Default::default() })
        .expect("router bind");
    let gw = gateway(router.addr(), &GatewayConfig::default()).expect("gateway bind");
    let gw_addr = gw.addr();
    let mux = MuxClient::connect(router.addr()).expect("connect router");

    // ---- warm phase ---------------------------------------------------
    //
    // Warm every category's cache (Measures class), then push a pile of
    // warm-cache queries so the *cumulative* query histogram is
    // dominated by microsecond-fast samples.
    for cat in PoiCategory::ALL {
        let resp = mux.call(&Request::Measures { category: cat, approx: false }).expect("warm");
        assert!(matches!(resp, Response::Measures(_)), "{resp:?}");
    }
    for _ in 0..200 {
        let resp = mux.call(&query(PoiCategory::Hospital)).expect("warm query");
        assert!(matches!(resp, Response::Query(_)), "{resp:?}");
    }
    staq_obs::ops::force_tick(); // window 1: warm traffic only

    // ---- burst phase --------------------------------------------------
    //
    // Each attempt chills the School cache (an Edits request), sends a
    // blocker query that now has to run the whole pipeline (slow: a
    // threshold violation AND a slow-trace promotion), and fires a burst
    // at the one-deep router queue until something bounces `Overloaded`
    // (an admission shed). Sheds are timing-dependent, so retry.
    let shed0 = staq_obs::slo::shed_count(SloClass::Query);
    let mut bounced = 0u64;
    let mut attempts = 0;
    while bounced == 0 {
        attempts += 1;
        assert!(attempts <= 10, "ten bursts with zero sheds: the router queue is not bounded");
        let resp =
            mux.call(&add_poi(PoiCategory::School, 1500.0 + attempts as f64)).expect("chill");
        assert!(matches!(resp, Response::AddPoi { .. }), "{resp:?}");

        crossbeam::scope(|scope| {
            let blocker = {
                let mux = mux.clone();
                scope.spawn(move |_| mux.call(&query(PoiCategory::School)).expect("blocker"))
            };
            std::thread::sleep(Duration::from_millis(5)); // let the worker take it
            let burst: Vec<_> = (0..8)
                .map(|_| {
                    let mux = mux.clone();
                    scope.spawn(move |_| mux.call(&query(PoiCategory::School)).expect("burst"))
                })
                .collect();
            for h in burst {
                if is_overloaded(&h.join().unwrap()) {
                    bounced += 1;
                }
            }
            let resp = blocker.join().unwrap();
            assert!(!is_overloaded(&resp), "the blocker itself was admitted");
        })
        .unwrap();
    }
    staq_obs::ops::force_tick(); // window 2: the burst

    if obs {
        assert!(
            staq_obs::slo::shed_count(SloClass::Query) > shed0,
            "an Overloaded bounce must be recorded as a query-class shed"
        );
    }

    // ---- wire-level report (scatter-gathered by the router) -----------
    let report = ops_report(&mux);
    assert_eq!(report.classes.len(), 4, "one window per configured class");
    assert_eq!(report.slo.len(), 4);

    let qw = report.class("query").expect("query window");
    let cum = staq_obs::snapshot();
    if obs {
        // Burst-window p99 vs all-time cumulative p50: the burst window
        // holds the slow pipeline runs, the cumulative histogram is
        // drowned in warm-phase microseconds.
        let h = cum.histogram("serve.request.query").expect("cumulative query histogram");
        let cum_p50 = LatencyHistogram::from_sparse(&h.buckets, h.sum_ns as u128, h.max_ns)
            .percentile(50.0)
            .as_nanos() as u64;
        let win_p99 = qw.quantile_ns(99.0);
        assert!(
            win_p99 > cum_p50,
            "burst-window p99 ({win_p99} ns) must exceed cumulative p50 ({cum_p50} ns)"
        );
        assert!(win_p99 >= SLOW_NS, "the burst window must contain a slow pipeline run");

        let qs = report.slo_for("query").expect("query slo");
        assert!(qs.fast.bad > 0, "violations + sheds must count as bad: {qs:?}");
        assert!(qs.burn_fast() > 0.0, "query burn must be non-zero: {qs:?}");
        assert!(qs.shed_total > 0, "sheds must accumulate: {qs:?}");
        let ps = report.slo_for("plan").expect("plan slo");
        assert_eq!((ps.fast.total, ps.fast.bad), (0, 0), "plan was never driven: {ps:?}");
        assert_eq!(ps.burn_fast(), 0.0, "untouched class must burn nothing");

        // The slow store holds the blocker's trace with its span tree.
        let slow = report.slow.iter().find(|t| t.class == "query").expect("a promoted query trace");
        assert!(slow.root_dur_ns >= SLOW_NS, "{slow:?}");
        assert!(!slow.spans.is_empty(), "a promoted trace carries its spans");
        assert!(slow.spans.iter().all(|s| s.trace == slow.trace), "spans belong to the trace");
        assert!(
            slow.spans.iter().any(|s| s.name == "serve.request"),
            "the request root span must be retained: {:?}",
            slow.spans.iter().map(|s| &s.name).collect::<Vec<_>>()
        );

        // ---- HTTP surface over the same data --------------------------
        let slo_page = get_json(gw_addr, "/v1/ops/slo");
        let classes = slo_page.get("classes").and_then(Json::as_arr).expect("classes array");
        let q = class_entry(classes, "query");
        assert!(f64_field(q.get("fast").expect("fast"), "bad") > 0.0, "{q:?}");
        assert!(f64_field(q.get("fast").expect("fast"), "burn") > 0.0, "{q:?}");
        let p = class_entry(classes, "plan");
        assert_eq!(f64_field(p.get("fast").expect("fast"), "bad"), 0.0, "{p:?}");
        assert_eq!(f64_field(p.get("fast").expect("fast"), "burn"), 0.0, "{p:?}");

        let slow_page = get_json(gw_addr, "/v1/ops/slow");
        let traces = slow_page.get("traces").and_then(Json::as_arr).expect("traces array");
        let want = format!("{:016x}", slow.trace);
        let entry = traces
            .iter()
            .find(|t| t.get("trace").and_then(Json::as_str) == Some(want.as_str()))
            .unwrap_or_else(|| panic!("trace {want} missing from /v1/ops/slow: {traces:?}"));
        let spans = entry.get("spans").and_then(Json::as_arr).expect("spans array");
        assert_eq!(spans.len(), slow.spans.len(), "the full span tree is served");
        assert!(
            spans.iter().any(|s| s.get("name").and_then(Json::as_str) == Some("serve.request")),
            "{spans:?}"
        );

        let windows_page = get_json(gw_addr, "/v1/ops/windows");
        let wq = class_entry(
            windows_page.get("classes").and_then(Json::as_arr).expect("classes"),
            "query",
        );
        assert!(f64_field(wq, "p99_ms") > 0.0, "{wq:?}");

        let health = get_json(gw_addr, "/v1/ops/health");
        assert!(health.get("ok").and_then(Json::as_bool).is_some(), "{health:?}");
        assert!(f64_field(&health, "windows") >= 2.0, "both ticked windows: {health:?}");

        // The gateway's own Prometheus page: its process registry is the
        // fleet's (in-process test), so serving metrics appear too.
        let (status, page) = http(gw_addr, "/metrics");
        assert_eq!(status, 200);
        assert!(
            page.contains("# TYPE staq_serve_request_query histogram"),
            "{}",
            &page[..400.min(page.len())]
        );
        assert!(page.contains("staq_obs_slo_query_burn_fast_milli"), "slo gauges are exported");
    } else {
        // obs-off: the surface must still answer, with zeroed shapes.
        assert_eq!(qw.count, 0);
        for path in ["/v1/ops/health", "/v1/ops/slo", "/v1/ops/windows", "/v1/ops/slow"] {
            let _ = get_json(gw_addr, path);
        }
        let (status, _) = http(gw_addr, "/metrics");
        assert_eq!(status, 200);
        assert!(report.slow.is_empty(), "no slow capture under obs-off");
    }

    drop(mux);
    router.shutdown();
}

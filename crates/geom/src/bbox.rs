//! Axis-aligned bounding boxes.

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box `[min_x, max_x] x [min_y, max_y]`.
///
/// An *empty* box (one that contains no points) is represented by
/// `min > max`; [`BBox::empty`] constructs one and [`BBox::is_empty`] tests
/// for it. Extending an empty box with a point yields the degenerate box of
/// that single point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    pub min_x: f64,
    pub min_y: f64,
    pub max_x: f64,
    pub max_y: f64,
}

impl BBox {
    /// The empty box: contains no points, union identity.
    pub const fn empty() -> Self {
        BBox {
            min_x: f64::INFINITY,
            min_y: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            max_y: f64::NEG_INFINITY,
        }
    }

    /// Box spanning the two corner points (in any order).
    pub fn from_corners(a: Point, b: Point) -> Self {
        BBox { min_x: a.x.min(b.x), min_y: a.y.min(b.y), max_x: a.x.max(b.x), max_y: a.y.max(b.y) }
    }

    /// Smallest box containing all `points`; empty box for an empty slice.
    pub fn of_points(points: &[Point]) -> Self {
        let mut b = BBox::empty();
        for p in points {
            b.extend(*p);
        }
        b
    }

    /// True when the box contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x || self.min_y > self.max_y
    }

    /// Grows the box to include `p`.
    #[inline]
    pub fn extend(&mut self, p: Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Grows the box to include all of `other`.
    #[inline]
    pub fn union(&mut self, other: &BBox) {
        self.min_x = self.min_x.min(other.min_x);
        self.min_y = self.min_y.min(other.min_y);
        self.max_x = self.max_x.max(other.max_x);
        self.max_y = self.max_y.max(other.max_y);
    }

    /// True when `p` lies inside or on the border.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// True when the boxes share at least one point (borders count).
    #[inline]
    pub fn intersects(&self, other: &BBox) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// Width (x extent); 0 for an empty box.
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max_x - self.min_x).max(0.0)
    }

    /// Height (y extent); 0 for an empty box.
    #[inline]
    pub fn height(&self) -> f64 {
        (self.max_y - self.min_y).max(0.0)
    }

    /// Center of the box. Meaningless (NaN) for an empty box.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.min_x + self.max_x) * 0.5, (self.min_y + self.max_y) * 0.5)
    }

    /// Squared distance from `p` to the nearest point of the box (0 when
    /// inside). Used for kd-tree pruning.
    #[inline]
    pub fn dist2_to(&self, p: &Point) -> f64 {
        let dx = (self.min_x - p.x).max(0.0).max(p.x - self.max_x);
        let dy = (self.min_y - p.y).max(0.0).max(p.y - self.max_y);
        dx * dx + dy * dy
    }

    /// Box expanded by `margin` meters on every side.
    pub fn expanded(&self, margin: f64) -> BBox {
        BBox {
            min_x: self.min_x - margin,
            min_y: self.min_y - margin,
            max_x: self.max_x + margin,
            max_y: self.max_y + margin,
        }
    }
}

impl Default for BBox {
    fn default() -> Self {
        BBox::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_box_contains_nothing() {
        let b = BBox::empty();
        assert!(b.is_empty());
        assert!(!b.contains(&Point::new(0.0, 0.0)));
        assert_eq!(b.width(), 0.0);
        assert_eq!(b.height(), 0.0);
    }

    #[test]
    fn extend_from_empty_gives_degenerate_box() {
        let mut b = BBox::empty();
        b.extend(Point::new(3.0, -1.0));
        assert!(!b.is_empty());
        assert!(b.contains(&Point::new(3.0, -1.0)));
        assert_eq!(b.width(), 0.0);
    }

    #[test]
    fn of_points_bounds_everything() {
        let pts = [Point::new(1.0, 5.0), Point::new(-2.0, 3.0), Point::new(4.0, -1.0)];
        let b = BBox::of_points(&pts);
        for p in &pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.min_x, -2.0);
        assert_eq!(b.max_y, 5.0);
    }

    #[test]
    fn intersects_is_symmetric_and_border_inclusive() {
        let a = BBox::from_corners(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let b = BBox::from_corners(Point::new(2.0, 2.0), Point::new(4.0, 4.0));
        let c = BBox::from_corners(Point::new(2.1, 2.1), Point::new(4.0, 4.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(!a.intersects(&BBox::empty()));
    }

    #[test]
    fn dist2_to_inside_is_zero() {
        let b = BBox::from_corners(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        assert_eq!(b.dist2_to(&Point::new(1.0, 1.0)), 0.0);
        assert_eq!(b.dist2_to(&Point::new(5.0, 1.0)), 9.0);
        assert_eq!(b.dist2_to(&Point::new(5.0, 6.0)), 9.0 + 16.0);
    }

    #[test]
    fn union_covers_both() {
        let mut a = BBox::from_corners(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let b = BBox::from_corners(Point::new(5.0, -3.0), Point::new(6.0, 0.5));
        a.union(&b);
        assert!(a.contains(&Point::new(6.0, -3.0)));
        assert!(a.contains(&Point::new(0.0, 1.0)));
    }

    #[test]
    fn expanded_grows_margins() {
        let b = BBox::from_corners(Point::new(0.0, 0.0), Point::new(1.0, 1.0)).expanded(0.5);
        assert!(b.contains(&Point::new(-0.5, 1.5)));
        assert!(!b.contains(&Point::new(-0.6, 0.0)));
    }
}

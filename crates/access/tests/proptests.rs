//! Property tests for the access measures: fairness-index bounds,
//! classification totality, and query/answer coherence.

use proptest::prelude::*;
use staq_access::{classify, fairness, ZoneMeasures};
use staq_synth::ZoneId;

fn measures(max: usize) -> impl Strategy<Value = Vec<ZoneMeasures>> {
    proptest::collection::vec((0.1f64..200.0, 0.0f64..50.0), 1..max).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (mac, acsd))| ZoneMeasures { zone: ZoneId(i as u32), mac, acsd })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn jain_is_bounded_by_one_over_n_and_one(ms in measures(40)) {
        let vals: Vec<f64> = ms.iter().map(|m| m.mac).collect();
        let j = fairness::jain_index(&vals);
        prop_assert!(j <= 1.0 + 1e-12);
        prop_assert!(j >= 1.0 / vals.len() as f64 - 1e-12);
    }

    #[test]
    fn jain_scale_invariance(ms in measures(30), k in 0.1f64..50.0) {
        let vals: Vec<f64> = ms.iter().map(|m| m.mac).collect();
        let scaled: Vec<f64> = vals.iter().map(|v| v * k).collect();
        prop_assert!((fairness::jain_index(&vals) - fairness::jain_index(&scaled)).abs() < 1e-9);
    }

    #[test]
    fn gini_and_jain_move_oppositely_under_concentration(ms in measures(20)) {
        // Concentrating all cost on one zone reduces Jain and raises Gini
        // relative to the original allocation (strictly, unless already
        // maximally concentrated).
        let vals: Vec<f64> = ms.iter().map(|m| m.mac).collect();
        if vals.len() < 3 {
            return Ok(());
        }
        let total: f64 = vals.iter().sum();
        let mut spike = vec![0.0; vals.len()];
        spike[0] = total;
        prop_assert!(fairness::jain_index(&spike) <= fairness::jain_index(&vals) + 1e-12);
        prop_assert!(fairness::gini(&spike) + 1e-12 >= fairness::gini(&vals));
    }

    #[test]
    fn weighted_jain_matches_unweighted_at_unit_weights(ms in measures(25)) {
        let vals: Vec<f64> = ms.iter().map(|m| m.mac).collect();
        let w = vec![1.0; vals.len()];
        prop_assert!(
            (fairness::weighted_jain_index(&vals, &w) - fairness::jain_index(&vals)).abs() < 1e-9
        );
    }

    #[test]
    fn classification_is_total_and_consistent(ms in measures(40)) {
        let classes = classify::classify_all(&ms, None);
        prop_assert_eq!(classes.len(), ms.len());
        let (mean_mac, mean_acsd) = classify::means_from(&ms);
        for ((z, c), m) in classes.iter().zip(&ms) {
            prop_assert_eq!(*z, m.zone);
            let expect = classify::AccessClass::classify(m.mac, m.acsd, mean_mac, mean_acsd);
            prop_assert_eq!(*c, expect);
        }
    }

    #[test]
    fn palma_at_least_one_for_sorted_costs(ms in measures(30)) {
        // Worst decile mean >= best-40% mean by definition of sorted tails.
        let vals: Vec<f64> = ms.iter().map(|m| m.mac).collect();
        prop_assert!(fairness::palma_ratio(&vals) >= 1.0 - 1e-12);
    }
}

//! What a shard runs: the supervisor's view of one backend engine server.
//!
//! Two implementations share the [`Backend`] trait:
//!
//! * [`ThreadBackend`] — an in-process [`staq_serve`] server over real
//!   loopback TCP. The wire path is identical to production (frames,
//!   pools, failover all exercise the same code); only the process
//!   boundary is missing. Used by the integration tests and the
//!   self-contained bench, where spawning N city builds in N children
//!   would be slow and unobservable.
//! * [`ProcessBackend`] — a spawned `serve` daemon. The child binds port
//!   0 and reports the bound address through `--port-file`; the parent
//!   polls the file. Killing the child is a real SIGKILL, and respawning
//!   rebuilds the city from scratch (scenario edits do not survive a
//!   crash — documented failover semantics).
//!
//! In-process backends share this process's staq-obs registry, which is
//! global; [`Backend::in_process`] lets the Stats scatter-gather know it
//! must not sum per-backend snapshots that are all the same registry.

use staq_core::AccessEngine;
use staq_serve::{serve_shared, ServerConfig, ServerHandle};
use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One supervised shard backend.
pub trait Backend: Send {
    /// Starts (or restarts) the backend and returns the address it
    /// listens on. Blocks until the listener is up — but not necessarily
    /// until the backend is *serving*; the supervisor readiness-probes
    /// before admitting traffic.
    fn start(&mut self) -> io::Result<SocketAddr>;

    /// Whether the backend still looks alive (process not exited, server
    /// not shut down). Advisory: the call path discovers death through
    /// failed connections regardless.
    fn is_alive(&mut self) -> bool;

    /// Hard-stops the backend. Also the test hook for simulated crashes.
    fn kill(&mut self);

    /// True when the backend runs inside this process (shares the global
    /// metrics registry).
    fn in_process(&self) -> bool;
}

/// An in-process staq-serve server, restartable from an engine factory.
///
/// The factory decides respawn semantics: building a fresh engine per
/// start models a real crash (cold cache, edits lost); cloning one
/// `Arc<AccessEngine>` across starts keeps the engine warm and is what
/// the bench uses to avoid paying N city builds per respawn.
///
/// Either way, each start wraps the engine in a **fresh `RtEngine`**, so
/// the backend's sequenced delta log restarts empty across respawns. The
/// supervisor relies on this: after a respawn it replays the fleet log
/// from sequence 1. That replay is only exact for *fresh-engine*
/// factories — a warm engine already carries its applied edits, and a
/// full replay on top would double-apply them. Warm factories are
/// therefore only safe where backends are never killed (the bench).
pub struct ThreadBackend {
    factory: Box<dyn Fn() -> Arc<AccessEngine> + Send>,
    cfg: ServerConfig,
    server: Option<ServerHandle>,
}

impl ThreadBackend {
    /// A backend serving engines produced by `factory`, on a free
    /// loopback port with `workers` threads.
    pub fn new(workers: usize, factory: impl Fn() -> Arc<AccessEngine> + Send + 'static) -> Self {
        ThreadBackend {
            factory: Box::new(factory),
            cfg: ServerConfig { addr: "127.0.0.1:0".into(), workers, ..Default::default() },
            server: None,
        }
    }
}

impl Backend for ThreadBackend {
    fn start(&mut self) -> io::Result<SocketAddr> {
        self.kill();
        let handle = serve_shared((self.factory)(), &self.cfg)?;
        let addr = handle.addr();
        self.server = Some(handle);
        Ok(addr)
    }

    fn is_alive(&mut self) -> bool {
        self.server.is_some()
    }

    fn kill(&mut self) {
        if let Some(mut s) = self.server.take() {
            s.shutdown();
        }
    }

    fn in_process(&self) -> bool {
        true
    }
}

/// Names a port file that no two backends (or two starts of one backend)
/// share, even across respawns.
static PORT_FILE_SEQ: AtomicU64 = AtomicU64::new(0);

/// A spawned `serve` daemon child process.
pub struct ProcessBackend {
    serve_bin: PathBuf,
    /// Extra daemon args (`--city`, `--scale`, `--seed`, `--workers`...).
    args: Vec<String>,
    /// How long to wait for the child to report its port; covers the city
    /// build, which dominates startup.
    pub start_timeout: Duration,
    child: Option<Child>,
}

impl ProcessBackend {
    /// A backend running `serve_bin` with `args` appended after the
    /// addressing flags.
    pub fn new(serve_bin: PathBuf, args: Vec<String>) -> Self {
        ProcessBackend { serve_bin, args, start_timeout: Duration::from_secs(600), child: None }
    }

    /// The `serve` binary next to the currently running executable —
    /// where cargo puts sibling bin targets.
    pub fn sibling_serve_bin() -> io::Result<PathBuf> {
        let mut p = std::env::current_exe()?;
        p.pop();
        if p.ends_with("deps") {
            p.pop();
        }
        p.push("serve");
        Ok(p)
    }
}

impl Backend for ProcessBackend {
    fn start(&mut self) -> io::Result<SocketAddr> {
        self.kill();
        let port_file = std::env::temp_dir().join(format!(
            "staq-shard-{}-{}.port",
            std::process::id(),
            PORT_FILE_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        let _ = std::fs::remove_file(&port_file);
        let child = Command::new(&self.serve_bin)
            .args(["--addr", "127.0.0.1:0", "--port-file"])
            .arg(&port_file)
            .args(&self.args)
            // Keep the child's stdin open: the daemon exits on stdin EOF,
            // so dropping the handle (kill or supervisor drop) is also a
            // graceful stop signal.
            .stdin(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        self.child = Some(child);

        let deadline = Instant::now() + self.start_timeout;
        loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if let Ok(addr) = text.trim().parse::<SocketAddr>() {
                    let _ = std::fs::remove_file(&port_file);
                    return Ok(addr);
                }
            }
            if !self.is_alive() {
                self.kill();
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "serve child exited before reporting its port",
                ));
            }
            if Instant::now() >= deadline {
                self.kill();
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "serve child did not report its port in time",
                ));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn is_alive(&mut self) -> bool {
        match &mut self.child {
            Some(c) => matches!(c.try_wait(), Ok(None)),
            None => false,
        }
    }

    fn kill(&mut self) {
        if let Some(mut c) = self.child.take() {
            let _ = c.kill();
            let _ = c.wait();
        }
    }

    fn in_process(&self) -> bool {
        false
    }
}

impl Drop for ProcessBackend {
    fn drop(&mut self) {
        self.kill();
    }
}
